"""Property-based byte-identity of capture replay.

For randomly generated MiniC guests (and the shared fuzz corpus), a
report replayed from a capture must serialise to *exactly* the bytes the
direct re-executing tool produces — across slice intervals (any multiple
of the capture grain), stack policies (including policies derived from a
both-sided capture), the gprof and QUAD replays, and the sharded
parallel capture merge.
"""

import io
from pathlib import Path

import pytest
from hypothesis import given, settings, strategies as st

from repro.capture import (CaptureReader, CaptureWriter, capture_run,
                           make_manifest, program_digest, replay_gprof,
                           replay_quad, replay_tquad)
from repro.core import TQuadOptions, run_tquad
from repro.core.options import StackPolicy
from repro.gprofsim import run_gprof
from repro.minic import build_program
from repro.quad import run_quad
from repro.serialize import flat_to_json, quad_to_json, tquad_to_json

CORPUS = sorted((Path(__file__).parent.parent / "fuzz" / "corpus")
                .glob("*.mc"))


@st.composite
def guest_programs(draw):
    """A random multi-function MiniC guest over small global arrays."""
    n_funcs = draw(st.integers(min_value=1, max_value=3))
    size = draw(st.sampled_from([8, 16, 24]))
    funcs, calls = [], []
    for f in range(n_funcs):
        body = []
        for _ in range(draw(st.integers(min_value=1, max_value=2))):
            op = draw(st.sampled_from(["fill", "sum", "copy"]))
            if op == "fill":
                body.append(f"for (i = 0; i < {size}; i = i + 1) "
                            f"{{ ga[i] = i * {draw(st.integers(1, 9))}; }}")
            elif op == "sum":
                body.append(f"for (i = 0; i < {size}; i = i + 1) "
                            f"{{ acc = acc + ga[i]; }}")
            else:
                body.append(f"for (i = 0; i < {size}; i = i + 1) "
                            f"{{ gb[i] = ga[i]; }}")
        funcs.append(f"int f{f}() {{ int i; int acc = 0; "
                     + " ".join(body) + " return acc; }")
        calls.extend([f"r = r + f{f}();"]
                     * draw(st.integers(min_value=1, max_value=2)))
    return (f"int ga[{size}]; int gb[{size}];\n" + "\n".join(funcs)
            + "\nint main() { int r = 0; " + " ".join(calls)
            + " return r & 255; }")


def _capture_bytes(program, *, grain, tools=("tquad", "gprof", "quad"),
                   stack=StackPolicy.BOTH):
    buf = io.BytesIO()
    capture_run(program, buf, tools=tools,
                options=TQuadOptions(slice_interval=grain, stack=stack))
    buf.seek(0)
    return buf


class TestRandomGuests:
    @given(source=guest_programs(),
           grain=st.sampled_from([25, 50, 100]),
           factor=st.integers(min_value=1, max_value=6),
           policy=st.sampled_from(list(StackPolicy)))
    @settings(max_examples=15, deadline=None)
    def test_tquad_replay_is_byte_identical(self, source, grain, factor,
                                            policy):
        program = build_program(source)
        buf = _capture_bytes(program, grain=grain, tools=("tquad",))
        opts = TQuadOptions(slice_interval=grain * factor, stack=policy)
        direct = run_tquad(program, options=opts)
        with CaptureReader(buf) as reader:
            replay = replay_tquad(reader, opts)
        assert tquad_to_json(replay) == tquad_to_json(direct)

    @given(source=guest_programs())
    @settings(max_examples=8, deadline=None)
    def test_gprof_and_quad_replays_are_byte_identical(self, source):
        program = build_program(source)
        buf = _capture_bytes(program, grain=100,
                             tools=("gprof", "quad"))
        with CaptureReader(buf) as reader:
            assert flat_to_json(replay_gprof(reader)) \
                == flat_to_json(run_gprof(program))
            assert quad_to_json(replay_quad(reader)) \
                == quad_to_json(run_quad(program))

    @given(source=guest_programs(),
           jobs=st.integers(min_value=2, max_value=4),
           factor=st.integers(min_value=1, max_value=4))
    @settings(max_examples=8, deadline=None)
    def test_sharded_capture_merge_is_byte_identical(self, source, jobs,
                                                     factor):
        from repro.parallel import TQuadSpec, parallel_profile

        program = build_program(source)
        options = TQuadOptions(slice_interval=50)
        buf = io.BytesIO()
        writer = CaptureWriter(buf)
        run = parallel_profile(program,
                               TQuadSpec(options=options, capture=True),
                               jobs=jobs, executor="inline",
                               capture_writer=writer)
        writer.finalize(make_manifest(
            program_sha=program_digest(program), label="", grain=50,
            stack="both", exclude_libraries=False,
            total_instructions=run.total_instructions,
            exit_code=run.exit_code, images=run.images,
            kernels=run.capture_kernels, mem_size=run.mem_size,
            tools=("tquad",),
            prefetches_skipped=run.prefetches_skipped))
        buf.seek(0)
        opts = TQuadOptions(slice_interval=50 * factor)
        direct = run_tquad(program, options=opts)
        with CaptureReader(buf) as reader:
            replay = replay_tquad(reader, opts)
        assert tquad_to_json(replay) == tquad_to_json(direct)


class TestFuzzCorpus:
    @pytest.mark.parametrize("path", CORPUS, ids=lambda p: p.stem)
    def test_corpus_replays_byte_identically(self, path):
        program = build_program(path.read_text())
        buf = _capture_bytes(program, grain=100)
        with CaptureReader(buf) as reader:
            for interval in (100, 300, 1000):
                opts = TQuadOptions(slice_interval=interval)
                assert tquad_to_json(replay_tquad(reader, opts)) \
                    == tquad_to_json(run_tquad(program, options=opts))
            assert flat_to_json(replay_gprof(reader)) \
                == flat_to_json(run_gprof(program))
            assert quad_to_json(replay_quad(reader)) \
                == quad_to_json(run_quad(program))
