"""Differential float testing: MiniC's double arithmetic must match host
Python bit for bit (both are IEEE-754 binary64, same operation order)."""

import math
import struct

from hypothesis import given, settings, strategies as st

from repro.minic import run_minic
from repro.vm.layout import DATA_BASE

finite = st.floats(allow_nan=False, allow_infinity=False,
                   min_value=-1e6, max_value=1e6)


class FNode:
    def __init__(self, kind, *children):
        self.kind = kind
        self.children = children

    def render(self) -> str:
        k = self.kind
        if k == "lit":
            return f"({self.children[0]!r})"
        if k == "var":
            return f"f{self.children[0]}"
        if k == "neg":
            return f"(-{self.children[0].render()})"
        if k in ("__sqrt", "__sin", "__cos", "__fabs"):
            return f"{k}({self.children[0].render()})"
        a, b = self.children
        return f"({a.render()} {k} {b.render()})"

    def evaluate(self, env) -> float:
        k = self.kind
        if k == "lit":
            return self.children[0]
        if k == "var":
            return env[self.children[0]]
        if k == "neg":
            return -self.children[0].evaluate(env)
        if k == "__fabs":
            return abs(self.children[0].evaluate(env))
        if k == "__sqrt":
            v = self.children[0].evaluate(env)
            return math.sqrt(v) if v >= 0.0 else math.nan
        if k == "__sin":
            return math.sin(self.children[0].evaluate(env))
        if k == "__cos":
            return math.cos(self.children[0].evaluate(env))
        a = self.children[0].evaluate(env)
        b = self.children[1].evaluate(env)
        if k == "+":
            return a + b
        if k == "-":
            return a - b
        if k == "*":
            return a * b
        raise AssertionError(k)


@st.composite
def float_trees(draw, depth=3):
    if depth == 0 or draw(st.booleans()):
        if draw(st.booleans()):
            return FNode("lit", draw(finite))
        return FNode("var", draw(st.integers(min_value=0, max_value=2)))
    kind = draw(st.sampled_from(["+", "-", "*", "neg", "__sin", "__cos",
                                 "__fabs"]))
    if kind in ("neg", "__sin", "__cos", "__fabs"):
        return FNode(kind, draw(float_trees(depth=depth - 1)))
    return FNode(kind, draw(float_trees(depth=depth - 1)),
                 draw(float_trees(depth=depth - 1)))


def run_float_tree(tree: FNode, env) -> float:
    decls = "\n".join(f"float f{i} = {v!r};" for i, v in enumerate(env))
    src = f"""
    float r;
    int main() {{
        {decls}
        r = {tree.render()};
        return 0;
    }}
    """
    m = run_minic(src, max_instructions=3_000_000)
    assert m.exit_code == 0
    return m.read_f64(DATA_BASE)


class TestFloatDifferential:
    @given(float_trees(),
           st.lists(finite, min_size=3, max_size=3))
    @settings(max_examples=50, deadline=None)
    def test_bit_exact(self, tree, env):
        got = run_float_tree(tree, env)
        want = tree.evaluate(env)
        # bit-level comparison (handles -0.0 vs 0.0 distinctions too)
        assert struct.pack("<d", got) == struct.pack("<d", want)

    @given(st.lists(finite, min_size=1, max_size=16))
    @settings(max_examples=25, deadline=None)
    def test_summation_order_preserved(self, values):
        # left-to-right accumulation, like the guest loop
        adds = "\n".join(f"acc = acc + {v!r};" for v in values)
        m = run_minic(f"""
        float r;
        int main() {{
            float acc = 0.0;
            {adds}
            r = acc;
            return 0;
        }}
        """)
        acc = 0.0
        for v in values:
            acc = acc + v
        assert m.read_f64(DATA_BASE) == acc

    @given(finite)
    @settings(max_examples=30, deadline=None)
    def test_division_matches(self, v):
        m = run_minic(f"""
        float r;
        int main() {{ r = {v!r} / 3.0; return 0; }}
        """)
        assert m.read_f64(DATA_BASE) == v / 3.0
