"""Property-based byte-identity of the bounded-memory streaming tier.

The exact streaming replay must serialise to *exactly* the bytes the
unbounded in-memory path produces, for any memory ceiling — with or
without the decoded-page sidecar, over serial captures and captures
merged from parallel shards.  The ceiling only moves *how* the replay
walks the pages (LRU window, carry compaction, disk spill), never what
it computes.
"""

import io

import pytest
from hypothesis import given, settings, strategies as st

from repro.capture import (CaptureReader, CaptureWriter, capture_run,
                           make_manifest, program_digest, replay_tquad)
from repro.capture.streaming import MIN_MEM_LIMIT
from repro.core import TQuadOptions
from repro.minic import build_program
from repro.serialize import sweep_to_json, tquad_to_json
from repro.sweep import SweepGrid, sweep_tquad

from test_prop_capture import guest_programs

GRAIN = 50

#: Ceilings from the hard floor up to "effectively unbounded" for these
#: small guests — the identity must hold at every point in between.
mem_limits = st.integers(min_value=MIN_MEM_LIMIT, max_value=8 << 20)


def _serial_capture(program, path):
    capture_run(program, str(path), tools=("tquad",),
                options=TQuadOptions(slice_interval=GRAIN))


def _parallel_capture(program, path, jobs=4):
    from repro.parallel import TQuadSpec, parallel_profile

    options = TQuadOptions(slice_interval=GRAIN)
    writer = CaptureWriter(str(path))
    run = parallel_profile(program,
                           TQuadSpec(options=options, capture=True),
                           jobs=jobs, executor="inline",
                           capture_writer=writer)
    writer.finalize(make_manifest(
        program_sha=program_digest(program), label="", grain=GRAIN,
        stack="both", exclude_libraries=False,
        total_instructions=run.total_instructions,
        exit_code=run.exit_code, images=run.images,
        kernels=run.capture_kernels, mem_size=run.mem_size,
        tools=("tquad",), prefetches_skipped=run.prefetches_skipped))


@pytest.fixture(scope="module")
def corpus(tmp_path_factory):
    """One fixed guest captured twice (serial and 4-way-sharded merge),
    with unbounded baselines for replay and a sweep grid."""
    root = tmp_path_factory.mktemp("stream-prop")
    source = """
    int a[80]; int b[80];
    int fill() { int i; for (i = 0; i < 80; i = i + 1)
                 { a[i] = i * 3; } return 0; }
    int fold() { int i; int s = 0; for (i = 0; i < 80; i = i + 1)
                 { s = s + a[i]; b[i] = s; } return s; }
    int main() { fill(); fold(); return fold() & 63; }
    """
    program = build_program(source)
    serial = root / "serial.capture"
    merged = root / "merged.capture"
    _serial_capture(program, serial)
    _parallel_capture(program, merged)
    grid = SweepGrid(intervals=(GRAIN, 2 * GRAIN, 4 * GRAIN))
    baselines = {}
    for name, path in (("serial", serial), ("merged", merged)):
        with CaptureReader(str(path), page_cache=False) as reader:
            baselines[name] = tquad_to_json(replay_tquad(reader))
        with CaptureReader(str(path), page_cache=False) as reader:
            sweep = sweep_tquad(reader, grid)
            baselines[name + ".sweep"] = sweep_to_json(sweep)
    return {"serial": serial, "merged": merged, "grid": grid,
            "baselines": baselines}


class TestStreamingByteIdentity:
    @given(limit=mem_limits, sidecar=st.booleans(),
           which=st.sampled_from(["serial", "merged"]))
    @settings(max_examples=16, deadline=None)
    def test_replay_identical_for_any_ceiling(self, corpus, limit,
                                              sidecar, which):
        with CaptureReader(str(corpus[which]),
                           page_cache=sidecar) as reader:
            bounded = replay_tquad(reader, mem_limit=limit)
        assert tquad_to_json(bounded) == corpus["baselines"][which]

    @given(limit=mem_limits, sidecar=st.booleans(),
           which=st.sampled_from(["serial", "merged"]))
    @settings(max_examples=10, deadline=None)
    def test_sweep_cells_identical_for_any_ceiling(self, corpus, limit,
                                                   sidecar, which):
        with CaptureReader(str(corpus[which]),
                           page_cache=sidecar) as reader:
            result = sweep_tquad(reader, corpus["grid"],
                                 mem_limit=limit)
        # cells must match byte-for-byte; stats legitimately differ
        # (they carry the streaming counters), so compare cell payloads
        import json

        base = json.loads(corpus["baselines"][which + ".sweep"])
        got = json.loads(sweep_to_json(result))
        assert got["cells"] == base["cells"]

    @given(source=guest_programs(), limit=mem_limits)
    @settings(max_examples=8, deadline=None)
    def test_random_guests_replay_identically(self, source, limit):
        program = build_program(source)
        buf = io.BytesIO()
        capture_run(program, buf, tools=("tquad",),
                    options=TQuadOptions(slice_interval=GRAIN))
        buf.seek(0)
        with CaptureReader(buf) as reader:
            base = tquad_to_json(replay_tquad(reader))
        buf.seek(0)
        with CaptureReader(buf) as reader:
            bounded = tquad_to_json(replay_tquad(reader,
                                                 mem_limit=limit))
        assert bounded == base


class TestApproxProperties:
    @given(rate=st.floats(min_value=0.05, max_value=0.95),
           seed=st.integers(0, 2**31 - 1))
    @settings(max_examples=10, deadline=None)
    def test_deterministic_across_reopen(self, corpus, rate, seed):
        from repro.capture import approx_replay_tquad
        from repro.serialize import approx_to_json

        runs = []
        for _ in range(2):
            with CaptureReader(str(corpus["serial"]),
                               page_cache=False) as reader:
                runs.append(approx_to_json(approx_replay_tquad(
                    reader, rate=rate, seed=seed)))
        assert runs[0] == runs[1]
