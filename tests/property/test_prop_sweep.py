"""Property-based byte-identity of the batched sweep engine.

Every cell of a sweep grid must serialise to *exactly* the bytes the
standalone :func:`repro.capture.replay.replay_tquad` produces for the
same options — which the capture property suite in turn pins to the
direct re-executing run.  Holds across random MiniC guests, random
interval ladders, every stack policy, both library modes (including the
exclude-libs view *derived* from a library-marked capture), and captures
merged from parallel shards.
"""

import io

from hypothesis import given, settings, strategies as st

from repro.capture import (CaptureReader, CaptureWriter, capture_run,
                           make_manifest, program_digest, replay_tquad)
from repro.core import TQuadOptions, run_tquad
from repro.core.options import StackPolicy
from repro.minic import build_program
from repro.serialize import tquad_to_json
from repro.sweep import SweepGrid, sweep_tquad

from test_prop_capture import guest_programs


@st.composite
def sweep_grids(draw, grain):
    """A random grid whose intervals are all multiples of ``grain``."""
    factors = draw(st.lists(st.integers(min_value=1, max_value=8),
                            min_size=1, max_size=4, unique=True))
    stacks = draw(st.lists(st.sampled_from(list(StackPolicy)),
                           min_size=1, max_size=3, unique=True))
    libs = draw(st.lists(st.booleans(), min_size=1, max_size=2,
                         unique=True))
    return SweepGrid(intervals=tuple(grain * f for f in factors),
                     stacks=tuple(stacks), library_modes=tuple(libs))


class TestSweepMatchesReplay:
    @given(source=guest_programs(), grain=st.sampled_from([25, 50, 100]),
           data=st.data())
    @settings(max_examples=12, deadline=None)
    def test_every_cell_is_byte_identical_to_standalone_replay(
            self, source, grain, data):
        program = build_program(source)
        buf = io.BytesIO()
        capture_run(program, buf, tools=("tquad",),
                    options=TQuadOptions(slice_interval=grain))
        grid = data.draw(sweep_grids(grain))
        buf.seek(0)
        with CaptureReader(buf) as reader:
            result = sweep_tquad(reader, grid)
        assert len(result) == len(grid)
        for cell, report in result:
            buf.seek(0)
            with CaptureReader(buf) as reader:
                standalone = replay_tquad(reader, cell.options())
            assert tquad_to_json(report) == tquad_to_json(standalone), \
                f"cell {cell.key} diverges from standalone replay"

    @given(source=guest_programs(), factor=st.integers(1, 4))
    @settings(max_examples=8, deadline=None)
    def test_exclude_libs_cell_matches_direct_run(self, source, factor):
        # the library axis is *derived* (marked rows masked out); pin it
        # to a direct re-executing run with --exclude-libs, not just to
        # the replay path
        program = build_program(source)
        buf = io.BytesIO()
        capture_run(program, buf, tools=("tquad",),
                    options=TQuadOptions(slice_interval=50))
        interval = 50 * factor
        grid = SweepGrid(intervals=(interval,), library_modes=(True,))
        buf.seek(0)
        with CaptureReader(buf) as reader:
            result = sweep_tquad(reader, grid)
        direct = run_tquad(program, options=TQuadOptions(
            slice_interval=interval, exclude_libraries=True))
        cell_report = result.report(interval, exclude_libraries=True)
        assert tquad_to_json(cell_report) == tquad_to_json(direct)

    @given(source=guest_programs(), jobs=st.integers(2, 4))
    @settings(max_examples=6, deadline=None)
    def test_parallel_captured_merge_sweeps_identically(self, source,
                                                        jobs):
        from repro.parallel import TQuadSpec, parallel_profile

        program = build_program(source)
        options = TQuadOptions(slice_interval=50)
        buf = io.BytesIO()
        writer = CaptureWriter(buf)
        run = parallel_profile(program,
                               TQuadSpec(options=options, capture=True),
                               jobs=jobs, executor="inline",
                               capture_writer=writer)
        writer.finalize(make_manifest(
            program_sha=program_digest(program), label="", grain=50,
            stack="both", exclude_libraries=False,
            total_instructions=run.total_instructions,
            exit_code=run.exit_code, images=run.images,
            kernels=run.capture_kernels, mem_size=run.mem_size,
            tools=("tquad",),
            prefetches_skipped=run.prefetches_skipped))
        grid = SweepGrid(intervals=(50, 100, 200),
                         stacks=(StackPolicy.BOTH, StackPolicy.INCLUDE),
                         library_modes=(False, True))
        buf.seek(0)
        with CaptureReader(buf) as reader:
            result = sweep_tquad(reader, grid)
        for cell, report in result:
            buf.seek(0)
            with CaptureReader(buf) as reader:
                standalone = replay_tquad(reader, cell.options())
            assert tquad_to_json(report) == tquad_to_json(standalone), \
                f"merged-capture cell {cell.key} diverges"
