"""Differential properties of the parallel sharded-replay pipeline.

For hypothesis-generated MiniC guests:

* ``Machine.snapshot()`` → ``restore()`` round-trips are state-identical at
  arbitrary pause points, and a restored machine retraces the rest of the
  execution exactly;
* profiling with ``jobs ∈ {1, 2, 4}`` produces reports byte-identical
  (rendered tables *and* serialised JSON) to the serial tools, for all
  three profilers, with shard boundaries both on and off slice edges.

Shard replay runs through the inline executor — the identical shard /
seed / merge machinery without process-pool overhead, so hypothesis can
afford many examples; real ``multiprocessing`` is exercised by
``tests/unit/test_parallel.py`` and the scaling benchmark.
"""

from hypothesis import given, settings, strategies as st

from repro.core import TQuadOptions, run_tquad
from repro.gprofsim import run_gprof
from repro.minic import build_program
from repro.parallel import (GprofSpec, QuadSpec, TQuadSpec,
                            parallel_profile)
from repro.quad import run_quad
from repro.serialize import flat_to_json, quad_to_json, tquad_to_json
from repro.vm import InstructionBudgetExceeded, Machine


@st.composite
def guest_programs(draw):
    """A random multi-function MiniC program over small int arrays."""
    n_funcs = draw(st.integers(min_value=1, max_value=4))
    size = draw(st.sampled_from([8, 16, 32]))
    funcs = []
    calls = []
    for f in range(n_funcs):
        body = []
        for _ in range(draw(st.integers(min_value=1, max_value=3))):
            op = draw(st.sampled_from(["fill", "sum", "copy", "scale"]))
            if op == "fill":
                body.append(
                    f"for (i = 0; i < {size}; i = i + 1) "
                    f"{{ ga[i] = i * {draw(st.integers(1, 9))}; }}")
            elif op == "sum":
                body.append(
                    f"for (i = 0; i < {size}; i = i + 1) "
                    f"{{ acc = acc + ga[i]; }}")
            elif op == "copy":
                body.append(
                    f"for (i = 0; i < {size}; i = i + 1) "
                    f"{{ gb[i] = ga[i]; }}")
            else:
                body.append(
                    f"for (i = 0; i < {size}; i = i + 1) "
                    f"{{ gb[i] = gb[i] * {draw(st.integers(1, 5))}; }}")
        funcs.append(
            f"int f{f}() {{ int i; int acc = 0; "
            + " ".join(body) + " return acc; }")
        reps = draw(st.integers(min_value=1, max_value=2))
        calls.extend([f"r = r + f{f}();"] * reps)
    return (f"int ga[{size}]; int gb[{size}];\n"
            + "\n".join(funcs)
            + "\nint main() { int r = 0; " + " ".join(calls)
            + " return r & 255; }")


def _machine_state(m: Machine):
    return (m.icount, m.pc_index, tuple(m.x), tuple(m.f), bytes(m.mem),
            bytes(m.stdout), m.brk, m.exit_code, m.syscall.count)


class TestSnapshotRoundTrip:
    @given(guest_programs(), st.floats(min_value=0.05, max_value=0.95))
    @settings(max_examples=20, deadline=None)
    def test_restore_is_state_identical_and_resumable(self, src, frac):
        program = build_program(src)
        ref = Machine(program)
        ref.run()
        pause_at = max(1, int(ref.icount * frac))
        m = Machine(program)
        try:
            m.run(max_instructions=pause_at)
        except InstructionBudgetExceeded:
            m.halted = False
        snap = m.snapshot()
        fresh = Machine(program)
        fresh.restore(snap)
        assert _machine_state(fresh) == _machine_state(m)
        fresh.run()
        assert _machine_state(fresh) == _machine_state(ref)


class TestSerialParallelEquivalence:
    @given(guest_programs(),
           st.sampled_from([1, 2, 4]),
           st.sampled_from([97, 100, 1000]),   # interval
           st.booleans(),                      # boundaries on slice edges?
           st.sampled_from(["paged", "legacy"]))   # QUAD shadow impl
    @settings(max_examples=20, deadline=None)
    def test_all_tools_byte_identical(self, src, jobs, interval, align,
                                      shadow):
        program = build_program(src)
        opts = TQuadOptions(slice_interval=interval)
        serial_t = run_tquad(build_program(src), options=opts)
        serial_q = run_quad(build_program(src))
        serial_g = run_gprof(build_program(src))
        run = parallel_profile(
            program,
            (TQuadSpec(options=opts), QuadSpec(shadow=shadow), GprofSpec()),
            jobs=jobs, executor="inline",
            # small fixed quantum so even tiny guests split into shards;
            # align=True snaps boundaries to slice edges, False leaves
            # them mid-slice
            quantum=173 if jobs > 1 else None, align=align)
        pt = run.reports["tquad"]
        pq = run.reports["quad"]
        pg = run.reports["gprof"]
        assert tquad_to_json(serial_t) == tquad_to_json(pt)
        assert serial_t.format_table() == pt.format_table()
        assert quad_to_json(serial_q) == quad_to_json(pq)
        assert serial_q.format_table() == pq.format_table()
        assert flat_to_json(serial_g) == flat_to_json(pg)
        assert serial_g.format_table() == pg.format_table()
        assert serial_g.format_call_graph() == pg.format_call_graph()

    @given(guest_programs())
    @settings(max_examples=10, deadline=None)
    def test_shard_count_does_not_leak_into_report(self, src):
        program = build_program(src)
        opts = TQuadOptions(slice_interval=100)
        runs = [parallel_profile(build_program(src), TQuadSpec(options=opts),
                                 jobs=j, executor="inline", quantum=q,
                                 align=False)
                for j, q in ((2, 119), (4, 311), (3, 997))]
        blobs = {tquad_to_json(r.reports["tquad"]) for r in runs}
        assert len(blobs) == 1
        assert len({r.n_shards for r in runs}) > 1  # genuinely different
