"""Property-based differential testing of the MiniC compiler.

Random expression trees are compiled + executed on the VM and independently
evaluated with C semantics in Python; results must agree.  This is the main
correctness argument for the compiler backing every profiling experiment.
"""

from hypothesis import given, settings, strategies as st

from repro.minic import run_minic

I64_MIN = -(2**63)
I64_MAX = 2**63 - 1


def wrap64(v: int) -> int:
    return ((v - I64_MIN) % 2**64) + I64_MIN


def c_div(a: int, b: int) -> int:
    q = abs(a) // abs(b)
    return -q if (a < 0) != (b < 0) else q


def c_rem(a: int, b: int) -> int:
    return a - b * c_div(a, b)


class Node:
    """An expression tree that can render to MiniC and evaluate itself."""

    def __init__(self, kind, *children):
        self.kind = kind
        self.children = children

    def render(self) -> str:
        k = self.kind
        if k == "lit":
            v = self.children[0]
            return f"({v})" if v >= 0 else f"(0 - {-v})"
        if k == "var":
            return f"v{self.children[0]}"
        if k == "neg":
            return f"(-{self.children[0].render()})"
        if k == "not":
            return f"(~{self.children[0].render()})"
        a, b = self.children
        return f"({a.render()} {k} {b.render()})"

    def evaluate(self, env) -> int:
        k = self.kind
        if k == "lit":
            return self.children[0]
        if k == "var":
            return env[self.children[0]]
        if k == "neg":
            return wrap64(-self.children[0].evaluate(env))
        if k == "not":
            return wrap64(~self.children[0].evaluate(env))
        a = self.children[0].evaluate(env)
        b = self.children[1].evaluate(env)
        if k == "+":
            return wrap64(a + b)
        if k == "-":
            return wrap64(a - b)
        if k == "*":
            return wrap64(a * b)
        if k == "/":
            return wrap64(c_div(a, b)) if b != 0 else 0
        if k == "%":
            return wrap64(c_rem(a, b)) if b != 0 else 0
        if k == "&":
            return a & b
        if k == "|":
            return a | b
        if k == "^":
            return a ^ b
        if k == "<":
            return int(a < b)
        if k == "<=":
            return int(a <= b)
        if k == "==":
            return int(a == b)
        if k == "!=":
            return int(a != b)
        raise AssertionError(k)


_BINOPS = ["+", "-", "*", "&", "|", "^", "<", "<=", "==", "!="]

small_int = st.integers(min_value=0, max_value=1000)
big_int = st.integers(min_value=0, max_value=2**62)


@st.composite
def expr_trees(draw, depth=3):
    if depth == 0 or draw(st.booleans(), label="leaf"):
        if draw(st.booleans()):
            return Node("lit", draw(st.one_of(small_int, big_int)))
        return Node("var", draw(st.integers(min_value=0, max_value=3)))
    kind = draw(st.sampled_from(_BINOPS + ["neg", "not"]))
    if kind in ("neg", "not"):
        return Node(kind, draw(expr_trees(depth=depth - 1)))
    return Node(kind, draw(expr_trees(depth=depth - 1)),
                draw(expr_trees(depth=depth - 1)))


@st.composite
def safe_div_trees(draw):
    """Division/modulo with guaranteed non-zero literal divisors."""
    op = draw(st.sampled_from(["/", "%"]))
    num = draw(expr_trees(depth=2))
    den_value = draw(st.integers(min_value=1, max_value=10**6))
    if draw(st.booleans()):
        den_value = -den_value
    return Node(op, num, Node("lit", den_value))


def run_tree(tree: Node, env: list[int]) -> int:
    decls = "\n".join(
        f"int v{i} = {v if v >= 0 else f'(0 - {-v})'};"
        for i, v in enumerate(env))
    src = f"""
    int r;
    int main() {{
        {decls}
        r = {tree.render()};
        return 0;
    }}
    """
    m = run_minic(src, max_instructions=3_000_000)
    assert m.exit_code == 0
    import repro.vm.layout as layout

    # global r is the first global => first data slot (aligned)
    return m.read_i64(layout.DATA_BASE)


class TestDifferentialExecution:
    @given(expr_trees(depth=3),
           st.lists(st.integers(min_value=-10**9, max_value=10**9),
                    min_size=4, max_size=4))
    @settings(max_examples=60, deadline=None)
    def test_expression_matches_c_semantics(self, tree, env):
        assert run_tree(tree, env) == tree.evaluate(env)

    @given(safe_div_trees(),
           st.lists(st.integers(min_value=-10**6, max_value=10**6),
                    min_size=4, max_size=4))
    @settings(max_examples=40, deadline=None)
    def test_division_matches_c_semantics(self, tree, env):
        assert run_tree(tree, env) == tree.evaluate(env)


class TestLoopProperties:
    @given(st.integers(min_value=0, max_value=200))
    @settings(max_examples=20, deadline=None)
    def test_sum_loop(self, n):
        m = run_minic(f"""
        int main() {{
            int s = 0;
            int i;
            for (i = 1; i <= {n}; i = i + 1) {{ s = s + i; }}
            return s % 256;
        }}
        """)
        assert m.exit_code == (n * (n + 1) // 2) % 256

    @given(st.lists(st.integers(min_value=0, max_value=255), min_size=1,
                    max_size=24))
    @settings(max_examples=25, deadline=None)
    def test_array_max(self, values):
        stores = "\n".join(f"a[{i}] = {v};" for i, v in enumerate(values))
        m = run_minic(f"""
        int a[32];
        int main() {{
            {stores}
            int best = 0;
            int i;
            for (i = 0; i < {len(values)}; i = i + 1) {{
                if (a[i] > best) {{ best = a[i]; }}
            }}
            return best;
        }}
        """)
        assert m.exit_code == max(values)

    @given(st.text(alphabet=st.characters(min_codepoint=32,
                                          max_codepoint=126,
                                          exclude_characters='"\\'),
                   max_size=24))
    @settings(max_examples=25, deadline=None)
    def test_strlen_matches(self, text):
        m = run_minic(f'int main() {{ return strlen("{text}"); }}')
        assert m.exit_code == len(text)
