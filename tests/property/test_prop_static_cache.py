"""Property tests: WCET soundness and cache-model invariants."""

from hypothesis import given, settings, strategies as st

from repro.gprofsim import run_gprof
from repro.minic import build_program
from repro.static import estimate_wcet
from repro.tools import CacheConfig, CacheModel


@st.composite
def loop_programs(draw):
    """A random nest/sequence of counted loops with known trip counts.

    Returns (source, loop_bounds_for_main).
    """
    n_top = draw(st.integers(min_value=1, max_value=3))
    body_lines = []
    bounds: list[int] = []
    for _ in range(n_top):
        outer = draw(st.integers(min_value=0, max_value=12))
        bounds.append(outer)
        nested = draw(st.booleans())
        if nested:
            inner = draw(st.integers(min_value=0, max_value=8))
            bounds.append(inner)
            body_lines.append(f"""
            for (i = 0; i < {outer}; i++) {{
                for (j = 0; j < {inner}; j++) {{ s += i * j + 1; }}
            }}""")
        else:
            body_lines.append(f"""
            for (i = 0; i < {outer}; i++) {{ s += i; }}""")
        if draw(st.booleans()):
            body_lines.append("s += helper(3);")
    src = f"""
    int helper(int n) {{
        int k; int t = 0;
        for (k = 0; k < n; k++) {{ t += k; }}
        return t;
    }}
    int main() {{
        int i; int j; int s = 0;
        {''.join(body_lines)}
        return s & 255;
    }}
    """
    return src, bounds


class TestWCETSoundness:
    @given(loop_programs())
    @settings(max_examples=30, deadline=None)
    def test_bound_dominates_measurement(self, case):
        src, bounds = case
        prog = build_program(src)
        flat = run_gprof(prog)
        res = estimate_wcet(prog, "main",
                            loop_bounds={"main": bounds, "helper": [3]})
        measured = flat.row("main").cumulative_instructions
        assert res.bound >= measured

    @given(loop_programs())
    @settings(max_examples=15, deadline=None)
    def test_bound_is_tight_for_counted_loops(self, case):
        # with exact trip counts and no data-dependent branches the bound
        # should be within 25% of the actual execution
        src, bounds = case
        prog = build_program(src)
        flat = run_gprof(prog)
        res = estimate_wcet(prog, "main",
                            loop_bounds={"main": bounds, "helper": [3]})
        measured = flat.row("main").cumulative_instructions
        assert res.bound <= measured * 1.25 + 50

    @given(loop_programs(), st.integers(min_value=2, max_value=10))
    @settings(max_examples=10, deadline=None)
    def test_bound_monotone_in_loop_bounds(self, case, factor):
        src, bounds = case
        prog = build_program(src)
        base = estimate_wcet(prog, "main",
                             loop_bounds={"main": bounds, "helper": [3]})
        slack = estimate_wcet(
            prog, "main",
            loop_bounds={"main": [b * factor for b in bounds],
                         "helper": [3 * factor]})
        assert slack.bound >= base.bound


addresses = st.lists(st.integers(min_value=0, max_value=1 << 20),
                     min_size=1, max_size=400)


class TestCacheInvariants:
    @given(addresses)
    @settings(max_examples=60, deadline=None)
    def test_counts_consistent(self, addrs):
        c = CacheModel(CacheConfig(size_bytes=2048, line_bytes=64, ways=2))
        for a in addrs:
            c.access(a)
        assert c.hits + c.misses == len(addrs)
        assert c.resident_lines() <= 2048 // 64

    @given(addresses)
    @settings(max_examples=40, deadline=None)
    def test_lru_inclusion_property(self, addrs):
        """More ways with the same sets can never miss more (LRU stack
        property per set)."""
        small = CacheModel(CacheConfig(size_bytes=2 * 64 * 16,
                                       line_bytes=64, ways=2))
        big = CacheModel(CacheConfig(size_bytes=8 * 64 * 16,
                                     line_bytes=64, ways=8))
        for a in addrs:
            small.access(a)
            big.access(a)
        assert big.misses <= small.misses

    @given(addresses)
    @settings(max_examples=40, deadline=None)
    def test_repeat_pass_all_hits_if_fits(self, addrs):
        cfg = CacheConfig(size_bytes=1 << 20, line_bytes=64, ways=16)
        c = CacheModel(cfg)
        for a in addrs:
            c.access(a)
        before = c.misses
        for a in addrs:
            c.access(a)
        assert c.misses == before  # everything fits: second pass is free

    @given(addresses)
    @settings(max_examples=40, deadline=None)
    def test_deterministic(self, addrs):
        def run():
            c = CacheModel(CacheConfig(size_bytes=2048, line_bytes=64,
                                       ways=2))
            for a in addrs:
                c.access(a)
            return (c.hits, c.misses, c.evictions)
        assert run() == run()
