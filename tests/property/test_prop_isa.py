"""Property-based tests: instruction encoding and assembler round trips."""

import math

from hypothesis import given, settings, strategies as st

from repro.asmkit import assemble
from repro.isa import (NO_PRED, NUM_OPCODES, OPCODES, Fmt, Instr, decode,
                       decode_program, encode, encode_program, format_instr)

# finite doubles that survive struct round trip exactly
finite_floats = st.floats(allow_nan=False, allow_infinity=False, width=64)
i64 = st.integers(min_value=-(2**63), max_value=2**63 - 1)
reg = st.integers(min_value=0, max_value=31)
pred = st.one_of(st.just(NO_PRED), st.integers(min_value=0, max_value=31))


@st.composite
def instructions(draw):
    op = draw(st.integers(min_value=0, max_value=NUM_OPCODES - 1))
    info = OPCODES[op]
    imm = draw(finite_floats) if info.fmt is Fmt.FRI else draw(i64)
    return Instr(op=op, rd=draw(reg), rs1=draw(reg), rs2=draw(reg),
                 imm=imm, pred=draw(pred))


class TestEncodingProperties:
    @given(instructions())
    @settings(max_examples=300)
    def test_roundtrip(self, ins):
        assert decode(encode(ins)) == ins

    @given(st.lists(instructions(), max_size=40))
    def test_program_roundtrip(self, instrs):
        assert decode_program(encode_program(instrs)) == instrs

    @given(instructions())
    def test_encoding_is_16_bytes(self, ins):
        assert len(encode(ins)) == 16

    @given(instructions(), instructions())
    def test_encoding_injective(self, a, b):
        if a != b:
            # NaN immediates break bit-equality; excluded by strategy
            assert encode(a) != encode(b) or a == b


class TestDisasmAssemblerRoundtrip:
    # Only label-free, structurally valid instructions can round trip
    # through text (branch targets must land in the code segment).
    SAFE_FMTS = {Fmt.RRR, Fmt.RRI, Fmt.RI, Fmt.FFF, Fmt.FF, Fmt.RFF,
                 Fmt.FR, Fmt.RF, Fmt.MEM, Fmt.NONE, Fmt.FRI}

    @st.composite
    @staticmethod
    def safe_instructions(draw):
        ops = [i.code for i in OPCODES
               if i.fmt in TestDisasmAssemblerRoundtrip.SAFE_FMTS]
        op = draw(st.sampled_from(ops))
        info = OPCODES[op]
        if info.fmt is Fmt.FRI:
            imm = draw(finite_floats)
        elif info.fmt in (Fmt.RRI, Fmt.RI, Fmt.MEM):
            imm = draw(st.integers(min_value=-(2**31), max_value=2**31 - 1))
        else:
            imm = 0  # format has no immediate field in the text rendering
        ins = Instr(op=op, rd=draw(reg), rs1=draw(reg), rs2=draw(reg),
                    imm=imm, pred=draw(pred))
        return ins

    @given(st.lists(safe_instructions(), min_size=1, max_size=20))
    @settings(max_examples=150)
    def test_disassemble_reassemble(self, instrs):
        text = ".text\n" + "\n".join(format_instr(i) for i in instrs)
        program = assemble(text)
        assert len(program.instrs) == len(instrs)
        for orig, back in zip(instrs, program.instrs):
            assert back.op == orig.op
            assert back.pred == orig.pred
            if OPCODES[orig.op].fmt is Fmt.FRI:
                assert math.isclose(back.imm, orig.imm) or \
                    back.imm == orig.imm
            elif OPCODES[orig.op].fmt is not Fmt.NONE:
                assert back.imm == orig.imm
