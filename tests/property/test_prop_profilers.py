"""Property-based profiler invariants ("conservation laws").

For randomly generated guest programs:

* tQUAD: Σ per-slice bytes equals the total bytes moved, independent of the
  slice interval; stack-excluded ≤ stack-included everywhere.
* QUAD: UnMA ≤ bytes; consumed output ≤ what an independent read counter saw.
* gprof-sim: per-function self instruction counts partition the run exactly.
* all tools observe identical totals when run simultaneously or separately.
"""

from hypothesis import given, settings, strategies as st

from repro.core import TQuadOptions, TQuadTool, run_tquad
from repro.gprofsim import GprofTool, run_gprof
from repro.minic import build_program
from repro.pin import IARG, IPOINT, PinEngine
from repro.quad import QuadTool


@st.composite
def guest_programs(draw):
    """A random multi-function MiniC program over small int arrays."""
    n_funcs = draw(st.integers(min_value=1, max_value=4))
    size = draw(st.sampled_from([8, 16, 32]))
    funcs = []
    calls = []
    for f in range(n_funcs):
        body = []
        for _ in range(draw(st.integers(min_value=1, max_value=3))):
            op = draw(st.sampled_from(["fill", "sum", "copy", "scale"]))
            if op == "fill":
                body.append(
                    f"for (i = 0; i < {size}; i = i + 1) "
                    f"{{ ga[i] = i * {draw(st.integers(1, 9))}; }}")
            elif op == "sum":
                body.append(
                    f"for (i = 0; i < {size}; i = i + 1) "
                    f"{{ acc = acc + ga[i]; }}")
            elif op == "copy":
                body.append(
                    f"for (i = 0; i < {size}; i = i + 1) "
                    f"{{ gb[i] = ga[i]; }}")
            else:
                body.append(
                    f"for (i = 0; i < {size}; i = i + 1) "
                    f"{{ gb[i] = gb[i] * {draw(st.integers(1, 5))}; }}")
        funcs.append(
            f"int f{f}() {{ int i; int acc = 0; "
            + " ".join(body) + " return acc; }")
        reps = draw(st.integers(min_value=1, max_value=2))
        calls.extend([f"r = r + f{f}();"] * reps)
    return (f"int ga[{size}]; int gb[{size}];\n"
            + "\n".join(funcs)
            + "\nint main() { int r = 0; " + " ".join(calls)
            + " return r & 255; }")


class _ByteCounter:
    """Independent oracle: total bytes moved, via raw Pin instrumentation."""

    def __init__(self):
        self.read = 0
        self.written = 0

    def attach(self, engine):
        def cb(ins):
            if ins.IsMemoryRead():
                ins.InsertPredicatedCall(IPOINT.BEFORE, self._r,
                                         IARG.MEMORY_EA, IARG.MEMORY_SIZE)
            if ins.IsMemoryWrite():
                ins.InsertPredicatedCall(IPOINT.BEFORE, self._w,
                                         IARG.MEMORY_EA, IARG.MEMORY_SIZE)

        engine.INS_AddInstrumentFunction(cb)
        return self

    def _r(self, ea, size):
        self.read += size

    def _w(self, ea, size):
        self.written += size


class TestTQuadConservation:
    @given(guest_programs(), st.sampled_from([7, 64, 1000, 10**6]))
    @settings(max_examples=20, deadline=None)
    def test_total_bytes_independent_of_interval(self, src, interval):
        program = build_program(src)
        engine = PinEngine(program)
        counter = _ByteCounter().attach(engine)
        tool = TQuadTool(TQuadOptions(slice_interval=interval)).attach(engine)
        engine.run(max_instructions=5_000_000)
        rep = tool.report()
        assert rep.total_bytes(write=False,
                               include_stack=True) == counter.read
        assert rep.total_bytes(write=True,
                               include_stack=True) == counter.written

    @given(guest_programs())
    @settings(max_examples=15, deadline=None)
    def test_excluded_never_exceeds_included(self, src):
        rep = run_tquad(build_program(src),
                        options=TQuadOptions(slice_interval=97),
                        max_instructions=5_000_000)
        for name in rep.ledger.kernels():
            s = rep.series(name)
            assert (s.read_excl <= s.read_incl).all()
            assert (s.write_excl <= s.write_incl).all()

    @given(guest_programs())
    @settings(max_examples=10, deadline=None)
    def test_slices_cover_run(self, src):
        rep = run_tquad(build_program(src),
                        options=TQuadOptions(slice_interval=50),
                        max_instructions=5_000_000)
        for name in rep.ledger.kernels():
            s = rep.series(name)
            assert (s.slices >= 0).all()
            assert (s.slices < rep.n_slices).all()


class TestQuadInvariants:
    @given(guest_programs())
    @settings(max_examples=12, deadline=None)
    def test_unma_at_most_bytes(self, src):
        program = build_program(src)
        engine = PinEngine(program)
        tool = QuadTool().attach(engine)
        engine.run(max_instructions=5_000_000)
        rep = tool.report()
        for name in rep.kernels:
            row = rep.row(name)
            assert row.in_unma_incl <= row.in_incl
            assert row.in_unma_excl <= row.in_excl
            assert row.in_unma_excl <= row.in_unma_incl
            assert row.out_unma_excl <= row.out_unma_incl

    @given(guest_programs())
    @settings(max_examples=12, deadline=None)
    def test_bindings_sum_to_out_bytes(self, src):
        program = build_program(src)
        engine = PinEngine(program)
        tool = QuadTool().attach(engine)
        engine.run(max_instructions=5_000_000)
        rep = tool.report()
        for name, io in rep.kernels.items():
            consumed = sum(c[0] for (p, _), c in rep.bindings.items()
                           if p == name)
            assert consumed == io.out_bytes_incl

    @given(guest_programs())
    @settings(max_examples=10, deadline=None)
    def test_consumption_bounded_by_reads(self, src):
        program = build_program(src)
        engine = PinEngine(program)
        counter = _ByteCounter().attach(engine)
        tool = QuadTool().attach(engine)
        engine.run(max_instructions=5_000_000)
        rep = tool.report()
        total_out = sum(io.out_bytes_incl for io in rep.kernels.values())
        assert total_out <= counter.read


class TestGprofPartition:
    @given(guest_programs())
    @settings(max_examples=15, deadline=None)
    def test_self_times_partition_the_run(self, src):
        flat = run_gprof(build_program(src), main_image_only=False,
                         max_instructions=5_000_000)
        assert flat.profiled_instructions == flat.total_instructions

    @given(guest_programs())
    @settings(max_examples=10, deadline=None)
    def test_cumulative_at_least_self(self, src):
        flat = run_gprof(build_program(src), main_image_only=False,
                         max_instructions=5_000_000)
        for row in flat.rows:
            assert row.cumulative_instructions >= row.self_instructions


class TestToolComposition:
    @given(guest_programs())
    @settings(max_examples=8, deadline=None)
    def test_tools_agree_when_composed(self, src):
        program = build_program(src)
        # separate runs
        rep_alone = run_tquad(build_program(src),
                              options=TQuadOptions(slice_interval=100),
                              max_instructions=5_000_000)
        flat_alone = run_gprof(build_program(src),
                               max_instructions=5_000_000)
        # one run, all three tools attached
        engine = PinEngine(program)
        tq = TQuadTool(TQuadOptions(slice_interval=100)).attach(engine)
        gp = GprofTool().attach(engine)
        qd = QuadTool().attach(engine)
        engine.run(max_instructions=5_000_000)
        rep_combo = tq.report()
        flat_combo = gp.report()
        assert rep_combo.total_bytes(write=True, include_stack=True) == \
            rep_alone.total_bytes(write=True, include_stack=True)
        for row in flat_alone.rows:
            assert flat_combo.row(row.name).self_instructions == \
                row.self_instructions
        assert qd.finished
