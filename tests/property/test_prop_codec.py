"""Differential property test: the guest codec equals the host reference on
*arbitrary* images, byte for byte.

This exercises the whole stack — MiniC codegen (float matrix math, integer
truncation, byte I/O), the VM's IEEE arithmetic, syscalls and the staging
buffers — against an independent Python implementation.
"""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.apps.codec import (CodecConfig, build_codec_program,
                              decode_stream, make_codec_workspace,
                              reference_encode)
from repro.vm import Machine

CFG = CodecConfig(width=16, height=8)
_PROGRAM = build_codec_program(CFG)


def encode_in_guest(image: np.ndarray) -> bytes:
    fs = make_codec_workspace(CFG, image)
    m = Machine(_PROGRAM, fs=fs)
    code = m.run(max_instructions=20_000_000)
    assert code == 0
    return fs.get("image.dct")


@st.composite
def images(draw):
    kind = draw(st.sampled_from(["random", "flat", "extreme", "gradient"]))
    if kind == "flat":
        value = draw(st.integers(min_value=0, max_value=255))
        return np.full((CFG.height, CFG.width), value, dtype=np.uint8)
    if kind == "extreme":
        # checkerboard of 0/255 — maximal high-frequency content
        y, x = np.mgrid[0:CFG.height, 0:CFG.width]
        phase = draw(st.integers(min_value=0, max_value=1))
        return (((x + y + phase) % 2) * 255).astype(np.uint8)
    if kind == "gradient":
        y, x = np.mgrid[0:CFG.height, 0:CFG.width]
        kx = draw(st.integers(min_value=0, max_value=8))
        ky = draw(st.integers(min_value=0, max_value=8))
        return ((kx * x + ky * y) % 256).astype(np.uint8)
    seed = draw(st.integers(min_value=0, max_value=2**31))
    rng = np.random.default_rng(seed)
    return rng.integers(0, 256, size=(CFG.height, CFG.width),
                        dtype=np.uint8)


class TestCodecDifferential:
    @given(images())
    @settings(max_examples=25, deadline=None)
    def test_guest_matches_reference_bitstream(self, image):
        assert encode_in_guest(image) == reference_encode(CFG, image)

    @given(images())
    @settings(max_examples=10, deadline=None)
    def test_stream_decodes(self, image):
        raw = encode_in_guest(image)
        recon = decode_stream(raw)
        assert recon.shape == image.shape
        # quantisation error is bounded by the largest quantiser step
        # (≈ half a step per coefficient, 64 coefficients → generous bound)
        err = np.abs(recon.astype(int) - image.astype(int)).max()
        assert err <= 64

    def test_flat_image_is_tiny(self):
        flat = np.full((CFG.height, CFG.width), 128, dtype=np.uint8)
        raw = encode_in_guest(flat)
        # header + per-block (run marker + end marker)
        assert len(raw) < 8 + CFG.blocks[0] * CFG.blocks[1] * 6
