"""Differential properties of the paged QUAD shadow memory.

The paged/interned sink (:mod:`repro.quad.shadow`) must be *byte-identical*
to the legacy per-byte dict/set walk for any access stream.  Hypothesis
drives both `QuadTool` variants over random streams of reads/writes of
random sizes and alignments, interleaved with kernel enter/return events,
SP movement (including accesses straddling the stack pointer) and
mid-stream drains, then compares every Table II counter, UnMA cardinality
and binding.

A second block checks `ShadowPages.snapshot` / `compose` — the primitives
the parallel merge builds its composed pre-shard shadow from — against a
plain dict model, including writer-id remapping.
"""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.quad.shadow import (PAGE, PagedQuadSink, ShadowPages,
                               make_raw_recorder)
from repro.quad.tracker import QuadTool, unma_card
from repro.vm.program import MAIN_IMAGE

_NAMES = ["alpha", "beta", "gamma"]


@st.composite
def access_streams(draw):
    """A random event stream: kernel transitions + sized memory accesses.

    Addresses cluster either low in memory or around a shadow page
    boundary (so multi-page gathers/scatters are exercised); SP values sit
    inside the address cluster so accesses can fall fully below, fully
    above, or straddle the stack pointer.
    """
    base = draw(st.sampled_from([64, PAGE - 128]))
    n = draw(st.integers(min_value=1, max_value=120))
    events = []
    for _ in range(n):
        kind = draw(st.sampled_from(
            ["enter", "ret", "flush", "read", "read", "read",
             "write", "write", "write"]))
        if kind == "enter":
            events.append(("enter", draw(st.sampled_from(_NAMES))))
        elif kind in ("ret", "flush"):
            events.append((kind,))
        else:
            ea = base + draw(st.integers(min_value=0, max_value=256))
            size = draw(st.integers(min_value=1, max_value=8))
            sp = base + draw(st.sampled_from([0, 13, 128, 260, 1 << 30]))
            events.append((kind, ea, size, sp))
    return events


def _replay(events, shadow: str):
    """Drive one QuadTool variant over the stream, engine-free."""
    tool = QuadTool(shadow=shadow)
    if shadow == "paged":
        # mirror attach(), with a small cap to force frequent drains
        tool.sink = PagedQuadSink(tool.callstack, cap=24)
        on_read = make_raw_recorder(tool.sink, write=False)
        on_write = make_raw_recorder(tool.sink, write=True)
    else:
        on_read, on_write = tool._on_read, tool._on_write
    for ev in events:
        kind = ev[0]
        if kind == "enter":
            tool.callstack.enter(ev[1], MAIN_IMAGE)
        elif kind == "ret":
            tool.callstack.on_ret()
        elif kind == "flush":
            tool.flush()
        elif kind == "read":
            on_read(ev[1], ev[2], ev[3])
        else:
            on_write(ev[1], ev[2], ev[3])
    tool.flush()
    if tool.sink is not None:
        tool._materialize()
    kernels = {
        name: (io.in_bytes_incl, io.in_bytes_excl,
               io.out_bytes_incl, io.out_bytes_excl,
               unma_card(io.in_unma_incl), unma_card(io.in_unma_excl),
               unma_card(io.out_unma_incl), unma_card(io.out_unma_excl),
               io.reads, io.writes, io.reads_nonstack, io.writes_nonstack)
        for name, io in tool.kernels.items()
    }
    bindings = {k: tuple(v) for k, v in tool.bindings.items()}
    return kernels, bindings


class TestPagedLegacyDifferential:
    @given(access_streams())
    @settings(max_examples=120, deadline=None)
    def test_byte_identical_to_legacy(self, events):
        paged = _replay(events, "paged")
        legacy = _replay(events, "legacy")
        assert paged == legacy

    @given(access_streams(), access_streams())
    @settings(max_examples=40, deadline=None)
    def test_reset_gives_independent_run(self, first, second):
        """After reset() the paged tool reproduces a fresh tool's results
        (no state bleed through shadow, counters, bitmaps or buffer)."""
        tool = QuadTool(shadow="paged")
        tool.sink = PagedQuadSink(tool.callstack, cap=24)

        def play(events):
            on_read = make_raw_recorder(tool.sink, write=False)
            on_write = make_raw_recorder(tool.sink, write=True)
            for ev in events:
                kind = ev[0]
                if kind == "enter":
                    tool.callstack.enter(ev[1], MAIN_IMAGE)
                elif kind == "ret":
                    tool.callstack.on_ret()
                elif kind == "flush":
                    tool.flush()
                elif kind == "read":
                    on_read(ev[1], ev[2], ev[3])
                else:
                    on_write(ev[1], ev[2], ev[3])
            tool.flush()
            tool._materialize()
            return ({n: (io.in_bytes_incl, io.in_bytes_excl,
                         io.out_bytes_incl, io.out_bytes_excl)
                     for n, io in tool.kernels.items()},
                    {k: tuple(v) for k, v in tool.bindings.items()})

        play(first)
        frozen = tool.kernels
        tool.reset()
        got = play(second)
        fresh = _replay(second, "paged")
        assert got[0] == {n: v[:4] for n, v in fresh[0].items()}
        assert got[1] == fresh[1]
        # previously extracted references stayed frozen
        assert frozen is not tool.kernels


class TestSnapshotCompose:
    @st.composite
    def write_ops(draw, *, max_ops=30):
        base = draw(st.sampled_from([0, PAGE - 64]))
        n = draw(st.integers(min_value=0, max_value=max_ops))
        return [(base + draw(st.integers(0, 200)),
                 draw(st.integers(1, 16)),
                 draw(st.integers(1, 3)))
                for _ in range(n)]

    @staticmethod
    def _apply(shadow, model, ops):
        for addr, size, writer1 in ops:
            shadow.set_range(addr, size, writer1)
            for a in range(addr, addr + size):
                model[a] = writer1

    @staticmethod
    def _as_dict(shadow):
        return dict(shadow.items())

    @given(write_ops(), write_ops())
    @settings(max_examples=60, deadline=None)
    def test_snapshot_is_immutable_copy(self, ops1, ops2):
        s = ShadowPages(4 * PAGE)
        model = {}
        self._apply(s, model, ops1)
        snap = s.snapshot()
        at_snapshot = dict(model)
        self._apply(s, model, ops2)
        assert self._as_dict(snap) == at_snapshot
        assert self._as_dict(s) == model

    @given(write_ops(), write_ops(), st.booleans())
    @settings(max_examples=60, deadline=None)
    def test_compose_layers_other_on_top(self, ops1, ops2, use_remap):
        lower, lower_model = ShadowPages(4 * PAGE), {}
        upper, upper_model = ShadowPages(4 * PAGE), {}
        self._apply(lower, lower_model, ops1)
        self._apply(upper, upper_model, ops2)
        if use_remap:
            remap = np.array([0, 11, 12, 13], np.int32)
            upper_model = {a: int(remap[w]) for a, w in upper_model.items()}
        else:
            remap = None
        lower.compose(upper, remap)
        expected = dict(lower_model)
        expected.update(upper_model)
        assert self._as_dict(lower) == expected
