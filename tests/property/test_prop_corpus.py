"""Every corpus guest is one workload with five byte-identical routes.

For each guest the fleet covers, the same execution must be reproduced
exactly by five independent code paths:

1. serial instrumented run,
2. sharded ``--jobs 4`` run (checkpointed replay + merge),
3. serial with the superblock JIT disabled,
4. replay from a recorded capture, and
5. the batched sweep engine reading the same capture.

Routes 1-3 reuse the differential-fuzzing harness
(:func:`tests.fuzz.test_fuzz_differential.assert_all_configs_agree`)
with a per-route fresh workspace; routes 4-5 replay a single capture and
must match route 1's artifacts byte-for-byte.
"""

import io

import pytest

from repro.apps.registry import GUEST_APPS
from repro.capture import (CaptureReader, capture_run, replay_gprof,
                           replay_quad, replay_tquad)
from repro.core import TQuadOptions
from repro.serialize import flat_to_json, quad_to_json, tquad_to_json
from repro.sweep import SweepGrid, sweep_tquad

from tests.fuzz.test_fuzz_differential import (INTERVAL,
                                               assert_all_configs_agree,
                                               fingerprint)

#: The guests under test: every registered app at its tiny preset.
GUESTS = sorted(GUEST_APPS)


def _program_and_fs_factory(name):
    app = GUEST_APPS[name]
    cfg = app.config("tiny")
    return app.build_program(cfg), (lambda: app.make_workspace(cfg))


@pytest.mark.parametrize("name", GUESTS)
def test_serial_jobs4_jitoff_agree(name):
    """Routes 1-3: the fuzz harness' differential property, on guests
    with real input workspaces."""
    program, fs_factory = _program_and_fs_factory(name)
    assert_all_configs_agree(program, fs_factory=fs_factory)


@pytest.mark.parametrize("name", GUESTS)
def test_capture_and_sweep_routes_agree(name):
    """Routes 4-5: capture once, then the vectorized replays and the
    sweep engine reproduce the direct run's artifacts exactly."""
    program, fs_factory = _program_and_fs_factory(name)
    reference = fingerprint(program, fs_factory=fs_factory)
    options = TQuadOptions(slice_interval=INTERVAL)

    target = io.BytesIO()
    capture_run(program, target, fs=fs_factory(), options=options,
                label=f"prop-{name}")
    target.seek(0)
    with CaptureReader(target) as reader:
        tq = replay_tquad(reader, options)
        assert tquad_to_json(tq) == reference[0]
        assert tq.format_table() == reference[1]
        quad = replay_quad(reader)
        assert quad_to_json(quad) == reference[2]
        assert quad.format_table() == reference[3]
        flat = replay_gprof(reader)
        assert flat_to_json(flat) == reference[4]
        assert flat.format_table() == reference[5]
        assert flat.format_call_graph() == reference[6]
        assert reader.manifest["exit_code"] == reference[7]
        assert reader.manifest["total_instructions"] == reference[8]

        # route 5: every cell of a sweep over the same capture matches a
        # standalone replay at that cell's options
        grid = SweepGrid(intervals=(INTERVAL, 4 * INTERVAL))
        sweep = sweep_tquad(reader, grid)
        matched_base = False
        for cell, report in sweep:
            standalone = replay_tquad(reader, cell.options())
            assert tquad_to_json(report) == tquad_to_json(standalone)
            if cell.interval == INTERVAL:
                assert tquad_to_json(report) == reference[0]
                matched_base = True
        assert matched_base, "sweep grid lost its base-interval cell"
