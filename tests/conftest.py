"""Shared pytest configuration for the test tree."""

import pytest


def pytest_addoption(parser):
    parser.addoption(
        "--update-golden", action="store_true", default=False,
        help="rewrite tests/golden/ fixtures from the current outputs "
             "instead of comparing against them")


@pytest.fixture(scope="session")
def update_golden(request):
    return request.config.getoption("--update-golden")
