"""E8: the paper's §V-B qualitative observations, asserted on our pipeline.

Each test names the paper claim it checks.  The workload is the ``tiny``
preset (the shapes, not the absolute numbers, are scale-invariant — see
DESIGN.md §2).
"""

import pytest

from repro.apps.wfs import TINY, build_wfs_program, make_workspace
from repro.core import TQuadOptions, cluster_kernel_phases, run_tquad
from repro.gprofsim import run_gprof
from repro.pin import PinEngine
from repro.quad import QuadTool, instrumented_profile, rank_shifts

PAPER_KERNELS = [
    "wav_store", "fft1d", "DelayLine_processChunk", "bitrev", "zeroRealVec",
    "AudioIo_setFrames", "perm", "cadd", "cmult", "Filter_process",
    "wav_load", "Filter_process_pre_", "zeroCplxVec", "r2c", "c2r",
    "AudioIo_getFrames", "ffw", "vsmult2d", "calculateGainPQ",
    "PrimarySource_deriveTP", "ldint",
]


@pytest.fixture(scope="module")
def program():
    return build_wfs_program(TINY)


@pytest.fixture(scope="module")
def flat(program):
    return run_gprof(program, fs=make_workspace(TINY))


@pytest.fixture(scope="module")
def quad(program):
    engine = PinEngine(program, fs=make_workspace(TINY))
    tool = QuadTool().attach(engine)
    engine.run()
    return tool.report()


@pytest.fixture(scope="module")
def tquad(program):
    return run_tquad(program, fs=make_workspace(TINY),
                     options=TQuadOptions(slice_interval=2000))


class TestTable1Shape:
    def test_top_two_kernels(self, flat):
        """'wav_store and fft1d are the top two kernels ... approximately
        sixty percent of the whole execution time'."""
        top2 = set(flat.top(2))
        assert "fft1d" in top2 and "wav_store" in top2
        share = flat.percent("fft1d") + flat.percent("wav_store")
        assert share > 30  # dominant pair (paper: ~60%)

    def test_wav_store_called_once(self, flat):
        """'wav_store is called only once' yet contributes about a third."""
        assert flat.row("wav_store").calls == 1
        assert flat.percent("wav_store") > 10

    def test_call_count_diversity(self, flat):
        """'kernels show a huge diversity in the number of times they are
        called, ranging from one to millions'."""
        calls = [flat.row(k).calls for k in PAPER_KERNELS if k in flat]
        assert min(calls) == 1
        assert max(calls) >= 100 * min(calls)

    def test_highly_called_kernels_have_simple_bodies(self, flat):
        """'the highly-called kernels have often quite a simple body'."""
        bitrev = flat.row("bitrev")
        wav_store = flat.row("wav_store")
        assert bitrev.calls > 100 * wav_store.calls
        assert flat.self_ms_per_call("bitrev") < \
            flat.self_ms_per_call("wav_store") / 100

    def test_fft_multiplicities(self, flat):
        """Paper call structure: one perm per fft, chunk-size bitrevs per
        perm, two ffts per chunk (+2 for the init spectra)."""
        assert flat.row("fft1d").calls == 2 * TINY.n_chunks + 2
        assert flat.row("perm").calls == flat.row("fft1d").calls
        assert flat.row("bitrev").calls == \
            flat.row("perm").calls * TINY.chunk


class TestTable2Observations:
    def test_fft1d_stack_ratio_about_ten(self, quad):
        """'The fft1d case is somehow different as the ratio of stack
        inclusion to exclusion is approximately ten'."""
        assert 4 < quad.row("fft1d").stack_in_ratio < 25

    def test_zero_vec_ratios_enormous(self, quad):
        """'it is not the case with zeroCplxVec and zeroRealVec as the
        ratios are greater than 750 and 300' — reading almost only locals."""
        assert quad.row("zeroRealVec").stack_in_ratio > 50
        assert quad.row("zeroCplxVec").stack_in_ratio > 50
        assert quad.row("zeroRealVec").stack_in_ratio > \
            quad.row("fft1d").stack_in_ratio * 4

    def test_setframes_writes_distinct_addresses(self, quad):
        """'the data transfer is carried out via separate memory addresses
        ... more than 60 MB of data are saved in distinct memory
        addresses' (AudioIo_setFrames)."""
        row = quad.row("AudioIo_setFrames")
        assert row.out_unma_excl == TINY.frames * TINY.n_speakers * 8

    def test_getframes_reads_distinct_addresses(self, quad):
        """AudioIo_getFrames: 'the number of bytes and UnMAs are almost
        identical in the corresponding columns' (reads side)."""
        row = quad.row("AudioIo_getFrames")
        assert row.in_unma_excl > 0.9 * row.in_excl

    def test_bitrev_tiny_buffer(self, quad):
        """'bitrev only uses around one tenth of a KB as buffer' — its
        non-stack footprint is tiny."""
        row = quad.row("bitrev")
        assert row.out_unma_excl + row.in_unma_excl < 256

    def test_wav_store_large_distinct_input(self, quad):
        """'the need to fetch data out of ... millions of distinct
        locations into wav_store': it reads the whole output buffer from
        distinct global addresses."""
        row = quad.row("wav_store")
        assert row.in_unma_excl >= TINY.frames * TINY.n_speakers

    def test_setframes_data_comes_from_delayline(self, quad):
        """'the QDU graph allows us to trace back the source of the data
        which is originating from DelayLine_processChunk' and 'later
        AudioIo_setFrames passes the data to wav_store'."""
        assert quad.communication("DelayLine_processChunk",
                                  "AudioIo_setFrames") > 0
        assert quad.communication("AudioIo_setFrames", "wav_store") > 0

    def test_excluded_upper_bounds(self, quad):
        for name in PAPER_KERNELS:
            if name not in quad.kernels:
                continue
            row = quad.row(name)
            assert row.in_excl <= row.in_incl
            assert row.out_unma_excl <= row.out_unma_incl


class TestTable3Observations:
    def test_setframes_share_increases(self, flat, quad):
        """'there is a substantial increase in the contribution of
        AudioIo_setFrames' in the instrumented profile."""
        inst = instrumented_profile(flat, quad)
        assert inst.percent("AudioIo_setFrames") > \
            flat.percent("AudioIo_setFrames")

    def test_bitrev_drops(self, flat, quad):
        """'bitrev shows a severe drop on the execution time
        contribution' — its accesses are almost all local."""
        inst = instrumented_profile(flat, quad)
        assert inst.percent("bitrev") < flat.percent("bitrev")

    def test_trend_arrows_consistent(self, flat, quad):
        inst = instrumented_profile(flat, quad)
        shifts = {s.kernel: s for s in rank_shifts(flat, inst)}
        assert shifts["AudioIo_setFrames"].trend in ("up", "upup")
        assert shifts["bitrev"].trend in ("down", "downdown")


class TestTQuadObservations:
    def test_wav_store_silent_then_solo(self, tquad):
        """'wav_store is called approximately in the middle of the execution
        time.  It is silent in the first half and it is the only kernel
        active in the second half.'"""
        n = tquad.n_slices
        ws = tquad.series("wav_store")
        first, last, _ = ws.activity_span()
        assert first > n * 0.5          # silent early on
        assert last >= n - 2            # active to the end
        # after wav_store starts, no other paper kernel moves data
        for name in PAPER_KERNELS:
            if name == "wav_store" or name not in tquad.ledger.kernels():
                continue
            _, other_last, _ = tquad.series(name).activity_span()
            assert other_last <= first + 2, name

    def test_wav_load_precedes_processing(self, tquad):
        wl = tquad.series("wav_load").activity_span()
        dl = tquad.series("DelayLine_processChunk").activity_span()
        assert wl[0] <= dl[0]

    def test_write_intensity_lower_than_read(self, tquad):
        """'Memory write accesses have almost similar figures but the
        intensity of the data transfers is less ... in most kernels.'"""
        lower = 0
        checked = 0
        for name in PAPER_KERNELS:
            if name not in tquad.ledger.kernels():
                continue
            s = tquad.series(name)
            reads = s.total(write=False, include_stack=True)
            writes = s.total(write=True, include_stack=True)
            if reads + writes < 1000:
                continue
            checked += 1
            if writes < reads:
                lower += 1
        assert checked >= 5
        assert lower >= checked * 0.7

    def test_five_phases(self, tquad):
        """Table IV: five phases.  At the tiny test scale wav_load and the
        propagation kernels legitimately coincide (only 8 chunks, 2 source
        positions), so here we assert the scale-invariant structure; the
        exact paper memberships are asserted at ``small`` scale by
        benchmarks/bench_table4_phases.py."""
        pa = cluster_kernel_phases(tquad, kernels=PAPER_KERNELS,
                                   max_phases=5, coarsen_blocks=32)
        assert len(pa) == 5
        members = [set(p.kernel_names()) for p in pa]
        assert {"ffw", "ldint"} in members                      # init
        assert {"wav_store"} in members                         # wave save
        # propagation kernels stay together, whichever phase they land in
        prop = {"vsmult2d", "calculateGainPQ", "PrimarySource_deriveTP"}
        assert any(prop <= m for m in members)
        # every paper kernel is covered exactly once
        union = set().union(*members)
        assert union == set(PAPER_KERNELS)
        assert sum(len(m) for m in members) == len(PAPER_KERNELS)

    def test_main_phase_dominates_aggregate_mbw(self, tquad):
        """'this [main] phase has the biggest share of the whole memory
        bandwidth traffic'."""
        pa = cluster_kernel_phases(tquad, kernels=PAPER_KERNELS,
                                   max_phases=5, coarsen_blocks=32)
        main = max(pa.phases, key=lambda p: len(p.kernels))
        assert main.aggregate_mbw == max(p.aggregate_mbw for p in pa)

    def test_initialization_phase_brief(self, tquad):
        """'The initialization phase runs only for a very short time
        interval'."""
        pa = cluster_kernel_phases(tquad, kernels=PAPER_KERNELS,
                                   max_phases=5, coarsen_blocks=32)
        init = next(p for p in pa if "ffw" in p.kernel_names())
        assert init.span < tquad.n_slices * 0.1
