"""Golden regression tests for the paper's tables and figures.

Each test regenerates one published artifact — Tables I–IV and the
Figure 6/7 bandwidth strips, all on the ``small`` WFS preset — and
compares it byte-for-byte against the frozen copy in ``tests/golden/``.
The profilers are deterministic, so any diff is a behaviour change, not
noise; in particular these pin the exact text the parallel sharded-replay
pipeline must also reproduce.

After an *intentional* output change, refresh the fixtures with::

    PYTHONPATH=src python -m pytest tests/integration/test_golden_tables.py \
        --update-golden

and commit the diff alongside the change that caused it.
"""

import pathlib

import pytest

from repro.analysis import bandwidth_strips
from repro.apps.wfs import SMALL, build_wfs_program, make_workspace
from repro.core import TQuadOptions, cluster_kernel_phases, run_tquad
from repro.gprofsim import run_gprof
from repro.pin import PinEngine
from repro.quad import QuadTool, instrumented_profile, rank_shifts

GOLDEN_DIR = pathlib.Path(__file__).parent.parent / "golden"

#: The 21 kernels of the paper's Tables I–IV (same set as the benchmark
#: harness in ``benchmarks/conftest.py``).
PAPER_KERNELS = [
    "wav_store", "fft1d", "DelayLine_processChunk", "bitrev", "zeroRealVec",
    "AudioIo_setFrames", "perm", "cadd", "cmult", "Filter_process",
    "wav_load", "Filter_process_pre_", "zeroCplxVec", "r2c", "c2r",
    "AudioIo_getFrames", "ffw", "vsmult2d", "calculateGainPQ",
    "PrimarySource_deriveTP", "ldint",
]

#: Slice intervals matching the benchmark harness (fine = Table IV,
#: coarse = Figure 6, medium = Figure 7).
FINE_INTERVAL = 5000
COARSE_INTERVAL = 150_000
MEDIUM_INTERVAL = 37_500


def _check(name: str, text: str, update: bool) -> None:
    path = GOLDEN_DIR / name
    blob = text + "\n"
    if update:
        path.write_text(blob)
        pytest.skip(f"updated {path}")
    assert path.exists(), (
        f"missing golden fixture {path}; run with --update-golden")
    assert blob == path.read_text(), (
        f"{name} drifted from tests/golden/{name}; if the change is "
        f"intentional, refresh with --update-golden")


@pytest.fixture(scope="module")
def small_program():
    return build_wfs_program(SMALL)


@pytest.fixture(scope="module")
def flat(small_program):
    return run_gprof(small_program, fs=make_workspace(SMALL))


@pytest.fixture(scope="module")
def quad(small_program):
    engine = PinEngine(small_program, fs=make_workspace(SMALL))
    tool = QuadTool().attach(engine)
    engine.run()
    return tool.report()


def _tquad(program, interval):
    return run_tquad(program, fs=make_workspace(SMALL),
                     options=TQuadOptions(slice_interval=interval))


def test_table1_flat_profile(flat, update_golden):
    _check("table1_flat_profile.txt", flat.format_table(top=21),
           update_golden)


def test_table2_quad(quad, update_golden):
    _check("table2_quad.txt", quad.format_table(), update_golden)


def test_table3_instrumented(flat, quad, update_golden):
    inst = instrumented_profile(flat, quad)
    shifts = {s.kernel: s for s in rank_shifts(flat, inst)}
    lines = [f"{'kernel':<26}{'%time':>8}{'self s':>10}{'rank':>6}"
             f"{'trend':>7}"]
    for row in inst.rows[:12]:
        s = shifts.get(row.name)
        lines.append(f"{row.name:<26}{inst.percent(row.name):>8.2f}"
                     f"{inst.self_seconds(row.name):>10.4f}"
                     f"{inst.rank(row.name):>6}"
                     f"{(s.trend if s else '?'):>7}")
    _check("table3_instrumented.txt", "\n".join(lines), update_golden)


def test_table4_phases(small_program, update_golden):
    report = _tquad(small_program, FINE_INTERVAL)
    analysis = cluster_kernel_phases(report, kernels=PAPER_KERNELS,
                                     max_phases=5)
    _check("table4_phases.txt", analysis.format_table(), update_golden)


def test_fig6_read_bandwidth(small_program, update_golden):
    report = _tquad(small_program, COARSE_INTERVAL)
    kernels = report.top_kernels(10)
    names, mat = report.bandwidth_matrix(kernels, write=False,
                                         include_stack=True)
    text = bandwidth_strips(
        names, mat, interval=report.interval, width=100,
        title="Figure 6 analogue: read bandwidth incl. stack, top 10")
    _check("fig6_read_bandwidth.txt", text, update_golden)


def test_fig7_write_bandwidth(small_program, update_golden):
    report = _tquad(small_program, MEDIUM_INTERVAL)
    top10 = report.top_kernels(10)
    bottom = [k for k in PAPER_KERNELS
              if k in report.ledger.kernels() and k not in top10][:10]
    names, mat = report.bandwidth_matrix(bottom, write=True,
                                         include_stack=False)
    half = mat[:, :mat.shape[1] // 2]
    text = bandwidth_strips(
        names, half, interval=report.interval, width=100,
        title="Figure 7 analogue: write bandwidth excl. stack, "
              "last 10 kernels, first half")
    _check("fig7_write_bandwidth.txt", text, update_golden)
