"""End-to-end validation of the WFS application against the host oracle."""

import numpy as np
import pytest

from repro.apps.wfs import TINY, build_wfs_program, make_workspace, run_wfs
from repro.refwfs import run_reference
from repro.wavio import read_wav


@pytest.fixture(scope="module")
def tiny_run():
    return run_wfs(TINY)


@pytest.fixture(scope="module")
def tiny_ref():
    return run_reference(TINY)


class TestEndToEnd:
    def test_exit_code(self, tiny_run):
        assert tiny_run.exit_code == 0

    def test_output_bytes_identical_to_reference(self, tiny_run, tiny_ref):
        # compiler + VM + app vs pure-Python oracle: bit-exact IEEE doubles
        assert tiny_run.output_wav == tiny_ref.wav_bytes

    def test_output_wav_well_formed(self, tiny_run):
        wav = read_wav(tiny_run.output_wav)
        assert wav.channels == TINY.n_speakers
        assert wav.frames == TINY.frames
        assert wav.sample_rate == TINY.sample_rate

    def test_output_not_silent(self, tiny_run):
        wav = read_wav(tiny_run.output_wav)
        assert np.abs(wav.samples).max() > 100

    def test_no_descriptor_leaks(self, tiny_run):
        assert tiny_run.machine.fs.open_count() == 0

    def test_deterministic_across_runs(self, tiny_run):
        again = run_wfs(TINY)
        assert again.output_wav == tiny_run.output_wav
        assert again.instructions == tiny_run.instructions

    def test_speaker_channels_differ(self, tiny_run):
        # different delays/gains per speaker: channels must not be copies
        wav = read_wav(tiny_run.output_wav)
        assert not np.array_equal(wav.samples[:, 0], wav.samples[:, 1])

    def test_delays_scale_with_distance(self, tiny_ref):
        # outer speakers are farther from the (centre-ish) source
        delays = tiny_ref.delays
        assert delays.max() > delays.min()
        assert (delays >= 0).all()
        assert delays.max() <= TINY.max_delay

    def test_gains_positive_and_bounded(self, tiny_ref):
        assert (tiny_ref.gains > 0).all()
        assert (tiny_ref.gains < 10).all()

    def test_scaled_config_still_matches_reference(self):
        cfg = TINY.scaled(n_chunks=6, n_speakers=3, name="tiny3")
        run = run_wfs(cfg)
        ref = run_reference(cfg)
        assert run.output_wav == ref.wav_bytes
