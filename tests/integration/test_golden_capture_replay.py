"""Golden tables and figures regenerated from one capture.

The mirror image of ``test_golden_tables.py``: the ``small`` WFS preset
executes exactly *once* under ``capture_run`` (all three tool streams, at
the gcd of the three published slice intervals), and every artifact —
Tables I–IV, Figures 6 and 7 — is rebuilt by vectorized replay and
compared byte-for-byte against the same frozen fixtures the direct path
must match.  A diff here with a green ``test_golden_tables.py`` means
the capture replay drifted from the live tools.
"""

import io
import math
import pathlib

import pytest

from repro.analysis import bandwidth_strips
from repro.apps.wfs import SMALL, build_wfs_program, make_workspace
from repro.capture import (CaptureReader, capture_run, replay_gprof,
                           replay_quad, replay_tquad)
from repro.core import TQuadOptions, cluster_kernel_phases
from repro.quad import instrumented_profile, rank_shifts
from repro.sweep import SweepGrid, sweep_tquad

from .test_golden_tables import (COARSE_INTERVAL, FINE_INTERVAL,
                                 MEDIUM_INTERVAL, PAPER_KERNELS)

GOLDEN_DIR = pathlib.Path(__file__).parent.parent / "golden"

#: One capture serves all three tQUAD intervals.
GRAIN = math.gcd(FINE_INTERVAL, COARSE_INTERVAL, MEDIUM_INTERVAL)


def _check(name: str, text: str) -> None:
    path = GOLDEN_DIR / name
    assert path.exists(), (
        f"missing golden fixture {path}; generate it via "
        f"test_golden_tables.py --update-golden first")
    assert text + "\n" == path.read_text(), (
        f"capture replay drifted from tests/golden/{name} — the direct "
        f"path and the replay path no longer agree")


@pytest.fixture(scope="module")
def reader():
    program = build_wfs_program(SMALL)
    buf = io.BytesIO()
    capture_run(program, buf, fs=make_workspace(SMALL),
                options=TQuadOptions(slice_interval=GRAIN),
                label="golden-small")
    buf.seek(0)
    with CaptureReader(buf) as r:
        yield r


@pytest.fixture(scope="module")
def sweep(reader):
    """All three published tQUAD intervals from one sweep-engine pass."""
    grid = SweepGrid(intervals=(FINE_INTERVAL, MEDIUM_INTERVAL,
                                COARSE_INTERVAL))
    return sweep_tquad(reader, grid)


@pytest.fixture(scope="module")
def flat(reader):
    return replay_gprof(reader)


@pytest.fixture(scope="module")
def quad(reader):
    return replay_quad(reader)


def test_table1_flat_profile(flat):
    _check("table1_flat_profile.txt", flat.format_table(top=21))


def test_table2_quad(quad):
    _check("table2_quad.txt", quad.format_table())


def test_table3_instrumented(flat, quad):
    inst = instrumented_profile(flat, quad)
    shifts = {s.kernel: s for s in rank_shifts(flat, inst)}
    lines = [f"{'kernel':<26}{'%time':>8}{'self s':>10}{'rank':>6}"
             f"{'trend':>7}"]
    for row in inst.rows[:12]:
        s = shifts.get(row.name)
        lines.append(f"{row.name:<26}{inst.percent(row.name):>8.2f}"
                     f"{inst.self_seconds(row.name):>10.4f}"
                     f"{inst.rank(row.name):>6}"
                     f"{(s.trend if s else '?'):>7}")
    _check("table3_instrumented.txt", "\n".join(lines))


def test_table4_phases(reader):
    report = replay_tquad(reader,
                          TQuadOptions(slice_interval=FINE_INTERVAL))
    analysis = cluster_kernel_phases(report, kernels=PAPER_KERNELS,
                                     max_phases=5)
    _check("table4_phases.txt", analysis.format_table())


def test_table4_phases_via_sweep(sweep):
    # third route to the same bytes: direct run, standalone replay, and
    # now the batched sweep cell must all print the frozen Table IV
    report = sweep.report(FINE_INTERVAL)
    analysis = cluster_kernel_phases(report, kernels=PAPER_KERNELS,
                                     max_phases=5)
    _check("table4_phases.txt", analysis.format_table())


def test_fig6_bandwidth_via_sweep(sweep):
    report = sweep.report(COARSE_INTERVAL)
    kernels = report.top_kernels(10)
    names, mat = report.bandwidth_matrix(kernels, write=False,
                                         include_stack=True)
    text = bandwidth_strips(
        names, mat, interval=report.interval, width=100,
        title="Figure 6 analogue: read bandwidth incl. stack, top 10")
    _check("fig6_read_bandwidth.txt", text)


def test_fig6_read_bandwidth(reader):
    report = replay_tquad(reader,
                          TQuadOptions(slice_interval=COARSE_INTERVAL))
    kernels = report.top_kernels(10)
    names, mat = report.bandwidth_matrix(kernels, write=False,
                                         include_stack=True)
    text = bandwidth_strips(
        names, mat, interval=report.interval, width=100,
        title="Figure 6 analogue: read bandwidth incl. stack, top 10")
    _check("fig6_read_bandwidth.txt", text)


def test_fig7_write_bandwidth(reader):
    report = replay_tquad(reader,
                          TQuadOptions(slice_interval=MEDIUM_INTERVAL))
    top10 = report.top_kernels(10)
    bottom = [k for k in PAPER_KERNELS
              if k in report.ledger.kernels() and k not in top10][:10]
    names, mat = report.bandwidth_matrix(bottom, write=True,
                                         include_stack=False)
    half = mat[:, :mat.shape[1] // 2]
    text = bandwidth_strips(
        names, half, interval=report.interval, width=100,
        title="Figure 7 analogue: write bandwidth excl. stack, "
              "last 10 kernels, first half")
    _check("fig7_write_bandwidth.txt", text)
