"""Integration test package (importable so modules can share fixtures)."""
