"""Second case study: the DCT image codec, end to end + profiler shapes."""

import pytest

from repro.apps.codec import (TINY_CODEC, build_codec_program,
                              make_codec_workspace, reference_encode,
                              synthetic_image)
from repro.core import TQuadOptions, cluster_kernel_phases, run_tquad
from repro.gprofsim import run_gprof
from repro.vm import Machine


@pytest.fixture(scope="module")
def program():
    return build_codec_program(TINY_CODEC)


@pytest.fixture(scope="module")
def encoded(program):
    fs = make_codec_workspace(TINY_CODEC)
    m = Machine(program, fs=fs)
    m.run(max_instructions=50_000_000)
    return m, fs.get("image.dct")


class TestEndToEnd:
    def test_exit_clean(self, encoded):
        m, _ = encoded
        assert m.exit_code == 0
        assert m.fs.open_count() == 0

    def test_bitstream_matches_reference(self, encoded):
        _, out = encoded
        assert out == reference_encode(TINY_CODEC)

    def test_header(self, encoded):
        _, out = encoded
        assert out[:4] == b"DCT1"
        assert int.from_bytes(out[4:6], "little") == TINY_CODEC.width
        assert int.from_bytes(out[6:8], "little") == TINY_CODEC.height

    def test_compresses(self, encoded):
        _, out = encoded
        assert len(out) < TINY_CODEC.pixels  # RLE beats raw on the chart

    def test_image_deterministic(self):
        import numpy as np

        np.testing.assert_array_equal(synthetic_image(TINY_CODEC),
                                      synthetic_image(TINY_CODEC))

    def test_block_count_encoded(self, encoded):
        _, out = encoded
        bw, bh = TINY_CODEC.blocks
        # every block ends with the (127, 0) marker
        assert out.count(b"\x7f\x00") >= bw * bh

    def test_bitstream_decodes_to_the_image(self, encoded):
        """The guest's output is a real encoding: inverting it on the host
        reconstructs the image with high fidelity."""
        from repro.apps.codec import decode_stream, psnr, synthetic_image

        _, out = encoded
        recon = decode_stream(out)
        quality = psnr(synthetic_image(TINY_CODEC), recon)
        assert quality > 35.0   # dB

    def test_decoder_rejects_garbage(self):
        from repro.apps.codec import decode_stream

        with pytest.raises(ValueError):
            decode_stream(b"NOPE" + b"\x00" * 16)


class TestProfileShape:
    def test_dct_dominates(self, program):
        flat = run_gprof(program, fs=make_codec_workspace(TINY_CODEC))
        assert flat.top(1) == ["dct8_rows"]
        assert flat.row("dct8_rows").calls == \
            2 * TINY_CODEC.blocks[0] * TINY_CODEC.blocks[1]
        assert flat.row("img_load").calls == 1
        assert flat.row("build_zigzag").calls == 1

    def test_phases(self, program):
        rep = run_tquad(program, fs=make_codec_workspace(TINY_CODEC),
                        options=TQuadOptions(slice_interval=2000))
        pa = cluster_kernel_phases(rep, coarsen_blocks=32)
        by_kernel = {k: p for p in pa for k in p.kernel_names()}
        # init tables come before the block loop; load before transform
        assert by_kernel["build_dct_matrix"].start_slice <= \
            by_kernel["dct8_rows"].start_slice
        assert by_kernel["img_load"].start_slice <= \
            by_kernel["dct8_rows"].start_slice
        # the transform engine spans most of the run
        dct_phase = by_kernel["dct8_rows"]
        assert dct_phase.span > 0.5 * rep.n_slices


class TestGuestRoundtrip:
    def test_encode_decode_in_guest(self):
        """Full in-guest roundtrip: the decoder (a second MiniC program)
        reconstructs the encoder's bitstream at high fidelity."""
        import numpy as np

        from repro.apps.codec import (decode_stream, psnr,
                                      roundtrip_in_guest, synthetic_image)

        recon, bits = roundtrip_in_guest(TINY_CODEC)
        orig = synthetic_image(TINY_CODEC)
        assert psnr(orig, recon) > 35.0
        # the guest decoder agrees with the host decoder pixel for pixel
        host = decode_stream(bits)
        assert int(np.abs(recon.astype(int) - host.astype(int)).max()) <= 1

    def test_decoder_rejects_wrong_dimensions(self):
        from repro.apps.codec import (CodecConfig, build_decoder_program,
                                      make_codec_workspace, reference_encode)
        from repro.vm import Machine

        other = CodecConfig(width=16, height=8)
        fs = make_codec_workspace(TINY_CODEC)
        fs.put("image.dct", reference_encode(other))
        m = Machine(build_decoder_program(TINY_CODEC), fs=fs)
        assert m.run(max_instructions=50_000_000) == 3  # dimension mismatch

    def test_decoder_rejects_bad_magic(self):
        from repro.apps.codec import build_decoder_program, \
            make_codec_workspace
        from repro.vm import Machine

        fs = make_codec_workspace(TINY_CODEC)
        fs.put("image.dct", b"JUNK" + b"\x00" * 64)
        m = Machine(build_decoder_program(TINY_CODEC), fs=fs)
        assert m.run(max_instructions=50_000_000) == 2
