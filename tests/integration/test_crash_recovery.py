"""Fault tolerance of the supervised parallel pipeline, end to end.

Every fault kind is driven through every pipeline stage with real worker
processes, and the assertion is always the same: the merged report is
byte-identical to the healthy serial run, and the recovery shows up in
the telemetry counters (retries, crashes, hangs, torn payloads,
degradations).  Faults injected at the parent-owned stages (checkpoint,
merge) are not survivable by design — there the tests assert they
propagate observably instead of corrupting output.
"""

import pytest

from repro.core import TQuadOptions
from repro.minic import build_program
from repro.obs import Telemetry
from repro.parallel import (GprofSpec, QuadSpec, Supervisor, TQuadSpec,
                            iter_shards, parallel_profile)
from repro.serialize import flat_to_json, quad_to_json, tquad_to_json
from repro.testing import FaultPlan, InjectedFault, WorkerExit

SRC = """
int a[48]; int b[48];
int fill() { int i; for (i=0;i<48;i=i+1) { a[i]=i*5; } return 0; }
int mix()  { int i; for (i=0;i<48;i=i+1) { b[i]=a[i]+b[i]; } return 0; }
int main() { int r; fill(); mix(); r = b[7] + a[9];
    print_int(r); return r & 31; }
"""

QUANTUM = 200          # small fixed shard size: the guest splits 8 ways

SPECS = (TQuadSpec(options=TQuadOptions(slice_interval=64)), QuadSpec(),
         GprofSpec())


@pytest.fixture(scope="module")
def serial():
    run = parallel_profile(build_program(SRC), SPECS, jobs=1)
    return {"tquad": tquad_to_json(run.reports["tquad"]),
            "tquad_table": run.reports["tquad"].format_table(),
            "quad": quad_to_json(run.reports["quad"]),
            "gprof": flat_to_json(run.reports["gprof"]),
            "exit_code": run.exit_code}


def run_with(plan_text, *, jobs=4, serial=None, **kwargs):
    tele = Telemetry()
    run = parallel_profile(build_program(SRC), SPECS, jobs=jobs,
                           quantum=QUANTUM,
                           faults=FaultPlan.parse(plan_text),
                           telemetry=tele, **kwargs)
    if serial is not None:
        assert tquad_to_json(run.reports["tquad"]) == serial["tquad"]
        assert run.reports["tquad"].format_table() == serial["tquad_table"]
        assert quad_to_json(run.reports["quad"]) == serial["quad"]
        assert flat_to_json(run.reports["gprof"]) == serial["gprof"]
        assert run.exit_code == serial["exit_code"]
    return run, tele


class TestReplayStage:
    def test_worker_crash_is_retried_byte_identically(self, serial):
        run, tele = run_with("exit@replay:shard=1", serial=serial)
        assert run.retries == 1 and run.degraded == 0
        assert tele.counters["parallel/worker_crashes"] == 1
        assert tele.counters["parallel/shard_retries"] == 1

    def test_worker_exception_is_retried_byte_identically(self, serial):
        run, tele = run_with("exception@replay:shard=2", serial=serial)
        assert run.retries == 1 and run.degraded == 0

    def test_hang_is_killed_at_deadline_and_retried(self, serial):
        run, tele = run_with("stall@replay:shard=1,stall_seconds=60",
                             jobs=2, deadline=1.0, serial=serial)
        assert tele.counters["parallel/worker_hangs"] == 1
        assert run.retries == 1 and run.degraded == 0

    def test_any_single_worker_dying_never_changes_output(self, serial):
        # the acceptance scenario: a fault that kills one specific worker
        # (every time it touches anything) leaves --jobs 4 byte-identical
        run, tele = run_with("exit@replay:worker=1,attempt=any",
                             serial=serial)
        assert tele.counters["parallel/worker_crashes"] >= 1
        assert run.retries >= 1


class TestPayloadStage:
    def test_torn_payload_is_detected_and_retried(self, serial):
        run, tele = run_with("truncate@payload:shard=0", jobs=2,
                             serial=serial)
        assert tele.counters["parallel/bad_payloads"] == 1
        assert run.retries == 1 and run.degraded == 0

    def test_exception_extracting_payload_is_retried(self, serial):
        # "payload" fire happens inside the worker try-block via the
        # replay-stage hook on a later attempt selector; the worker turns
        # any BaseException into an "err" message
        run, tele = run_with("exception@replay:shard=3,worker=2",
                             serial=serial)
        assert run.degraded == 0


class TestDegradation:
    def test_persistent_fault_degrades_to_in_process_replay(self, serial):
        run, tele = run_with("exception@replay:shard=2,attempt=any",
                             jobs=3, max_retries=1, serial=serial)
        assert run.degraded == 1
        assert run.retries == 2            # max_retries + 1 failures
        assert tele.counters["parallel/shards_degraded"] == 1

    def test_every_worker_dying_degrades_everything(self, serial):
        # all workers crash on every attempt: the whole run falls back to
        # in-process replay, still byte-identical
        run, tele = run_with("exit@replay:attempt=any", jobs=2,
                             max_retries=1, serial=serial)
        assert run.degraded == run.n_shards
        assert tele.counters["parallel/worker_crashes"] >= 2


class TestParentStages:
    def test_checkpoint_exception_propagates(self):
        with pytest.raises(InjectedFault):
            run_with("exception@checkpoint:shard=1")

    def test_checkpoint_exit_raises_worker_exit_not_os_exit(self):
        with pytest.raises(WorkerExit):
            run_with("exit@checkpoint")

    def test_checkpoint_stall_only_delays(self, serial):
        run_with("stall@checkpoint:stall_seconds=0.01", jobs=2,
                 serial=serial)

    def test_merge_exception_propagates(self):
        with pytest.raises(InjectedFault):
            run_with("exception@merge")

    def test_merge_exit_raises_worker_exit(self):
        with pytest.raises(WorkerExit):
            run_with("exit@merge")

    def test_merge_stall_only_delays(self, serial):
        run_with("stall@merge:stall_seconds=0.01", jobs=2, serial=serial)


class TestSupervisorHousekeeping:
    def test_keyboard_interrupt_terminates_all_workers(self):
        # regression: the old pool-based orchestrator leaked worker
        # processes when the checkpoint pass was interrupted
        program = build_program(SRC)
        supervisor = Supervisor(program, SPECS, jobs=2)
        seen = []

        def interrupted_shards():
            for spec in iter_shards(program, jobs=2, quantum=QUANTUM,
                                    interval=64):
                yield spec
                if spec.index == 1:
                    seen.extend(supervisor.workers.values())
                    raise KeyboardInterrupt
        with pytest.raises(KeyboardInterrupt):
            supervisor.run(interrupted_shards())
        assert seen, "workers should have been spawned before the interrupt"
        assert supervisor.workers == {}
        for worker in seen:
            worker.process.join(timeout=5.0)
            assert not worker.process.is_alive()

    def test_jobs_beyond_shard_count_spawn_no_idle_workers(self):
        tele = Telemetry()
        run = parallel_profile(build_program(SRC), SPECS, jobs=8,
                               telemetry=tele)   # default quantum: 1 shard
        assert run.n_shards == 1
        assert run.workers_spawned == 1
        assert tele.counters["parallel/jobs_clamped"] == 7
        assert tele.counters["parallel/workers_spawned"] == 1

    def test_healthy_run_records_no_failure_counters(self, serial):
        run, tele = run_with("", serial=serial)
        assert run.retries == 0 and run.degraded == 0
        for name in ("parallel/worker_crashes", "parallel/worker_hangs",
                     "parallel/bad_payloads", "parallel/shard_retries",
                     "parallel/shards_degraded"):
            assert name not in tele.counters


class TestSpillCleanup:
    """Spill scratch from the bounded-memory streaming tier
    (:mod:`repro.capture.streaming`) must never outlive its owner —
    killed workers, interrupted runs, hard crashes included."""

    @pytest.fixture()
    def private_tmp(self, tmp_path, monkeypatch):
        # point tempfile at a directory this test owns so spill dirs
        # (and the sweeps that reclaim them) are observable in isolation
        import tempfile

        monkeypatch.setenv("TMPDIR", str(tmp_path))
        monkeypatch.setattr(tempfile, "tempdir", None)
        return tmp_path

    def test_interrupt_sweeps_spill_dirs_of_killed_workers(
            self, private_tmp):
        # regression: a KeyboardInterrupt mid-run terminates workers
        # before their own atexit sweep can run; the parent's shutdown
        # path must reclaim their spill directories
        from repro.capture.streaming import SPILL_PREFIX
        from repro.parallel import iter_shards

        program = build_program(SRC)
        supervisor = Supervisor(program, SPECS, jobs=2)
        left_behind = []

        def interrupted_shards():
            for spec in iter_shards(program, jobs=2, quantum=QUANTUM,
                                    interval=64):
                yield spec
                if spec.index == 1:
                    for pid in sorted(supervisor._pids):
                        d = private_tmp / f"{SPILL_PREFIX}{pid}-t"
                        d.mkdir()
                        (d / "run00000.npy").write_bytes(b"x")
                        left_behind.append(d)
                    raise KeyboardInterrupt
        with pytest.raises(KeyboardInterrupt):
            supervisor.run(interrupted_shards())
        assert left_behind, "workers should have spawned before interrupt"
        for d in left_behind:
            assert not d.exists(), f"spill dir {d} leaked past shutdown"

    def test_crashed_worker_spill_dirs_are_swept(self, private_tmp,
                                                 monkeypatch):
        # a worker that dies mid-replay never runs its own teardown; the
        # scratch it left (modelled here at the moment the supervisor
        # notices the crash) is reclaimed by the end of the run
        import repro.parallel.supervise as sup
        from repro.capture.streaming import SPILL_PREFIX

        spilled = []
        original = sup.Supervisor._failure

        def failure_with_scratch(self, task, wid, reason, pending,
                                 results):
            for pid in sorted(self._pids):
                d = private_tmp / f"{SPILL_PREFIX}{pid}-x"
                if not d.exists():
                    d.mkdir()
                    spilled.append(d)
            return original(self, task, wid, reason, pending, results)

        monkeypatch.setattr(sup.Supervisor, "_failure",
                            failure_with_scratch)
        run, tele = run_with("exit@replay:shard=1", jobs=2)
        assert run.retries == 1
        assert spilled
        for d in spilled:
            assert not d.exists(), f"spill dir {d} leaked"

    def test_hard_killed_process_is_reclaimed_by_cleanup(
            self, private_tmp):
        # the primitive itself: a process that spilled and then died
        # without any teardown is reclaimed by pid-targeted cleanup
        import multiprocessing
        import os as _os
        import time as _time

        from repro.capture.streaming import (SPILL_PREFIX, SpillPool,
                                             cleanup_spill_dirs)

        def victim(ready):
            import numpy as np

            pool = SpillPool()
            pool.write(np.zeros((4, 3), np.int64))
            ready.set()
            _time.sleep(60)

        ctx = multiprocessing.get_context("fork")
        ready = ctx.Event()
        proc = ctx.Process(target=victim, args=(ready,))
        proc.start()
        assert ready.wait(timeout=30)
        leaked = list(private_tmp.glob(f"{SPILL_PREFIX}{proc.pid}-*"))
        assert leaked, "victim should have spilled before dying"
        proc.kill()
        proc.join()
        removed = cleanup_spill_dirs([proc.pid])
        assert removed
        assert not list(private_tmp.glob(f"{SPILL_PREFIX}{proc.pid}-*"))
