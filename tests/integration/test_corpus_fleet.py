"""The capture-corpus regression fleet end to end.

Covers the ``repro.corpus`` engine (run/verify/update round-trips, drift
and stale-fixture detection, capture-store reuse) and the ``tquad
corpus`` CLI (exit codes, fleet-report JSON), plus the guardrail that
the *committed* golden tree verifies clean for the PR tier.
"""

import json

import pytest

from repro.cli import main
from repro.corpus import (ARTIFACTS, CaptureStore, fleet_entries,
                          run_fleet, update_fleet, verify_fleet)

ENTRY = "gen-streaming_0055"     # smallest roster entry: fast fixture


@pytest.fixture()
def store(tmp_path):
    return CaptureStore(tmp_path / "store")


class TestRoster:
    def test_pr_tier_is_a_strict_subset(self):
        pr = {e.name for e in fleet_entries(nightly=False)}
        full = {e.name for e in fleet_entries(nightly=True)}
        assert pr < full
        assert len(pr) >= 8

    def test_entry_names_and_labels_unique(self):
        entries = fleet_entries(nightly=True)
        assert len({e.name for e in entries}) == len(entries)
        assert len({e.label for e in entries}) == len(entries)

    def test_unknown_only_filter(self):
        with pytest.raises(KeyError):
            fleet_entries(only="no-such-entry")


class TestFleetEngine:
    def test_update_then_verify_roundtrip(self, tmp_path, store):
        golden = tmp_path / "golden"
        up = update_fleet(golden_root=golden, store=store, only=ENTRY)
        assert up.ok and up.exit_code == 0
        for name in ARTIFACTS:
            assert (golden / ENTRY / name).exists()
        ver = verify_fleet(golden_root=golden, store=store, only=ENTRY)
        assert ver.ok
        assert ver.captures_reused == 1 and ver.captures_executed == 0

    def test_drift_detected_per_artifact(self, tmp_path, store):
        golden = tmp_path / "golden"
        update_fleet(golden_root=golden, store=store, only=ENTRY)
        path = golden / ENTRY / "tquad.txt"
        path.write_text(path.read_text() + "tampered\n")
        ver = verify_fleet(golden_root=golden, store=store, only=ENTRY)
        assert not ver.ok and ver.exit_code == 1
        (entry,) = ver.entries
        assert entry.status == "drift"
        assert entry.drifted == ["tquad.txt"]

    def test_missing_fixture_detected(self, tmp_path, store):
        golden = tmp_path / "golden"
        update_fleet(golden_root=golden, store=store, only=ENTRY)
        (golden / ENTRY / "meta.json").unlink()
        ver = verify_fleet(golden_root=golden, store=store, only=ENTRY)
        (entry,) = ver.entries
        assert entry.status == "missing"
        assert entry.missing == ["meta.json"]

    def test_stale_fixture_detected_and_pruned(self, tmp_path, store):
        golden = tmp_path / "golden"
        update_fleet(golden_root=golden, store=store, only=ENTRY)
        ghost = golden / "renamed-away"
        ghost.mkdir()
        (ghost / "meta.json").write_text("{}")
        ver = verify_fleet(golden_root=golden, store=store)
        assert any(e.status == "stale" and e.name == "renamed-away"
                   for e in ver.entries)
        assert ver.exit_code == 1
        update_fleet(golden_root=golden, store=store)
        assert not ghost.exists()

    def test_only_filter_skips_stale_scan(self, tmp_path, store):
        golden = tmp_path / "golden"
        update_fleet(golden_root=golden, store=store, only=ENTRY)
        (golden / "renamed-away").mkdir()
        ver = verify_fleet(golden_root=golden, store=store, only=ENTRY)
        assert ver.ok, "focused verify must not police other fixtures"

    def test_store_reuses_captures_across_modes(self, tmp_path, store):
        run_fleet(store=store, only=ENTRY)
        assert store.misses == 1
        run_fleet(store=store, only=ENTRY)
        assert store.misses == 1 and store.hits >= 1

    def test_corrupt_store_entry_recaptured(self, tmp_path, store):
        run_fleet(store=store, only=ENTRY)
        (capture_file,) = store.root.iterdir()
        capture_file.write_bytes(b"truncated garbage")
        report = run_fleet(store=store, only=ENTRY)
        assert report.ok
        assert store.misses == 2

    def test_run_writes_artifact_tree(self, tmp_path, store):
        out = tmp_path / "artifacts"
        report = run_fleet(store=store, only=ENTRY, out_dir=out)
        assert report.ok
        meta = json.loads((out / ENTRY / "meta.json").read_text())
        assert meta["entry"] == ENTRY
        assert meta["exit_code"] == 0
        assert meta["sweep_cells"] == 4

    def test_broken_entry_reports_error_not_crash(self, tmp_path, store,
                                                  monkeypatch):
        import repro.corpus.fleet as fleet_mod

        def boom(entry, store):
            raise RuntimeError("guest exploded")

        monkeypatch.setattr(fleet_mod, "render_artifacts", boom)
        report = run_fleet(store=store, only=ENTRY)
        assert report.exit_code == 1
        (entry,) = report.entries
        assert entry.status == "error"
        assert "guest exploded" in entry.error


class TestCorpusCli:
    def test_cli_verify_roundtrip_and_report(self, tmp_path, capsys):
        golden = tmp_path / "golden"
        store = tmp_path / "store"
        rc = main(["corpus", "update", "--golden", str(golden),
                   "--store", str(store), "--only", ENTRY])
        assert rc == 0
        report_path = tmp_path / "fleet.json"
        rc = main(["corpus", "verify", "--golden", str(golden),
                   "--store", str(store), "--only", ENTRY,
                   "--report", str(report_path)])
        assert rc == 0
        out = capsys.readouterr().out
        assert "1 ok" in out
        data = json.loads(report_path.read_text())
        assert data["ok"] is True
        assert data["entries"][0]["name"] == ENTRY
        assert data["captures"]["reused"] == 1

    def test_cli_drift_exits_one(self, tmp_path, capsys):
        golden = tmp_path / "golden"
        store = tmp_path / "store"
        assert main(["corpus", "update", "--golden", str(golden),
                     "--store", str(store), "--only", ENTRY]) == 0
        path = golden / ENTRY / "sweep.json"
        path.write_text(path.read_text() + "\n")
        rc = main(["corpus", "verify", "--golden", str(golden),
                   "--store", str(store), "--only", ENTRY])
        assert rc == 1
        err = capsys.readouterr().err
        assert "drift" in err and "sweep.json" in err

    def test_cli_unknown_entry_exits_two(self, tmp_path, capsys):
        rc = main(["corpus", "run", "--store", str(tmp_path / "s"),
                   "--only", "no-such-entry"])
        assert rc == 2
        assert "unknown corpus entry" in capsys.readouterr().err

    def test_cli_run_with_trace(self, tmp_path, capsys):
        trace = tmp_path / "trace.json"
        rc = main(["corpus", "run", "--store", str(tmp_path / "s"),
                   "--only", ENTRY, "--trace-out", str(trace)])
        assert rc == 0
        events = json.loads(trace.read_text())["traceEvents"]
        assert any(e.get("name") == f"fleet:{ENTRY}" for e in events)
        assert any(e.get("name") == f"capture:{ENTRY}" for e in events)


class TestCommittedGolden:
    def test_pr_tier_verifies_against_committed_fixtures(self, tmp_path):
        """The repo's own golden tree is in sync with the code — the
        same gate CI runs via ``tquad corpus verify``."""
        report = verify_fleet(store=CaptureStore(tmp_path / "store"),
                              nightly=False)
        broken = [e.to_json() for e in report.entries
                  if e.status != "ok"]
        assert report.ok, f"committed corpus fixtures drifted: {broken}"
