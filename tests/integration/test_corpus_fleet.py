"""The capture-corpus regression fleet end to end.

Covers the ``repro.corpus`` engine (run/verify/update round-trips, drift
and stale-fixture detection, capture-store reuse) and the ``tquad
corpus`` CLI (exit codes, fleet-report JSON), plus the guardrail that
the *committed* golden tree verifies clean for the PR tier.
"""

import json

import pytest

from repro.cli import main
from repro.corpus import (ARTIFACTS, CaptureStore, fleet_entries,
                          run_fleet, update_fleet, verify_fleet)

ENTRY = "gen-streaming_0055"     # smallest roster entry: fast fixture


@pytest.fixture()
def store(tmp_path):
    return CaptureStore(tmp_path / "store")


class TestRoster:
    def test_pr_tier_is_a_strict_subset(self):
        pr = {e.name for e in fleet_entries(nightly=False)}
        full = {e.name for e in fleet_entries(nightly=True)}
        assert pr < full
        assert len(pr) >= 8

    def test_entry_names_and_labels_unique(self):
        entries = fleet_entries(nightly=True)
        assert len({e.name for e in entries}) == len(entries)
        assert len({e.label for e in entries}) == len(entries)

    def test_unknown_only_filter(self):
        with pytest.raises(KeyError):
            fleet_entries(only="no-such-entry")


class TestFleetEngine:
    def test_update_then_verify_roundtrip(self, tmp_path, store):
        golden = tmp_path / "golden"
        up = update_fleet(golden_root=golden, store=store, only=ENTRY)
        assert up.ok and up.exit_code == 0
        for name in ARTIFACTS:
            assert (golden / ENTRY / name).exists()
        ver = verify_fleet(golden_root=golden, store=store, only=ENTRY)
        assert ver.ok
        assert ver.captures_reused == 1 and ver.captures_executed == 0

    def test_drift_detected_per_artifact(self, tmp_path, store):
        golden = tmp_path / "golden"
        update_fleet(golden_root=golden, store=store, only=ENTRY)
        path = golden / ENTRY / "tquad.txt"
        path.write_text(path.read_text() + "tampered\n")
        ver = verify_fleet(golden_root=golden, store=store, only=ENTRY)
        assert not ver.ok and ver.exit_code == 1
        (entry,) = ver.entries
        assert entry.status == "drift"
        assert entry.drifted == ["tquad.txt"]

    def test_missing_fixture_detected(self, tmp_path, store):
        golden = tmp_path / "golden"
        update_fleet(golden_root=golden, store=store, only=ENTRY)
        (golden / ENTRY / "meta.json").unlink()
        ver = verify_fleet(golden_root=golden, store=store, only=ENTRY)
        (entry,) = ver.entries
        assert entry.status == "missing"
        assert entry.missing == ["meta.json"]

    def test_stale_fixture_detected_and_pruned(self, tmp_path, store):
        golden = tmp_path / "golden"
        update_fleet(golden_root=golden, store=store, only=ENTRY)
        ghost = golden / "renamed-away"
        ghost.mkdir()
        (ghost / "meta.json").write_text("{}")
        ver = verify_fleet(golden_root=golden, store=store)
        assert any(e.status == "stale" and e.name == "renamed-away"
                   for e in ver.entries)
        assert ver.exit_code == 1
        update_fleet(golden_root=golden, store=store)
        assert not ghost.exists()

    def test_only_filter_skips_stale_scan(self, tmp_path, store):
        golden = tmp_path / "golden"
        update_fleet(golden_root=golden, store=store, only=ENTRY)
        (golden / "renamed-away").mkdir()
        ver = verify_fleet(golden_root=golden, store=store, only=ENTRY)
        assert ver.ok, "focused verify must not police other fixtures"

    def test_store_reuses_captures_across_modes(self, tmp_path, store):
        run_fleet(store=store, only=ENTRY)
        assert store.misses == 1
        run_fleet(store=store, only=ENTRY)
        assert store.misses == 1 and store.hits >= 1

    def test_corrupt_store_entry_recaptured(self, tmp_path, store):
        run_fleet(store=store, only=ENTRY)
        (capture_file,) = (p for p in store.root.iterdir()
                           if p.suffix == ".capture")
        capture_file.write_bytes(b"truncated garbage")
        report = run_fleet(store=store, only=ENTRY)
        assert report.ok
        assert store.misses == 2

    def test_corrupt_sidecar_rebuilt(self, tmp_path, store):
        """A corrupt decoded-page sidecar is evicted and rebuilt like a
        corrupt capture — and the fleet report counts the rebuild."""
        run_fleet(store=store, only=ENTRY)
        (sidecar,) = (p for p in store.root.iterdir()
                      if p.name.endswith(".capture.pages"))
        sidecar.write_bytes(b"truncated garbage")
        report = run_fleet(store=store, only=ENTRY)
        assert report.ok
        assert store.misses == 1           # the capture itself survived
        assert report.sidecars_rebuilt == 1
        # the rebuilt sidecar serves the next pass warm again
        report = run_fleet(store=store, only=ENTRY)
        assert report.ok and report.sidecars_reused == 1

    def test_no_page_cache_store_writes_no_sidecars(self, tmp_path):
        store = CaptureStore(tmp_path / "store", page_cache=False)
        report = run_fleet(store=store, only=ENTRY)
        assert report.ok
        assert not [p for p in store.root.iterdir()
                    if p.name.endswith(".pages")]
        assert report.sidecars_built == 0
        (entry,) = report.entries
        assert entry.replay["page_cache"] == "off"
        assert entry.replay["decoded_pages"] > 0

    def test_artifacts_identical_with_and_without_page_cache(self,
                                                             tmp_path):
        """The golden artifacts are a pure function of the guest: the
        warm-sidecar route and ``--no-page-cache`` must render the
        same bytes (cache counters live in the fleet report only)."""
        from repro.corpus.fleet import render_artifacts
        from repro.corpus.entries import fleet_entries as _entries

        (entry,) = _entries(only=ENTRY)
        warm_store = CaptureStore(tmp_path / "warm")
        cold_store = CaptureStore(tmp_path / "cold", page_cache=False)
        warm, warm_stats = render_artifacts(entry, warm_store)
        warm2, _ = render_artifacts(entry, warm_store)   # sidecar warm now
        cold, cold_stats = render_artifacts(entry, cold_store)
        assert warm == warm2 == cold
        assert warm_stats["page_cache"] in ("built", "warm")
        assert cold_stats["page_cache"] == "off"
        meta = json.loads(warm["meta.json"])
        assert meta["replay"] == {"pages_served":
                                  json.loads(cold["meta.json"])
                                  ["replay"]["pages_served"]}
        assert meta["replay"]["pages_served"] > 0

    def test_parallel_jobs_report_matches_serial(self, tmp_path):
        """--jobs N must be byte-identical to serial: same artifacts,
        same canonical fleet report, against equivalent store states."""
        out1, out2 = tmp_path / "o1", tmp_path / "o2"
        serial = run_fleet(store=CaptureStore(tmp_path / "s1"),
                           only=ENTRY, out_dir=out1)
        fanned = run_fleet(store=CaptureStore(tmp_path / "s2"),
                           only=ENTRY, out_dir=out2, jobs=2)
        assert serial.ok and fanned.ok
        assert serial.canonical_json() == fanned.canonical_json()
        for name in ARTIFACTS:
            assert ((out1 / ENTRY / name).read_bytes()
                    == (out2 / ENTRY / name).read_bytes())

    def test_update_with_only_never_prunes(self, tmp_path, store):
        """Regression: a focused ``update --only`` must not sweep other
        fixture directories as stale."""
        golden = tmp_path / "golden"
        bystander = golden / "some-other-entry"
        bystander.mkdir(parents=True)
        (bystander / "meta.json").write_text("{}")
        report = update_fleet(golden_root=golden, store=store, only=ENTRY)
        assert report.ok
        assert bystander.exists()
        assert (bystander / "meta.json").read_text() == "{}"

    def test_run_writes_artifact_tree(self, tmp_path, store):
        out = tmp_path / "artifacts"
        report = run_fleet(store=store, only=ENTRY, out_dir=out)
        assert report.ok
        meta = json.loads((out / ENTRY / "meta.json").read_text())
        assert meta["entry"] == ENTRY
        assert meta["exit_code"] == 0
        assert meta["sweep_cells"] == 4

    def test_broken_entry_reports_error_not_crash(self, tmp_path, store,
                                                  monkeypatch):
        import repro.corpus.fleet as fleet_mod

        def boom(entry, store, **kwargs):
            raise RuntimeError("guest exploded")

        monkeypatch.setattr(fleet_mod, "render_artifacts", boom)
        report = run_fleet(store=store, only=ENTRY)
        assert report.exit_code == 1
        (entry,) = report.entries
        assert entry.status == "error"
        assert "guest exploded" in entry.error


class TestCorpusCli:
    def test_cli_verify_roundtrip_and_report(self, tmp_path, capsys):
        golden = tmp_path / "golden"
        store = tmp_path / "store"
        rc = main(["corpus", "update", "--golden", str(golden),
                   "--store", str(store), "--only", ENTRY])
        assert rc == 0
        report_path = tmp_path / "fleet.json"
        rc = main(["corpus", "verify", "--golden", str(golden),
                   "--store", str(store), "--only", ENTRY,
                   "--report", str(report_path)])
        assert rc == 0
        out = capsys.readouterr().out
        assert "1 ok" in out
        data = json.loads(report_path.read_text())
        assert data["ok"] is True
        assert data["entries"][0]["name"] == ENTRY
        assert data["captures"]["reused"] == 1

    def test_cli_drift_exits_one(self, tmp_path, capsys):
        golden = tmp_path / "golden"
        store = tmp_path / "store"
        assert main(["corpus", "update", "--golden", str(golden),
                     "--store", str(store), "--only", ENTRY]) == 0
        path = golden / ENTRY / "sweep.json"
        path.write_text(path.read_text() + "\n")
        rc = main(["corpus", "verify", "--golden", str(golden),
                   "--store", str(store), "--only", ENTRY])
        assert rc == 1
        err = capsys.readouterr().err
        assert "drift" in err and "sweep.json" in err

    def test_cli_unknown_entry_exits_two(self, tmp_path, capsys):
        rc = main(["corpus", "run", "--store", str(tmp_path / "s"),
                   "--only", "no-such-entry"])
        assert rc == 2
        assert "unknown corpus entry" in capsys.readouterr().err

    def test_cli_bad_jobs_exits_two(self, tmp_path, capsys):
        rc = main(["corpus", "run", "--store", str(tmp_path / "s"),
                   "--only", ENTRY, "--jobs", "0"])
        assert rc == 2
        assert "--jobs" in capsys.readouterr().err

    def test_cli_parallel_run_with_page_cache_counters(self, tmp_path,
                                                       capsys):
        report_path = tmp_path / "fleet.json"
        rc = main(["corpus", "run", "--store", str(tmp_path / "s"),
                   "--only", ENTRY, "--jobs", "2",
                   "--report", str(report_path)])
        assert rc == 0
        data = json.loads(report_path.read_text())
        assert data["ok"] is True
        assert data["page_cache"]["sidecars_built"] == 1
        assert data["entries"][0]["replay"]["page_cache"] == "warm"
        assert "sidecars: 1 built" in capsys.readouterr().out

    def test_cli_no_page_cache(self, tmp_path, capsys):
        rc = main(["corpus", "run", "--store", str(tmp_path / "s"),
                   "--only", ENTRY, "--no-page-cache"])
        assert rc == 0
        assert not [p for p in (tmp_path / "s").iterdir()
                    if p.name.endswith(".pages")]

    def test_cli_run_with_trace(self, tmp_path, capsys):
        trace = tmp_path / "trace.json"
        rc = main(["corpus", "run", "--store", str(tmp_path / "s"),
                   "--only", ENTRY, "--trace-out", str(trace)])
        assert rc == 0
        events = json.loads(trace.read_text())["traceEvents"]
        assert any(e.get("name") == f"fleet:{ENTRY}" for e in events)
        assert any(e.get("name") == f"capture:{ENTRY}" for e in events)


class TestCommittedGolden:
    def test_pr_tier_verifies_against_committed_fixtures(self, tmp_path):
        """The repo's own golden tree is in sync with the code — the
        same gate CI runs via ``tquad corpus verify``."""
        report = verify_fleet(store=CaptureStore(tmp_path / "store"),
                              nightly=False)
        broken = [e.to_json() for e in report.entries
                  if e.status != "ok"]
        assert report.ok, f"committed corpus fixtures drifted: {broken}"
