"""Smoke tests: every shipped example must run cleanly end to end."""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES = pathlib.Path(__file__).resolve().parents[2] / "examples"


def run_example(name: str, *args: str) -> str:
    proc = subprocess.run(
        [sys.executable, str(EXAMPLES / name), *args],
        capture_output=True, text=True, timeout=600)
    assert proc.returncode == 0, proc.stderr[-2000:]
    return proc.stdout


class TestExamples:
    def test_quickstart(self):
        out = run_example("quickstart.py")
        assert "stage_fill" in out
        assert "B/ins" in out

    def test_custom_pintool(self):
        out = run_example("custom_pintool.py")
        assert "scatter" in out
        assert "heatmap" in out.lower()

    def test_phase_partitioning(self):
        out = run_example("phase_partitioning.py")
        assert "produce" in out
        assert "intra-cluster traffic kept: 100.0%" in out

    def test_advanced_analysis(self):
        out = run_example("advanced_analysis.py")
        assert "byte totals consistent across passes: yes" in out
        assert "match tQUAD's online ledger: yes" in out
        assert "phases recomputed" in out

    def test_locality_and_timing(self):
        out = run_example("locality_and_timing.py")
        assert "memory-bound" in out
        assert "WCET" in out

    @pytest.mark.slow
    def test_wfs_case_study_tiny(self):
        out = run_example("wfs_case_study.py", "tiny")
        assert "Table I analogue" in out
        assert "Table II analogue" in out
        assert "Table III analogue" in out
        assert "Figure 6 analogue" in out
        assert "Figure 7 analogue" in out
        assert "Table IV analogue" in out
        assert "wav_store" in out
