"""Oracle semantics of the corpus guest applications.

Each guest ships a pure-Python oracle that predicts its output file
byte-for-byte; these tests execute the MiniC guests on the VM and hold
them to that prediction across presets.  They also pin the property the
capture-label check exists for: equal-size presets with different data
seeds compile to the *same* binary yet produce *different* outputs.
"""

import os

import pytest

from repro.apps import bfs, hashjoin, stencil
from repro.apps.registry import GUEST_APPS, guest_label
from repro.capture import program_digest
from repro.testing import workloads

NIGHTLY = os.environ.get("TQUAD_NIGHTLY", "") == "1"

RUNNABLE = [name for name in ("tiny", "tiny-alt", "small")] + (
    ["stress"] if NIGHTLY else [])


def _presets(table):
    return [p for p in table if p in RUNNABLE]


# ---------------------------------------------------------------- hash join
class TestHashJoin:
    @pytest.mark.parametrize("preset", _presets(hashjoin.JOIN_PRESETS))
    def test_guest_matches_oracle(self, preset):
        cfg = hashjoin.JOIN_PRESETS[preset]
        assert (hashjoin.run_join_in_guest(cfg)
                == hashjoin.reference_join(cfg).output)

    def test_oracle_counts_are_consistent(self):
        cfg = hashjoin.TINY_JOIN
        result = hashjoin.reference_join(cfg)
        assert len(result.hits) == cfg.n_probe
        assert result.matches == sum(result.hits)
        assert result.matches > 0, "degenerate preset: no matches at all"

    def test_seed_changes_data_not_binary(self):
        same = program_digest(hashjoin.build_join_program(
            hashjoin.TINY_JOIN))
        alt = program_digest(hashjoin.build_join_program(
            hashjoin.TINY_ALT_JOIN))
        assert same == alt
        assert (hashjoin.reference_join(hashjoin.TINY_JOIN).output
                != hashjoin.reference_join(hashjoin.TINY_ALT_JOIN).output)

    def test_config_validation(self):
        with pytest.raises(ValueError):
            hashjoin.JoinConfig(n_buckets=48)     # not a power of two
        with pytest.raises(ValueError):
            hashjoin.JoinConfig(n_build=0)
        with pytest.raises(ValueError):
            hashjoin.JoinConfig(key_space=0)


# --------------------------------------------------------------------- BFS
class TestBfs:
    @pytest.mark.parametrize("preset", _presets(bfs.BFS_PRESETS))
    def test_guest_matches_oracle(self, preset):
        cfg = bfs.BFS_PRESETS[preset]
        assert bfs.run_bfs_in_guest(cfg) == bfs.reference_bfs(cfg).output

    def test_oracle_distances_are_bfs(self):
        cfg = bfs.TINY_BFS
        result = bfs.reference_bfs(cfg)
        offsets, targets = bfs.make_bfs_graph(cfg)
        assert result.distances[cfg.source] == 0
        assert result.reached == sum(1 for d in result.distances if d >= 0)
        # every edge from a reached node relaxes: d(v) <= d(u) + 1
        for u in range(cfg.n_nodes):
            if result.distances[u] < 0:
                continue
            for e in range(offsets[u], offsets[u + 1]):
                v = targets[e]
                assert 0 <= result.distances[v] <= result.distances[u] + 1

    def test_seed_changes_data_not_binary(self):
        assert (program_digest(bfs.build_bfs_program(bfs.TINY_BFS))
                == program_digest(bfs.build_bfs_program(bfs.TINY_ALT_BFS)))
        assert (bfs.reference_bfs(bfs.TINY_BFS).output
                != bfs.reference_bfs(bfs.TINY_ALT_BFS).output)

    def test_config_validation(self):
        with pytest.raises(ValueError):
            bfs.BfsConfig(n_nodes=1)
        with pytest.raises(ValueError):
            bfs.BfsConfig(degree=0)
        with pytest.raises(ValueError):
            bfs.BfsConfig(source=99, n_nodes=10)


# ----------------------------------------------------------------- stencil
class TestStencil:
    @pytest.mark.parametrize("preset", _presets(stencil.STENCIL_PRESETS))
    def test_guest_matches_oracle(self, preset):
        cfg = stencil.STENCIL_PRESETS[preset]
        assert (stencil.run_stencil_in_guest(cfg)
                == stencil.reference_stencil(cfg).output)

    def test_oracle_output_shape(self):
        cfg = stencil.TINY_STENCIL
        result = stencil.reference_stencil(cfg)
        assert len(result.output) == cfg.pixels
        assert all(0 <= b <= 255 for b in result.output)
        assert result.checksum == result.checksum & 0x3FFFFFFF

    def test_seed_changes_data_not_binary(self):
        assert (program_digest(stencil.build_stencil_program(
                    stencil.TINY_STENCIL))
                == program_digest(stencil.build_stencil_program(
                    stencil.TINY_ALT_STENCIL)))
        assert (stencil.reference_stencil(stencil.TINY_STENCIL).output
                != stencil.reference_stencil(
                    stencil.TINY_ALT_STENCIL).output)

    def test_config_validation(self):
        with pytest.raises(ValueError):
            stencil.StencilConfig(width=1)
        with pytest.raises(ValueError):
            stencil.StencilConfig(passes=0)


# ---------------------------------------------------------------- registry
class TestRegistry:
    def test_every_app_has_runnable_tiny_preset(self):
        for name, app in GUEST_APPS.items():
            assert "tiny" in app.presets, name
            assert "tiny" not in app.unrunnable, name

    def test_labels_are_unique_per_app_preset(self):
        labels = [guest_label(name, app.config(p))
                  for name, app in GUEST_APPS.items()
                  for p in app.presets]
        assert len(labels) == len(set(labels))

    def test_unknown_preset_message_lists_choices(self):
        with pytest.raises(KeyError, match="tiny"):
            GUEST_APPS["bfs"].config("bogus")


# ---------------------------------------------------- workload generator
class TestWorkloadGenerator:
    def test_generation_is_deterministic(self):
        spec = workloads.WorkloadSpec(shape="pointer", seed=7, size=16)
        assert (workloads.generate_workload(spec)
                == workloads.generate_workload(spec))

    @pytest.mark.parametrize("shape", workloads.SHAPES)
    def test_every_shape_builds_and_runs(self, shape):
        from repro.vm import run_program

        spec = workloads.WorkloadSpec(shape=shape, seed=3, size=12,
                                      kernels=1, steps=1)
        program = workloads.workload_program(spec)
        machine = run_program(program, max_instructions=5_000_000)
        assert machine.exit_code == 0

    def test_spec_validation(self):
        with pytest.raises(ValueError):
            workloads.WorkloadSpec(shape="zigzag")
        with pytest.raises(ValueError):
            workloads.WorkloadSpec(size=4)
        with pytest.raises(ValueError):
            workloads.WorkloadSpec(kernels=0)
        with pytest.raises(ValueError):
            workloads.WorkloadSpec(steps=0)

    def test_checked_in_corpus_is_fresh(self):
        """The committed gen_*.mc seed files must match the generator —
        regenerate with ``python -m repro.testing.workloads`` on drift."""
        directory = workloads._default_corpus_dir()
        for spec in workloads.CORPUS_SPECS:
            path = directory / workloads.corpus_file_name(spec)
            assert path.exists(), f"missing seed corpus file {path.name}"
            assert (path.read_text(encoding="utf-8")
                    == workloads.generate_workload(spec)), \
                (f"{path.name} is stale; regenerate with "
                 f"`python -m repro.testing.workloads`")

    def test_write_corpus_roundtrip(self, tmp_path):
        paths = workloads.write_corpus(tmp_path)
        assert len(paths) == len(workloads.CORPUS_SPECS)
        assert workloads.main([str(tmp_path)]) == 0
