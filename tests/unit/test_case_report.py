"""Tests for the one-call case-study report generator and its CLI hook."""

import pytest

from repro.analysis import case_study_report
from repro.cli import main
from repro.minic import build_program

APP = """
int buf[64];
int produce() { int i; for (i=0;i<64;i++) { buf[i] = i * 3; } return 0; }
int consume() { int i; int s=0; for (i=0;i<64;i++) { s += buf[i]; } return s; }
int main() { produce(); return consume() & 31; }
"""


class TestCaseStudyReport:
    @pytest.fixture(scope="class")
    def result(self):
        return case_study_report(build_program(APP), title="pipeline",
                                 slice_interval=500)

    def test_all_sections_present(self, result):
        md = result.markdown
        for section in ("Flat profile", "Data communication",
                        "Instrumented profile", "Temporal read bandwidth",
                        "Execution phases"):
            assert section in md, section

    def test_kernels_mentioned(self, result):
        assert "produce" in result.markdown
        assert "consume" in result.markdown

    def test_intermediate_results_exposed(self, result):
        assert result.flat.row("produce").calls == 1
        assert result.quad.communication("produce", "consume") == 64 * 8
        assert result.tquad.total_instructions > 0
        assert len(result.phases) >= 1

    def test_title_used(self, result):
        assert result.markdown.startswith("# pipeline")

    def test_kernel_filter(self):
        res = case_study_report(build_program(APP),
                                kernels=["produce", "consume"],
                                slice_interval=500)
        names = {k for p in res.phases for k in p.kernel_names()}
        assert names <= {"produce", "consume"}


class TestCliReport:
    def test_wfs_report_flag(self, tmp_path, capsys):
        out = tmp_path / "report.md"
        rc = main(["wfs", "--preset", "tiny", "--interval", "4000",
                   "--report", str(out)])
        assert rc == 0
        text = out.read_text()
        assert text.startswith("# hArtes-wfs case study")
        assert "wav_store" in text
        assert "Execution phases" in text
