"""Fused multi-tool replay (:func:`repro.capture.replay.replay_many`).

The contract: one call streams the capture's pages once through every
requested tool reducer, and each report is byte-identical to what the
standalone ``replay_*`` / ``sweep_tquad`` entry points produce.
"""

import io

import pytest

from repro.capture import (CaptureReader, capture_run, replay_gprof,
                           replay_many, replay_quad, replay_tquad)
from repro.core import TQuadOptions
from repro.core.options import StackPolicy
from repro.minic import build_program
from repro.serialize import flat_to_json, quad_to_json, tquad_to_json
from repro.sweep import SweepGrid, sweep_tquad

APP = """
int a[64]; int b[64];
int fill() { int i; for (i = 0; i < 64; i = i + 1) { a[i] = i * 5; }
             return 0; }
int fold() { int i; int s = 0; for (i = 0; i < 64; i = i + 1)
             { b[i] = a[i] + s; s = s + a[i]; } return s; }
int main() { fill(); return fold() & 7; }
"""


@pytest.fixture(scope="module")
def capture():
    program = build_program(APP)
    buf = io.BytesIO()
    capture_run(program, buf, tools=("tquad", "gprof", "quad"),
                options=TQuadOptions(slice_interval=50))
    raw = buf.getvalue()

    def open_reader():
        return CaptureReader(io.BytesIO(raw))

    return open_reader


GRID = SweepGrid(intervals=(50, 100), stacks=(StackPolicy.BOTH,
                                              StackPolicy.EXCLUDE))


class TestFusedEquality:
    def test_all_tools_byte_identical_to_standalone(self, capture):
        opts = TQuadOptions(slice_interval=100)
        with capture() as reader:
            bundle = replay_many(reader, options=opts, grid=GRID)
        with capture() as reader:
            assert tquad_to_json(bundle.tquad) == tquad_to_json(
                replay_tquad(reader, opts))
            assert bundle.tquad.format_table() == replay_tquad(
                reader, opts).format_table()
        with capture() as reader:
            flat = replay_gprof(reader)
            assert flat_to_json(bundle.gprof) == flat_to_json(flat)
            assert (bundle.gprof.format_call_graph()
                    == flat.format_call_graph())
        with capture() as reader:
            assert quad_to_json(bundle.quad) == quad_to_json(
                replay_quad(reader))

    def test_sweep_cells_byte_identical_to_standalone(self, capture):
        with capture() as reader:
            fused = replay_many(reader, tools=("tquad",),
                                options=TQuadOptions(slice_interval=50),
                                grid=GRID).sweep
        with capture() as reader:
            standalone = sweep_tquad(reader, GRID)
        assert fused.grid == standalone.grid
        assert fused.grain == standalone.grain
        assert fused.total_instructions == standalone.total_instructions
        assert fused.stats["cells"] == standalone.stats["cells"]
        assert fused.stats["combos"] == standalone.stats["combos"]
        for (cell, report), (cell2, report2) in zip(fused, standalone):
            assert cell == cell2
            assert tquad_to_json(report) == tquad_to_json(report2)

    def test_tquad_interval_outside_grid_still_fuses(self, capture):
        """The fused pass widens the grid with the tquad cell and then
        restricts the sweep back — the caller sees only their grid."""
        opts = TQuadOptions(slice_interval=200)     # not a grid interval
        with capture() as reader:
            bundle = replay_many(reader, options=opts, grid=GRID,
                                 tools=("tquad",))
        assert bundle.sweep.grid == GRID
        assert bundle.sweep.stats["cells"] == len(GRID.cells())
        assert 200 not in bundle.sweep.grid.intervals
        with capture() as reader:
            assert tquad_to_json(bundle.tquad) == tquad_to_json(
                replay_tquad(reader, opts))

    def test_kernel_filter_mismatch_falls_back(self, capture):
        """A tquad kernel filter different from the grid's cannot share
        one sweep — both results must still match standalone."""
        opts = TQuadOptions(slice_interval=50, kernels=("fill",))
        with capture() as reader:
            bundle = replay_many(reader, options=opts, grid=GRID,
                                 tools=("tquad",))
        with capture() as reader:
            assert tquad_to_json(bundle.tquad) == tquad_to_json(
                replay_tquad(reader, opts))
        with capture() as reader:
            standalone = sweep_tquad(reader, GRID)
        for (cell, report), (_, report2) in zip(bundle.sweep, standalone):
            assert tquad_to_json(report) == tquad_to_json(report2)


class TestSelection:
    def test_grid_only(self, capture):
        with capture() as reader:
            bundle = replay_many(reader, tools=(), grid=GRID)
        assert bundle.sweep is not None
        assert bundle.tquad is None
        assert bundle.gprof is None
        assert bundle.quad is None

    def test_subset_of_tools(self, capture):
        with capture() as reader:
            bundle = replay_many(reader, tools=("gprof",))
        assert bundle.gprof is not None
        assert bundle.tquad is None and bundle.sweep is None

    def test_unknown_tool_rejected(self, capture):
        with capture() as reader:
            with pytest.raises(ValueError, match="unknown replay tools"):
                replay_many(reader, tools=("tquad", "wat"))

    def test_nothing_requested_rejected(self, capture):
        with capture() as reader:
            with pytest.raises(ValueError, match="at least one"):
                replay_many(reader, tools=())
