"""Documentation freshness: the reference docs must track the code.

These tests keep docs/isa.md and docs/minic.md honest: every opcode the ISA
defines appears in the ISA reference, every runtime function appears in the
language reference, and the README's package table names real modules.
"""

import importlib
import pathlib
import re

from repro.isa import OPCODES
from repro.minic.runtime import RUNTIME_SIGNATURES

DOCS = pathlib.Path(__file__).resolve().parents[2] / "docs"
ROOT = DOCS.parent


class TestIsaDoc:
    def test_every_opcode_documented(self):
        text = (DOCS / "isa.md").read_text()
        for info in OPCODES:
            assert re.search(rf"\b{re.escape(info.name)}\b", text), \
                f"opcode {info.name} missing from docs/isa.md"

    def test_syscall_numbers_documented(self):
        from repro.vm import syscalls

        text = (DOCS / "isa.md").read_text()
        numbers = [getattr(syscalls, n) for n in dir(syscalls)
                   if n.startswith("SYS_")]
        assert len(numbers) == len(set(numbers)) >= 12
        # every syscall number appears in the table
        for n in numbers:
            assert re.search(rf"\|\s*{n}\s*\|", text), \
                f"syscall {n} missing from docs/isa.md"


class TestMinicDoc:
    def test_every_runtime_function_documented(self):
        text = (DOCS / "minic.md").read_text()
        for name in RUNTIME_SIGNATURES:
            assert name in text, f"{name} missing from docs/minic.md"

    def test_intrinsics_documented(self):
        from repro.minic.codegen import _FLOAT_INTRINSICS

        text = (DOCS / "minic.md").read_text()
        for name in _FLOAT_INTRINSICS:
            assert name in text
        assert "__prefetch" in text


class TestGuestsDoc:
    def test_every_registered_app_documented(self):
        from repro.apps.registry import GUEST_APPS

        text = (DOCS / "guests.md").read_text()
        for name, app in GUEST_APPS.items():
            assert f"`{name}`" in text, \
                f"guest app {name} missing from docs/guests.md"
            for preset in app.presets:
                assert preset in text, \
                    f"preset {preset} of {name} missing from docs/guests.md"

    def test_every_shape_documented(self):
        from repro.testing.workloads import SHAPES

        text = (DOCS / "guests.md").read_text()
        for shape in SHAPES:
            assert f"`{shape}`" in text

    def test_corpus_commands_and_artifacts_documented(self):
        from repro.corpus import ARTIFACTS

        text = (DOCS / "guests.md").read_text()
        for command in ("corpus run", "corpus verify", "corpus update"):
            assert f"tquad {command}" in text
        for artifact in ARTIFACTS:
            stem, _, ext = artifact.partition(".")
            assert stem in text, \
                f"artifact {artifact} missing from docs/guests.md"

    def test_referenced_modules_and_tests_exist(self):
        text = (DOCS / "guests.md").read_text()
        for module in re.findall(r"`(repro(?:\.\w+)+)`", text):
            name = module.rsplit(".", 1)
            mod = importlib.import_module(
                name[0] if len(name) == 2 else module)
            if len(name) == 2 and not hasattr(mod, name[1]):
                importlib.import_module(module)
        for path in re.findall(r"`(tests/[\w/]+\.py)`", text):
            assert (ROOT / path).exists(), path


class TestReadme:
    def test_package_table_modules_exist(self):
        text = (ROOT / "README.md").read_text()
        for module in re.findall(r"`(repro(?:\.\w+)+)`", text):
            importlib.import_module(module)

    def test_experiment_benchmarks_exist(self):
        text = (ROOT / "README.md").read_text()
        for bench in re.findall(r"`benchmarks/(bench_\w+\.py)`", text):
            assert (ROOT / "benchmarks" / bench).exists(), bench

    def test_examples_exist(self):
        text = (ROOT / "README.md").read_text()
        for example in re.findall(r"`(\w+\.py)`", text):
            if (ROOT / "examples" / example).exists():
                continue
            # names in the README that aren't examples are fine, but the
            # ones under an examples/ reference must exist
        for example in ("quickstart.py", "wfs_case_study.py",
                        "custom_pintool.py", "phase_partitioning.py",
                        "advanced_analysis.py", "locality_and_timing.py"):
            assert (ROOT / "examples" / example).exists()
            assert example in text


class TestDesignDoc:
    def test_experiment_index_matches_benchmarks(self):
        text = (ROOT / "DESIGN.md").read_text()
        for bench in re.findall(r"`benchmarks/(bench_\w+\.py)`", text):
            assert (ROOT / "benchmarks" / bench).exists(), bench

    def test_inventory_modules_exist(self):
        text = (ROOT / "DESIGN.md").read_text()
        for path in re.findall(r"`src/(repro/[\w/]+)/`", text):
            assert (ROOT / "src" / path).is_dir(), path
