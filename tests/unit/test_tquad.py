"""tQUAD profiler behaviour tests."""

import pytest

from repro.asmkit import assemble
from repro.minic import build_program
from repro.core import (PAPER_MACHINE, StackPolicy, TQuadOptions, TQuadTool,
                        run_tquad)
from repro.pin import PinEngine
from repro.vm import DATA_BASE


def profile_asm(src: str, **opt_kwargs):
    options = TQuadOptions(**opt_kwargs)
    return run_tquad(assemble(src), options=options)


LOAD_STORE = f"""
    .text
    .func main
main:
    li   t0, {DATA_BASE}
    li   t1, 5
    sd   t1, 0(t0)       # 8B global write
    ld   t2, 0(t0)       # 8B global read
    addi t3, sp, -32
    sd   t1, 0(t3)       # below sp: NOT a stack access by SP rule
    sd   t1, 16(sp)      # stack write
    ld   t4, 16(sp)      # stack read
    lw   t5, 4(t0)       # 4B global read
    halt
    .endfunc
"""


class TestAttribution:
    def test_byte_accounting(self):
        rep = profile_asm(LOAD_STORE, slice_interval=1000)
        s = rep.series("main")
        assert s.total(write=False, include_stack=True) == 8 + 8 + 4
        assert s.total(write=False, include_stack=False) == 8 + 4
        assert s.total(write=True, include_stack=True) == 24
        # the sd at sp-32 is below the stack pointer -> counted as non-stack
        assert s.total(write=True, include_stack=False) == 16

    def test_options_validation(self):
        with pytest.raises(ValueError):
            TQuadOptions(slice_interval=0)

    def test_kernel_filter(self):
        src = """
        int a[4];
        int touch() { a[0] = 1; return a[0]; }
        int main() { return touch(); }
        """
        prog = build_program(src)
        rep = run_tquad(prog, options=TQuadOptions(
            slice_interval=100, kernels=("touch",)))
        assert rep.kernels() == ["touch"]

    def test_library_attribution_to_caller_by_default(self):
        src = """
        char dst[64];
        char srcb[64];
        int main() { memcpy(dst, srcb, 64); return 0; }
        """
        rep = run_tquad(build_program(src),
                        options=TQuadOptions(slice_interval=10**6))
        s = rep.series("main")
        # memcpy's 64+64 bytes land on main (the innermost main-image kernel)
        assert s.total(write=True, include_stack=False) >= 64
        assert s.total(write=False, include_stack=False) >= 64
        assert "memcpy" not in rep.kernels()

    def test_exclude_libraries_drops_their_traffic(self):
        src = """
        char dst[64];
        char srcb[64];
        int main() { memcpy(dst, srcb, 64); return 0; }
        """
        base = run_tquad(build_program(src),
                         options=TQuadOptions(slice_interval=10**6))
        excl = run_tquad(build_program(src),
                         options=TQuadOptions(slice_interval=10**6,
                                              exclude_libraries=True))
        get = lambda r: r.series("main").total(write=True,
                                               include_stack=False)
        assert get(excl) < get(base)
        assert get(excl) == get(base) - 64  # exactly memcpy's writes

    def test_prefetch_returns_immediately(self):
        src = f"""
            .text
            .func main
        main:
            li t0, {DATA_BASE}
            prefetch t1, 0(t0)
            prefetch t1, 8(t0)
            ld t2, 0(t0)
            halt
            .endfunc
        """
        engine = PinEngine(assemble(src))
        tool = TQuadTool(TQuadOptions(slice_interval=100)).attach(engine)
        engine.run()
        rep = tool.report()
        # prefetches are intercepted but contribute no bytes
        assert tool.prefetches_skipped == 2
        assert rep.series("main").total(write=False,
                                        include_stack=True) == 8


class TestSlicing:
    def _spin_program(self, n: int) -> str:
        """A program doing one 8-byte global write every 4 instructions."""
        return f"""
            .text
            .func main
        main:
            li   t0, {DATA_BASE}
            li   t1, {n}
        loop:
            sd   t1, 0(t0)
            addi t1, t1, -1
            bnez t1, loop
            halt
            .endfunc
        """

    def test_slice_count_matches_icount(self):
        rep = profile_asm(self._spin_program(100), slice_interval=50)
        assert rep.n_slices == (rep.total_instructions - 1) // 50 + 1

    def test_bytes_conserved_across_slice_sizes(self):
        totals = set()
        for interval in (7, 50, 1000, 10**6):
            rep = profile_asm(self._spin_program(64),
                              slice_interval=interval)
            totals.add(rep.series("main").total(write=True,
                                                include_stack=True))
        assert totals == {64 * 8}

    def test_fine_slices_expose_activity_detail(self):
        fine = profile_asm(self._spin_program(64), slice_interval=10)
        coarse = profile_asm(self._spin_program(64), slice_interval=10**6)
        assert fine.series("main").activity_span()[2] > \
            coarse.series("main").activity_span()[2]

    def test_report_requires_finished_run(self):
        engine = PinEngine(assemble(LOAD_STORE))
        tool = TQuadTool().attach(engine)
        with pytest.raises(RuntimeError):
            tool.report()


class TestReportQueries:
    def _wfs_like(self):
        src = """
        int a[64];
        int b[64];
        int first() { int i; for (i=0;i<64;i=i+1) { a[i] = i; } return 0; }
        int second() { int i; int s=0; for (i=0;i<64;i=i+1) { s = s + a[i]; b[i] = s; } return s; }
        int main() { first(); return second() & 127; }
        """
        return run_tquad(build_program(src),
                         options=TQuadOptions(slice_interval=200))

    def test_top_kernels_order(self):
        rep = self._wfs_like()
        top = rep.top_kernels(2)
        assert top[0] == "second"   # reads+writes > first's writes
        assert set(top) == {"first", "second"}

    def test_activity_ordering(self):
        rep = self._wfs_like()
        f = rep.series("first").activity_span()
        s = rep.series("second").activity_span()
        assert f[0] <= s[0] and f[1] <= s[1]

    def test_matrix_shapes(self):
        rep = self._wfs_like()
        names, mat = rep.bandwidth_matrix(["first", "second"])
        assert mat.shape == (2, rep.n_slices)
        _, act = rep.activity_matrix(["first", "second"])
        assert act.dtype == bool

    def test_total_bytes(self):
        rep = self._wfs_like()
        total = rep.total_bytes(write=True, include_stack=True)
        assert total == sum(
            rep.series(k).total(write=True, include_stack=True)
            for k in rep.ledger.kernels())

    def test_seconds_conversion(self):
        rep = self._wfs_like()
        assert rep.seconds() == pytest.approx(
            rep.total_instructions / PAPER_MACHINE.instructions_per_second)

    def test_format_table_contains_kernels(self):
        rep = self._wfs_like()
        table = rep.format_table()
        assert "first" in table and "second" in table
        assert f"interval={rep.interval}" in table

    def test_summary_fields(self):
        rep = self._wfs_like()
        summ = rep.summary("second")
        assert summ.activity_span > 0
        assert summ.avg_read_excl <= summ.avg_read_incl
        assert summ.max_bw_excl <= summ.max_bw_incl
        assert summ.total_bytes_excl <= summ.total_bytes_incl


class TestStackPolicyEnum:
    def test_track_flags(self):
        assert TQuadOptions(stack=StackPolicy.BOTH).track_included
        assert TQuadOptions(stack=StackPolicy.BOTH).track_excluded
        assert TQuadOptions(stack=StackPolicy.INCLUDE).track_included
        assert not TQuadOptions(stack=StackPolicy.INCLUDE).track_excluded
        assert TQuadOptions(stack=StackPolicy.EXCLUDE).track_excluded
