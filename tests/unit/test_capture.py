"""Unit tests for the capture subsystem (:mod:`repro.capture`).

The contract under test is *byte-identity*: every report replayed from a
capture must serialise to exactly the bytes the direct (re-executing)
tool produces — same tables, same JSON — across slice intervals, stack
policies, and the parallel merge.
"""

import io
import json
import zipfile

import numpy as np
import pytest

from repro.capture import (CaptureCollector, CaptureFormatError,
                           CaptureMismatchError, CaptureReader,
                           CaptureWriter, STREAM_CALLS, STREAM_QUAD,
                           STREAM_TQUAD_READ, STREAM_TQUAD_WRITE,
                           capture_run, check_program, make_manifest,
                           merge_capture_segments, program_digest,
                           replay_gprof, replay_quad, replay_tquad)
from repro.capture.format import decode_page, encode_page
from repro.core import TQuadOptions, TQuadTool, profile_passes, run_tquad
from repro.core.options import StackPolicy
from repro.gprofsim import run_gprof
from repro.minic import build_program
from repro.quad import QuadTool, run_quad
from repro.serialize import flat_to_json, quad_to_json, tquad_to_json

APP = """
int a[48]; int b[48];
int produce() { int i; for (i = 0; i < 48; i = i + 1) { a[i] = i * 3; }
                return 0; }
int transform() { int i; for (i = 0; i < 48; i = i + 1)
                  { b[i] = a[i] + a[47 - i]; } return 0; }
int consume() { int i; int s = 0; for (i = 0; i < 48; i = i + 1)
                { s = s + b[i]; } return s; }
int main() { produce(); transform(); return consume() & 15; }
"""


def _capture(source=APP, *, grain=50, tools=("tquad", "gprof", "quad"),
             **opt):
    program = build_program(source)
    buf = io.BytesIO()
    capture_run(program, buf, tools=tools,
                options=TQuadOptions(slice_interval=grain, **opt))
    buf.seek(0)
    return program, CaptureReader(buf)


class TestPageCodec:
    @pytest.mark.parametrize("stride", [1, 2, 4])
    def test_roundtrip(self, stride):
        rng = np.random.default_rng(stride)
        arr = rng.integers(np.iinfo(np.int64).min, np.iinfo(np.int64).max,
                           size=(37, stride), dtype=np.int64)
        out = decode_page(encode_page(arr.tobytes(), stride), stride)
        assert np.array_equal(out, arr)

    def test_monotone_columns_compress_to_small_deltas(self):
        arr = np.arange(4000, dtype=np.int64).reshape(-1, 4)
        encoded = np.frombuffer(encode_page(arr.tobytes(), 4),
                                dtype=np.int64)
        assert encoded[4:].max() == 4  # constant per-row delta

    def test_torn_page_rejected(self):
        with pytest.raises(CaptureFormatError):
            decode_page(b"\x00" * 12, 2)


class TestWriterReader:
    def _manifest(self, **kw):
        base = dict(program_sha="ab" * 32, label="t", grain=10,
                    stack="both", exclude_libraries=False,
                    total_instructions=100, exit_code=0, images={},
                    kernels=[], mem_size=1 << 16)
        base.update(kw)
        return make_manifest(**base)

    def test_roundtrip(self):
        buf = io.BytesIO()
        w = CaptureWriter(buf)
        page = np.arange(40, dtype=np.int64).tobytes()
        w.add(STREAM_TQUAD_READ, page)
        w.add(STREAM_TQUAD_READ, page)
        w.finalize(self._manifest(tools=("tquad",)))
        buf.seek(0)
        with CaptureReader(buf) as r:
            assert r.streams[STREAM_TQUAD_READ]["pages"] == 2
            assert r.streams[STREAM_TQUAD_READ]["rows"] == 20
            col = r.column(STREAM_TQUAD_READ)
            assert col.shape == (20, 4)
            assert np.array_equal(col[:10].ravel(),
                                  np.arange(40, dtype=np.int64))

    def test_empty_pages_skipped(self):
        w = CaptureWriter(io.BytesIO())
        w.add(STREAM_CALLS, b"")
        assert w.stream_directory() == {}
        w.close()

    def test_unfinalized_capture_rejected(self):
        buf = io.BytesIO()
        w = CaptureWriter(buf)
        w.add(STREAM_CALLS, np.arange(4, dtype=np.int64).tobytes())
        w.close()  # no finalize -> no manifest
        buf.seek(0)
        with pytest.raises(CaptureFormatError, match="manifest"):
            CaptureReader(buf)

    def test_missing_file_rejected(self, tmp_path):
        with pytest.raises(CaptureFormatError):
            CaptureReader(str(tmp_path / "nope.capture"))

    def test_not_a_zip_rejected(self, tmp_path):
        p = tmp_path / "junk.capture"
        p.write_bytes(b"this is not a capture at all")
        with pytest.raises(CaptureFormatError, match="not a capture"):
            CaptureReader(str(p))

    def test_wrong_kind_rejected(self):
        buf = io.BytesIO()
        with zipfile.ZipFile(buf, "w") as zf:
            zf.writestr("manifest.json", json.dumps({"kind": "tarball",
                                                     "format": 1}))
        buf.seek(0)
        with pytest.raises(CaptureFormatError):
            CaptureReader(buf)

    def test_wrong_version_rejected(self):
        buf = io.BytesIO()
        with zipfile.ZipFile(buf, "w") as zf:
            zf.writestr("manifest.json",
                        json.dumps({"kind": "capture", "format": 99,
                                    "streams": {}}))
        buf.seek(0)
        with pytest.raises(CaptureFormatError, match="version"):
            CaptureReader(buf)

    def test_corrupt_manifest_rejected(self):
        buf = io.BytesIO()
        with zipfile.ZipFile(buf, "w") as zf:
            zf.writestr("manifest.json", "{not json")
        buf.seek(0)
        with pytest.raises(CaptureFormatError):
            CaptureReader(buf)

    def test_missing_stream_named_in_error(self):
        buf = io.BytesIO()
        w = CaptureWriter(buf)
        w.add(STREAM_CALLS, np.arange(4, dtype=np.int64).tobytes())
        w.finalize(self._manifest(tools=("gprof",)))
        buf.seek(0)
        with CaptureReader(buf) as r:
            with pytest.raises(CaptureMismatchError, match="calls"):
                r.require_stream(STREAM_QUAD)

    def test_collector_reset_preserves_extracted_pages(self):
        c = CaptureCollector()
        c.add(STREAM_CALLS, b"\x01" * 16)
        pages = c.pages
        c.reset()
        assert pages[STREAM_CALLS] and c.pages == {}


class TestReplayEquality:
    def test_tquad_at_grain_and_multiples(self):
        program, reader = self._cached()
        with reader:
            for interval in (50, 100, 250, 500):
                direct = run_tquad(program, options=TQuadOptions(
                    slice_interval=interval))
                replay = replay_tquad(reader, TQuadOptions(
                    slice_interval=interval))
                assert tquad_to_json(replay) == tquad_to_json(direct)

    def test_derived_stack_policies(self):
        program, reader = self._cached()
        with reader:
            for policy in (StackPolicy.INCLUDE, StackPolicy.EXCLUDE):
                opts = TQuadOptions(slice_interval=100, stack=policy)
                direct = run_tquad(program, options=opts)
                replay = replay_tquad(reader, opts)
                assert tquad_to_json(replay) == tquad_to_json(direct)

    def test_gprof(self):
        program, reader = self._cached()
        with reader:
            direct = run_gprof(program)
            replay = replay_gprof(reader)
            assert flat_to_json(replay) == flat_to_json(direct)
            assert replay.format_call_graph() == direct.format_call_graph()

    def test_quad(self):
        program, reader = self._cached()
        with reader:
            direct = run_quad(program)
            replay = replay_quad(reader)
            assert quad_to_json(replay) == quad_to_json(direct)
            assert replay.format_table() == direct.format_table()
            assert replay.shadow_stats is not None

    def test_exclude_libraries_variant(self):
        program, reader = _capture(grain=100, exclude_libraries=True)
        with reader:
            opts = TQuadOptions(slice_interval=200, exclude_libraries=True)
            direct = run_tquad(program, options=opts)
            assert tquad_to_json(replay_tquad(reader, opts)) \
                == tquad_to_json(direct)
            with pytest.raises(CaptureMismatchError, match="librar"):
                replay_tquad(reader, TQuadOptions(slice_interval=200))

    _cache = None

    @classmethod
    def _cached(cls):
        # one VM execution feeds every equality test in the class
        program = build_program(APP)
        if cls._cache is None:
            buf = io.BytesIO()
            capture_run(program, buf,
                        options=TQuadOptions(slice_interval=50))
            cls._cache = buf.getvalue()
        return program, CaptureReader(io.BytesIO(cls._cache))


class TestReplayValidation:
    def test_wrong_program_rejected(self):
        _, reader = _capture(grain=100, tools=("tquad",))
        other = build_program("int main() { return 0; }")
        with reader:
            with pytest.raises(CaptureMismatchError, match="different"):
                check_program(reader.manifest, other)

    def test_non_multiple_interval_rejected(self):
        _, reader = _capture(grain=100, tools=("tquad",))
        with reader:
            with pytest.raises(CaptureMismatchError, match="multiple"):
                replay_tquad(reader, TQuadOptions(slice_interval=150))

    def test_missing_tool_stream_rejected(self):
        _, reader = _capture(grain=100, tools=("gprof",))
        with reader:
            with pytest.raises(CaptureMismatchError, match="tquad"):
                replay_tquad(reader, TQuadOptions(slice_interval=100))
            with pytest.raises(CaptureMismatchError, match="quad"):
                replay_quad(reader)

    def test_single_policy_capture_replays_itself_only(self):
        program, reader = _capture(grain=100, stack=StackPolicy.EXCLUDE,
                                   tools=("tquad",))
        with reader:
            opts = TQuadOptions(slice_interval=100,
                                stack=StackPolicy.EXCLUDE)
            direct = run_tquad(program, options=opts)
            assert tquad_to_json(replay_tquad(reader, opts)) \
                == tquad_to_json(direct)
            with pytest.raises(CaptureMismatchError, match="stack"):
                replay_tquad(reader, TQuadOptions(slice_interval=100))

    def test_program_digest_is_content_sensitive(self):
        p1 = build_program(APP)
        p2 = build_program(APP.replace("i * 3", "i * 4"))
        assert program_digest(p1) == program_digest(build_program(APP))
        assert program_digest(p1) != program_digest(p2)


class TestToolGuards:
    def test_tquad_capture_requires_buffered(self):
        with pytest.raises(ValueError, match="buffered"):
            TQuadTool(TQuadOptions(), buffered=False,
                      capture=CaptureCollector())

    def test_quad_capture_requires_paged_shadow(self):
        with pytest.raises(ValueError, match="paged"):
            QuadTool(shadow="legacy", capture=CaptureCollector())

    def test_capture_run_rejects_unknown_tools(self):
        program = build_program("int main() { return 0; }")
        with pytest.raises(ValueError, match="unknown"):
            capture_run(program, io.BytesIO(), tools=("tquad", "bogus"))
        with pytest.raises(ValueError):
            capture_run(program, io.BytesIO(), tools=())

    def test_parallel_capture_writer_requires_capture_spec(self):
        from repro.parallel import TQuadSpec, parallel_profile

        program = build_program("int main() { return 0; }")
        with pytest.raises(ValueError, match="capture"):
            parallel_profile(program, TQuadSpec(options=TQuadOptions()),
                             capture_writer=CaptureWriter(io.BytesIO()))


class TestParallelCapture:
    def test_sharded_capture_replays_byte_identically(self):
        from repro.parallel import TQuadSpec, parallel_profile

        program = build_program(APP)
        options = TQuadOptions(slice_interval=50)
        buf = io.BytesIO()
        writer = CaptureWriter(buf)
        run = parallel_profile(program,
                               TQuadSpec(options=options, capture=True),
                               jobs=3, executor="inline",
                               capture_writer=writer)
        writer.finalize(make_manifest(
            program_sha=program_digest(program), label="", grain=50,
            stack="both", exclude_libraries=False,
            total_instructions=run.total_instructions,
            exit_code=run.exit_code, images=run.images,
            kernels=run.capture_kernels, mem_size=run.mem_size,
            tools=("tquad",),
            prefetches_skipped=run.prefetches_skipped))
        buf.seek(0)
        with CaptureReader(buf) as reader:
            for interval in (50, 150, 500):
                direct = run_tquad(program, options=TQuadOptions(
                    slice_interval=interval))
                replay = replay_tquad(reader, TQuadOptions(
                    slice_interval=interval))
                assert tquad_to_json(replay) == tquad_to_json(direct)

    def test_merge_rejects_payload_without_segments(self):
        from repro.parallel.worker import TQuadPayload

        class FakeResult:
            index = 0
            payloads = {"tquad": TQuadPayload(history={},
                                              prefetches_skipped=0)}

        with pytest.raises(ValueError, match="capture"):
            merge_capture_segments([FakeResult()],
                                   CaptureWriter(io.BytesIO()))


class TestMultipass:
    def _build(self):
        return build_program(APP), None

    def test_capture_path_matches_reexecution(self):
        intervals = [50, 200, 1000]
        fast = profile_passes(self._build, intervals)
        slow = profile_passes(self._build, intervals, reexecute=True)
        for interval in intervals:
            assert tquad_to_json(fast.reports[interval]) \
                == tquad_to_json(slow.reports[interval])
        assert fast.format_table() == slow.format_table()

    def test_non_divisible_intervals_use_gcd_grain(self):
        fast = profile_passes(self._build, [150, 100])
        slow = profile_passes(self._build, [150, 100], reexecute=True)
        assert fast.format_table() == slow.format_table()
