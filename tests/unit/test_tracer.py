"""MemoryTraceTool tests, including the tQUAD cross-check."""

import numpy as np
import pytest

from repro.core import TQuadOptions, TQuadTool
from repro.minic import build_program
from repro.pin import MemoryTrace, MemoryTraceTool, PinEngine

SRC = """
int a[64];
int writer() { int i; for (i = 0; i < 64; i++) { a[i] = i; } return 0; }
int reader() { int i; int s = 0; for (i = 0; i < 64; i++) { s += a[i]; }
               return s; }
int main() { writer(); return reader() & 255; }
"""


@pytest.fixture(scope="module")
def traced():
    engine = PinEngine(build_program(SRC))
    tool = MemoryTraceTool().attach(engine)
    tq = TQuadTool(TQuadOptions(slice_interval=500)).attach(engine)
    engine.run()
    return tool.trace(), tq.report()


class TestTrace:
    def test_trace_covers_all_bytes(self, traced):
        trace, report = traced
        assert trace.bytes_moved(write=False) == \
            report.total_bytes(write=False, include_stack=True)
        assert trace.bytes_moved(write=True) == \
            report.total_bytes(write=True, include_stack=True)

    def test_slice_totals_match_ledger(self, traced):
        trace, report = traced
        offline = trace.slice_totals(500, write=True)
        online = sum(
            (report.series(k).dense(report.n_slices, write=True,
                                    include_stack=True)
             for k in report.ledger.kernels()),
            np.zeros(report.n_slices, dtype=np.int64))
        np.testing.assert_array_equal(offline, online[:len(offline)])

    def test_per_kernel_subtrace(self, traced):
        trace, _ = traced
        writer = trace.for_kernel("writer")
        assert len(writer) > 0
        assert (writer.kernel_id == trace.kernels.index("writer")).all()
        assert writer.bytes_moved(write=True) >= 64 * 8

    def test_stamps_monotonic(self, traced):
        trace, _ = traced
        assert (np.diff(trace.icount) >= 0).all()

    def test_not_truncated(self, traced):
        trace, _ = traced
        assert not trace.truncated

    def test_npz_roundtrip(self, traced, tmp_path):
        trace, _ = traced
        path = tmp_path / "trace.npz"
        trace.save_npz(path)
        back = MemoryTrace.load_npz(path)
        np.testing.assert_array_equal(back.icount, trace.icount)
        np.testing.assert_array_equal(back.address, trace.address)
        assert back.kernels == trace.kernels
        assert back.truncated == trace.truncated


class TestTruncation:
    def test_limit_respected(self):
        engine = PinEngine(build_program(SRC))
        tool = MemoryTraceTool(limit=10).attach(engine)
        engine.run()
        trace = tool.trace()
        assert len(trace) == 10
        assert trace.truncated

    def test_bad_limit(self):
        with pytest.raises(ValueError):
            MemoryTraceTool(limit=0)

    def test_bad_interval(self):
        engine = PinEngine(build_program(SRC))
        tool = MemoryTraceTool(limit=100).attach(engine)
        engine.run()
        with pytest.raises(ValueError):
            tool.trace().slice_totals(0)

    def test_empty_trace(self):
        engine = PinEngine(build_program("int main() { return 0; }"))
        # only count accesses in a routine that never runs
        tool = MemoryTraceTool(limit=5)
        # don't attach: build an empty trace directly
        trace = tool.trace()
        assert len(trace) == 0
        assert trace.slice_totals(10).size == 0
