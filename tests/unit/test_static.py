"""CFG construction and WCET bound tests."""

import pytest

from repro.asmkit import assemble
from repro.gprofsim import run_gprof
from repro.minic import build_program
from repro.static import (CFGError, InstructionCosts, WCETAnalyzer,
                          WCETError, build_cfg, estimate_wcet)


class TestCFG:
    def test_straight_line_single_block(self):
        prog = build_program("int main() { return 1 + 2; }")
        cfg = build_cfg(prog, "main")
        # prologue..epilogue may split at the ret-label join, but there are
        # no branches: every block chains to the next
        assert cfg.natural_loops() == []
        assert len(cfg.exit_blocks()) == 1

    def test_if_else_diamond(self):
        prog = build_program("""
        int f(int x) {
            if (x > 0) { return 1; }
            return 2;
        }
        int main() { return f(1); }
        """)
        cfg = build_cfg(prog, "f")
        branching = [b for b in cfg.blocks if len(b.succs) == 2]
        assert len(branching) >= 1
        assert cfg.natural_loops() == []

    def test_loop_detection(self):
        prog = build_program("""
        int f(int n) {
            int s = 0;
            int i;
            for (i = 0; i < n; i++) { s += i; }
            return s;
        }
        int main() { return f(3); }
        """)
        cfg = build_cfg(prog, "f")
        loops = cfg.natural_loops()
        assert len(loops) == 1
        (loop,) = loops
        assert len(loop.body) >= 2
        assert loop.header in loop.body

    def test_nested_loops_ordered_innermost_first(self):
        prog = build_program("""
        int f() {
            int s = 0;
            int i; int j;
            for (i = 0; i < 4; i++) {
                for (j = 0; j < 4; j++) { s += 1; }
            }
            return s;
        }
        int main() { return f(); }
        """)
        cfg = build_cfg(prog, "f")
        loops = cfg.natural_loops()
        assert len(loops) == 2
        inner, outer = loops
        assert inner.body < outer.body

    def test_do_while_loop(self):
        prog = build_program("""
        int f() {
            int n = 0;
            do { n++; } while (n < 5);
            return n;
        }
        int main() { return f(); }
        """)
        assert len(build_cfg(prog, "f").natural_loops()) == 1

    def test_call_sites_resolved(self):
        prog = build_program("""
        int leaf() { return 1; }
        int f() { return leaf() + leaf(); }
        int main() { return f(); }
        """)
        cfg = build_cfg(prog, "f")
        calls = [c for b in cfg.blocks for c in b.calls]
        assert [c.callee for c in calls] == ["leaf", "leaf"]

    def test_dominators_entry_dominates_all(self):
        prog = build_program("""
        int f(int x) {
            int s = 0;
            while (x > 0) { s += x; x--; }
            return s;
        }
        int main() { return f(2); }
        """)
        cfg = build_cfg(prog, "f")
        dom = cfg.dominators()
        for b in range(len(cfg.blocks)):
            if cfg.blocks[b].preds or b == 0:
                assert 0 in dom[b]

    def test_preds_consistent_with_succs(self):
        prog = build_program("""
        int f(int x) { if (x) { return 1; } return 2; }
        int main() { return f(0); }
        """)
        cfg = build_cfg(prog, "f")
        for b in cfg.blocks:
            for s in b.succs:
                assert b.id in cfg.blocks[s].preds


class TestWCET:
    def _flat_and_prog(self, src):
        prog = build_program(src)
        return prog, run_gprof(prog)

    def test_straight_line_exact(self):
        prog, flat = self._flat_and_prog("int main() { return 3 * 4; }")
        res = estimate_wcet(prog, "main")
        assert res.bound == flat.row("main").cumulative_instructions

    def test_branch_takes_longest_path(self):
        src = """
        int f(int x) {
            if (x) {
                int a = 1; int b = 2; int c = 3;
                return a + b + c;
            }
            return 0;
        }
        int main() { return f(0); }
        """
        prog, flat = self._flat_and_prog(src)
        res = estimate_wcet(prog, "f")
        # the run took the short path; the bound covers the long one
        assert res.bound > flat.row("f").cumulative_instructions

    def test_loop_bound_exact_for_counted_loop(self):
        src = """
        int main() {
            int s = 0;
            int i;
            for (i = 0; i < 37; i++) { s += i; }
            return s & 255;
        }
        """
        prog, flat = self._flat_and_prog(src)
        res = estimate_wcet(prog, "main", loop_bounds={"main": [37]})
        assert res.bound == flat.row("main").cumulative_instructions

    def test_nested_loops_and_calls_sound(self):
        src = """
        int inner(int n) {
            int i; int s = 0;
            for (i = 0; i < n; i++) { s += i; }
            return s;
        }
        int main() {
            int j; int t = 0;
            for (j = 0; j < 6; j++) { t += inner(9); }
            return t & 255;
        }
        """
        prog, flat = self._flat_and_prog(src)
        res = estimate_wcet(prog, "main",
                            loop_bounds={"main": [6], "inner": [9]})
        measured = flat.row("main").cumulative_instructions
        assert res.bound >= measured
        assert res.bound <= measured * 1.2   # and not wildly pessimistic
        assert "inner" in res.callees

    def test_missing_loop_bound_reported(self):
        prog = build_program("""
        int main() {
            int i; int s = 0;
            for (i = 0; i < 4; i++) { s += i; }
            return s;
        }
        """)
        with pytest.raises(WCETError) as err:
            estimate_wcet(prog, "main")
        assert "loop_bounds" in str(err.value)

    def test_recursion_rejected(self):
        prog = build_program("""
        int f(int n) { if (n <= 0) { return 0; } return f(n - 1); }
        int main() { return f(3); }
        """)
        with pytest.raises(WCETError) as err:
            estimate_wcet(prog, "main")
        assert "recursion" in str(err.value)

    def test_indirect_call_rejected(self):
        prog = assemble("""
            .text
            .func main
        main:
            la   t0, main
            addi sp, sp, -8
            sd   ra, 0(sp)
            jalr ra, t0, 0
            ld   ra, 0(sp)
            addi sp, sp, 8
            halt
            .endfunc
        """)
        with pytest.raises(WCETError) as err:
            estimate_wcet(prog, "main")
        assert "indirect" in str(err.value)

    def test_unknown_routine(self):
        prog = build_program("int main() { return 0; }")
        with pytest.raises(WCETError):
            estimate_wcet(prog, "ghost")

    def test_loops_of_listing(self):
        prog = build_program("""
        int main() {
            int i; int j; int s = 0;
            for (i = 0; i < 2; i++) { s += 1; }
            for (j = 0; j < 3; j++) { s += 2; }
            return s;
        }
        """)
        analyzer = WCETAnalyzer(prog)
        headers = analyzer.loops_of("main")
        assert len(headers) == 2
        assert headers == sorted(headers)

    def test_cost_model_scales_bound(self):
        prog = build_program("""
        int g[8];
        int main() {
            int i;
            for (i = 0; i < 8; i++) { g[i] = i; }
            return 0;
        }
        """)
        cheap = estimate_wcet(prog, "main", loop_bounds={"main": [8]})
        dear = estimate_wcet(prog, "main", loop_bounds={"main": [8]},
                             costs=InstructionCosts(memory=10.0))
        assert dear.bound > cheap.bound

    def test_memoisation_shares_callee_results(self):
        prog = build_program("""
        int leaf() { return 1; }
        int a() { return leaf(); }
        int b() { return leaf(); }
        int main() { return a() + b(); }
        """)
        analyzer = WCETAnalyzer(prog)
        res = analyzer.analyze("main")
        assert res.bound > 0
        assert analyzer.analyze("leaf") is analyzer.analyze("leaf")

    def test_over_pessimism_with_slack_bounds(self):
        """The paper's §II criticism: static bounds with conservative loop
        bounds become over-pessimistic, which is why dynamic analysis
        matters for HW/SW partitioning."""
        src = """
        int main() {
            int i; int s = 0;
            for (i = 0; i < 10; i++) { s += i; }
            return s;
        }
        """
        prog, flat = self._flat_and_prog(src)
        slack = estimate_wcet(prog, "main", loop_bounds={"main": [10000]})
        measured = flat.row("main").cumulative_instructions
        assert slack.bound > 100 * measured
