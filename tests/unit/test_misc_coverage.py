"""Coverage for smaller API surfaces: multi-unit builds, program metadata,
runner helpers, auxiliary kernels vs NumPy."""

import numpy as np
import pytest

from repro.apps.kernels import (build_fir, build_matmul, build_mergesort,
                                conv2d_source, fir_source, histogram_source,
                                matmul_source, mergesort_source,
                                pipeline_source)
from repro.apps.wfs import TINY, run_wfs
from repro.isa import disassemble
from repro.minic import MiniCError, build_program, run_minic
from repro.vm import run_program


class TestMultiUnitBuilds:
    def test_two_units_link(self):
        unit_a = """
        int shared_helper(int x) { return x * 2; }
        """
        unit_b = """
        extern int shared_helper(int x);
        int main() { return shared_helper(21); }
        """
        m = run_program(build_program([unit_b, unit_a]),
                        max_instructions=100_000)
        assert m.exit_code == 42

    def test_unit_private_globals_do_not_collide(self):
        unit_a = """
        int counter = 5;
        int get_a() { return counter; }
        """
        unit_b = """
        int counter = 7;
        extern int get_a();
        int main() { return get_a() * 10 + counter; }
        """
        m = run_program(build_program([unit_b, unit_a]),
                        max_instructions=100_000)
        assert m.exit_code == 57

    def test_duplicate_function_across_units_rejected(self):
        from repro.asmkit import AsmError

        unit = "int f() { return 1; } int main() { return f(); }"
        with pytest.raises(AsmError):
            build_program([unit, "int f() { return 2; }"])


class TestProgramMetadata:
    def test_describe(self):
        prog = build_program("int main() { return 0; }")
        text = prog.describe()
        assert "instructions" in text
        assert "routines" in text
        assert "_start" in text  # entry routine name

    def test_disassemble_addresses(self):
        prog = build_program("int main() { return 0; }")
        listing = disassemble(prog.instrs[:4], pc_base=0x1000)
        assert listing.splitlines()[0].startswith("0x00001000:")
        assert listing.splitlines()[1].startswith("0x00001010:")

    def test_entry_pc(self):
        prog = build_program("int main() { return 0; }")
        assert prog.entry_pc == prog.routine("_start").start_pc


class TestWfsRunner:
    def test_run_properties(self):
        run = run_wfs(TINY)
        assert run.instructions == run.machine.icount
        assert run.cfg is TINY
        assert len(run.output_wav) > 44
        assert run.program.has_routine("wav_store")

    def test_program_reuse(self):
        first = run_wfs(TINY)
        second = run_wfs(TINY, program=first.program)
        assert second.output_wav == first.output_wav


class TestAuxKernelsCorrect:
    def test_matmul_matches_numpy(self):
        n = 8
        m = run_program(build_matmul(n), max_instructions=10_000_000)
        a = np.array([[((i + j) % 7) * 0.25 for j in range(n)]
                      for i in range(n)])
        b = np.array([[((i * 3 + j) % 5) * 0.5 for j in range(n)]
                      for i in range(n)])
        expected = (a @ b).sum()
        printed = float(m.stdout_text().strip())
        assert printed == pytest.approx(expected, rel=1e-6)

    def test_fir_energy_positive(self):
        m = run_program(build_fir(length=256, n_taps=8),
                        max_instructions=10_000_000)
        assert float(m.stdout_text().strip()) > 0

    def test_mergesort_sorts(self):
        m = run_program(build_mergesort(length=128),
                        max_instructions=10_000_000)
        assert m.exit_code == 0  # 0 = verified sorted

    def test_all_templates_fully_substituted(self):
        for source in (matmul_source(8), fir_source(64, 4),
                       mergesort_source(32), pipeline_source(32),
                       conv2d_source(16, 8), histogram_source(64)):
            assert "@" not in source
            build_program(source)  # and they all compile

    def test_bad_sizes_rejected_at_compile(self):
        # a negative dimension produces a negative array length, which the
        # MiniC front-end rejects
        with pytest.raises(MiniCError):
            build_program(conv2d_source(-8, 8))


class TestRunMinicOptions:
    def test_mem_size_override(self):
        m = run_minic("int main() { return 0; }", mem_size=1 << 24)
        assert m.mem_size == 1 << 24

    def test_budget_enforced(self):
        from repro.vm import InstructionBudgetExceeded

        with pytest.raises(InstructionBudgetExceeded):
            run_minic("""
            int main() {
                while (1) { }
                return 0;
            }
            """, max_instructions=1000)
