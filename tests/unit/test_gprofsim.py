"""gprof-sim tests: exact attribution, recursion, sampling emulation."""

import numpy as np
import pytest

from repro.core.machine_model import MachineModel
from repro.gprofsim import FlatProfile, FlatRow, run_gprof
from repro.minic import build_program

THREE_STAGE = """
int work(int n) {
    int i; int s = 0;
    for (i = 0; i < n; i = i + 1) { s = s + i; }
    return s;
}
int light() { return work(10); }
int heavy() { return work(1000); }
int main() { return (light() + heavy()) & 255; }
"""


class TestExactAttribution:
    def test_call_counts(self):
        flat = run_gprof(build_program(THREE_STAGE))
        assert flat.row("work").calls == 2
        assert flat.row("light").calls == 1
        assert flat.row("main").calls == 1

    def test_self_time_ordering(self):
        flat = run_gprof(build_program(THREE_STAGE))
        assert flat.rank("work") == 1
        assert flat.percent("work") > 80

    def test_cumulative_includes_descendants(self):
        flat = run_gprof(build_program(THREE_STAGE))
        heavy = flat.row("heavy")
        assert heavy.cumulative_instructions > heavy.self_instructions
        main = flat.row("main")
        assert main.cumulative_instructions >= \
            flat.row("heavy").cumulative_instructions

    def test_self_instructions_sum_close_to_total(self):
        flat = run_gprof(build_program(THREE_STAGE), main_image_only=False)
        # every instruction between first routine entry and exit is
        # attributed to exactly one routine
        assert flat.profiled_instructions == flat.total_instructions

    def test_recursion_cumulative_counted_once(self):
        src = """
        int fact(int n) {
            if (n <= 1) { return 1; }
            return n * fact(n - 1);
        }
        int main() { return fact(10) % 251; }
        """
        flat = run_gprof(build_program(src))
        fact = flat.row("fact")
        assert fact.calls == 10
        # cumulative counts only the outermost activation: it must be less
        # than calls * (self per call) * depth would naively give
        assert fact.cumulative_instructions <= flat.total_instructions

    def test_ms_per_call_derivation(self):
        flat = run_gprof(build_program(THREE_STAGE))
        row = flat.row("work")
        expected = flat.machine.milliseconds(row.self_instructions) / 2
        assert flat.self_ms_per_call("work") == pytest.approx(expected)
        assert flat.total_ms_per_call("work") >= flat.self_ms_per_call("work")

    def test_call_graph_edges(self):
        flat = run_gprof(build_program(THREE_STAGE), main_image_only=False)
        assert flat.edges[("light", "work")] == 1
        assert flat.edges[("heavy", "work")] == 1
        assert flat.edges[("main", "light")] == 1
        assert flat.callers_of("work") == {"light": 1, "heavy": 1}
        assert set(flat.callees_of("main")) == {"light", "heavy"}

    def test_library_filter(self):
        flat = run_gprof(build_program(THREE_STAGE))
        assert "_start" not in flat
        full = run_gprof(build_program(THREE_STAGE), main_image_only=False)
        assert "_start" in full


class TestSampling:
    def _profile(self):
        rows = [FlatRow("hot", 90_000, 90_000, 3),
                FlatRow("warm", 9_000, 9_000, 2),
                FlatRow("cold", 1_000, 1_000, 1)]
        return FlatProfile(rows=rows, total_instructions=100_000)

    def test_deterministic_sampling_preserves_big_functions(self):
        flat = self._profile()
        sampled = flat.sampled(1000)
        assert sampled.rank("hot") == 1
        assert sampled.row("hot").self_instructions == 90_000

    def test_sampling_quantises_small_functions(self):
        flat = self._profile()
        sampled = flat.sampled(10_000)
        # cold has 1k instr < one sample period: rounds to zero
        assert sampled.row("cold").self_instructions == 0

    def test_random_sampling_reproducible(self):
        flat = self._profile()
        a = flat.sampled(1000, rng=np.random.default_rng(7))
        b = flat.sampled(1000, rng=np.random.default_rng(7))
        assert [r.self_instructions for r in a.rows] == \
            [r.self_instructions for r in b.rows]

    def test_random_sampling_noise_shrinks_with_period(self):
        flat = self._profile()
        rng = np.random.default_rng(3)
        fine = flat.sampled(10, rng=rng)
        err = abs(fine.row("warm").self_instructions - 9_000)
        assert err < 2_000

    def test_sampling_validates_period(self):
        with pytest.raises(ValueError):
            self._profile().sampled(0)


class TestMachineModelIntegration:
    def test_custom_machine_scales_seconds(self):
        rows = [FlatRow("f", 2_830_000, 2_830_000, 1)]
        slow = FlatProfile(rows=rows, total_instructions=2_830_000,
                           machine=MachineModel(frequency_hz=1e6, ipc=1.0))
        fast = FlatProfile(rows=rows, total_instructions=2_830_000,
                           machine=MachineModel(frequency_hz=1e9, ipc=1.0))
        assert slow.self_seconds("f") == pytest.approx(2.83)
        assert fast.self_seconds("f") == pytest.approx(0.00283)

    def test_format_table(self):
        flat = run_gprof(build_program(THREE_STAGE))
        text = flat.format_table(top=3)
        assert "%time" in text
        assert "work" in text
