"""Data-cache simulator tests."""

import pytest

from repro.minic import build_program
from repro.tools import CacheConfig, CacheModel, DCacheTool, run_dcache


class TestCacheConfig:
    def test_derived_geometry(self):
        cfg = CacheConfig(size_bytes=32 * 1024, line_bytes=64, ways=8)
        assert cfg.n_sets == 64
        assert cfg.line_shift == 6

    def test_validation(self):
        with pytest.raises(ValueError):
            CacheConfig(line_bytes=48)
        with pytest.raises(ValueError):
            CacheConfig(size_bytes=1000, line_bytes=64, ways=8)


class TestCacheModel:
    def test_cold_miss_then_hit(self):
        c = CacheModel(CacheConfig(size_bytes=1024, line_bytes=64, ways=2))
        assert not c.access(0x1000)
        assert c.access(0x1000)
        assert c.access(0x103F)   # same line
        assert not c.access(0x1040)  # next line
        assert c.hits == 2 and c.misses == 2

    def test_lru_eviction(self):
        # 2-way, map three lines to one set: A B A C -> C evicts B
        cfg = CacheConfig(size_bytes=2 * 64, line_bytes=64, ways=2)
        assert cfg.n_sets == 1
        c = CacheModel(cfg)
        A, B, C = 0, 64, 128
        c.access(A)
        c.access(B)
        c.access(A)          # A becomes MRU
        c.access(C)          # evicts B (LRU)
        assert c.evictions == 1
        assert c.access(A)   # still resident
        assert not c.access(B)  # was evicted

    def test_access_range_spanning_lines(self):
        c = CacheModel(CacheConfig(size_bytes=1024, line_bytes=64, ways=2))
        misses = c.access_range(60, 8)   # straddles two lines
        assert misses == 2
        assert c.access_range(60, 8) == 0

    def test_resident_lines(self):
        c = CacheModel(CacheConfig(size_bytes=1024, line_bytes=64, ways=2))
        for i in range(5):
            c.access(i * 64)
        assert c.resident_lines() == 5


STREAM_VS_SCATTER = """
int table[8192];
int stream() {
    int i; int s = 0;
    for (i = 0; i < 4096; i++) { s += table[i]; }
    return s;
}
int scatter() {
    int i; int s = 0; int x = 7;
    for (i = 0; i < 4096; i++) {
        x = (x * 1103515245 + 12345) % 1048576;
        s += table[x % 8192];
    }
    return s;
}
int main() { return (stream() + scatter()) & 255; }
"""


class TestDCacheTool:
    @pytest.fixture(scope="class")
    def tool(self):
        return run_dcache(build_program(STREAM_VS_SCATTER),
                          config=CacheConfig(size_bytes=4096, line_bytes=64,
                                             ways=4))

    def test_streaming_beats_scatter(self, tool):
        assert tool.stats("stream").miss_rate < \
            tool.stats("scatter").miss_rate

    def test_streaming_miss_rate_matches_theory(self, tool):
        # sequential 8-byte reads through 64-byte lines: ~1 global miss per
        # 8 accesses, plus hits on locals
        s = tool.stats("stream")
        assert 0.0 < s.miss_rate < 0.2

    def test_totals_consistent(self, tool):
        t = tool.total()
        assert t.accesses == t.hits + t.misses
        assert t.accesses == sum(s.accesses
                                 for s in tool.per_kernel.values())

    def test_mpki_positive(self, tool):
        assert tool.mpki() > 0
        assert tool.mpki("scatter") > tool.mpki("stream")

    def test_format_table(self, tool):
        text = tool.format_table()
        assert "scatter" in text and "miss rate" in text and "TOTAL" in text

    def test_unknown_kernel_stats_empty(self, tool):
        assert tool.stats("nope").accesses == 0
        assert tool.stats("nope").miss_rate == 0.0

    def test_bigger_cache_fewer_misses(self):
        small = run_dcache(build_program(STREAM_VS_SCATTER),
                           config=CacheConfig(size_bytes=1024,
                                              line_bytes=64, ways=2))
        big = run_dcache(build_program(STREAM_VS_SCATTER),
                         config=CacheConfig(size_bytes=128 * 1024,
                                            line_bytes=64, ways=8))
        assert big.total().misses < small.total().misses

    def test_double_attach_rejected(self):
        from repro.pin import PinEngine

        engine = PinEngine(build_program(STREAM_VS_SCATTER))
        tool = DCacheTool().attach(engine)
        with pytest.raises(RuntimeError):
            tool.attach(engine)

    def test_prefetch_warms_cache(self):
        src = """
        int data[512];
        int main() {
            int i;
            for (i = 0; i < 512; i++) { data[i] = i; }   // fill
            for (i = 0; i < 512; i++) { __prefetch(&data[i]); }
            int s = 0;
            for (i = 0; i < 512; i++) { s += data[i]; }
            return s & 7;
        }
        """
        # tiny cache: the fill evicts itself, but the prefetch pass reloads
        # everything it can; demand misses in the sum loop must be fewer
        # than a no-prefetch variant
        cfg = CacheConfig(size_bytes=8 * 1024, line_bytes=64, ways=8)
        with_pf = run_dcache(build_program(src), config=cfg)
        no_pf = run_dcache(build_program(src.replace(
            "__prefetch(&data[i]);", "")), config=cfg)
        assert with_pf.total().misses <= no_pf.total().misses
