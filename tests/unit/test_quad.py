"""QUAD tool tests: shadow memory, UnMA, bindings, overhead model."""

import pytest

from repro.asmkit import assemble
from repro.gprofsim import run_gprof
from repro.minic import build_program
from repro.pin import PinEngine
from repro.quad import (InstrumentationCostModel, QuadTool,
                        instrumented_profile, rank_shifts, run_quad)
from repro.vm import DATA_BASE

PIPELINE = """
int buf[32];
int out[32];
int producer() {
    int i;
    for (i = 0; i < 32; i = i + 1) { buf[i] = i; }
    return 0;
}
int consumer() {
    int i; int s = 0;
    for (i = 0; i < 32; i = i + 1) { out[i] = buf[i]; s = s + out[i]; }
    return s;
}
int main() { producer(); return consumer() & 255; }
"""


class TestShadowMemory:
    def test_producer_consumer_binding(self):
        rep = run_quad(build_program(PIPELINE))
        assert rep.communication("producer", "consumer") == 32 * 8
        assert rep.communication("consumer", "producer") == 0

    def test_out_counts_consumed_bytes(self):
        rep = run_quad(build_program(PIPELINE))
        row = rep.row("producer")
        # producer's global output is read once by consumer
        assert row.out_excl == 32 * 8

    def test_unma_counts_unique_addresses(self):
        src = """
        int cell;
        int main() {
            int i;
            for (i = 0; i < 100; i = i + 1) { cell = i; }
            return cell & 1;
        }
        """
        rep = run_quad(build_program(src))
        row = rep.row("main")
        # 100 writes, all to the same 8 bytes (plus frame traffic on incl)
        assert row.out_unma_excl == 8

    def test_partial_overwrite_byte_granularity(self):
        src = f"""
            .text
            .func writer
        writer:
            li t0, {DATA_BASE}
            li t1, -1
            sd t1, 0(t0)      # writer owns 8 bytes
            ret
            .endfunc
            .func clobber
        clobber:
            li t0, {DATA_BASE}
            li t1, 0
            sw t1, 0(t0)      # clobber takes over the low 4 bytes
            ret
            .endfunc
            .func reader
        reader:
            li t0, {DATA_BASE}
            ld t2, 0(t0)
            ret
            .endfunc
            .func main
        main:
            addi sp, sp, -8
            sd ra, 0(sp)
            call writer
            call clobber
            call reader
            ld ra, 0(sp)
            addi sp, sp, 8
            halt
            .endfunc
        """
        engine = PinEngine(assemble(src))
        tool = QuadTool().attach(engine)
        engine.run()
        rep = tool.report()
        assert rep.communication("writer", "reader") == 4
        assert rep.communication("clobber", "reader") == 4

    def test_stack_traffic_separated(self):
        src = """
        int g;
        int main() {
            int local = 3;       // stack write
            g = local + 1;       // stack read + global write
            return g;
        }
        """
        rep = run_quad(build_program(src))
        row = rep.row("main")
        assert row.in_incl > row.in_excl
        assert row.out_unma_incl > row.out_unma_excl

    def test_self_communication(self):
        rep = run_quad(build_program(PIPELINE))
        # consumer writes out[] then reads it back -> self binding
        assert rep.communication("consumer", "consumer") > 0

    def test_track_bindings_off(self):
        rep = run_quad(build_program(PIPELINE), track_bindings=False)
        assert rep.bindings == {}
        assert rep.row("producer").out_excl == 32 * 8  # OUT still tracked


def _straddle_report(shadow: str, store: str, load: str,
                     sp_off: int) -> "object":
    """Run one store+load pair whose EA straddles SP (``ea < sp < ea+size``)
    and return the QUAD report."""
    src = f"""
        .text
        .func main
    main:
        li t0, {DATA_BASE}
        addi t1, sp, 0     # save sp
        addi sp, t0, {sp_off}  # sp sits inside the accessed range
        li t2, -1
        {store} t2, 0(t0)
        {load} t3, 0(t0)
        addi sp, t1, 0     # restore
        halt
        .endfunc
    """
    engine = PinEngine(assemble(src))
    tool = QuadTool(shadow=shadow).attach(engine)
    engine.run()
    return tool.report()


class TestSpStraddle:
    """Byte-denominated columns split a straddling access per byte; the
    dynamic access counters stay whole-access (``ea < sp``)."""

    @pytest.mark.parametrize("shadow", ["paged", "legacy"])
    def test_word_access_straddling_sp(self, shadow):
        rep = _straddle_report(shadow, "sd", "ld", 4)
        io = rep.kernels["main"]
        row = rep.row("main")
        assert (io.reads, io.writes) == (1, 1)
        # whole-access classification: ea < sp, so both count non-stack
        assert (io.reads_nonstack, io.writes_nonstack) == (1, 1)
        # per-byte classification: only the 4 bytes under sp are excl
        assert (row.in_incl, row.in_excl) == (8, 4)
        assert (row.in_unma_incl, row.in_unma_excl) == (8, 4)
        assert (row.out_unma_incl, row.out_unma_excl) == (8, 4)
        assert (row.out_incl, row.out_excl) == (8, 4)
        assert rep.bindings[("main", "main")] == [8, 4]

    @pytest.mark.parametrize("shadow", ["paged", "legacy"])
    def test_subword_access_straddling_sp(self, shadow):
        # sw/lw cover bytes A..A+3 with sp = A+2: two bytes below, two
        # above — on the paged path this runs the exact per-byte pipeline
        rep = _straddle_report(shadow, "sw", "lw", 2)
        row = rep.row("main")
        assert (row.in_incl, row.in_excl) == (4, 2)
        assert (row.in_unma_incl, row.in_unma_excl) == (4, 2)
        assert (row.out_unma_incl, row.out_unma_excl) == (4, 2)
        assert rep.bindings[("main", "main")] == [4, 2]


class TestShadowStats:
    def test_paged_report_carries_footprint_stats(self):
        rep = run_quad(build_program(PIPELINE), shadow="paged")
        s = rep.shadow_stats
        assert s is not None and s["shadow_pages"] >= 1
        assert s["interned_kernels"] >= 2
        assert s["resident_bytes"] > 0
        assert "QUAD shadow memory:" in rep.format_stats()

    def test_legacy_report_has_no_stats(self):
        rep = run_quad(build_program(PIPELINE), shadow="legacy")
        assert rep.shadow_stats is None
        assert "unavailable" in rep.format_stats()

    def test_unknown_shadow_rejected(self):
        with pytest.raises(ValueError):
            QuadTool(shadow="bogus")


class TestQuadReport:
    def test_table_rendering(self):
        rep = run_quad(build_program(PIPELINE))
        table = rep.format_table()
        assert "producer" in table and "consumer" in table
        assert "_start" not in table  # library routines filtered

    def test_qdu_graph(self):
        rep = run_quad(build_program(PIPELINE))
        g = rep.qdu_graph(include_stack=False)
        assert g.has_edge("producer", "consumer")
        assert g["producer"]["consumer"]["bytes"] == 256
        assert "strlen" not in g

    def test_stack_in_ratio(self):
        rep = run_quad(build_program(PIPELINE))
        assert rep.row("consumer").stack_in_ratio > 1.0

    def test_access_counts(self):
        rep = run_quad(build_program(PIPELINE))
        reads, writes, nreads, nwrites = rep.access_counts("producer")
        assert writes >= 32
        assert nwrites >= 32
        assert reads >= nreads

    def test_report_before_run_rejected(self):
        engine = PinEngine(build_program(PIPELINE))
        tool = QuadTool().attach(engine)
        with pytest.raises(RuntimeError):
            tool.report()


class TestOverheadModel:
    def test_instrumented_profile_inflates_memory_kernels(self):
        prog = build_program(PIPELINE)
        flat = run_gprof(prog)
        quad = run_quad(prog)
        inst = instrumented_profile(flat, quad)
        assert inst.row("producer").self_instructions > \
            flat.row("producer").self_instructions

    def test_cost_model_scaling(self):
        prog = build_program(PIPELINE)
        flat = run_gprof(prog)
        quad = run_quad(prog)
        cheap = instrumented_profile(flat, quad,
                                     InstrumentationCostModel(1, 1, 1))
        pricey = instrumented_profile(flat, quad,
                                      InstrumentationCostModel(10, 1000, 10))
        assert pricey.profiled_instructions > cheap.profiled_instructions

    def test_rank_shift_trends(self):
        prog = build_program(PIPELINE)
        flat = run_gprof(prog)
        quad = run_quad(prog)
        inst = instrumented_profile(flat, quad)
        shifts = rank_shifts(flat, inst)
        assert {s.kernel for s in shifts} == {r.name for r in flat.rows}
        for s in shifts:
            assert s.trend in ("<->", "up", "down", "upup", "downdown")

    def test_non_stack_heavy_kernel_gains_share(self):
        # a kernel with many global accesses must grow relative to a
        # compute-only kernel under instrumentation (the Table III effect)
        src = """
        int big[512];
        int memory_bound() {
            int i; int s = 0;
            for (i = 0; i < 512; i = i + 1) { big[i] = i; s = s + big[i]; }
            return s;
        }
        int compute_bound() {
            int i; int x = 1;
            for (i = 0; i < 2000; i = i + 1) { x = (x * 31 + 7) % 65536; }
            return x;
        }
        int main() { return (memory_bound() + compute_bound()) & 255; }
        """
        prog = build_program(src)
        flat = run_gprof(prog)
        quad = run_quad(prog)
        inst = instrumented_profile(flat, quad)
        gain = (inst.percent("memory_bound") - flat.percent("memory_bound"))
        loss = (inst.percent("compute_bound") - flat.percent("compute_bound"))
        assert gain > 0 > loss
