"""WFS application unit tests: configuration, source generation, workspace."""

import pytest

from repro.apps.wfs import (PAPER, PRESETS, SMALL, TINY, WfsConfig,
                            build_wfs_program, config_file_bytes,
                            input_signal, make_workspace, wfs_source)
from repro.wavio import read_wav

PAPER_KERNELS = [
    "wav_store", "fft1d", "DelayLine_processChunk", "bitrev", "zeroRealVec",
    "AudioIo_setFrames", "perm", "cadd", "cmult", "Filter_process",
    "wav_load", "Filter_process_pre_", "zeroCplxVec", "r2c", "c2r",
    "AudioIo_getFrames", "ffw", "vsmult2d", "calculateGainPQ",
    "PrimarySource_deriveTP", "ldint",
]


class TestConfig:
    def test_presets_exist(self):
        assert set(PRESETS) == {"tiny", "small", "demo", "paper"}

    def test_derived_quantities(self):
        cfg = WfsConfig(chunk=64, n_chunks=10)
        assert cfg.frames == 640
        assert cfg.log2_chunk == 6
        assert cfg.delay_line_len == 256
        assert cfg.max_delay < cfg.delay_line_len - cfg.chunk

    def test_paper_preset_matches_publication(self):
        assert PAPER.n_speakers == 32     # "thirty two secondary sources"
        assert PAPER.chunk == 2048        # bitrev calls / fft calls

    def test_validation(self):
        with pytest.raises(ValueError):
            WfsConfig(chunk=48)           # not a power of two
        with pytest.raises(ValueError):
            WfsConfig(n_chunks=1)
        with pytest.raises(ValueError):
            WfsConfig(moving_fraction=1.5)

    def test_scaled(self):
        cfg = TINY.scaled(n_speakers=8)
        assert cfg.n_speakers == 8
        assert cfg.chunk == TINY.chunk

    def test_n_positions_positive(self):
        assert WfsConfig(moving_fraction=0.0).n_positions == 1


class TestSourceGeneration:
    def test_all_tokens_substituted(self):
        text = wfs_source(TINY)
        assert "@" not in text

    def test_all_paper_kernels_present(self):
        text = wfs_source(TINY)
        for kernel in PAPER_KERNELS:
            assert kernel + "(" in text, kernel

    def test_source_scales_with_config(self):
        tiny = wfs_source(TINY)
        small = wfs_source(SMALL)
        assert f"float input[{TINY.frames}]" in tiny
        assert f"float input[{SMALL.frames}]" in small

    def test_program_builds_with_routines(self):
        prog = build_wfs_program(TINY)
        for kernel in PAPER_KERNELS:
            assert prog.has_routine(kernel), kernel
        assert prog.routine("fft1d").image == "main"
        assert prog.routine("memcpy").image == "libc"

    def test_function_count_is_app_scale(self):
        # the paper's application has 64 functions; ours is a reconstruction
        # with the 21 reported kernels plus helpers and the runtime
        prog = build_wfs_program(TINY)
        assert len(prog.routines) >= 30


class TestWorkspace:
    def test_input_wav_valid(self):
        fs = make_workspace(TINY)
        wav = read_wav(fs.get(TINY.input_wav_name))
        assert wav.sample_rate == TINY.sample_rate
        assert wav.frames == TINY.frames
        assert wav.channels == 1

    def test_config_file_layout(self):
        raw = config_file_bytes(TINY)
        assert len(raw) == 32
        import struct

        rate, nsrc, nspk, flags = struct.unpack("<4q", raw)
        assert rate == TINY.sample_rate
        assert nsrc == 1                      # one primary source (paper)
        assert nspk == TINY.n_speakers

    def test_input_signal_deterministic(self):
        import numpy as np

        np.testing.assert_array_equal(input_signal(TINY), input_signal(TINY))

    def test_input_signal_in_range(self):
        import numpy as np

        assert np.abs(input_signal(TINY)).max() <= 1.0


class TestDemoPreset:
    def test_demo_compiles(self):
        # the demo preset is interactive-scale; it must at least build
        from repro.apps.wfs import DEMO

        prog = build_wfs_program(DEMO)
        assert prog.has_routine("wav_store")
        assert len(prog.instrs) > 500
