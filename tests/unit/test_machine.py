"""Unit tests for the virtual machine (execution semantics)."""

import pytest

from repro.asmkit import assemble
from repro.isa.registers import SP
from repro.vm import (ArithmeticFault, GuestFS, IllegalInstruction,
                      InstructionBudgetExceeded, Machine, MemoryFault,
                      O_RDONLY, O_WRONLY, VMError, run_program)
from repro.vm.layout import DATA_BASE, HEAP_BASE


def run_asm(src, fs=None, **kw):
    m = Machine(assemble(".text\n" + src), fs=fs)
    m.run(**kw)
    return m


def exit_value(src, fs=None, **kw):
    """Run assembly that ends with 'li a0,0 / ecall' using a1 as the code."""
    return run_asm(src, fs=fs, **kw).exit_code


HALT = "\nli a0, 0\nmv a1, t6\necall\n"  # exit with code = t6


class TestIntegerALU:
    @pytest.mark.parametrize("body,expected", [
        ("li t0, 7\nli t1, 5\nadd t6, t0, t1", 12),
        ("li t0, 7\nli t1, 5\nsub t6, t0, t1", 2),
        ("li t0, -7\nli t1, 5\nmul t6, t0, t1", -35),
        ("li t0, 7\nli t1, 2\ndiv t6, t0, t1", 3),
        ("li t0, -7\nli t1, 2\ndiv t6, t0, t1", -3),   # trunc toward zero
        ("li t0, -7\nli t1, 2\nrem t6, t0, t1", -1),   # sign of dividend
        ("li t0, 7\nli t1, -2\nrem t6, t0, t1", 1),
        ("li t0, 12\nli t1, 10\nand t6, t0, t1", 8),
        ("li t0, 12\nli t1, 10\nor t6, t0, t1", 14),
        ("li t0, 12\nli t1, 10\nxor t6, t0, t1", 6),
        ("li t0, 1\nli t1, 4\nsll t6, t0, t1", 16),
        ("li t0, 16\nli t1, 2\nsrl t6, t0, t1", 4),
        ("li t0, -16\nli t1, 2\nsra t6, t0, t1", -4),
        ("li t0, 3\nli t1, 5\nslt t6, t0, t1", 1),
        ("li t0, 5\nli t1, 5\nsle t6, t0, t1", 1),
        ("li t0, 5\nli t1, 5\nseq t6, t0, t1", 1),
        ("li t0, 5\nli t1, 4\nsne t6, t0, t1", 1),
        ("li t0, 5\naddi t6, t0, -3", 2),
        ("li t0, 5\nmuli t6, t0, 7", 35),
        ("li t0, 12\nandi t6, t0, 10", 8),
        ("li t0, 1\nslli t6, t0, 6", 64),
        ("li t0, 64\nsrli t6, t0, 3", 8),
        ("li t0, -64\nsrai t6, t0, 3", -8),
        ("li t0, 3\nslti t6, t0, 4", 1),
        ("li t0, 5\nmv t6, t0", 5),
        ("li t0, 5\nneg t6, t0", -5),
        ("li t0, 0\nnot t6, t0", -1),
    ])
    def test_alu(self, body, expected):
        assert exit_value(body + HALT) == expected

    def test_wraparound_add(self):
        v = exit_value(f"li t0, {2**63 - 1}\naddi t6, t0, 1" + HALT)
        assert v == -(2**63)

    def test_wraparound_mul(self):
        v = exit_value(f"li t0, {2**62}\nli t1, 4\nmul t6, t0, t1" + HALT)
        assert v == 0

    def test_srl_of_negative_is_logical(self):
        v = exit_value("li t0, -1\nli t1, 63\nsrl t6, t0, t1" + HALT)
        assert v == 1

    def test_division_by_zero_faults(self):
        with pytest.raises(ArithmeticFault):
            run_asm("li t0, 1\nli t1, 0\ndiv t2, t0, t1\nhalt\n")

    def test_x0_is_immutable(self):
        v = exit_value("li t0, 5\nadd zero, t0, t0\nmv t6, zero" + HALT)
        assert v == 0


class TestFloat:
    def float_result(self, body):
        """Run body leaving the value in fa0; return it from machine state."""
        m = run_asm(body + "\nhalt\n")
        return m.f[0]

    def test_arith(self):
        assert self.float_result("fli fa1, 2.5\nfli fa2, 4.0\n"
                                 "fadd fa0, fa1, fa2") == 6.5
        assert self.float_result("fli fa1, 2.5\nfli fa2, 4.0\n"
                                 "fmul fa0, fa1, fa2") == 10.0
        assert self.float_result("fli fa1, 1.0\nfli fa2, 4.0\n"
                                 "fdiv fa0, fa1, fa2") == 0.25
        assert self.float_result("fli fa1, -2.0\nfabs fa0, fa1") == 2.0
        assert self.float_result("fli fa1, 9.0\nfsqrt fa0, fa1") == 3.0
        assert self.float_result("fli fa1, 0.0\nfsin fa0, fa1") == 0.0
        assert self.float_result("fli fa1, 0.0\nfcos fa0, fa1") == 1.0
        assert self.float_result("fli fa1, 3.0\nfli fa2, 7.0\n"
                                 "fmin fa0, fa1, fa2") == 3.0

    def test_div_by_zero_gives_inf(self):
        assert self.float_result("fli fa1, 1.0\nfli fa2, 0.0\n"
                                 "fdiv fa0, fa1, fa2") == float("inf")

    def test_conversions(self):
        assert self.float_result("li t0, -3\nfcvt.f.i fa0, t0") == -3.0
        v = exit_value("fli fa1, -3.7\nfcvt.i.f t6, fa1" + HALT)
        assert v == -3  # trunc toward zero

    def test_compare(self):
        v = exit_value("fli fa1, 1.0\nfli fa2, 2.0\nflt t6, fa1, fa2" + HALT)
        assert v == 1


class TestMemory:
    def test_load_store_sizes(self):
        m = run_asm(f"""
            li t0, {DATA_BASE}
            li t1, -2
            sd t1, 0(t0)
            sw t1, 8(t0)
            sh t1, 12(t0)
            sb t1, 14(t0)
            ld t2, 0(t0)
            lw t3, 8(t0)
            lwu t4, 8(t0)
            lh t5, 12(t0)
            lhu s0, 12(t0)
            lb s1, 14(t0)
            lbu s2, 14(t0)
            halt
        """)
        x = m.x
        t = lambda k: x[13 + k]      # t0.. base
        assert t(2) == -2
        assert t(3) == -2
        assert t(4) == 0xFFFFFFFE
        assert t(5) == -2
        assert x[23] == 0xFFFE       # s0
        assert x[24] == -2           # s1
        assert x[25] == 0xFE         # s2

    def test_float_load_store(self):
        m = run_asm(f"""
            li t0, {DATA_BASE}
            fli fa1, 6.25
            fsd fa1, 0(t0)
            fld fa0, 0(t0)
            halt
        """)
        assert m.f[0] == 6.25

    def test_null_page_faults(self):
        with pytest.raises(MemoryFault):
            run_asm("li t0, 0\nld t1, 0(t0)\nhalt\n")

    def test_out_of_range_faults(self):
        with pytest.raises(MemoryFault):
            run_asm("li t0, -8\nli t1, 1\nsd t1, 0(t0)\nhalt\n")

    def test_prefetch_has_no_effect(self):
        m = run_asm(f"li t0, {DATA_BASE}\nprefetch t1, 0(t0)\nhalt\n")
        assert m.x[14] == 0

    def test_predicated_store_skipped(self):
        m = run_asm(f"""
            li t0, {DATA_BASE}
            li t1, 99
            li t2, 0
            sd t1, 0(t0) ?t2
            ld t3, 0(t0)
            halt
        """)
        assert m.x[16] == 0  # t3: store was squashed

    def test_predicated_store_taken(self):
        m = run_asm(f"""
            li t0, {DATA_BASE}
            li t1, 99
            li t2, 1
            sd t1, 0(t0) ?t2
            ld t3, 0(t0)
            halt
        """)
        assert m.x[16] == 99


class TestControlFlow:
    def test_loop_sum(self):
        # sum 1..10 = 55
        v = exit_value("""
            li t0, 10
            li t6, 0
        loop:
            beqz t0, out
            add t6, t6, t0
            addi t0, t0, -1
            j loop
        out:
        """ + HALT)
        assert v == 55

    def test_call_ret(self):
        v = exit_value("""
            j start
        double:
            add a0, a0, a0
            ret
        start:
            addi sp, sp, -8
            sd ra, 0(sp)
            li a0, 21
            call double
            ld ra, 0(sp)
            addi sp, sp, 8
            mv t6, a0
        """ + HALT)
        assert v == 42

    def test_jalr_indirect(self):
        v = exit_value("""
            j start
        target:
            li t6, 77
            ret
        start:
            addi sp, sp, -8
            sd ra, 0(sp)
            la t0, target
            jalr ra, t0, 0
            ld ra, 0(sp)
            addi sp, sp, 8
        """ + HALT)
        assert v == 77

    def test_ret_to_garbage_faults(self):
        with pytest.raises(IllegalInstruction):
            run_asm("li ra, 0\nret\n")

    def test_branch_out_of_segment_rejected_at_compile(self):
        with pytest.raises(IllegalInstruction):
            run_asm("j 0x999000\n")

    def test_budget_exceeded(self):
        with pytest.raises(InstructionBudgetExceeded):
            run_asm("spin: j spin\n", max_instructions=1000)

    def test_halt_sets_exit(self):
        m = run_asm("halt\n")
        assert m.exit_code == 0 and m.halted

    def test_run_after_halt_rejected(self):
        m = run_asm("halt\n")
        with pytest.raises(VMError):
            m.run()


class TestSyscalls:
    def test_exit_code(self):
        m = run_asm("li a0, 0\nli a1, 3\necall\n")
        assert m.exit_code == 3

    def test_print_int_and_str(self):
        m = Machine(assemble("""
            .data
        msg: .asciz " ok\\n"
            .text
            li a0, 6
            li a1, -12
            ecall
            li a0, 8
            la a1, msg
            ecall
            halt
        """))
        m.run()
        assert m.stdout_text() == "-12 ok\n"

    def test_file_roundtrip(self):
        fs = GuestFS()
        fs.put("in.dat", b"abcdef")
        m = Machine(assemble(f"""
            .data
        inname:  .asciz "in.dat"
        outname: .asciz "out.dat"
        buf:     .space 16
            .text
            li a0, 1            # open(in, rd)
            la a1, inname
            li a2, {O_RDONLY}
            ecall
            mv s0, a0
            li a0, 3            # read(fd, buf, 4)
            mv a1, s0
            la a2, buf
            li a3, 4
            ecall
            li a0, 2            # close
            mv a1, s0
            ecall
            li a0, 1            # open(out, wr)
            la a1, outname
            li a2, {O_WRONLY}
            ecall
            mv s1, a0
            li a0, 4            # write(fd, buf, 4)
            mv a1, s1
            la a2, buf
            li a3, 4
            ecall
            li a0, 2
            mv a1, s1
            ecall
            halt
        """), fs=fs)
        m.run()
        assert fs.get("out.dat") == b"abcd"
        assert fs.open_count() == 0

    def test_sbrk(self):
        m = run_asm("li a0, 5\nli a1, 4096\necall\nmv t6, a0\nhalt\n")
        assert m.x[19] == HEAP_BASE  # t6 holds the old break
        assert m.brk == HEAP_BASE + 4096

    def test_clock_returns_icount(self):
        m = run_asm("li a0, 9\necall\nmv t6, a0\nhalt\n")
        assert 0 < m.x[19] <= m.icount

    def test_stdout_write_syscall(self):
        m = Machine(assemble("""
            .data
        msg: .asciz "hey"
            .text
            li a0, 4
            li a1, 1
            la a2, msg
            li a3, 3
            ecall
            halt
        """))
        m.run()
        assert m.stdout_text() == "hey"


class TestMachineState:
    def test_initial_sp_near_top(self):
        m = Machine(assemble(".text\nhalt\n"))
        assert m.x[SP] == m.mem_size - 64

    def test_data_segment_loaded(self):
        m = Machine(assemble(".data\nv: .i64 123\n.text\nhalt\n"))
        assert m.read_i64(DATA_BASE) == 123

    def test_host_accessors_roundtrip(self):
        m = Machine(assemble(".text\nhalt\n"))
        m.write_i64(DATA_BASE, -5)
        assert m.read_i64(DATA_BASE) == -5
        m.write_f64(DATA_BASE, 2.25)
        assert m.read_f64(DATA_BASE) == 2.25
        m.write_bytes(DATA_BASE, b"xyz")
        assert m.read_bytes(DATA_BASE, 3) == b"xyz"

    def test_host_accessor_bounds(self):
        m = Machine(assemble(".text\nhalt\n"))
        with pytest.raises(MemoryFault):
            m.read_i64(10)

    def test_icount_counts_all_instructions(self):
        m = run_asm("nop\nnop\nnop\nhalt\n")
        assert m.icount == 4

    def test_code_cache_compiles_once(self):
        m = run_asm("""
            li t0, 100
        loop:
            addi t0, t0, -1
            bnez t0, loop
            halt
        """)
        assert m.compile_count == 4
        assert m.icount == 1 + 2 * 100 + 1
