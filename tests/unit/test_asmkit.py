"""Unit tests for the assembler."""

import pytest

from repro.asmkit import AsmError, assemble, tokenize
from repro.isa import opcodes as oc
from repro.isa import NO_PRED
from repro.vm import CODE_BASE, DATA_BASE
from repro.vm.layout import index_to_pc


class TestLexer:
    def test_comments_and_blank_lines(self):
        lines = tokenize("# full comment\n\n  add a0, a1, a2  # trailing\n")
        assert len(lines) == 1
        assert lines[0].op == "add"
        assert lines[0].operands == ["a0", "a1", "a2"]

    def test_label_only_line(self):
        (line,) = tokenize("foo:")
        assert line.label == "foo" and line.op is None

    def test_label_and_instruction(self):
        (line,) = tokenize("foo: addi sp, sp, -8")
        assert line.label == "foo"
        assert line.op == "addi"
        assert line.operands == ["sp", "sp", "-8"]

    def test_string_with_comma_and_hash(self):
        (line,) = tokenize('msg: .asciz "a, b # c"')
        assert line.operands == ['"a, b # c"']

    def test_semicolon_comment(self):
        (line,) = tokenize("nop ; comment")
        assert line.op == "nop" and not line.operands

    def test_mem_operand_not_split(self):
        (line,) = tokenize("ld a0, 8(sp)")
        assert line.operands == ["a0", "8(sp)"]


class TestDirectives:
    def test_data_layout(self):
        p = assemble("""
            .data
        a:  .i64 1, 2
        b:  .f64 3.5
        c:  .byte 1, 2, 3
        d:  .align 8
        e:  .space 16
        s:  .asciz "hi\\n"
            .text
            nop
        """)
        assert p.symbols["a"] == DATA_BASE
        assert p.symbols["b"] == DATA_BASE + 16
        assert p.symbols["c"] == DATA_BASE + 24
        assert p.symbols["e"] == DATA_BASE + 32  # aligned to 8
        assert p.symbols["s"] == DATA_BASE + 48
        assert p.data[24:27] == b"\x01\x02\x03"
        assert p.data[48:52] == b"hi\n\x00"

    def test_func_routines(self):
        p = assemble("""
            .text
            .func f
        f:  nop
            ret
            .endfunc
            .image libc
            .func g
        g:  ret
            .endfunc
        """)
        f = p.routine("f")
        g = p.routine("g")
        assert (f.start, f.end, f.image) == (0, 2, "main")
        assert (g.start, g.end, g.image) == (2, 3, "libc")
        assert p.routine_at(1) is f
        assert p.routine_at(2) is g

    def test_entry_selection(self):
        p = assemble(".text\nmain: nop\n_start: nop\n")
        assert p.entry == 1  # _start preferred
        p2 = assemble(".text\nmain: nop\n")
        assert p2.entry == 0

    def test_global_overrides_entry(self):
        p = assemble(".global top\n.text\nmain: nop\ntop: nop\n")
        assert p.entry == 1

    def test_data_directive_in_text_rejected(self):
        with pytest.raises(AsmError):
            assemble(".text\n.i64 5\n")

    def test_nested_func_rejected(self):
        with pytest.raises(AsmError):
            assemble(".text\n.func a\n.func b\n")

    def test_unterminated_func_rejected(self):
        with pytest.raises(AsmError):
            assemble(".text\n.func a\nnop\n")


class TestInstructions:
    def test_formats(self):
        p = assemble("""
            .text
            add  a0, a1, a2
            addi a0, a1, -5
            li   t0, 0x10
            fli  fa0, 1.5
            fadd fa0, fa1, fa2
            fneg fa0, fa1
            feq  t0, fa0, fa1
            fcvt.f.i fa0, a0
            fcvt.i.f a0, fa0
            ld   a0, 8(sp)
            fsd  fa0, -8(fp)
            ecall
        """)
        names = [i.info.name for i in p.instrs]
        assert names == ["add", "addi", "li", "fli", "fadd", "fneg", "feq",
                         "fcvt.f.i", "fcvt.i.f", "ld", "fsd", "ecall"]
        assert p.instrs[1].imm == -5
        assert p.instrs[3].imm == 1.5
        assert p.instrs[9].imm == 8
        assert p.instrs[10].imm == -8

    def test_labels_resolve_to_byte_pcs(self):
        p = assemble("""
            .text
        top:
            beq a0, a1, top
            j   top
            jal ra, top
            call top
        """)
        for ins in p.instrs:
            assert ins.imm == CODE_BASE

    def test_pseudo_expansion(self):
        p = assemble("""
            .text
            mv   a0, a1
            neg  a0, a1
            not  a0, a1
            subi a0, a1, 4
            beqz a0, 0x1000
            bnez a0, 0x1000
        """)
        names = [i.info.name for i in p.instrs]
        assert names == ["addi", "sub", "xori", "addi", "beq", "bne"]
        assert p.instrs[3].imm == -4

    def test_la_resolves_data_symbol(self):
        p = assemble(".data\nbuf: .space 8\n.text\nla t0, buf\n")
        assert p.instrs[0].op == oc.LI
        assert p.instrs[0].imm == DATA_BASE

    def test_symbol_arithmetic(self):
        p = assemble(".data\nbuf: .space 32\n.text\nla t0, buf+16\n")
        assert p.instrs[0].imm == DATA_BASE + 16

    def test_predicate_suffix(self):
        p = assemble(".text\nld a0, 0(sp) ?t1\nld a0, 0(sp)\n")
        assert p.instrs[0].pred == 14  # t1 == x14
        assert p.instrs[1].pred == NO_PRED

    def test_bare_paren_mem_operand(self):
        p = assemble(".text\nld a0, (sp)\n")
        assert p.instrs[0].imm == 0

    def test_jal_one_operand_links_ra(self):
        p = assemble(".text\nf: jal f\n")
        assert p.instrs[0].rd == 1

    def test_unknown_mnemonic(self):
        with pytest.raises(AsmError):
            assemble(".text\nfrobnicate a0\n")

    def test_undefined_symbol(self):
        with pytest.raises(AsmError):
            assemble(".text\nj nowhere\n")

    def test_duplicate_label(self):
        with pytest.raises(AsmError):
            assemble(".text\nx: nop\nx: nop\n")

    def test_func_label_same_address_ok(self):
        p = assemble(".text\n.func f\nf: ret\n.endfunc\n")
        assert p.symbols["f"] == index_to_pc(0)

    def test_bad_register(self):
        with pytest.raises(AsmError):
            assemble(".text\nadd a0, a1, fa0\n")


class TestProgramQueries:
    def test_routine_at_gaps(self):
        p = assemble("""
            .text
            nop
            .func f
        f:  ret
            .endfunc
            nop
        """)
        assert p.routine_at(0) is None
        assert p.routine_at(1).name == "f"
        assert p.routine_at(2) is None

    def test_code_bytes_size(self):
        p = assemble(".text\nnop\nnop\n")
        assert p.code_size == 32
        assert len(p.code_bytes) == 32
