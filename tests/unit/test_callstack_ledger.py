"""Unit tests for the attribution call stack and the bandwidth ledger."""

import numpy as np
import pytest

from repro.core.callstack import CallStack
from repro.core.ledger import BandwidthLedger, R_EXCL, R_INCL, W_EXCL, W_INCL


class TestCallStack:
    def test_main_image_attribution(self):
        cs = CallStack()
        cs.enter("main", "main")
        assert cs.current_kernel == "main"
        assert not cs.in_library
        cs.enter("fft1d", "main")
        assert cs.current_kernel == "fft1d"
        cs.on_ret()
        assert cs.current_kernel == "main"

    def test_library_frames_attribute_to_caller(self):
        cs = CallStack()
        cs.enter("main", "main")
        cs.enter("memcpy", "libc")
        assert cs.current_kernel == "main"   # lib frame inherits the kernel
        assert cs.in_library
        cs.on_ret()
        assert cs.current_kernel == "main"
        assert not cs.in_library

    def test_nested_library_calls(self):
        cs = CallStack()
        cs.enter("kern", "main")
        cs.enter("memcpy", "libc")
        cs.enter("memset", "libc")
        assert cs.current_kernel == "kern"
        assert cs.in_library
        cs.on_ret()
        cs.on_ret()
        assert cs.current_kernel == "kern"
        assert not cs.in_library

    def test_library_at_bottom_keeps_own_name(self):
        cs = CallStack()
        cs.enter("_start", "libc")
        assert cs.current_kernel == "_start"
        assert cs.in_library

    def test_underflow_is_tolerated(self):
        cs = CallStack()
        cs.on_ret()
        assert cs.underflows == 1
        assert cs.current_kernel is None

    def test_depth_bookkeeping(self):
        cs = CallStack()
        for i in range(5):
            cs.enter(f"f{i}", "main")
        assert cs.depth == 5
        assert cs.max_depth == 5
        for _ in range(5):
            cs.on_ret()
        assert cs.depth == 0
        assert cs.max_depth == 5
        assert cs.current_kernel is None

    def test_frames_snapshot(self):
        cs = CallStack()
        cs.enter("a", "main")
        cs.enter("b", "libc")
        assert cs.frames() == [("a", False), ("a", True)]


class TestBandwidthLedger:
    def test_slice_bucketing(self):
        led = BandwidthLedger(100)
        # instruction counts 1..100 -> slice 0; 101..200 -> slice 1
        led.bucket("k", 0)[R_INCL] += 8
        led.bucket("k", 0)[R_EXCL] += 8
        led.bucket("k", 1)[W_INCL] += 4
        led.flush()
        assert led.slices_of("k") == {0: (8, 8, 0, 0), 1: (0, 0, 4, 0)}

    def test_advance_snapshots_and_clears(self):
        led = BandwidthLedger(10)
        c = led.bucket("a", 0)
        c[R_INCL] += 3
        led.advance(5)
        assert led.cur == {}
        assert led.cur_slice == 5
        assert led.slices_of("a")[0] == (3, 0, 0, 0)

    def test_flush_idempotent(self):
        led = BandwidthLedger(10)
        led.bucket("a", 0)[W_INCL] += 1
        led.flush()
        led.flush()
        assert led.slices_of("a") == {0: (0, 0, 1, 0)}

    def test_rejects_bad_interval(self):
        with pytest.raises(ValueError):
            BandwidthLedger(0)

    def test_series_dense_and_sparse(self):
        led = BandwidthLedger(50)
        led.bucket("k", 0)[R_INCL] += 10
        led.bucket("k", 3)[R_INCL] += 30
        led.bucket("k", 3)[W_INCL] += 5
        led.flush()
        s = led.series("k")
        assert list(s.slices) == [0, 3]
        assert list(s.read_incl) == [10, 30]
        dense = s.dense(5, write=False, include_stack=True)
        assert list(dense) == [10, 0, 0, 30, 0]

    def test_empty_series(self):
        led = BandwidthLedger(50)
        s = led.series("nothing")
        assert s.total(write=False, include_stack=True) == 0
        assert s.activity_span() == (-1, -1, 0)
        assert s.max_bandwidth(include_stack=True) == 0.0


class TestKernelSeries:
    def _series(self):
        led = BandwidthLedger(10)
        for sl, (ri, re, wi, we) in enumerate(
                [(20, 10, 10, 0), (0, 0, 0, 0), (40, 0, 0, 0)]):
            c = led.bucket("k", sl)
            c[R_INCL] += ri
            c[R_EXCL] += re
            c[W_INCL] += wi
            c[W_EXCL] += we
        led.flush()
        return led.series("k")

    def test_totals(self):
        s = self._series()
        assert s.total(write=False, include_stack=True) == 60
        assert s.total(write=False, include_stack=False) == 10
        assert s.total(write=True, include_stack=True) == 10

    def test_activity_span_skips_idle_slice(self):
        s = self._series()
        first, last, count = s.activity_span(include_stack=True)
        assert (first, last, count) == (0, 2, 2)

    def test_average_bandwidth_over_active_slices(self):
        s = self._series()
        # 60 read bytes over 2 active slices of 10 instructions
        assert s.average_bandwidth(write=False, include_stack=True) == 3.0
        assert s.average_bandwidth(write=True, include_stack=True) == 0.5

    def test_max_bandwidth(self):
        s = self._series()
        assert s.max_bandwidth(include_stack=True) == 4.0   # slice 2: 40/10
        assert s.max_bandwidth(include_stack=False) == 1.0  # slice 0: 10/10

    def test_bandwidth_array(self):
        s = self._series()
        np.testing.assert_allclose(
            s.bandwidth(write=False, include_stack=True), [2.0, 0.0, 4.0])

    def test_excluded_never_exceeds_included(self):
        s = self._series()
        assert (s.read_excl <= s.read_incl).all()
        assert (s.write_excl <= s.write_incl).all()


class TestPeakTiming:
    def _series(self):
        led = BandwidthLedger(10)
        led.bucket("k", 0)[R_INCL] += 5
        led.bucket("k", 4)[R_INCL] += 40
        led.bucket("k", 4)[W_INCL] += 10
        led.bucket("k", 9)[R_INCL] += 20
        led.flush()
        return led.series("k")

    def test_peak_slice_and_value(self):
        s = self._series()
        slice_idx, value = s.peak()
        assert slice_idx == 4
        assert value == 5.0  # (40+10)/10

    def test_peak_matches_max_bandwidth(self):
        s = self._series()
        assert s.peak()[1] == s.max_bandwidth(include_stack=True)

    def test_peak_empty(self):
        led = BandwidthLedger(10)
        led.flush()
        assert led.series("none").peak() == (-1, 0.0)
