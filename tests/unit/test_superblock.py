"""Differential tests for the superblock JIT and buffered analysis paths.

The fused (superblock) tier, the per-instruction tier, the buffered
recording analysis and the legacy per-event analysis must all be
observationally identical: same architectural state, same instruction
counts, same compile counts, same profiler reports.  These tests pin that
equivalence on the MiniC kernel corpus and the WFS application, plus the
exact-budget semantics of ``Machine.run``.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.apps.kernels import (build_conv2d, build_fir, build_histogram,
                                build_matmul, build_mergesort, build_pipeline)
from repro.apps.wfs import TINY, build_wfs_program
from repro.apps.wfs.source import make_workspace
from repro.asmkit import assemble
from repro.core import StackPolicy, TQuadOptions, run_tquad
from repro.gprofsim import run_gprof
from repro.minic import build_program
from repro.pin import PinEngine
from repro.quad import QuadTool
from repro.vm import InstructionBudgetExceeded, Machine
from repro.vm.superblock import MAX_BLOCK, build_block


def _run(program, *, jit, fs=None, **kw):
    m = Machine(program, fs=fs, jit=jit)
    code = m.run(**kw)
    return m, code


def _state(m: Machine):
    return (m.icount, m.exit_code, list(m.x), list(m.f),
            bytes(m.mem), bytes(m.stdout))


KERNELS = {
    "matmul": lambda: build_matmul(size=8),
    "fir": lambda: build_fir(length=128, n_taps=4),
    "mergesort": lambda: build_mergesort(length=64),
    "pipeline": lambda: build_pipeline(length=64),
    "conv2d": lambda: build_conv2d(width=12, height=8),
    "histogram": lambda: build_histogram(length=256),
}


class TestBareDifferential:
    """Fused vs per-instruction execution of the bare VM."""

    @pytest.mark.parametrize("name", sorted(KERNELS))
    def test_kernel_state_identical(self, name):
        program = KERNELS[name]()
        fused, code_f = _run(program, jit=True)
        unfused, code_u = _run(program, jit=False)
        assert code_f == code_u
        assert _state(fused) == _state(unfused)
        # compile_count counts distinct static instructions on both tiers
        assert fused.compile_count == unfused.compile_count

    def test_wfs_tiny_state_identical(self):
        program = build_wfs_program(TINY)
        fused, code_f = _run(program, jit=True, fs=make_workspace(TINY))
        unfused, code_u = _run(program, jit=False, fs=make_workspace(TINY))
        assert code_f == code_u
        assert _state(fused) == _state(unfused)
        assert fused.fs.exists("wfs_out.wav")
        assert fused.fs.get("wfs_out.wav") == unfused.fs.get("wfs_out.wav")

    def test_faults_identical(self):
        src = ".text\nli t0, 64\nld t1, 0(t0)\nhalt\n"
        results = []
        for jit in (True, False):
            m = Machine(assemble(src), jit=jit)
            with pytest.raises(Exception) as ei:
                m.run()
            results.append((type(ei.value), ei.value.pc, m.icount))
        assert results[0] == results[1]


class TestBudgetExactness:
    SPIN = ".text\nspin: j spin\n"
    COUNT = """.text
    li t0, 0
    li t1, 5
    loop: addi t0, t0, 1
    blt t0, t1, loop
    halt
    """  # retires exactly 12 instructions

    @pytest.mark.parametrize("jit", [True, False])
    def test_zero_budget_raises_immediately(self, jit):
        m = Machine(assemble(self.SPIN), jit=jit)
        with pytest.raises(InstructionBudgetExceeded):
            m.run(max_instructions=0)
        assert m.icount == 0

    @pytest.mark.parametrize("jit", [True, False])
    def test_negative_budget_is_value_error(self, jit):
        m = Machine(assemble(self.SPIN), jit=jit)
        with pytest.raises(ValueError):
            m.run(max_instructions=-1)

    @pytest.mark.parametrize("jit", [True, False])
    @pytest.mark.parametrize("budget", [1, 2, 3, 7, 11])
    def test_bound_enforced_exactly(self, jit, budget):
        m = Machine(assemble(self.COUNT), jit=jit)
        with pytest.raises(InstructionBudgetExceeded):
            m.run(max_instructions=budget)
        assert m.icount == budget

    @pytest.mark.parametrize("jit", [True, False])
    def test_halting_exactly_at_budget_completes(self, jit):
        ref = Machine(assemble(self.COUNT), jit=jit)
        ref.run()
        m = Machine(assemble(self.COUNT), jit=jit)
        assert m.run(max_instructions=ref.icount) == 0
        assert m.icount == ref.icount

    @pytest.mark.parametrize("budget", [100, 1000, 9999])
    def test_partial_state_identical_across_tiers(self, budget):
        program = build_fir(length=64, n_taps=4)
        states = []
        for jit in (True, False):
            m = Machine(program, jit=jit)
            with pytest.raises(InstructionBudgetExceeded):
                m.run(max_instructions=budget)
            states.append(_state(m))
        assert states[0] == states[1]


class TestProfilerDifferential:
    """All four (analysis, tier) combinations must agree bit-for-bit."""

    @pytest.mark.parametrize("policy", list(StackPolicy))
    def test_tquad_fir_reports_identical(self, policy):
        program = build_fir(length=256, n_taps=8)
        options = TQuadOptions(slice_interval=5000, stack=policy)
        tables = set()
        for buffered in (True, False):
            for jit in (True, False):
                report = run_tquad(program, options=options,
                                   buffered=buffered, jit=jit)
                tables.add(report.format_table())
        assert len(tables) == 1

    @pytest.mark.parametrize("buffered", [True, False])
    def test_tquad_wfs_tiny_reports_identical(self, buffered):
        program = build_wfs_program(TINY)
        options = TQuadOptions(slice_interval=20000)
        tables = set()
        for jit in (True, False):
            report = run_tquad(program, options=options, buffered=buffered,
                               jit=jit, fs=make_workspace(TINY))
            tables.add(report.format_table())
        assert len(tables) == 1

    def test_tquad_buffered_equals_legacy_on_wfs(self):
        program = build_wfs_program(TINY)
        options = TQuadOptions(slice_interval=20000)
        tables = {
            buffered: run_tquad(program, options=options, buffered=buffered,
                                fs=make_workspace(TINY)).format_table()
            for buffered in (True, False)
        }
        assert tables[True] == tables[False]

    def test_gprof_reports_identical(self):
        program = build_fir(length=256, n_taps=8)
        tables = set()
        for jit in (True, False):
            engine = PinEngine(program, jit=jit)
            from repro.gprofsim import GprofTool
            tool = GprofTool().attach(engine)
            engine.run()
            tables.add(tool.report().format_table())
        assert len(tables) == 1

    def test_quad_reports_identical(self):
        program = build_fir(length=256, n_taps=8)
        tables = set()
        for jit in (True, False):
            engine = PinEngine(program, jit=jit)
            tool = QuadTool().attach(engine)
            engine.run()
            tables.add(tool.report().format_table())
        assert len(tables) == 1

    def test_prefetch_skips_identical(self):
        src = """
        int ga[32];
        int main() {
            int i;
            for (i = 0; i < 32; i = i + 1) {
                __prefetch(&ga[i]);
                ga[i] = i;
            }
            return 0;
        }
        """
        program = build_program(src)
        counts = set()
        for buffered in (True, False):
            for jit in (True, False):
                from repro.core import TQuadTool
                engine = PinEngine(program, jit=jit)
                tool = TQuadTool(buffered=buffered).attach(engine)
                engine.run()
                counts.add(tool.prefetches_skipped)
        assert counts == {32}


class TestTraceFormation:
    def test_traces_follow_calls_and_jumps(self):
        program = assemble("""
        .text
        main: jal f
        halt
        f: li t0, 1
        ret
        """)
        m = Machine(program)
        fn, indices = build_block(m, 0)
        # the trace runs through the jal into the callee, up to the ret
        assert indices == [0, 2, 3]

    def test_trace_stops_on_cycle(self):
        program = assemble(".text\nspin: j spin\n")
        m = Machine(program)
        fn, indices = build_block(m, 0)
        assert indices == [0]
        assert fn(0) == 0  # the jump dispatches back to its own head

    def test_trace_length_capped(self):
        body = "addi t0, t0, 1\n" * (3 * MAX_BLOCK)
        program = assemble(".text\n" + body + "halt\n")
        m = Machine(program)
        fn, indices = build_block(m, 0)
        assert len(indices) == MAX_BLOCK

    def test_compile_count_matches_executed_instructions(self):
        program = KERNELS["mergesort"]()
        fused, _ = _run(program, jit=True)
        unfused, _ = _run(program, jit=False)
        assert fused.compile_count == unfused.compile_count
        assert fused.compile_count <= len(program.instrs)


# ---------------------------------------------------------------- property
@st.composite
def minic_programs(draw):
    """Small random MiniC programs exercising loops, calls and arrays."""
    size = draw(st.sampled_from([4, 8, 16]))
    n_stmts = draw(st.integers(min_value=1, max_value=3))
    stmts = []
    for _ in range(n_stmts):
        kind = draw(st.sampled_from(["fill", "sum", "branch", "call"]))
        if kind == "fill":
            stmts.append(f"for (i = 0; i < {size}; i = i + 1) "
                         f"{{ ga[i] = i * {draw(st.integers(1, 9))}; }}")
        elif kind == "sum":
            stmts.append(f"for (i = 0; i < {size}; i = i + 1) "
                         "{ acc = acc + ga[i]; }")
        elif kind == "branch":
            stmts.append(f"if (acc > {draw(st.integers(0, 50))}) "
                         "{ acc = acc - 1; } else { acc = acc + 2; }")
        else:
            stmts.append("acc = acc + helper(acc);")
    return (f"int ga[{size}];\n"
            "int helper(int v) { return v + 1; }\n"
            "int main() { int i; int acc = 0; "
            + " ".join(stmts) +
            " return acc & 255; }")


class TestPropertyDifferential:
    @given(minic_programs())
    @settings(max_examples=25, deadline=None)
    def test_fused_equals_unfused(self, src):
        program = build_program(src)
        fused, code_f = _run(program, jit=True)
        unfused, code_u = _run(program, jit=False)
        assert code_f == code_u
        assert _state(fused) == _state(unfused)
