"""MiniC execution semantics: compile + run on the VM, check results."""

import pytest

from repro.minic import run_minic
from repro.vm import ArithmeticFault


def run_main(body: str, prelude: str = "") -> int:
    """Compile a program whose main executes ``body`` and exits with its
    return value."""
    m = run_minic(prelude + "\nint main() {" + body + "}")
    return m.exit_code


def stdout_of(src: str) -> str:
    return run_minic(src).stdout_text()


class TestIntegerSemantics:
    @pytest.mark.parametrize("expr,expected", [
        ("1 + 2 * 3", 7),
        ("(1 + 2) * 3", 9),
        ("10 / 3", 3),
        ("-10 / 3", -3),
        ("10 % 3", 1),
        ("-10 % 3", -1),
        ("1 << 10", 1024),
        ("-64 >> 3", -8),
        ("12 & 10", 8),
        ("12 | 10", 14),
        ("12 ^ 10", 6),
        ("~0 & 255", 255),
        ("5 < 5", 0),
        ("5 <= 5", 1),
        ("5 > 4", 1),
        ("5 >= 6", 0),
        ("5 == 5", 1),
        ("5 != 5", 0),
        ("!0", 1),
        ("!7", 0),
        ("-(3 + 4)", -7),
        ("1 && 2", 1),
        ("1 && 0", 0),
        ("0 || 3", 1),
        ("0 || 0", 0),
    ])
    def test_expressions(self, expr, expected):
        assert run_main(f"return {expr};") == expected

    def test_division_by_zero_faults(self):
        with pytest.raises(ArithmeticFault):
            run_main("int z = 0; return 5 / z;")

    def test_short_circuit_skips_side_effects(self):
        src = """
        int hits = 0;
        int bump() { hits = hits + 1; return 1; }
        int main() {
            int a = 0 && bump();
            int b = 1 || bump();
            return hits * 10 + a + b;
        }
        """
        assert run_minic(src).exit_code == 1  # hits==0, a==0, b==1

    def test_char_is_unsigned(self):
        assert run_main("char c = (char)200; return (int)c;") == 200

    def test_char_truncation(self):
        assert run_main("char c = (char)257; return (int)c;") == 1


class TestFloatSemantics:
    def test_arithmetic_and_conversion(self):
        out = stdout_of("""
        int main() {
            float x = 1.5;
            float y = x * 4.0 + 1.0;   // 7.0
            print_float(y); print_str(" ");
            print_int((int)(y / 2.0)); print_str(" ");   // 3 (trunc)
            print_float((float)7 / 2.0); print_str("\\n");
            return 0;
        }
        """)
        assert out == "7.000000 3 3.500000\n"

    def test_mixed_promotion(self):
        assert run_main("float f = 2.5; return (int)(f * 2);") == 5

    def test_negative_trunc_toward_zero(self):
        assert run_main("float f = -2.9; return (int)f;") == -2

    def test_intrinsics(self):
        out = stdout_of("""
        int main() {
            print_float(__sqrt(16.0)); print_str(" ");
            print_float(__fabs(-2.5)); print_str(" ");
            print_float(__cos(0.0)); print_str("\\n");
            return 0;
        }
        """)
        assert out == "4.000000 2.500000 1.000000\n"

    def test_float_compare_in_branch(self):
        assert run_main(
            "float a = 0.1; float b = 0.2; if (a < b) { return 1; } "
            "return 0;") == 1

    def test_float_truthiness(self):
        assert run_main("float z = 0.0; if (z) { return 1; } return 2;") == 2
        assert run_main("float z = 0.5; return !z;") == 0


class TestControlFlow:
    def test_while_loop(self):
        assert run_main("""
            int n = 0; int s = 0;
            while (n < 10) { n = n + 1; s = s + n; }
            return s;""") == 55

    def test_for_with_break_continue(self):
        assert run_main("""
            int s = 0;
            for (int i = 0; i < 100; i = i + 1) {
                if (i % 2 == 0) { continue; }
                if (i > 10) { break; }
                s = s + i;
            }
            return s;""") == 1 + 3 + 5 + 7 + 9

    def test_nested_loops(self):
        assert run_main("""
            int s = 0;
            for (int i = 0; i < 4; i = i + 1) {
                for (int j = 0; j < 4; j = j + 1) {
                    if (j == 2) { break; }
                    s = s + 1;
                }
            }
            return s;""") == 8

    def test_dangling_else(self):
        assert run_main("""
            int x = 1; int y = 0;
            if (x) if (y) return 1; else return 2;
            return 3;""") == 2

    def test_recursion(self):
        src = """
        int ack(int m, int n) {
            if (m == 0) { return n + 1; }
            if (n == 0) { return ack(m - 1, 1); }
            return ack(m - 1, ack(m, n - 1));
        }
        int main() { return ack(2, 3); }
        """
        assert run_minic(src).exit_code == 9

    def test_scoping_and_shadowing(self):
        assert run_main("""
            int x = 1;
            { int x = 2; { int x = 3; } x = x + 10; }
            return x;""") == 1

    def test_for_scope_leaves_no_variable(self):
        # the loop variable of a for-decl is scoped to the loop
        src = """
        int main() {
            int s = 0;
            for (int i = 0; i < 3; i = i + 1) { s = s + i; }
            int i = 100;
            return s + i;
        }
        """
        assert run_minic(src).exit_code == 103


class TestPointersAndArrays:
    def test_global_array_rw(self):
        assert run_main("""
            int i;
            for (i = 0; i < 10; i = i + 1) { g[i] = i * i; }
            return g[7];""", prelude="int g[10];") == 49

    def test_local_array(self):
        assert run_main("""
            int a[8];
            int i;
            for (i = 0; i < 8; i = i + 1) { a[i] = i + 1; }
            int s = 0;
            for (i = 0; i < 8; i = i + 1) { s = s + a[i]; }
            return s;""") == 36

    def test_pointer_deref_and_addressof(self):
        assert run_main("""
            int x = 5;
            int* p = &x;
            *p = *p + 37;
            return x;""") == 42

    def test_pointer_arithmetic(self):
        assert run_main("""
            int a[4];
            a[0] = 10; a[1] = 20; a[2] = 30; a[3] = 40;
            int* p = a;
            p = p + 2;
            return *p + *(p - 1);""") == 50

    def test_pointer_difference(self):
        assert run_main("""
            float a[16];
            float* p = a + 12;
            float* q = a + 2;
            return p - q;""") == 10

    def test_pointer_args_mutate_caller(self):
        src = """
        void swap(int* a, int* b) {
            int t = *a; *a = *b; *b = t;
        }
        int main() {
            int x = 3; int y = 4;
            swap(&x, &y);
            return x * 10 + y;
        }
        """
        assert run_minic(src).exit_code == 43

    def test_char_pointer_walk(self):
        src = """
        int count(char* s) {
            int n = 0;
            while (*s != (char)0) { n = n + 1; s = s + 1; }
            return n;
        }
        int main() { return count("hello"); }
        """
        assert run_minic(src).exit_code == 5

    def test_array_element_addressof(self):
        assert run_main("""
            int a[4];
            a[2] = 7;
            int* p = &a[2];
            return *p;""") == 7

    def test_matrix_flattened(self):
        assert run_main("""
            int m[12];
            int i; int j;
            for (i = 0; i < 3; i = i + 1) {
                for (j = 0; j < 4; j = j + 1) {
                    m[i * 4 + j] = i * 10 + j;
                }
            }
            return m[2 * 4 + 3];""") == 23


class TestFunctionsAndCalls:
    def test_many_args_both_banks(self):
        src = """
        float mix(int a, float x, int b, float y, int c, float z) {
            return (float)(a + b + c) + x + y + z;
        }
        int main() {
            return (int)mix(1, 0.5, 2, 0.25, 3, 0.25);
        }
        """
        assert run_minic(src).exit_code == 7

    def test_call_in_expression_preserves_temps(self):
        # The spill-around-call machinery: outer temps must survive.
        src = """
        int g(int x) { return x * 2; }
        int main() { return 100 + g(3) + g(4) * 10; }
        """
        assert run_minic(src).exit_code == 100 + 6 + 80

    def test_nested_calls_as_arguments(self):
        src = """
        int add(int a, int b) { return a + b; }
        int main() { return add(add(1, 2), add(add(3, 4), 5)); }
        """
        assert run_minic(src).exit_code == 15

    def test_float_return_through_calls(self):
        src = """
        float half(float x) { return x / 2.0; }
        int main() { return (int)(half(10.0) + half(half(8.0))); }
        """
        assert run_minic(src).exit_code == 7

    def test_void_function_falls_through(self):
        src = """
        int g;
        void set(int v) { g = v; }
        int main() { set(9); return g; }
        """
        assert run_minic(src).exit_code == 9

    def test_early_return_in_void(self):
        src = """
        int g;
        void f(int v) { if (v < 0) { return; } g = v; }
        int main() { f(-1); f(5); return g; }
        """
        assert run_minic(src).exit_code == 5


class TestGlobalsAndStrings:
    def test_global_initializers(self):
        src = """
        int a = -7;
        float b = 2.5;
        char c = 'A';
        int main() { return a + (int)b + (int)c; }
        """
        assert run_minic(src).exit_code == -7 + 2 + 65

    def test_char_array_string_init(self):
        src = """
        char msg[16] = "hi there";
        int main() {
            print_str(msg);
            return (int)msg[3];
        }
        """
        m = run_minic(src)
        assert m.stdout_text() == "hi there"
        assert m.exit_code == ord("t")

    def test_string_literal_in_expression(self):
        src = """
        int main() { return strlen("four"); }
        """
        assert run_minic(src).exit_code == 4

    def test_runtime_memory_functions(self):
        src = """
        char buf[32];
        int main() {
            memset(buf, 7, 10);
            char dst[32];
            memcpy(dst, buf, 10);
            int s = 0;
            int i;
            for (i = 0; i < 12; i = i + 1) { s = s + (int)dst[i]; }
            return s;   // 10 sevens + 2 uninitialised zeros
        }
        """
        assert run_minic(src).exit_code == 70

    def test_malloc(self):
        src = """
        int main() {
            int* p = (int*)malloc(80);
            int i;
            for (i = 0; i < 10; i = i + 1) { p[i] = i; }
            return p[9];
        }
        """
        assert run_minic(src).exit_code == 9


class TestPrefetchIntrinsic:
    def test_prefetch_compiles_and_runs(self):
        src = """
        int a[8];
        int main() {
            __prefetch(a);
            a[0] = 5;
            return a[0];
        }
        """
        assert run_minic(src).exit_code == 5
