"""Pin-workalike engine tests: instrumentation, IARGs, predication."""

import pytest

from repro.asmkit import assemble
from repro.minic import build_program
from repro.pin import IARG, IPOINT, PinEngine
from repro.vm import CODE_BASE, DATA_BASE


def simple_program():
    return assemble(f"""
        .text
        .func main
    main:
        li   t0, {DATA_BASE}
        li   t1, 7
        sd   t1, 0(t0)
        ld   t2, 0(t0)
        halt
        .endfunc
    """)


class TestInsPredicates:
    def test_instruction_views(self):
        seen = {}

        def cb(ins):
            seen[ins.Mnemonic()] = (ins.IsMemoryRead(), ins.IsMemoryWrite(),
                                    ins.MemoryReadSize(),
                                    ins.MemoryWriteSize(), ins.Address())

        eng = PinEngine(simple_program())
        eng.INS_AddInstrumentFunction(cb)
        eng.run()
        assert seen["sd"][:4] == (False, True, 0, 8)
        assert seen["ld"][:4] == (True, False, 8, 0)
        assert seen["li"][:4] == (False, False, 0, 0)
        assert seen["ld"][4] == CODE_BASE + 3 * 16

    def test_routine_lookup_from_ins(self):
        names = set()

        def cb(ins):
            rtn = ins.Routine()
            names.add(rtn.Name() if rtn else None)

        eng = PinEngine(simple_program())
        eng.INS_AddInstrumentFunction(cb)
        eng.run()
        assert names == {"main"}


class TestAnalysisCalls:
    def test_memory_args(self):
        events = []

        def on_mem(ea, size, sp):
            events.append((ea, size))

        def cb(ins):
            if ins.IsMemoryRead() or ins.IsMemoryWrite():
                ins.InsertPredicatedCall(IPOINT.BEFORE, on_mem,
                                         IARG.MEMORY_EA, IARG.MEMORY_SIZE,
                                         IARG.REG_SP)

        eng = PinEngine(simple_program())
        eng.INS_AddInstrumentFunction(cb)
        eng.run()
        assert events == [(DATA_BASE, 8), (DATA_BASE, 8)]

    def test_static_args_resolved_once(self):
        ips = []

        def on_any(ip):
            ips.append(ip)

        def cb(ins):
            if ins.Mnemonic() == "halt":
                ins.InsertCall(IPOINT.BEFORE, on_any, IARG.INST_PTR)

        eng = PinEngine(simple_program())
        eng.INS_AddInstrumentFunction(cb)
        eng.run()
        assert ips == [CODE_BASE + 4 * 16]

    def test_icount_arg(self):
        counts = []

        def cb(ins):
            ins.InsertCall(IPOINT.BEFORE, counts.append, IARG.ICOUNT)

        eng = PinEngine(simple_program())
        eng.INS_AddInstrumentFunction(cb)
        eng.run()
        assert counts == [1, 2, 3, 4, 5]

    def test_no_args_call(self):
        hits = []

        def cb(ins):
            ins.InsertCall(IPOINT.BEFORE, lambda: hits.append(1))

        eng = PinEngine(simple_program())
        eng.INS_AddInstrumentFunction(cb)
        eng.run()
        assert len(hits) == 5

    def test_analysis_called_per_execution_not_per_compile(self):
        prog = assemble("""
            .text
        main:
            li t0, 10
        loop:
            addi t0, t0, -1
            bnez t0, loop
            halt
        """)
        hits = []

        def cb(ins):
            if ins.Mnemonic() == "addi":
                ins.InsertCall(IPOINT.BEFORE, lambda: hits.append(1))

        eng = PinEngine(prog)
        eng.INS_AddInstrumentFunction(cb)
        eng.run()
        assert len(hits) == 10
        # the instruction was compiled (and instrumented) exactly once
        assert eng.machine.compile_count == 4

    def test_only_before_supported(self):
        def cb(ins):
            with pytest.raises(ValueError):
                ins.InsertCall("after", lambda: None)

        eng = PinEngine(simple_program())
        eng.INS_AddInstrumentFunction(cb)
        eng.run()


class TestPredication:
    def _program(self, guard: int):
        return assemble(f"""
            .text
        main:
            li   t0, {DATA_BASE}
            li   t1, 9
            li   t2, {guard}
            sd   t1, 0(t0) ?t2
            halt
        """)

    def test_predicated_call_skipped_when_guard_false(self):
        events = []

        def cb(ins):
            if ins.IsMemoryWrite():
                ins.InsertPredicatedCall(IPOINT.BEFORE,
                                         lambda ea, sz: events.append(ea),
                                         IARG.MEMORY_EA, IARG.MEMORY_SIZE)

        eng = PinEngine(self._program(0))
        eng.INS_AddInstrumentFunction(cb)
        eng.run()
        assert events == []
        assert eng.machine.read_i64(DATA_BASE) == 0  # store squashed

    def test_predicated_call_runs_when_guard_true(self):
        events = []

        def cb(ins):
            if ins.IsMemoryWrite():
                ins.InsertPredicatedCall(IPOINT.BEFORE,
                                         lambda ea, sz: events.append(ea),
                                         IARG.MEMORY_EA, IARG.MEMORY_SIZE)

        eng = PinEngine(self._program(1))
        eng.INS_AddInstrumentFunction(cb)
        eng.run()
        assert events == [DATA_BASE]
        assert eng.machine.read_i64(DATA_BASE) == 9

    def test_plain_insertcall_runs_even_when_guard_false(self):
        events = []

        def cb(ins):
            if ins.IsMemoryWrite():
                ins.InsertCall(IPOINT.BEFORE, lambda: events.append("x"))

        eng = PinEngine(self._program(0))
        eng.INS_AddInstrumentFunction(cb)
        eng.run()
        assert events == ["x"]

    def test_instruction_retires_but_has_no_effect(self):
        eng = PinEngine(self._program(0))
        eng.INS_AddInstrumentFunction(lambda ins: None)
        eng.run()
        assert eng.machine.icount == 5  # predicated store still counted


class TestRtnInstrumentation:
    def test_entry_calls_with_names_and_images(self):
        src = """
        int helper() { return 1; }
        int main() { return helper() + helper(); }
        """
        prog = build_program(src)
        entries = []

        def cb(rtn):
            rtn.InsertCall(IPOINT.BEFORE, lambda n, i: entries.append((n, i)),
                           IARG.RTN_NAME, IARG.RTN_IMAGE)

        eng = PinEngine(prog)
        eng.RTN_AddInstrumentFunction(cb)
        eng.run()
        assert entries[0] == ("_start", "libc")
        assert entries[1] == ("main", "main")
        assert entries.count(("helper", "main")) == 2

    def test_rtn_metadata(self):
        infos = {}

        def cb(rtn):
            infos[rtn.Name()] = (rtn.ImageName(), rtn.IsMainImage(),
                                 rtn.Size())

        eng = PinEngine(build_program("int main() { return 0; }"))
        eng.RTN_AddInstrumentFunction(cb)
        eng.run()
        assert infos["main"][0] == "main"
        assert infos["main"][1] is True
        assert infos["main"][2] > 0
        assert infos["_start"][1] is False


class TestEngineLifecycle:
    def test_fini_receives_exit_code(self):
        codes = []
        eng = PinEngine(build_program("int main() { return 42; }"))
        eng.AddFiniFunction(codes.append)
        assert eng.run() == 42
        assert codes == [42]

    def test_uninstrumented_run_matches(self):
        prog = build_program("int main() { return 3 + 4; }")
        eng = PinEngine(prog)
        assert eng.run() == 7

    def test_double_attach_rejected(self):
        from repro.core import TQuadTool

        eng = PinEngine(simple_program())
        tool = TQuadTool()
        eng.add_tool(tool)
        with pytest.raises(RuntimeError):
            tool.attach(eng)

    def test_analysis_calls_inserted_counter(self):
        eng = PinEngine(simple_program())

        def cb(ins):
            if ins.IsMemoryRead():
                ins.InsertPredicatedCall(IPOINT.BEFORE, lambda ea: None,
                                         IARG.MEMORY_EA)

        eng.INS_AddInstrumentFunction(cb)
        eng.run()
        assert eng.analysis_calls_inserted == 1
