"""The bounded-memory replay tier: budgets, spill machinery, the LRU
page cache, the sampled approximate tier, and their CLI surface.

The load-bearing contracts:

* exact streaming replay (``--mem-limit``) is *byte-identical* to the
  unbounded in-memory path, even when carry state is forced to spill
  and k-way merge back from disk;
* spill scratch always disappears — on clean close, on exceptions, and
  (via :func:`cleanup_spill_dirs`) after a ``kill -9``-style death;
* the approximate tier (``--approx``) is deterministic for a fixed
  (capture, rate, seed) triple and ships its error bounds.
"""

import io
import os

import numpy as np
import pytest

from repro.capture import (CaptureReader, MemBudget, PageLRU, SpillPool,
                           STREAM_TQUAD_READ, StreamingCursor,
                           approx_replay_tquad, capture_run,
                           cleanup_spill_dirs, merge_sorted_runs,
                           parse_mem_limit, replay_gprof, replay_quad,
                           replay_tquad, sample_mask)
from repro.capture.approx import CountMinSketch
from repro.capture.streaming import (MIN_MEM_LIMIT, SPILL_PREFIX,
                                     SortedTableAcc)
from repro.cli import main
from repro.core import TQuadOptions
from repro.minic import build_program
from repro.obs import Telemetry
from repro.serialize import (approx_from_json, approx_to_json,
                             flat_to_json, quad_to_json, tquad_to_json)
from repro.sweep import SweepGrid, sweep_tquad

APP = """
int a[96]; int b[96];
int wr() { int i; for (i = 0; i < 96; i++) { a[i] = i * 7; } return 0; }
int rd() { int i; int s = 0; for (i = 0; i < 96; i++)
           { s += a[i] + b[i]; } return s; }
int mix() { int i; for (i = 0; i < 96; i++) { b[i] = a[95 - i]; }
            return 0; }
int main() { wr(); mix(); return rd() & 31; }
"""


def _capture(tmp_path=None, *, grain=100, tools=("tquad", "gprof", "quad")):
    """A small capture; BytesIO-backed unless a tmp_path is given."""
    program = build_program(APP)
    if tmp_path is None:
        target = io.BytesIO()
    else:
        target = str(tmp_path / "s.capture")
    capture_run(program, target, tools=tools,
                options=TQuadOptions(slice_interval=grain))
    if tmp_path is None:
        target.seek(0)
    return target


def _reader(source, **kw):
    if isinstance(source, io.BytesIO):
        source.seek(0)
    return CaptureReader(source, **kw)


# ------------------------------------------------------------ parse limit
class TestParseMemLimit:
    @pytest.mark.parametrize("text,expected", [
        ("65536", 65536), ("64K", 64 << 10), ("64k", 64 << 10),
        ("8M", 8 << 20), ("1G", 1 << 30), ("2MB", 2 << 20),
        (" 128K ", 128 << 10), (1 << 20, 1 << 20),
    ])
    def test_accepted(self, text, expected):
        assert parse_mem_limit(text) == expected

    def test_none_passes_through(self):
        assert parse_mem_limit(None) is None

    @pytest.mark.parametrize("text", ["", "fast", "64Q", "1.5M", "-1"])
    def test_malformed_rejected(self, text):
        with pytest.raises(ValueError):
            parse_mem_limit(text)

    def test_below_floor_rejected(self):
        with pytest.raises(ValueError, match="floor"):
            parse_mem_limit(MIN_MEM_LIMIT - 1)
        assert parse_mem_limit(MIN_MEM_LIMIT) == MIN_MEM_LIMIT


# ----------------------------------------------------------------- budget
class TestMemBudget:
    def test_high_water_mark_and_over(self):
        b = MemBudget(100)
        b.charge(60)
        assert not b.over and b.peak == 60
        b.charge(60)
        assert b.over and b.peak == 120
        b.release(80)
        assert not b.over and b.resident == 40 and b.peak == 120

    def test_touch_moves_peak_not_resident(self):
        b = MemBudget(100)
        b.charge(10)
        b.touch(500)
        assert b.resident == 10 and b.peak == 510

    def test_unlimited_budget_never_over(self):
        b = MemBudget(None)
        b.charge(1 << 40)
        assert not b.over

    def test_publish_emits_gauges(self):
        tele = Telemetry()
        b = MemBudget(100)
        b.charge(70)
        b.note_spill(30)
        b.publish(tele)
        assert tele.gauges["stream/peak_resident_bytes"] == 70
        assert tele.gauges["stream/spill_bytes"] == 30
        assert b.spill_runs == 1


# ---------------------------------------------------------------- PageLRU
class TestPageLRU:
    def test_evicts_oldest_when_over_budget(self):
        budget = MemBudget(2048)
        stats = {}
        lru = PageLRU(budget, stats)
        pages = {i: np.arange(128, dtype=np.int64) for i in range(4)}
        for i, arr in pages.items():           # 1024 B each: 2 fit
            lru.put(("s", i), arr)
        assert stats["evicted_pages"] == 2
        assert lru.get(("s", 0)) is None and lru.get(("s", 1)) is None
        assert lru.get(("s", 3)) is not None
        assert budget.resident <= 2048

    def test_always_keeps_newest_even_if_oversized(self):
        budget = MemBudget(MIN_MEM_LIMIT)
        lru = PageLRU(budget, {})
        big = np.zeros(2 * MIN_MEM_LIMIT // 8, dtype=np.int64)
        lru.put(("s", 0), big)
        assert lru.get(("s", 0)) is not None

    def test_clear_releases_budget(self):
        budget = MemBudget(1 << 20)
        lru = PageLRU(budget, {})
        lru.put(("s", 0), np.arange(64, dtype=np.int64))
        assert budget.resident > 0
        lru.clear()
        assert budget.resident == 0


# -------------------------------------------------------------- spill pool
class TestSpillPool:
    def test_lazy_dir_and_cleanup(self):
        with SpillPool(MemBudget(1 << 20)) as pool:
            assert pool.path is None
            run = pool.write(np.zeros((4, 3), np.int64))
            assert pool.path is not None and os.path.exists(run)
            assert SPILL_PREFIX in run and str(os.getpid()) in run
        assert not os.path.exists(run)

    def test_exception_still_cleans_up(self):
        with pytest.raises(KeyboardInterrupt):
            with SpillPool() as pool:
                run = pool.write(np.zeros((2, 3), np.int64))
                raise KeyboardInterrupt
        assert not os.path.exists(run)

    def test_write_notes_spill_in_budget(self):
        budget = MemBudget(1 << 20)
        with SpillPool(budget) as pool:
            table = np.ones((8, 3), np.int64)
            pool.write(table)
            assert budget.spilled_bytes == table.nbytes
            assert budget.spill_runs == 1

    def test_cleanup_spill_dirs_sweeps_dead_pids(self, tmp_path):
        dead = (tmp_path / f"{SPILL_PREFIX}424242-abc")
        dead.mkdir()
        (dead / "run00000.npy").write_bytes(b"x")
        alive = (tmp_path / f"{SPILL_PREFIX}424243-def")
        alive.mkdir()
        removed = cleanup_spill_dirs([424242], tmp=str(tmp_path))
        assert [os.path.basename(p) for p in removed] == [dead.name]
        assert not dead.exists() and alive.exists()


# ------------------------------------------------------------------ merge
def _naive(tables):
    out = {}
    for t in tables:
        for k, i, x in np.asarray(t):
            acc = out.setdefault(int(k), [0, 0])
            acc[0] += int(i)
            acc[1] += int(x)
    keys = sorted(out)
    return (np.array(keys, np.int64),
            np.array([out[k][0] for k in keys], np.int64),
            np.array([out[k][1] for k in keys], np.int64))


class TestMergeSortedRuns:
    def test_matches_naive_merge_at_tiny_block_size(self):
        rng = np.random.default_rng(7)
        tables = []
        for _ in range(4):
            keys = np.sort(rng.integers(0, 40, size=rng.integers(1, 30)))
            vals = rng.integers(0, 100, size=(keys.size, 2))
            tables.append(np.column_stack(
                [keys, vals[:, 0], vals[:, 1]]).astype(np.int64))
        want = _naive(tables)
        for block in (1, 2, 3, 1 << 16):
            got = merge_sorted_runs(list(tables), block_rows=block)
            for g, w in zip(got, want):
                np.testing.assert_array_equal(g, w)

    def test_accepts_paths_and_arrays_mixed(self, tmp_path):
        a = np.array([[1, 10, 0], [5, 1, 2]], np.int64)
        b = np.array([[1, 5, 5], [9, 0, 1]], np.int64)
        path = tmp_path / "run.npy"
        np.save(path, a)
        keys, incl, excl = merge_sorted_runs([str(path), b], block_rows=1)
        np.testing.assert_array_equal(keys, [1, 5, 9])
        np.testing.assert_array_equal(incl, [15, 1, 0])
        np.testing.assert_array_equal(excl, [5, 2, 1])

    def test_empty_runs(self):
        keys, incl, excl = merge_sorted_runs([])
        assert keys.size == incl.size == excl.size == 0


class TestSortedTableAcc:
    def test_forced_spill_round_trips_exactly(self):
        rng = np.random.default_rng(3)
        budget = MemBudget(MIN_MEM_LIMIT)
        acc = SortedTableAcc(budget, compact_rows=16)
        want: dict[int, list[int]] = {}
        with SpillPool(budget) as pool:
            for _ in range(30):
                keys = rng.integers(0, 50, size=12).astype(np.int64)
                incl = rng.integers(0, 9, size=12).astype(np.int64)
                excl = rng.integers(0, 9, size=12).astype(np.int64)
                for k, i, x in zip(keys, incl, excl):
                    acc_e = want.setdefault(int(k), [0, 0])
                    acc_e[0] += int(i)
                    acc_e[1] += int(x)
                acc.add(keys, incl, excl)
                acc.spill(pool)        # force a run per batch
            assert len(acc.runs) > 1
            assert budget.spilled_bytes > 0
            keys, incl, excl = acc.finalize(block_rows=8)
        np.testing.assert_array_equal(keys, sorted(want))
        np.testing.assert_array_equal(incl, [want[k][0] for k in sorted(want)])
        np.testing.assert_array_equal(excl, [want[k][1] for k in sorted(want)])


# -------------------------------------------------------- streaming cursor
class TestStreamingCursor:
    def test_yields_same_pages_as_reader(self):
        buf = _capture()
        with _reader(buf) as reader:
            plain = [p.copy() for p in reader.pages(STREAM_TQUAD_READ)]
        with _reader(buf) as reader:
            budget = MemBudget(MIN_MEM_LIMIT)
            cursor = StreamingCursor(reader, STREAM_TQUAD_READ,
                                     budget=budget)
            streamed = list(cursor)
        assert len(streamed) == len(plain)
        for a, b in zip(streamed, plain):
            np.testing.assert_array_equal(a, b)
        assert budget.peak > 0

    def test_pages_are_read_only(self):
        buf = _capture()
        with _reader(buf) as reader:
            page = next(iter(StreamingCursor(reader, STREAM_TQUAD_READ,
                                             budget=MemBudget())))
        with pytest.raises(ValueError):
            page[0, 0] = 1


# ------------------------------------------------------ streaming replays
class TestStreamingReplayByteIdentity:
    @pytest.mark.parametrize("limit", [MIN_MEM_LIMIT, 1 << 20])
    def test_replay_tquad(self, limit):
        buf = _capture()
        with _reader(buf) as reader:
            base = tquad_to_json(replay_tquad(reader))
        with _reader(buf) as reader:
            bounded = tquad_to_json(replay_tquad(reader, mem_limit=limit))
        assert bounded == base

    def test_replay_gprof_and_quad(self):
        buf = _capture()
        with _reader(buf) as reader:
            flat = flat_to_json(replay_gprof(reader))
            quad = quad_to_json(replay_quad(reader))
        with _reader(buf) as reader:
            assert flat_to_json(replay_gprof(
                reader, mem_limit=MIN_MEM_LIMIT)) == flat
        with _reader(buf) as reader:
            assert quad_to_json(replay_quad(
                reader, mem_limit=MIN_MEM_LIMIT)) == quad

    def test_sweep_reports_identical_and_stats_gated(self):
        buf = _capture(tools=("tquad",))
        grid = SweepGrid(intervals=(100, 200))
        with _reader(buf) as reader:
            base = sweep_tquad(reader, grid)
        with _reader(buf) as reader:
            bounded = sweep_tquad(reader, grid, mem_limit=MIN_MEM_LIMIT)
        for (cell, report), (_, brep) in zip(base, bounded):
            assert tquad_to_json(report) == tquad_to_json(brep)
        # streaming stats appear ONLY on the bounded run (golden safety)
        assert "peak_resident_bytes" not in base.stats
        assert bounded.stats["peak_resident_bytes"] > 0
        assert "spilled_bytes" in bounded.stats

    def test_publishes_stream_gauges(self):
        buf = _capture(tools=("tquad",))
        tele = Telemetry()
        with _reader(buf) as reader:
            replay_tquad(reader, mem_limit=MIN_MEM_LIMIT, telemetry=tele)
        assert tele.gauges["stream/peak_resident_bytes"] > 0
        assert "stream/spill_bytes" in tele.gauges


# ---------------------------------------------------------------- approx
class TestApproxReplay:
    def test_deterministic_for_fixed_seed(self):
        buf = _capture(tools=("tquad",))
        with _reader(buf) as reader:
            a = approx_to_json(approx_replay_tquad(reader, rate=0.4,
                                                   seed=11))
        with _reader(buf) as reader:
            b = approx_to_json(approx_replay_tquad(reader, rate=0.4,
                                                   seed=11))
        assert a == b

    def test_seed_changes_selection(self):
        buf = _capture(tools=("tquad",))
        with _reader(buf) as reader:
            a = approx_replay_tquad(reader, rate=0.4, seed=1)
        with _reader(buf) as reader:
            b = approx_replay_tquad(reader, rate=0.4, seed=2)
        assert a.rows_walked == b.rows_walked
        assert a.sampled_rows != b.sampled_rows \
            or approx_to_json(a) != approx_to_json(b)

    def test_estimates_carry_bounds_and_are_sane(self):
        buf = _capture(tools=("tquad",))
        with _reader(buf) as reader:
            exact = replay_tquad(reader)
        truth = {}
        for name in exact.kernels():
            for counters in exact.ledger.history[name].values():
                truth["read_incl"] = truth.get("read_incl", 0) + counters[0]
        with _reader(buf) as reader:
            est = approx_replay_tquad(reader, rate=0.5, seed=0)
        assert 0 < est.sampled_rows < est.rows_walked
        for key in ("read_incl", "read_excl", "write_incl", "write_excl"):
            assert key in est.totals and key in est.rel_err_95
            assert est.rel_err_95[key] >= 0.0
        # the sampled estimate lands within a few reported bounds of truth
        err = est.rel_err_95["read_incl"]
        assert abs(est.totals["read_incl"] - truth["read_incl"]) \
            <= max(3 * err * truth["read_incl"], 64)
        assert est.heavy_hitters, "kernels with traffic must rank"
        assert est.sketch["bound_bytes"] >= 0

    def test_rate_validated(self):
        buf = _capture(tools=("tquad",))
        with _reader(buf) as reader:
            for rate in (0.0, 1.0, -0.5, 2.0):
                with pytest.raises(ValueError):
                    approx_replay_tquad(reader, rate=rate)

    def test_json_round_trip(self):
        buf = _capture(tools=("tquad",))
        with _reader(buf) as reader:
            est = approx_replay_tquad(reader, rate=0.3, seed=4)
        text = approx_to_json(est)
        back = approx_from_json(text)
        assert approx_to_json(back) == text
        assert tquad_to_json(back.report) == tquad_to_json(est.report)


class TestSampleMask:
    def test_deterministic_and_keyed(self):
        a = sample_mask(1, 0, 3, 1000, 0.25)
        b = sample_mask(1, 0, 3, 1000, 0.25)
        np.testing.assert_array_equal(a, b)
        c = sample_mask(1, 1, 3, 1000, 0.25)
        assert not np.array_equal(a, c)

    def test_rate_controls_density(self):
        m = sample_mask(0, 0, 0, 20_000, 0.3)
        assert 0.25 < m.mean() < 0.35


class TestCountMinSketch:
    def test_never_underestimates(self):
        rng = np.random.default_rng(5)
        sketch = CountMinSketch(width=256, depth=4, seed=1)
        keys = rng.integers(0, 500, size=3000).astype(np.int64)
        weights = rng.integers(1, 50, size=3000).astype(np.int64)
        sketch.update(keys, weights)
        truth = np.zeros(500, np.int64)
        np.add.at(truth, keys, weights)
        est = sketch.query(np.arange(500, dtype=np.int64))
        assert (est >= truth).all()
        # and the classic bound holds for the vast majority of keys
        bound = sketch.epsilon * sketch.total
        ok = (est - truth <= bound).mean()
        assert ok > 0.95

    def test_width_rounds_to_power_of_two(self):
        assert CountMinSketch(width=1000).width == 1024
        assert CountMinSketch(width=1024).width == 1024


# -------------------------------------------------------------------- CLI
@pytest.fixture()
def app(tmp_path):
    path = tmp_path / "app.mc"
    path.write_text(APP)
    return path


@pytest.fixture()
def capture_file(app, tmp_path, capsys):
    path = tmp_path / "app.capture"
    rc = main(["capture", "run", str(app), "--out", str(path),
               "--interval", "100"])
    assert rc == 0
    capsys.readouterr()
    return path


class TestCliStreaming:
    def test_profile_mem_limit_output_identical(self, app, capture_file,
                                                capsys):
        assert main(["profile", str(app), "--from-capture",
                     str(capture_file), "--interval", "100"]) == 0
        base = capsys.readouterr().out
        assert main(["profile", str(app), "--from-capture",
                     str(capture_file), "--interval", "100",
                     "--mem-limit", "64K"]) == 0
        assert capsys.readouterr().out == base

    def test_profile_approx_prints_bounds(self, app, capture_file,
                                          capsys):
        assert main(["profile", str(app), "--from-capture",
                     str(capture_file), "--interval", "100",
                     "--approx", "0.5"]) == 0
        out = capsys.readouterr().out
        assert "approx replay: rate=0.5" in out
        assert "@95%" in out

    def test_profile_approx_json_artifact(self, app, capture_file,
                                          tmp_path, capsys):
        dest = tmp_path / "a.json"
        assert main(["profile", str(app), "--from-capture",
                     str(capture_file), "--interval", "100",
                     "--approx", "0.5", "--json", str(dest)]) == 0
        capsys.readouterr()
        est = approx_from_json(dest.read_text())
        assert est.rate == 0.5

    def test_sweep_mem_limit_prints_streaming_line(self, app,
                                                   capture_file, capsys):
        assert main(["sweep", str(app), "--intervals", "100,200",
                     "--from-capture", str(capture_file),
                     "--mem-limit", "64K"]) == 0
        assert "streaming: peak resident" in capsys.readouterr().out

    def test_capture_info_estimate(self, capture_file, capsys):
        assert main(["capture", "info", str(capture_file),
                     "--estimate"]) == 0
        out = capsys.readouterr().out
        assert "uncompressed pages:" in out
        assert "projected peak replay memory" in out
        assert "--mem-limit" in out

    @pytest.mark.parametrize("argv,needle", [
        (["profile", "{app}", "--mem-limit", "1M"], "--mem-limit"),
        (["profile", "{app}", "--from-capture", "{cap}",
          "--mem-limit", "12"], "floor"),
        (["profile", "{app}", "--from-capture", "{cap}",
          "--mem-limit", "lots"], "--mem-limit"),
        (["profile", "{app}", "--from-capture", "{cap}",
          "--approx", "1.5"], "--approx"),
        (["profile", "{app}", "--approx", "0.5"], "--approx"),
        (["profile", "{app}", "--from-capture", "{cap}", "--tool",
          "gprof", "--approx", "0.5"], "--tool tquad"),
        (["sweep", "{app}", "--intervals", "100", "--from-capture",
          "{cap}", "--approx", "0"], "--approx"),
    ])
    def test_misuse_exits_2(self, app, capture_file, argv, needle,
                            capsys):
        argv = [a.format(app=app, cap=capture_file) for a in argv]
        assert main(argv) == 2
        assert needle in capsys.readouterr().err
