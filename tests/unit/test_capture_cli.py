"""CLI tests for the capture workflow: ``tquad capture run/info``,
``--capture-out``, and ``--from-capture`` — happy paths print byte-identical
reports, and every misuse or bad file fails with a clean exit-2 message."""

import pytest

from repro.cli import main

APP = """
int a[64];
int w() { int i; for (i = 0; i < 64; i++) { a[i] = i; } return 0; }
int r() { int i; int s = 0; for (i = 0; i < 64; i++) { s += a[i]; } return s; }
int main() { w(); return r() & 15; }
"""

OTHER = "int main() { return 1; }\n"


@pytest.fixture()
def app(tmp_path):
    path = tmp_path / "app.mc"
    path.write_text(APP)
    return path


@pytest.fixture()
def capture(app, tmp_path, capsys):
    path = tmp_path / "app.capture"
    rc = main(["capture", "run", str(app), "--out", str(path),
               "--interval", "250"])
    assert rc == 0
    capsys.readouterr()
    return path


class TestCaptureRun:
    def test_run_reports_streams(self, app, tmp_path, capsys):
        out = tmp_path / "c.capture"
        rc = main(["capture", "run", str(app), "--out", str(out),
                   "--interval", "500", "--label", "smoke"])
        assert rc == 0
        text = capsys.readouterr().out
        assert "instructions" in text and "streams" in text
        assert out.exists()

    def test_info_summarises_manifest(self, capture, capsys):
        rc = main(["capture", "info", str(capture)])
        assert rc == 0
        out = capsys.readouterr().out
        assert "grain=250" in out
        assert "tquad.read" in out and "quad.raw" in out

    def test_tool_subset(self, app, tmp_path, capsys):
        out = tmp_path / "g.capture"
        rc = main(["capture", "run", str(app), "--out", str(out),
                   "--tools", "gprof"])
        assert rc == 0
        rc = main(["capture", "info", str(out)])
        assert rc == 0
        assert "tools: gprof" in capsys.readouterr().out

    def test_bad_tools_rejected(self, app, tmp_path, capsys):
        rc = main(["capture", "run", str(app), "--out", "x", "--tools",
                   "tquad,bogus"])
        assert rc == 2
        assert "--tools" in capsys.readouterr().err

    def test_bad_interval_rejected(self, app, capsys):
        rc = main(["capture", "run", str(app), "--out", "x",
                   "--interval", "0"])
        assert rc == 2
        assert "--interval" in capsys.readouterr().err

    def test_info_missing_file(self, tmp_path, capsys):
        rc = main(["capture", "info", str(tmp_path / "nope.capture")])
        assert rc == 2
        assert "error:" in capsys.readouterr().err


class TestReplayMatchesDirect:
    @pytest.mark.parametrize("argv", [
        ["--interval", "500"],
        ["--interval", "1000", "--figure", "--phases"],
        ["--tool", "gprof", "--callgraph"],
        ["--tool", "quad", "--stats"],
    ])
    def test_from_capture_prints_identically(self, app, capture, capsys,
                                             argv):
        assert main(["profile", str(app), *argv]) == 0
        direct = capsys.readouterr().out
        assert main(["profile", str(app), *argv,
                     "--from-capture", str(capture)]) == 0
        assert capsys.readouterr().out == direct

    def test_capture_out_prints_identically(self, app, tmp_path, capsys):
        assert main(["profile", str(app), "--interval", "500"]) == 0
        direct = capsys.readouterr().out
        out = tmp_path / "rec.capture"
        assert main(["profile", str(app), "--interval", "500",
                     "--capture-out", str(out)]) == 0
        captured = capsys.readouterr()
        assert captured.out == direct
        assert str(out) in captured.err
        # and the file it wrote replays identically too
        assert main(["profile", str(app), "--interval", "500",
                     "--from-capture", str(out)]) == 0
        assert capsys.readouterr().out == direct

    def test_json_export_from_capture(self, app, capture, tmp_path,
                                      capsys):
        j1, j2 = tmp_path / "a.json", tmp_path / "b.json"
        assert main(["profile", str(app), "--interval", "500",
                     "--json", str(j1)]) == 0
        assert main(["profile", str(app), "--interval", "500",
                     "--json", str(j2), "--from-capture",
                     str(capture)]) == 0
        assert j1.read_text() == j2.read_text()


class TestUsageErrors:
    @pytest.mark.parametrize("argv,needle", [
        (["--from-capture", "c", "--capture-out", "d"], "mutually"),
        (["--from-capture", "c", "--jobs", "2"], "--jobs"),
        (["--from-capture", "c", "--cache"], "--cache"),
        (["--from-capture", "c", "--imix"], "--cache"),
        (["--from-capture", "c", "--tool", "quad", "--shadow", "legacy"],
         "legacy"),
        (["--capture-out", "d", "--tool", "quad", "--shadow", "legacy"],
         "paged"),
        (["--capture-out", "d", "--jobs", "2", "--tool", "gprof"],
         "--tool tquad"),
    ])
    def test_flag_combinations(self, app, capsys, argv, needle):
        rc = main(["profile", str(app), *argv])
        assert rc == 2
        assert needle in capsys.readouterr().err

    def test_missing_capture_file(self, app, tmp_path, capsys):
        rc = main(["profile", str(app), "--from-capture",
                   str(tmp_path / "nope.capture")])
        assert rc == 2
        assert "error:" in capsys.readouterr().err

    def test_corrupt_capture_file(self, app, tmp_path, capsys):
        bad = tmp_path / "bad.capture"
        bad.write_bytes(b"garbage, not a zip container")
        rc = main(["profile", str(app), "--from-capture", str(bad)])
        assert rc == 2
        assert "not a capture" in capsys.readouterr().err

    def test_wrong_program_rejected(self, capture, tmp_path, capsys):
        other = tmp_path / "other.mc"
        other.write_text(OTHER)
        rc = main(["profile", str(other), "--from-capture", str(capture)])
        assert rc == 2
        assert "different program" in capsys.readouterr().err

    def test_non_multiple_interval_rejected(self, app, capture, capsys):
        rc = main(["profile", str(app), "--interval", "375",
                   "--from-capture", str(capture)])
        assert rc == 2
        assert "multiple" in capsys.readouterr().err

    def test_exclude_libs_derives_from_marked_capture(self, app, capture,
                                                      capsys):
        # captures record library-marked kernel ids, so the exclude-libs
        # view is derivable — and byte-identical to the direct run
        assert main(["profile", str(app), "--interval", "500",
                     "--exclude-libs"]) == 0
        direct = capsys.readouterr().out
        rc = main(["profile", str(app), "--interval", "500",
                   "--exclude-libs", "--from-capture", str(capture)])
        assert rc == 0
        assert capsys.readouterr().out == direct

    def test_include_libs_from_dropped_capture_rejected(self, app, tmp_path,
                                                        capsys):
        # the reverse is impossible: rows dropped at record time are gone
        path = tmp_path / "nolib.capture"
        assert main(["capture", "run", str(app), "--out", str(path),
                     "--interval", "250", "--exclude-libs"]) == 0
        capsys.readouterr()
        rc = main(["profile", str(app), "--interval", "500",
                   "--from-capture", str(path)])
        assert rc == 2
        assert "--exclude-libs" in capsys.readouterr().err

    def test_missing_tool_stream_rejected(self, app, tmp_path, capsys):
        out = tmp_path / "g.capture"
        assert main(["capture", "run", str(app), "--out", str(out),
                     "--tools", "tquad"]) == 0
        capsys.readouterr()
        rc = main(["profile", str(app), "--tool", "gprof",
                   "--from-capture", str(out)])
        assert rc == 2
        assert "gprof" in capsys.readouterr().err

    def test_wfs_report_flag_conflicts(self, tmp_path, capsys):
        for flag in ("--from-capture", "--capture-out"):
            rc = main(["wfs", "--report", str(tmp_path / "r.md"), flag,
                       str(tmp_path / "c.capture")])
            assert rc == 2
            assert "--report" in capsys.readouterr().err


class TestWfsCapture:
    def test_wfs_roundtrip(self, tmp_path, capsys):
        out = tmp_path / "wfs.capture"
        assert main(["wfs", "--preset", "tiny", "--interval", "2500"]) == 0
        direct = capsys.readouterr().out
        assert main(["wfs", "--preset", "tiny", "--interval", "2500",
                     "--capture-out", str(out)]) == 0
        assert capsys.readouterr().out == direct
        assert main(["wfs", "--preset", "tiny", "--interval", "2500",
                     "--from-capture", str(out)]) == 0
        assert capsys.readouterr().out == direct


class TestGuestCapture:
    """``tquad guest`` capture round-trips and the preset-label check.

    Guest presets that differ only in workspace *data* (``tiny`` vs
    ``tiny-alt``) compile to the identical binary, so ``program_sha256``
    matches across them — only the manifest label can reject the replay.
    """

    def test_guest_roundtrip(self, tmp_path, capsys):
        out = tmp_path / "join.capture"
        base = ["guest", "hashjoin", "--preset", "tiny",
                "--interval", "500"]
        assert main(base) == 0
        direct = capsys.readouterr().out
        assert main([*base, "--capture-out", str(out)]) == 0
        assert capsys.readouterr().out == direct
        assert main([*base, "--from-capture", str(out)]) == 0
        assert capsys.readouterr().out == direct

    @pytest.mark.parametrize("app", ["hashjoin", "bfs", "stencil"])
    def test_same_sha_other_preset_rejected(self, app, tmp_path, capsys):
        from repro.apps.registry import GUEST_APPS
        from repro.capture import program_digest

        guest = GUEST_APPS[app]
        assert (program_digest(guest.build_program(guest.config("tiny")))
                == program_digest(guest.build_program(
                    guest.config("tiny-alt")))), \
            "presets no longer share a binary; the label check is untested"
        out = tmp_path / f"{app}.capture"
        assert main(["guest", app, "--preset", "tiny",
                     "--capture-out", str(out)]) == 0
        capsys.readouterr()
        rc = main(["guest", app, "--preset", "tiny-alt",
                   "--from-capture", str(out)])
        assert rc == 2
        err = capsys.readouterr().err
        assert f"{app}-tiny" in err and f"{app}-tiny-alt" in err

    def test_wfs_label_mismatch_rejected(self, tmp_path, capsys):
        # wfs presets differ in size, so the digest check fires first for
        # them — but a label-less path mismatch still reads cleanly
        out = tmp_path / "wfs.capture"
        assert main(["wfs", "--preset", "tiny",
                     "--capture-out", str(out)]) == 0
        capsys.readouterr()
        rc = main(["wfs", "--preset", "small",
                   "--from-capture", str(out)])
        assert rc == 2
        assert "error:" in capsys.readouterr().err

    def test_unlabelled_capture_still_replays(self, tmp_path, capsys):
        # plain `capture run` of the same binary has no label: accepted
        from repro.apps.hashjoin import TINY_JOIN, join_source

        src = tmp_path / "join.mc"
        src.write_text(join_source(TINY_JOIN))
        out = tmp_path / "plain.capture"
        assert main(["capture", "run", str(src), "--out", str(out),
                     "--interval", "500"]) == 0
        capsys.readouterr()
        rc = main(["guest", "hashjoin", "--preset", "tiny",
                   "--interval", "500", "--from-capture", str(out)])
        assert rc == 0

    def test_unknown_preset_rejected(self, capsys):
        rc = main(["guest", "bfs", "--preset", "bogus"])
        assert rc == 2
        assert "unknown preset" in capsys.readouterr().err

    def test_unrunnable_preset_rejected(self, capsys):
        rc = main(["guest", "wfs", "--preset", "paper"])
        assert rc == 2
        assert "not runnable" in capsys.readouterr().err
