"""Unit tests for the run-telemetry package (``repro.obs``)."""

import json

import pytest

from repro import obs
from repro.obs import (MAIN_TID, NULL_SPAN, Telemetry, summary_table,
                       to_chrome_trace, write_chrome_trace)


def make_tele(*, enabled=True, start=1_000_000):
    """A Telemetry on a deterministic fake clock (1 µs per call)."""
    state = {"now": start}

    def clock():
        state["now"] += 1_000
        return state["now"]

    return Telemetry(enabled=enabled, clock=clock)


class TestSpans:
    def test_disabled_span_is_the_shared_noop(self):
        tele = Telemetry(enabled=False)
        assert tele.span("x") is NULL_SPAN
        with tele.span("x", cat="c", arg=1):
            pass
        assert tele.events == []

    def test_enabled_span_records_on_exit(self):
        tele = make_tele()
        with tele.span("replay", cat="shard", shard=3):
            pass
        assert len(tele.events) == 1
        name, cat, ts, dur, tid, args = tele.events[0]
        assert (name, cat, tid) == ("replay", "shard", 0)
        assert args == {"shard": 3}
        assert dur == 1_000                 # exactly one clock tick inside

    def test_span_records_even_when_body_raises(self):
        tele = make_tele()
        with pytest.raises(ValueError):
            with tele.span("boom"):
                raise ValueError("x")
        assert [e[0] for e in tele.events] == ["boom"]

    def test_nested_spans_both_record(self):
        tele = make_tele()
        with tele.span("outer"):
            with tele.span("inner"):
                pass
        assert [e[0] for e in tele.events] == ["inner", "outer"]

    def test_instant_is_zero_duration_and_gated(self):
        tele = make_tele()
        tele.instant("mark", cat="c", k=1)
        assert tele.events[0][3] == 0
        off = Telemetry(enabled=False)
        off.instant("mark")
        assert off.events == []


class TestCountersAndGauges:
    def test_counters_accumulate_and_are_always_on(self):
        tele = Telemetry(enabled=False)
        tele.count("a")
        tele.count("a", 4)
        tele.count("b", 2)
        assert tele.counters == {"a": 5, "b": 2}

    def test_gauges_keep_latest_value(self):
        tele = Telemetry(enabled=False)
        tele.gauge("pages", 3)
        tele.gauge("pages", 7)
        assert tele.gauges == {"pages": 7}

    def test_merge_counters_adds(self):
        tele = Telemetry()
        tele.count("a", 1)
        tele.merge_counters({"a": 2, "c": 5})
        assert tele.counters == {"a": 3, "c": 5}


class TestCrossProcess:
    def test_take_events_detaches(self):
        tele = make_tele()
        with tele.span("x"):
            pass
        taken = tele.take_events()
        assert len(taken) == 1 and tele.events == []

    def test_adopt_retags_tid(self):
        parent = make_tele()
        worker = make_tele()
        with worker.span("replay", cat="shard", shard=0):
            pass
        parent.adopt(worker.take_events(), tid=7)
        assert parent.events[0][4] == 7
        assert parent.events[0][0] == "replay"

    def test_events_are_picklable(self):
        import pickle

        tele = make_tele()
        with tele.span("x", cat="c", a=1):
            pass
        assert pickle.loads(pickle.dumps(tele.events)) == tele.events


class TestLifecycle:
    def test_reset_clears_everything(self):
        tele = make_tele()
        with tele.span("x"):
            pass
        tele.count("c")
        tele.gauge("g", 1)
        tele.reset()
        assert (tele.events, tele.counters, tele.gauges) == ([], {}, {})

    def test_span_stats_aggregates_by_name(self):
        tele = make_tele()
        for _ in range(3):
            with tele.span("a"):
                pass
        with tele.span("b"):
            pass
        stats = tele.span_stats()
        assert stats["a"] == (3, 3_000)
        assert stats["b"] == (1, 1_000)

    def test_module_singleton_enable_disable(self):
        obs.reset()
        assert obs.span("x") is NULL_SPAN
        try:
            tele = obs.enable()
            assert tele is obs.TELEMETRY
            with obs.span("x"):
                pass
            assert len(obs.TELEMETRY.events) == 1
        finally:
            obs.disable()
            obs.reset()
        assert obs.span("x") is NULL_SPAN


class TestChromeTrace:
    def _sample(self):
        tele = make_tele()
        with tele.span("replay", cat="shard", shard=1):
            pass
        tele.adopt([("replay", "shard", 2_000_000, 5_000, 0, {"shard": 2})],
                   tid=3)
        tele.instant("note")
        tele.count("shards", 2)
        tele.gauge("pages", 4)
        return tele

    def test_structure_and_units(self):
        tele = self._sample()
        doc = to_chrome_trace(tele)
        json.dumps(doc)                     # must be JSON-serialisable
        events = doc["traceEvents"]
        meta = [e for e in events if e["ph"] == "M"]
        assert any(e["args"]["name"] == "main" and e["tid"] == MAIN_TID
                   for e in meta)
        assert any(e["args"]["name"] == "worker-3" for e in meta)
        xs = [e for e in events if e["ph"] == "X"]
        assert all(set(e) >= {"name", "cat", "ts", "dur", "pid", "tid"}
                   for e in xs)
        span = next(e for e in xs if e["tid"] == 3)
        assert span["ts"] == 2_000_000 / 1000       # ns -> µs
        assert span["dur"] == 5.0
        assert any(e["ph"] == "i" for e in events)
        assert doc["otherData"]["counters"] == {"shards": 2}
        assert doc["otherData"]["gauges"] == {"pages": 4}

    def test_write_chrome_trace_round_trips(self, tmp_path):
        path = tmp_path / "run.json"
        write_chrome_trace(self._sample(), str(path))
        doc = json.loads(path.read_text())
        assert doc["traceEvents"]

    def test_empty_collection_is_still_valid(self):
        doc = to_chrome_trace(Telemetry())
        json.dumps(doc)
        # only the parent thread-name metadata row, no span events
        assert [e["ph"] for e in doc["traceEvents"]] == ["M"]


class TestSummaryTable:
    def test_lists_spans_counters_gauges(self):
        tele = self._loaded()
        text = summary_table(tele)
        assert "replay" in text and "shards" in text and "pages" in text
        # sorted by total time descending
        lines = [ln for ln in text.splitlines() if ln.startswith(("replay",
                                                                  "merge"))]
        assert lines[0].startswith("replay")

    def test_empty_fallback(self):
        assert "no telemetry recorded" in summary_table(Telemetry())

    @staticmethod
    def _loaded():
        tele = make_tele()
        for _ in range(3):
            with tele.span("replay"):
                pass
        with tele.span("merge"):
            pass
        tele.count("shards", 3)
        tele.gauge("pages", 9)
        return tele
