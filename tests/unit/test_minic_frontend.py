"""MiniC front-end tests: lexer, parser, type errors."""

import pytest

from repro.minic import MiniCError, compile_unit, parse
from repro.minic import ast
from repro.minic.lexer import Token, tokenize, unescape_string
from repro.minic.types import (ArrayType, CHAR, FLOAT, INT, PtrType, VOID,
                               assignable, binary_result)


class TestLexer:
    def test_basic_tokens(self):
        toks = tokenize("int x = 42;")
        kinds = [(t.kind, t.text) for t in toks]
        assert kinds == [("kw", "int"), ("ident", "x"), ("op", "="),
                         ("int", "42"), ("op", ";"), ("eof", "")]

    def test_float_literals(self):
        toks = tokenize("1.5 0.25 2e3 .5")
        assert [t.kind for t in toks[:-1]] == ["float"] * 4

    def test_hex_literal(self):
        (t, _) = tokenize("0xFF")
        assert t.kind == "int" and int(t.text, 0) == 255

    def test_comments_stripped(self):
        toks = tokenize("a // line\n /* block\nblock */ b")
        idents = [t.text for t in toks if t.kind == "ident"]
        assert idents == ["a", "b"]

    def test_line_numbers_track_newlines(self):
        toks = tokenize("a\n\nb /* x\ny */ c")
        a, b, c = (t for t in toks if t.kind == "ident")
        assert (a.line, b.line, c.line) == (1, 3, 4)

    def test_two_char_operators(self):
        toks = tokenize("<< >> <= >= == != && ||")
        assert [t.text for t in toks if t.kind == "op"] == \
            ["<<", ">>", "<=", ">=", "==", "!=", "&&", "||"]

    def test_string_and_char(self):
        toks = tokenize(r'"a\nb" ' + r"'x'")
        assert toks[0].kind == "string"
        assert toks[1].kind == "char"

    def test_bad_character(self):
        with pytest.raises(MiniCError):
            tokenize("int $x;")

    def test_unescape(self):
        assert unescape_string(r"a\n\t\0\\\"") == "a\n\t\0\\\""
        with pytest.raises(MiniCError):
            unescape_string(r"\q")


class TestParser:
    def test_function_structure(self):
        unit = parse("int f(int a, float b) { return a; }")
        (f,) = unit.functions
        assert f.name == "f" and f.ret == INT
        assert [p.type for p in f.params] == [INT, FLOAT]

    def test_void_param_list(self):
        unit = parse("int f(void) { return 0; }")
        assert unit.functions[0].params == []

    def test_extern_declaration(self):
        unit = parse("extern int g(char* s);")
        (f,) = unit.functions
        assert f.extern and f.body is None
        assert f.params[0].type == PtrType(CHAR)

    def test_globals(self):
        unit = parse("int a = 3; float b; char msg[8] = \"hi\"; int arr[4];")
        types = {g.name: g.type for g in unit.globals}
        assert types["a"] == INT
        assert types["b"] == FLOAT
        assert types["msg"] == ArrayType(CHAR, 8)
        assert types["arr"] == ArrayType(INT, 4)

    def test_pointer_types(self):
        unit = parse("int f(float** p) { return 0; }")
        assert unit.functions[0].params[0].type == PtrType(PtrType(FLOAT))

    def test_precedence(self):
        unit = parse("int f() { return 1 + 2 * 3; }")
        ret = unit.functions[0].body.body[0]
        assert isinstance(ret.value, ast.Binary) and ret.value.op == "+"
        assert isinstance(ret.value.rhs, ast.Binary)
        assert ret.value.rhs.op == "*"

    def test_cast_vs_paren(self):
        unit = parse("int f(float x) { return (int)x + (1 + 2); }")
        ret = unit.functions[0].body.body[0]
        assert isinstance(ret.value.lhs, ast.Cast)

    def test_for_with_decl_init(self):
        unit = parse("int f() { int s = 0;"
                     " for (int i = 0; i < 3; i = i + 1) { s = s + i; }"
                     " return s; }")
        stmt = unit.functions[0].body.body[1]
        assert isinstance(stmt, ast.For)
        assert isinstance(stmt.init, ast.VarDecl)

    def test_if_without_braces(self):
        unit = parse("int f(int x) { if (x) return 1; else return 2; }")
        stmt = unit.functions[0].body.body[0]
        assert isinstance(stmt, ast.If)
        assert stmt.orelse is not None

    def test_assignment_targets(self):
        parse("int f(int* p) { *p = 1; p[2] = 3; return 0; }")
        with pytest.raises(MiniCError):
            parse("int f() { 1 = 2; return 0; }")

    def test_missing_semicolon(self):
        with pytest.raises(MiniCError):
            parse("int f() { return 0 }")

    def test_unterminated_block(self):
        with pytest.raises(MiniCError):
            parse("int f() { return 0;")

    def test_global_initializer_must_be_literal(self):
        with pytest.raises(MiniCError):
            parse("int a = 1 + 2;")

    def test_negative_global_initializer(self):
        unit = parse("int a = -5; float b = -1.5;")
        assert unit.globals[0].init.value == -5
        assert unit.globals[1].init.value == -1.5

    def test_local_array_initializer_rejected(self):
        with pytest.raises(MiniCError):
            parse("int f() { int a[3] = 1; return 0; }")

    def test_break_continue(self):
        unit = parse("int f() { while (1) { break; continue; } return 0; }")
        body = unit.functions[0].body.body[0].body.body
        assert isinstance(body[0], ast.Break)
        assert isinstance(body[1], ast.Continue)


class TestTypes:
    def test_sizeof(self):
        assert INT.sizeof() == 8
        assert FLOAT.sizeof() == 8
        assert CHAR.sizeof() == 1
        assert PtrType(INT).sizeof() == 8
        assert ArrayType(FLOAT, 10).sizeof() == 80

    def test_decay(self):
        assert ArrayType(INT, 4).decay() == PtrType(INT)
        assert INT.decay() == INT

    def test_binary_result_promotion(self):
        assert binary_result("+", INT, FLOAT) == FLOAT
        assert binary_result("+", INT, CHAR) == INT
        assert binary_result("<", FLOAT, FLOAT) == INT

    def test_pointer_arithmetic_rules(self):
        p = PtrType(FLOAT)
        assert binary_result("+", p, INT) == p
        assert binary_result("+", INT, p) == p
        assert binary_result("-", p, p) == INT
        with pytest.raises(MiniCError):
            binary_result("+", p, p)
        with pytest.raises(MiniCError):
            binary_result("*", p, INT)

    def test_modulo_requires_ints(self):
        with pytest.raises(MiniCError):
            binary_result("%", FLOAT, INT)

    def test_assignable(self):
        assert assignable(FLOAT, INT)
        assert assignable(INT, FLOAT)
        assert assignable(PtrType(INT), PtrType(INT))
        assert assignable(INT, PtrType(INT))
        assert not assignable(ArrayType(INT, 3), PtrType(INT))
        assert not assignable(VOID, INT)


class TestCompileErrors:
    @pytest.mark.parametrize("src,fragment", [
        ("int f() { return x; }", "undeclared"),
        ("int f() { y = 1; return 0; }", "undeclared"),
        ("int f() { g(); return 0; }", "undeclared function"),
        ("int f(int a) { int a; return a; }", "redeclaration"),
        ("int f() { int a; float* p = &a; return 0; }", "convert"),
        ("int f() { break; return 0; }", "break outside"),
        ("int f() { continue; return 0; }", "continue outside"),
        ("int f() { return; }", "without value"),
        ("void f() { return 1; }", "void function"),
        ("int f() { int x; return *x; }", "dereference"),
        ("int f() { int a[3]; a = 0; return 0; }", "array"),
        ("int f(float x) { return 1 % x; }", "integer operands"),
        ("int f() { }", "no return"),
        ("int f(int a, int b) { return f(a); }", "expects 2 arguments"),
        ("float f() { return __sqrt(1.0, 2.0); }", "one argument"),
        ("int f() { __prefetch(3); return 0; }", "pointer"),
        ("int f(float x) { return ~x; }", "integer"),
    ])
    def test_error_messages(self, src, fragment):
        with pytest.raises(MiniCError) as exc:
            compile_unit(src)
        assert fragment in str(exc.value)

    def test_conflicting_signatures(self):
        with pytest.raises(MiniCError):
            compile_unit("extern int f(int a);\nfloat f(int a) {return 1.0;}")

    def test_duplicate_global(self):
        with pytest.raises(MiniCError):
            compile_unit("int a; float a;")
