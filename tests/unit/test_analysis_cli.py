"""Tests for the analysis helpers and the command-line interface."""

import numpy as np
import pytest

from repro.analysis import (bandwidth_strips, cluster_kernels, downsample,
                            shade_row, sparkline)
from repro.cli import build_parser, main
from repro.minic import build_program
from repro.quad import run_quad


class TestPlots:
    def test_shade_row_monotone(self):
        row = shade_row(np.array([0.0, 0.5, 1.0]), 1.0)
        assert row[0] == " "
        assert row[2] == "@"

    def test_shade_row_zero_max(self):
        assert shade_row(np.zeros(5), 0.0) == "     "

    def test_downsample_max_pooling(self):
        values = np.zeros(100)
        values[57] = 9.0
        pooled = downsample(values, 10)
        assert len(pooled) == 10
        assert pooled[5] == 9.0  # the burst survives pooling

    def test_downsample_short_input_passthrough(self):
        v = np.array([1.0, 2.0])
        np.testing.assert_array_equal(downsample(v, 10), v)

    def test_bandwidth_strips_renders(self):
        mat = np.array([[0, 10, 0, 0], [5, 5, 5, 5]], dtype=np.int64)
        text = bandwidth_strips(["bursty", "steady"], mat, interval=10,
                                width=4)
        assert "bursty" in text and "steady" in text
        assert "B/ins" in text

    def test_bandwidth_strips_empty(self):
        assert "(no data)" in bandwidth_strips([], np.zeros((0, 0)),
                                               interval=10)

    def test_sparkline(self):
        line = sparkline(np.array([0.0, 1.0, 2.0, 4.0]), width=4)
        assert len(line) == 4
        assert line[-1] == "█"


class TestClustering:
    SRC = """
    int a[64]; int b[64]; int c[64];
    int p1() { int i; for (i=0;i<64;i=i+1) { a[i]=i; } return 0; }
    int p2() { int i; for (i=0;i<64;i=i+1) { b[i]=a[i]*2; } return 0; }
    int q()  { int i; int s=0; for (i=0;i<64;i=i+1) { c[i]=i; s=s+c[i]; } return s; }
    int main() { p1(); p2(); return q() & 7; }
    """

    def test_heavy_edge_clusters_together(self):
        quad = run_quad(build_program(self.SRC))
        result = cluster_kernels(quad, n_clusters=3)
        group = result.cluster_of("p1")
        assert "p2" in group          # p1 -> p2 communicate heavily
        assert "q" not in group       # q is independent

    def test_intra_fraction_increases_with_fewer_clusters(self):
        quad = run_quad(build_program(self.SRC))
        many = cluster_kernels(quad, n_clusters=4)
        few = cluster_kernels(quad, n_clusters=1)
        assert few.intra_fraction >= many.intra_fraction
        assert few.intra_fraction == 1.0

    def test_conservation(self):
        quad = run_quad(build_program(self.SRC))
        result = cluster_kernels(quad, n_clusters=2)
        internal = sum(c.internal_bytes for c in result.clusters)
        assert internal + result.cut_bytes == result.total_bytes

    def test_validation(self):
        quad = run_quad(build_program(self.SRC))
        with pytest.raises(ValueError):
            cluster_kernels(quad, n_clusters=0)


class TestCli:
    def test_parser_subcommands(self):
        parser = build_parser()
        args = parser.parse_args(["wfs", "--preset", "tiny", "--phases"])
        assert args.preset == "tiny" and args.phases

    def test_run_command(self, tmp_path, capsys):
        src = tmp_path / "app.mc"
        src.write_text('int main() { print_str("hi\\n"); return 0; }')
        rc = main(["run", str(src)])
        assert rc == 0
        assert "hi" in capsys.readouterr().out

    def test_profile_gprof(self, tmp_path, capsys):
        src = tmp_path / "app.mc"
        src.write_text("""
        int work() { int i; int s = 0;
            for (i = 0; i < 50; i = i + 1) { s = s + i; } return s; }
        int main() { return work() & 3; }
        """)
        rc = main(["profile", str(src), "--tool", "gprof"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "work" in out and "%time" in out

    def test_profile_tquad_with_figure_and_phases(self, tmp_path, capsys):
        src = tmp_path / "app.mc"
        src.write_text("""
        int a[32];
        int fill() { int i; for (i=0;i<32;i=i+1) { a[i]=i; } return 0; }
        int main() { return fill(); }
        """)
        rc = main(["profile", str(src), "--interval", "100",
                   "--figure", "--phases"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "fill" in out
        assert "B/ins" in out

    def test_profile_quad(self, tmp_path, capsys):
        src = tmp_path / "app.mc"
        src.write_text("int g; int main() { g = 1; return g; }")
        rc = main(["profile", str(src), "--tool", "quad"])
        assert rc == 0
        assert "IN(x)" in capsys.readouterr().out

    def test_disasm(self, tmp_path, capsys):
        src = tmp_path / "app.s"
        src.write_text(".text\nmain: li a0, 5\nhalt\n")
        rc = main(["disasm", str(src)])
        assert rc == 0
        out = capsys.readouterr().out
        assert "li a0, 5" in out

    def test_cluster_command(self, tmp_path, capsys):
        src = tmp_path / "app.mc"
        src.write_text("""
        int a[16];
        int w() { int i; for (i=0;i<16;i=i+1) { a[i]=i; } return 0; }
        int r() { int i; int s=0; for (i=0;i<16;i=i+1) { s=s+a[i]; } return s; }
        int main() { w(); return r() & 1; }
        """)
        rc = main(["cluster", str(src), "--clusters", "2"])
        assert rc == 0
        assert "intra-cluster" in capsys.readouterr().out

    def test_wfs_paper_preset_refused(self, capsys):
        rc = main(["wfs", "--preset", "paper"])
        assert rc == 2


class TestCsvExport:
    def test_matrix_to_csv(self):
        import numpy as np

        from repro.analysis import matrix_to_csv

        mat = np.array([[10, 0], [5, 5]], dtype=np.int64)
        csv = matrix_to_csv(["a", "b"], mat, interval=10)
        lines = csv.splitlines()
        assert lines[0] == "slice,a,b"
        assert lines[1] == "0,1,0.5"
        assert lines[2] == "1,0,0.5"

    def test_raw_bytes_mode(self):
        import numpy as np

        from repro.analysis import matrix_to_csv

        mat = np.array([[8]], dtype=np.int64)
        csv = matrix_to_csv(["k"], mat, interval=4,
                            bytes_per_instruction=False)
        assert csv.splitlines()[1] == "0,8"


class TestCliErrorPaths:
    """Invalid operands must exit with code 2 (argparse's usage-error
    convention), via a returned int — never an uncaught traceback or a
    SystemExit escaping main()."""

    def _src(self, tmp_path):
        src = tmp_path / "app.mc"
        src.write_text("int main() { return 0; }")
        return str(src)

    def test_profile_zero_interval(self, tmp_path, capsys):
        rc = main(["profile", self._src(tmp_path), "--interval", "0"])
        assert rc == 2
        assert "--interval" in capsys.readouterr().err

    def test_profile_negative_interval(self, tmp_path, capsys):
        rc = main(["profile", self._src(tmp_path), "--interval", "-100"])
        assert rc == 2
        assert "--interval" in capsys.readouterr().err

    def test_profile_zero_jobs(self, tmp_path, capsys):
        rc = main(["profile", self._src(tmp_path), "--jobs", "0"])
        assert rc == 2
        assert "--jobs" in capsys.readouterr().err

    def test_profile_negative_jobs(self, tmp_path, capsys):
        rc = main(["profile", self._src(tmp_path), "--jobs", "-4"])
        assert rc == 2
        assert "--jobs" in capsys.readouterr().err

    def test_wfs_bad_interval_and_jobs(self, capsys):
        assert main(["wfs", "--interval", "0"]) == 2
        assert main(["wfs", "--jobs", "0"]) == 2
        capsys.readouterr()

    def test_argparse_usage_error_returns_2(self, capsys):
        # unknown subcommand: argparse raises SystemExit(2); main() must
        # convert it to a plain return code
        rc = main(["not-a-command"])
        assert rc == 2
        capsys.readouterr()

    def test_non_integer_jobs_returns_2(self, tmp_path, capsys):
        rc = main(["profile", self._src(tmp_path), "--jobs", "two"])
        assert rc == 2
        capsys.readouterr()


class TestCliParallel:
    SRC = """
    int a[64];
    int fill() { int i; for (i=0;i<64;i=i+1) { a[i]=i*3; } return 0; }
    int tally() { int i; int s=0; for (i=0;i<64;i=i+1) { s=s+a[i]; }
        return s; }
    int main() { fill(); return tally() & 7; }
    """

    def _src(self, tmp_path):
        src = tmp_path / "app.mc"
        src.write_text(self.SRC)
        return str(src)

    @pytest.mark.parametrize("tool", ["tquad", "quad", "gprof"])
    def test_jobs_output_matches_serial(self, tmp_path, capsys, tool):
        src = self._src(tmp_path)
        assert main(["profile", src, "--tool", tool,
                     "--interval", "100"]) == 0
        serial = capsys.readouterr().out
        assert main(["profile", src, "--tool", tool, "--interval", "100",
                     "--jobs", "2"]) == 0
        assert capsys.readouterr().out == serial

    def test_jobs_json_matches_serial(self, tmp_path, capsys):
        src = self._src(tmp_path)
        j1, j2 = tmp_path / "serial.json", tmp_path / "jobs.json"
        assert main(["profile", src, "--interval", "100",
                     "--json", str(j1)]) == 0
        assert main(["profile", src, "--interval", "100", "--jobs", "2",
                     "--json", str(j2)]) == 0
        capsys.readouterr()
        assert j1.read_bytes() == j2.read_bytes()
