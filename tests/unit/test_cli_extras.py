"""CLI tests for the extension flags: --json, --callgraph, --cache, --imix,
and the wcet subcommand."""

import json

import pytest

from repro.cli import main

APP = """
int a[64];
int w() { int i; for (i = 0; i < 64; i++) { a[i] = i; } return 0; }
int r() { int i; int s = 0; for (i = 0; i < 64; i++) { s += a[i]; } return s; }
int main() { w(); return r() & 15; }
"""


@pytest.fixture()
def app(tmp_path):
    path = tmp_path / "app.mc"
    path.write_text(APP)
    return path


class TestJsonExports:
    def test_tquad_json(self, app, tmp_path, capsys):
        out = tmp_path / "rep.json"
        rc = main(["profile", str(app), "--interval", "500",
                   "--json", str(out)])
        assert rc == 0
        data = json.loads(out.read_text())
        assert data["kind"] == "tquad"
        assert "w" in data["history"]

    def test_gprof_json(self, app, tmp_path, capsys):
        out = tmp_path / "flat.json"
        rc = main(["profile", str(app), "--tool", "gprof",
                   "--json", str(out)])
        assert rc == 0
        data = json.loads(out.read_text())
        assert data["kind"] == "flat"
        names = {r["name"] for r in data["rows"]}
        assert {"w", "r", "main"} <= names

    def test_quad_json(self, app, tmp_path, capsys):
        out = tmp_path / "quad.json"
        rc = main(["profile", str(app), "--tool", "quad",
                   "--json", str(out)])
        assert rc == 0
        data = json.loads(out.read_text())
        assert data["kind"] == "quad"
        assert any(b["producer"] == "w" and b["consumer"] == "r"
                   for b in data["bindings"])


class TestExtraTools:
    def test_cache_flag(self, app, capsys):
        rc = main(["profile", str(app), "--interval", "500", "--cache"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "miss rate" in out and "TOTAL" in out

    def test_imix_flag(self, app, capsys):
        rc = main(["profile", str(app), "--interval", "500", "--imix"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "mem%" in out

    def test_callgraph_flag(self, app, capsys):
        rc = main(["profile", str(app), "--tool", "gprof", "--callgraph"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "-> w" in out or "<- main" in out


class TestShadowFlags:
    def test_legacy_shadow_json_matches_paged(self, app, tmp_path, capsys):
        paged = tmp_path / "paged.json"
        legacy = tmp_path / "legacy.json"
        assert main(["profile", str(app), "--tool", "quad",
                     "--json", str(paged)]) == 0
        assert main(["profile", str(app), "--tool", "quad",
                     "--shadow", "legacy", "--json", str(legacy)]) == 0
        assert paged.read_text() == legacy.read_text()

    def test_stats_flag_prints_footprint(self, app, capsys):
        rc = main(["profile", str(app), "--tool", "quad", "--stats"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "QUAD shadow memory:" in out
        assert "shadow pages" in out

    def test_bogus_shadow_exits_2(self, app, capsys):
        rc = main(["profile", str(app), "--tool", "quad",
                   "--shadow", "bogus"])
        assert rc == 2
        assert "--shadow" in capsys.readouterr().err

    def test_stats_without_quad_exits_2(self, app, capsys):
        rc = main(["profile", str(app), "--stats"])
        assert rc == 2
        assert "--stats requires --tool quad" in capsys.readouterr().err


class TestWcetCommand:
    def test_bound_with_loop_bounds(self, app, capsys):
        rc = main(["wcet", str(app), "r", "--bounds", "r:64"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "WCET(r) =" in out
        assert "loop #0" in out

    def test_missing_bounds_lists_loops(self, app, capsys):
        rc = main(["wcet", str(app), "r"])
        assert rc == 1
        err = capsys.readouterr().err
        assert "loops of r" in err

    def test_callee_bounds(self, app, capsys):
        rc = main(["wcet", str(app), "main",
                   "--bounds", "w:64", "--bounds", "r:64"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "callee w:" in out
        assert "callee r:" in out
