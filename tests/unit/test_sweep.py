"""Unit tests for the batched sweep engine, its grid validation, the
reader page cache, the multipass interval validation, and the ``tquad
sweep`` CLI."""

import io
import json

import pytest

from repro.capture import (CaptureMismatchError, CaptureReader,
                           STREAM_TQUAD_READ, capture_run, replay_tquad)
from repro.cli import main
from repro.core import TQuadOptions, profile_passes
from repro.core.options import StackPolicy
from repro.minic import build_program
from repro.serialize import (sweep_from_json, sweep_to_json, tquad_to_json)
from repro.sweep import SweepGrid, sweep_tquad, validate_intervals

APP = """
int srcb[32]; int dst[32];
int prep() { int i; for (i = 0; i < 32; i = i + 1) { srcb[i] = i; }
             return 0; }
int main() { int x; x = prep(); memcpy(dst, srcb, 128); return x; }
"""


def _capture(grain=50, **opts):
    program = build_program(APP)
    buf = io.BytesIO()
    capture_run(program, buf, tools=("tquad",),
                options=TQuadOptions(slice_interval=grain, **opts))
    buf.seek(0)
    return program, buf


class TestGridValidation:
    def test_empty_intervals_rejected(self):
        with pytest.raises(ValueError, match="at least one"):
            SweepGrid(intervals=())

    @pytest.mark.parametrize("bad", [0, -5, 2.5])
    def test_non_positive_or_fractional_interval_rejected(self, bad):
        with pytest.raises(ValueError, match="positive"):
            SweepGrid(intervals=(100, bad))

    def test_intervals_sorted_and_deduplicated(self):
        grid = SweepGrid(intervals=(400, 100, 400, 200))
        assert grid.intervals == (100, 200, 400)

    def test_axes_deduplicated(self):
        grid = SweepGrid(intervals=(100,),
                         stacks=(StackPolicy.BOTH, StackPolicy.BOTH),
                         library_modes=(True, True, False))
        assert grid.stacks == (StackPolicy.BOTH,)
        assert grid.library_modes == (True, False)
        assert len(grid) == 2

    def test_empty_axis_rejected(self):
        with pytest.raises(ValueError, match="stack"):
            SweepGrid(intervals=(100,), stacks=())
        with pytest.raises(ValueError, match="library"):
            SweepGrid(intervals=(100,), library_modes=())

    def test_validate_intervals_helper(self):
        assert validate_intervals([300, 100]) == (100, 300)
        with pytest.raises(ValueError):
            validate_intervals([])


class TestMultipassValidation:
    def _build(self):
        return build_program(APP), None

    def test_empty_interval_list_rejected(self):
        with pytest.raises(ValueError, match="at least one"):
            profile_passes(self._build, [])

    @pytest.mark.parametrize("intervals", [[0], [100, -50]])
    def test_non_positive_interval_rejected(self, intervals):
        with pytest.raises(ValueError, match="positive"):
            profile_passes(self._build, intervals)

    def test_reexecute_path_validates_too(self):
        with pytest.raises(ValueError):
            profile_passes(self._build, [], reexecute=True)
        with pytest.raises(ValueError):
            profile_passes(self._build, [-1], reexecute=True)


class TestReaderPageCache:
    def test_counters_without_cache(self):
        _, buf = _capture()
        with CaptureReader(buf) as reader:
            n = sum(1 for _ in reader.pages(STREAM_TQUAD_READ))
            assert reader.stats["decoded_pages"] == n
            list(reader.pages(STREAM_TQUAD_READ))
            assert reader.stats["decoded_pages"] == 2 * n
            assert reader.stats["page_cache_hits"] == 0
            assert "cache off" in reader.format_stats()

    def test_cache_serves_repeat_passes(self):
        _, buf = _capture()
        with CaptureReader(buf, cache_pages=True) as reader:
            first = list(reader.pages(STREAM_TQUAD_READ))
            n = len(first)
            again = list(reader.pages(STREAM_TQUAD_READ))
            assert reader.stats["decoded_pages"] == n
            assert reader.stats["page_cache_hits"] == n
            for a, b in zip(first, again):
                assert a is b           # shared, not re-decoded
                assert not a.flags.writeable
            assert "cache on" in reader.format_stats()

    def test_replays_share_one_decode(self):
        program, buf = _capture()
        with CaptureReader(buf, cache_pages=True) as reader:
            r1 = replay_tquad(reader, TQuadOptions(slice_interval=100))
            decoded_once = reader.stats["decoded_pages"]
            r2 = replay_tquad(reader, TQuadOptions(slice_interval=200))
            assert reader.stats["decoded_pages"] == decoded_once
            assert reader.stats["page_cache_hits"] > 0
        assert r1.total_bytes(write=False, include_stack=True) \
            == r2.total_bytes(write=False, include_stack=True)


class TestSweepEngine:
    def test_non_multiple_interval_rejected_before_reading(self):
        _, buf = _capture(grain=50)
        with CaptureReader(buf) as reader:
            with pytest.raises(CaptureMismatchError, match="multiple"):
                sweep_tquad(reader, SweepGrid(intervals=(75,)))
            assert reader.stats["decoded_pages"] == 0

    def test_dropped_library_capture_cannot_serve_include_view(self):
        _, buf = _capture(grain=50, exclude_libraries=True)
        with CaptureReader(buf) as reader:
            with pytest.raises(CaptureMismatchError, match="exclude-libs"):
                sweep_tquad(reader, SweepGrid(intervals=(100,),
                                              library_modes=(False,)))
            # but the exclude view itself sweeps fine
            result = sweep_tquad(reader, SweepGrid(intervals=(100,),
                                                   library_modes=(True,)))
            assert len(result) == 1

    def test_single_policy_capture_serves_only_itself(self):
        _, buf = _capture(grain=50, stack=StackPolicy.INCLUDE)
        with CaptureReader(buf) as reader:
            with pytest.raises(CaptureMismatchError, match="policy"):
                sweep_tquad(reader, SweepGrid(
                    intervals=(100,), stacks=(StackPolicy.EXCLUDE,)))

    def test_missing_cell_lookup_raises(self):
        _, buf = _capture()
        with CaptureReader(buf) as reader:
            result = sweep_tquad(reader, SweepGrid(intervals=(100,)))
        with pytest.raises(KeyError, match="not in this sweep"):
            result.report(250)

    def test_result_shape_and_stats(self):
        _, buf = _capture()
        grid = SweepGrid(intervals=(50, 100), library_modes=(False, True))
        with CaptureReader(buf) as reader:
            result = sweep_tquad(reader, grid)
        assert len(result) == 4
        assert result.grain == 50
        assert result.stats["cells"] == 4
        assert result.stats["pages_walked"] >= 1
        cells = [cell for cell, _ in result]
        assert cells == sorted(cells, key=lambda c: c.key)


class TestColumnarLedger:
    """The sweep cells' lazily-materialising ledger."""

    def _make(self):
        import numpy as np

        from repro.sweep.engine import ColumnarLedger

        names = ["alpha", "beta"]
        n_fine = 10
        # kernel-major sorted keys: alpha slices 0, 2; beta slice 1
        keys = np.array([0, 2, 11], dtype=np.int64)
        mat = np.array([[1, 2, 3, 4], [5, 6, 7, 8], [9, 10, 11, 12]],
                       dtype=np.int64)
        return ColumnarLedger(50, names, n_fine, keys, mat)

    EXPECT = {"alpha": {0: (1, 2, 3, 4), 2: (5, 6, 7, 8)},
              "beta": {1: (9, 10, 11, 12)}}

    def test_history_materialises_once_and_caches(self):
        ledger = self._make()
        assert ledger._keys is not None
        assert ledger.history == self.EXPECT
        assert ledger._keys is None          # columnar source released
        assert ledger.history is ledger.history

    def test_queries_see_the_materialised_dict(self):
        ledger = self._make()
        assert ledger.kernels() == ["alpha", "beta"]
        assert ledger.slices_of("beta") == {1: (9, 10, 11, 12)}
        series = ledger.series("alpha")
        assert series.slices.tolist() == [0, 2]
        assert series.total(write=False, include_stack=True) == 6

    def test_explicit_assignment_replaces_columnar_source(self):
        ledger = self._make()
        ledger.history = {"gamma": {3: (1, 1, 1, 1)}}
        assert ledger.kernels() == ["gamma"]

    def test_reset_discards_pending_columns(self):
        ledger = self._make()
        ledger.reset()
        assert ledger.history == {}

    def test_pickle_round_trip(self):
        import pickle

        ledger = self._make()
        clone = pickle.loads(pickle.dumps(ledger))
        assert clone.history == self.EXPECT

    def test_empty_cell(self):
        import numpy as np

        from repro.sweep.engine import ColumnarLedger

        ledger = ColumnarLedger(50, [], 1, np.empty(0, np.int64),
                                np.zeros((0, 4), np.int64))
        assert ledger.history == {}


class TestSweepSerialization:
    def test_round_trip_preserves_every_cell(self):
        _, buf = _capture()
        grid = SweepGrid(intervals=(50, 200),
                         stacks=(StackPolicy.BOTH, StackPolicy.EXCLUDE),
                         library_modes=(False, True))
        with CaptureReader(buf) as reader:
            result = sweep_tquad(reader, grid)
        text = sweep_to_json(result)
        back = sweep_from_json(text)
        assert back.grid == result.grid
        assert back.total_instructions == result.total_instructions
        assert len(back) == len(result)
        for (ca, ra), (cb, rb) in zip(result, back):
            assert ca == cb
            assert tquad_to_json(ra) == tquad_to_json(rb)
        # canonical: re-serialising the round-tripped result is stable
        assert sweep_to_json(back) == text

    def test_wrong_kind_rejected(self):
        with pytest.raises(ValueError, match="sweep"):
            sweep_from_json(json.dumps({"kind": "tquad"}))


class TestSweepCli:
    @pytest.fixture()
    def app(self, tmp_path):
        path = tmp_path / "app.mc"
        path.write_text(APP)
        return path

    def test_happy_path_prints_cells(self, app, capsys):
        rc = main(["sweep", str(app), "--intervals", "100,200",
                   "--stacks", "both,exclude", "--libs", "include,exclude"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "8 cells" in out
        assert "interval=200 stack=exclude libs=exclude" in out

    def test_json_artifact_round_trips(self, app, tmp_path, capsys):
        out = tmp_path / "grid.json"
        rc = main(["sweep", str(app), "--intervals", "100,400",
                   "--libs", "include,exclude", "--json", str(out)])
        assert rc == 0
        capsys.readouterr()
        result = sweep_from_json(out.read_text())
        assert len(result) == 4
        assert result.grid.intervals == (100, 400)

    def test_from_capture_matches_inline_capture(self, app, tmp_path,
                                                 capsys):
        cap = tmp_path / "app.capture"
        assert main(["sweep", str(app), "--intervals", "100,200",
                     "--capture-out", str(cap)]) == 0
        direct = capsys.readouterr().out
        assert main(["sweep", str(app), "--intervals", "100,200",
                     "--from-capture", str(cap)]) == 0
        assert capsys.readouterr().out == direct

    def test_stats_prints_reader_counters(self, app, capsys):
        rc = main(["sweep", str(app), "--intervals", "100", "--stats"])
        assert rc == 0
        assert "pages decoded" in capsys.readouterr().err

    @pytest.mark.parametrize("argv,needle", [
        (["--intervals", "abc"], "--intervals"),
        (["--intervals", "0"], "positive"),
        (["--intervals", ","], "interval"),
        (["--intervals", "100", "--stacks", "bogus"], "--stacks"),
        (["--intervals", "100", "--libs", "bogus"], "--libs"),
        (["--intervals", "100", "--from-capture", "a",
          "--capture-out", "b"], "mutually"),
    ])
    def test_usage_errors(self, app, capsys, argv, needle):
        rc = main(["sweep", str(app), *argv])
        assert rc == 2
        assert needle in capsys.readouterr().err

    def test_mismatched_capture_rejected(self, app, tmp_path, capsys):
        cap = tmp_path / "app.capture"
        assert main(["capture", "run", str(app), "--out", str(cap),
                     "--interval", "100"]) == 0
        capsys.readouterr()
        rc = main(["sweep", str(app), "--intervals", "150",
                   "--from-capture", str(cap)])
        assert rc == 2
        assert "multiple" in capsys.readouterr().err

    def test_profile_stats_with_from_capture(self, app, tmp_path, capsys):
        cap = tmp_path / "app.capture"
        assert main(["capture", "run", str(app), "--out", str(cap),
                     "--interval", "100", "--tools", "tquad"]) == 0
        capsys.readouterr()
        rc = main(["profile", str(app), "--interval", "100",
                   "--from-capture", str(cap), "--stats"])
        assert rc == 0
        assert "pages decoded" in capsys.readouterr().err
