"""Tests for the instruction-mix tool, report diffing and QDU DOT export."""

import pytest

from repro.analysis import diff_flat_profiles, diff_reports
from repro.core import TQuadOptions, run_tquad
from repro.gprofsim import run_gprof
from repro.isa import BY_NAME
from repro.minic import build_program
from repro.quad import run_quad
from repro.tools import CATEGORIES, Mix, categorize, run_imix

SRC = """
float v[128];
int fill() { int i; for (i=0;i<128;i++) { v[i] = __sin((float)i); } return 0; }
float total() { int i; float s=0.0; for (i=0;i<128;i++) { s += v[i]; } return s; }
int main() { fill(); return (int)total() & 7; }
"""


class TestCategorize:
    @pytest.mark.parametrize("mnemonic,category", [
        ("ld", "load"), ("lbu", "load"), ("fld", "load"),
        ("sd", "store"), ("sb", "store"), ("fsd", "store"),
        ("beq", "branch"), ("bgt", "branch"),
        ("jal", "call"), ("jalr", "call"), ("ret", "ret"),
        ("fadd", "float"), ("fsin", "float"), ("fcvt.i.f", "float"),
        ("add", "alu"), ("li", "alu"), ("slli", "alu"),
        ("ecall", "system"), ("halt", "system"), ("nop", "system"),
        ("prefetch", "prefetch"),
    ])
    def test_category(self, mnemonic, category):
        assert categorize(BY_NAME[mnemonic]) == category

    def test_every_opcode_categorised(self):
        from repro.isa import OPCODES

        for info in OPCODES:
            assert categorize(info) in CATEGORIES


class TestImixTool:
    @pytest.fixture(scope="class")
    def tool(self):
        return run_imix(build_program(SRC))

    def test_total_matches_machine(self, tool):
        total = tool.total().total
        # every retired instruction is counted exactly once
        assert total > 0
        engine_total = sum(m.total for m in tool.per_kernel.values())
        assert total == engine_total

    def test_fill_is_float_heavy(self, tool):
        fill = tool.mix("fill")
        assert fill.counts["float"] > 100     # one fsin + converts per elem
        assert fill.counts["store"] >= 128

    def test_memory_fraction(self, tool):
        m = tool.mix("total")
        assert 0.2 < m.memory_fraction < 0.8

    def test_unknown_kernel_empty(self, tool):
        assert tool.mix("ghost").total == 0

    def test_format_table(self, tool):
        text = tool.format_table(top=3)
        assert "mem%" in text and "fill" in text


class TestReportDiff:
    def _reports(self):
        a = run_tquad(build_program(SRC),
                      options=TQuadOptions(slice_interval=500))
        b = run_tquad(build_program(SRC.replace("128", "64")),
                      options=TQuadOptions(slice_interval=500))
        return a, b

    def test_shrunk_workload_improves(self):
        a, b = self._reports()
        diff = diff_reports(a, b)
        fill = diff.delta("fill")
        assert fill.status == "improved"
        assert fill.bytes_after < fill.bytes_before
        assert diff.instructions_ratio < 1.0

    def test_identity_diff_unchanged(self):
        a = run_tquad(build_program(SRC),
                      options=TQuadOptions(slice_interval=500))
        b = run_tquad(build_program(SRC),
                      options=TQuadOptions(slice_interval=500))
        diff = diff_reports(a, b)
        assert all(d.status == "unchanged" for d in diff.deltas)
        assert diff.instructions_ratio == 1.0
        assert diff.regressions() == []

    def test_new_and_gone_kernels(self):
        a = run_tquad(build_program(SRC),
                      options=TQuadOptions(slice_interval=500))
        other = SRC.replace("fill", "refill")
        b = run_tquad(build_program(other),
                      options=TQuadOptions(slice_interval=500))
        diff = diff_reports(a, b)
        assert diff.delta("fill").status == "gone"
        assert diff.delta("refill").status == "new"
        assert diff.delta("refill").bytes_ratio == float("inf")

    def test_format_table(self):
        a, b = self._reports()
        text = diff_reports(a, b).format_table()
        assert "improved" in text and "total instructions" in text

    def test_flat_profile_diff(self):
        a = run_gprof(build_program(SRC))
        b = run_gprof(build_program(SRC.replace(
            "s += v[i];", "s += v[i] * v[i] + 1.0;")))
        moves = diff_flat_profiles(a, b)
        by_kernel = {m.kernel: m for m in moves}
        assert by_kernel["total"].percent_after > \
            by_kernel["total"].percent_before


class TestQduDot:
    def test_dot_structure(self):
        quad = run_quad(build_program(SRC))
        dot = quad.qdu_to_dot()
        assert dot.startswith("digraph QDU {")
        assert dot.endswith("}")
        assert '"fill" -> "total"' in dot
        assert "penwidth=" in dot

    def test_min_bytes_filter(self):
        quad = run_quad(build_program(SRC))
        full = quad.qdu_to_dot(min_bytes=1)
        filtered = quad.qdu_to_dot(min_bytes=10**9)
        assert full.count("->") > filtered.count("->")
