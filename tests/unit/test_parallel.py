"""Unit tests for the checkpoint/replay subsystem and the parallel pipeline.

The differential (serial vs sharded) exactness properties live in
``tests/property/test_prop_parallel.py``; here the individual pieces are
pinned down: snapshot/restore state identity, exact-budget pause/resume
through ``run_until``, checkpoint tracer conventions, shard boundary
placement, and the orchestrator's validation and plumbing.
"""

import pickle

import pytest

from repro.apps.kernels import build_fir
from repro.core import TQuadOptions
from repro.gprofsim import run_gprof
from repro.minic import build_program
from repro.parallel import (GprofSpec, QuadSpec, TQuadSpec, iter_shards,
                            parallel_profile)
from repro.pin import PinEngine
from repro.quad import run_quad
from repro.vm import (GuestFS, InstructionBudgetExceeded, Machine,
                      MachineSnapshot, O_RDONLY)

SRC = """
int a[48]; int b[48];
int fill() { int i; for (i=0;i<48;i=i+1) { a[i]=i*5; } return 0; }
int mix()  { int i; for (i=0;i<48;i=i+1) { b[i]=a[i]+b[i]; } return 0; }
int main() { int r; fill(); mix(); r = b[7] + a[9];
    print_int(r); return r & 31; }
"""

FS_SRC = """
int main() {
    int fd; int n; int buf[4];
    fd = open("in.dat", 0);
    n = read(fd, buf, 16);
    fd = open("out.dat", 1);
    n = write(fd, buf, n);
    print_int(n);
    return n;
}
"""


def _pause(machine, budget):
    with pytest.raises(InstructionBudgetExceeded):
        machine.run(max_instructions=budget)
    machine.halted = False


def _state(m):
    return (m.icount, m.pc_index, list(m.x), list(m.f), bytes(m.mem),
            bytes(m.stdout), m.brk, m.exit_code, m.syscall.count,
            {k: bytes(v) for k, v in m.fs.files.items()},
            m.fs.open_count())


class TestSnapshotRestore:
    def test_roundtrip_is_state_identical(self):
        program = build_program(SRC)
        m = Machine(program)
        _pause(m, 400)
        snap = m.snapshot()
        fresh = Machine(program)
        fresh.restore(snap)
        assert _state(fresh) == _state(m)

    def test_resumed_machine_retraces_serial_run(self):
        program = build_program(SRC)
        ref = Machine(program)
        ref.run()
        m = Machine(program)
        _pause(m, ref.icount // 3)
        snap = m.snapshot()
        fresh = Machine(program)
        fresh.restore(snap)
        fresh.run()
        assert _state(fresh) == _state(ref)

    def test_snapshot_pickles_and_is_page_sparse(self):
        program = build_program(SRC)
        m = Machine(program)
        _pause(m, 100)
        snap = m.snapshot()
        # the 32 MiB address space must not be materialized wholesale
        assert snap.memory_bytes() < m.mem_size // 4
        clone = pickle.loads(pickle.dumps(snap))
        assert isinstance(clone, MachineSnapshot)
        fresh = Machine(program)
        fresh.restore(clone)
        assert _state(fresh) == _state(m)

    def test_open_file_descriptors_survive(self):
        program = build_program(FS_SRC)
        fs = GuestFS()
        fs.put("in.dat", bytes(range(16)))
        m = Machine(program, fs=fs)
        # pause somewhere inside the syscall sequence
        _pause(m, 40)
        snap = m.snapshot()
        fresh = Machine(program, fs=GuestFS())
        fresh.restore(snap)
        fresh.run()
        ref_fs = GuestFS()
        ref_fs.put("in.dat", bytes(range(16)))
        ref = Machine(program, fs=ref_fs)
        ref.run()
        assert _state(fresh) == _state(ref)
        assert fresh.fs.get("out.dat") == bytes(range(16))

    def test_fd_positions_roundtrip(self):
        fs = GuestFS()
        fs.put("x", b"abcdef")
        fd = fs.open("x", O_RDONLY)
        fs.read(fd, 3)
        program = build_program("int main() { return 0; }")
        m = Machine(program, fs=fs)
        snap = m.snapshot()
        fresh = Machine(program)
        fresh.restore(snap)
        assert fresh.fs.read(fd, 3) == b"def"

    def test_restore_rejects_mem_size_mismatch(self):
        program = build_program("int main() { return 0; }")
        snap = Machine(program).snapshot()
        other = Machine(program, mem_size=snap.mem_size * 2)
        with pytest.raises(Exception):
            other.restore(snap)

    def test_restore_mutates_in_place(self):
        # compiled closures capture mem/x/f by identity: restore must not
        # rebind them
        program = build_program(SRC)
        m = Machine(program)
        mem_id, x_id, f_id = id(m.mem), id(m.x), id(m.f)
        _pause(m, 50)
        m.restore(m.snapshot())
        assert (id(m.mem), id(m.x), id(m.f)) == (mem_id, x_id, f_id)


class TestRunUntil:
    def test_pause_at_exact_icount_then_resume(self):
        program = build_program(SRC)
        engine = PinEngine(program)
        assert engine.run_until(123) is None
        assert engine.machine.icount == 123
        assert not engine.machine.halted
        code = engine.run()
        ref = Machine(program)
        ref.run()
        assert engine.machine.icount == ref.icount
        assert code == (ref.exit_code or 0)

    def test_finish_before_target_returns_exit_code(self):
        program = build_program(SRC)
        engine = PinEngine(program)
        code = engine.run_until(10**9)
        assert code is not None
        assert engine.machine.halted

    def test_fini_only_on_completion(self):
        program = build_program(SRC)
        engine = PinEngine(program)
        seen = []
        engine.AddFiniFunction(seen.append)
        assert engine.run_until(100) is None
        assert seen == []
        engine.run_until(10**9)
        assert len(seen) == 1

    def test_backward_target_rejected(self):
        engine = PinEngine(build_program(SRC))
        engine.run_until(500)
        with pytest.raises(ValueError):
            engine.run_until(100)


class TestCheckpointPass:
    def test_shards_tile_the_run(self):
        program = build_program(SRC)
        ref = Machine(program)
        ref.run()
        shards = list(iter_shards(program, jobs=2, quantum=150,
                                  align=False))
        assert shards[0].start_icount == 0
        assert shards[-1].end_icount is None
        for prev, cur in zip(shards, shards[1:]):
            assert prev.end_icount == cur.start_icount
        assert all(s.index == i for i, s in enumerate(shards))
        assert shards[-1].start_icount < ref.icount

    def test_alignment_rounds_to_interval(self):
        program = build_program(SRC)
        shards = list(iter_shards(program, jobs=2, quantum=130,
                                  interval=100, align=True))
        for s in shards[:-1]:
            assert s.end_icount % 100 == 0

    def test_frames_match_gprof_entry_convention(self):
        # pause inside mix(): the tracer's frame entry icounts must let a
        # seeded gprof shard reproduce the serial cumulative time exactly,
        # which the differential tests verify; here pin the convention
        program = build_program(SRC)
        flat = run_gprof(build_program(SRC))
        shards = list(iter_shards(program, jobs=2, quantum=97, align=False))
        mid = shards[len(shards) // 2]
        for name, image, entry_ic in mid.frames:
            assert 0 <= entry_ic <= mid.start_icount
            assert isinstance(name, str) and isinstance(image, str)
        assert any("main" == f[0] for s in shards[1:-1] for f in s.frames)
        # shard lengths tile the whole run
        assert flat.total_instructions == sum(
            (s.end_icount if s.end_icount is not None
             else flat.total_instructions) - s.start_icount for s in shards)


class TestOrchestrator:
    def test_jobs_must_be_positive(self):
        with pytest.raises(ValueError):
            parallel_profile(build_program(SRC), TQuadSpec(), jobs=0)

    def test_duplicate_tool_kind_rejected(self):
        with pytest.raises(ValueError):
            parallel_profile(build_program(SRC),
                             (TQuadSpec(), TQuadSpec()), jobs=2)

    def test_unknown_executor_rejected(self):
        with pytest.raises(ValueError):
            parallel_profile(build_program(SRC), TQuadSpec(), jobs=2,
                             executor="threads")

    def test_exit_code_and_totals_propagate(self):
        program = build_program(SRC)
        ref = Machine(program)
        ref.run()
        run = parallel_profile(program, (TQuadSpec(), GprofSpec()),
                               jobs=2, executor="inline", quantum=200,
                               align=False)
        assert run.exit_code == (ref.exit_code or 0)
        assert run.total_instructions == ref.icount
        assert run.n_shards > 1
        assert set(run.reports) == {"tquad", "gprof"}

    def test_single_spec_without_tuple(self):
        run = parallel_profile(build_program(SRC),
                               QuadSpec(), jobs=2, executor="inline",
                               quantum=300)
        assert set(run.reports) == {"quad"}

    def test_serial_path_matches_standalone_tools(self):
        program = build_program(SRC)
        run = parallel_profile(program, (QuadSpec(), GprofSpec()), jobs=1)
        assert (run.reports["quad"].format_table()
                == run_quad(build_program(SRC)).format_table())
        assert (run.reports["gprof"].format_table()
                == run_gprof(build_program(SRC)).format_table())

    def test_fir_kernel_exact_through_processes(self):
        # one real multiprocessing run in the unit tier (small program)
        program = build_fir(length=64, n_taps=4)
        opts = TQuadOptions(slice_interval=1000)
        serial = parallel_profile(program, TQuadSpec(options=opts), jobs=1)
        par = parallel_profile(program, TQuadSpec(options=opts), jobs=2,
                               quantum=2000)
        from repro.serialize import tquad_to_json
        assert (tquad_to_json(serial.reports["tquad"])
                == tquad_to_json(par.reports["tquad"]))
