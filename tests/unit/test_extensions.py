"""Tests for the extension features: MiniC syntax sugar, single-sided stack
policies, multi-pass averaging, partial reports, call-graph rendering, and
report serialisation."""

import pytest

from repro.core import (MultiPassResult, StackPolicy, TQuadOptions,
                        TQuadTool, profile_passes, run_tquad)
from repro.gprofsim import run_gprof
from repro.minic import MiniCError, build_program, run_minic
from repro.pin import PinEngine
from repro.quad import run_quad
from repro.serialize import (flat_from_json, flat_to_json, quad_from_json,
                             quad_to_dict, quad_to_json, tquad_from_json,
                             tquad_to_json)
from repro.vm import InstructionBudgetExceeded


class TestMiniCSyntaxSugar:
    @pytest.mark.parametrize("body,expected", [
        ("int s = 5; s += 3; return s;", 8),
        ("int s = 5; s -= 3; return s;", 2),
        ("int s = 5; s *= 3; return s;", 15),
        ("int s = 7; s /= 2; return s;", 3),
        ("int s = 7; s %= 4; return s;", 3),
        ("int s = 12; s &= 10; return s;", 8),
        ("int s = 12; s |= 3; return s;", 15),
        ("int s = 12; s ^= 10; return s;", 6),
        ("int s = 1; s <<= 4; return s;", 16),
        ("int s = 64; s >>= 2; return s;", 16),
        ("int i = 5; i++; return i;", 6),
        ("int i = 5; i--; return i;", 4),
    ])
    def test_compound_and_incdec(self, body, expected):
        m = run_minic("int main() { " + body + " }")
        assert m.exit_code == expected

    def test_for_with_increment_step(self):
        m = run_minic("""
        int main() {
            int s = 0;
            for (int i = 0; i < 5; i++) { s += i; }
            return s;
        }
        """)
        assert m.exit_code == 10

    def test_compound_on_array_and_pointer(self):
        m = run_minic("""
        int a[4];
        int main() {
            a[1] = 10;
            a[1] += 5;
            int* p = &a[1];
            *p *= 2;
            return a[1];
        }
        """)
        assert m.exit_code == 30

    def test_float_compound(self):
        m = run_minic("""
        int main() {
            float x = 1.5;
            x *= 4.0;
            x += 1.0;
            return (int)x;
        }
        """)
        assert m.exit_code == 7

    def test_do_while_runs_at_least_once(self):
        m = run_minic("""
        int main() {
            int n = 0;
            do { n++; } while (n < 0);
            return n;
        }
        """)
        assert m.exit_code == 1

    def test_do_while_with_break_continue(self):
        m = run_minic("""
        int main() {
            int n = 0; int s = 0;
            do {
                n++;
                if (n % 2 == 0) { continue; }
                if (n > 9) { break; }
                s += n;
            } while (n < 100);
            return s;  // 1+3+5+7+9 = 25
        }
        """)
        assert m.exit_code == 25

    def test_call_in_compound_target_rejected(self):
        with pytest.raises(MiniCError):
            build_program("int a[4]; int f() { return 0; } "
                          "int main() { a[f()] += 1; return 0; }")

    def test_compound_on_non_lvalue_rejected(self):
        with pytest.raises(MiniCError):
            build_program("int main() { 1 += 2; return 0; }")


ONE_KERNEL = """
int g[32];
int main() {
    int i;
    for (i = 0; i < 32; i++) { g[i] = i; }
    int s = 0;
    for (i = 0; i < 32; i++) { s += g[i]; }
    return s & 255;
}
"""


class TestSingleSidedPolicies:
    def test_include_only_records_only_included(self):
        rep = run_tquad(build_program(ONE_KERNEL),
                        options=TQuadOptions(slice_interval=10**6,
                                             stack=StackPolicy.INCLUDE))
        s = rep.series("main")
        assert s.total(write=True, include_stack=True) > 0
        assert s.total(write=True, include_stack=False) == 0

    def test_exclude_only_records_only_excluded(self):
        rep = run_tquad(build_program(ONE_KERNEL),
                        options=TQuadOptions(slice_interval=10**6,
                                             stack=StackPolicy.EXCLUDE))
        s = rep.series("main")
        assert s.total(write=True, include_stack=True) == 0
        assert s.total(write=True, include_stack=False) == 32 * 8

    def test_sides_agree_with_both(self):
        both = run_tquad(build_program(ONE_KERNEL),
                         options=TQuadOptions(slice_interval=10**6))
        incl = run_tquad(build_program(ONE_KERNEL),
                         options=TQuadOptions(slice_interval=10**6,
                                              stack=StackPolicy.INCLUDE))
        excl = run_tquad(build_program(ONE_KERNEL),
                         options=TQuadOptions(slice_interval=10**6,
                                              stack=StackPolicy.EXCLUDE))
        b = both.series("main")
        assert incl.series("main").total(write=False, include_stack=True) \
            == b.total(write=False, include_stack=True)
        assert excl.series("main").total(write=False, include_stack=False) \
            == b.total(write=False, include_stack=False)


class TestMultiPass:
    def _build(self):
        return build_program(ONE_KERNEL), None

    def test_profile_passes(self):
        result = profile_passes(self._build, [50, 200, 1000])
        assert result.intervals == [50, 200, 1000]
        assert result.total_bytes_consistent()
        est = result.average_bandwidth("main", write=False,
                                       include_stack=True)
        assert est.minimum <= est.mean <= est.maximum

    def test_upper_bound_marker(self):
        result = profile_passes(self._build, [50, 5000])
        est = result.average_bandwidth("main", write=False,
                                       include_stack=True)
        rendered = est.render()
        if est.is_upper_bound:
            assert rendered.startswith("<")
        else:
            assert not rendered.startswith("<")

    def test_format_table(self):
        result = profile_passes(self._build, [100, 400])
        text = result.format_table()
        assert "main" in text and "avgR(i)" in text

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            MultiPassResult(reports={})


class TestPartialReports:
    def test_partial_report_after_crash(self):
        src = """
        int g[16];
        int main() {
            int i;
            for (i = 0; i < 16; i++) { g[i] = i; }
            while (1) { g[0] += 1; }   // never exits
            return 0;                  // unreachable
        }
        """
        engine = PinEngine(build_program(src))
        tool = TQuadTool(TQuadOptions(slice_interval=100)).attach(engine)
        with pytest.raises(InstructionBudgetExceeded):
            engine.run(max_instructions=5000)
        with pytest.raises(RuntimeError):
            tool.report()
        rep = tool.report(allow_partial=True)
        assert not rep.complete
        assert rep.series("main").total(write=True, include_stack=False) > 0

    def test_complete_flag_true_normally(self):
        rep = run_tquad(build_program(ONE_KERNEL),
                        options=TQuadOptions(slice_interval=1000))
        assert rep.complete


class TestCallGraphRendering:
    def test_call_graph_sections(self):
        src = """
        int leaf(int x) { return x + 1; }
        int mid(int x) { return leaf(x) + leaf(x + 1); }
        int main() { return mid(1) & 7; }
        """
        flat = run_gprof(build_program(src))
        text = flat.format_call_graph()
        assert "-> leaf" in text
        assert "<- mid" in text
        assert "[   1]" in text


class TestSerialization:
    def test_tquad_roundtrip(self):
        rep = run_tquad(build_program(ONE_KERNEL),
                        options=TQuadOptions(slice_interval=100))
        back = tquad_from_json(tquad_to_json(rep))
        assert back.total_instructions == rep.total_instructions
        assert back.interval == rep.interval
        assert back.kernels() == rep.kernels()
        s0, s1 = rep.series("main"), back.series("main")
        assert list(s0.slices) == list(s1.slices)
        assert list(s0.read_incl) == list(s1.read_incl)
        assert back.format_table() == rep.format_table()

    def test_tquad_roundtrip_preserves_options(self):
        rep = run_tquad(build_program(ONE_KERNEL),
                        options=TQuadOptions(slice_interval=100,
                                             stack=StackPolicy.EXCLUDE,
                                             exclude_libraries=True,
                                             kernels=("main",)))
        back = tquad_from_json(tquad_to_json(rep))
        assert back.options == rep.options

    def test_flat_roundtrip(self):
        flat = run_gprof(build_program(ONE_KERNEL), main_image_only=False)
        back = flat_from_json(flat_to_json(flat))
        assert back.format_table() == flat.format_table()
        assert back.edges == flat.edges
        assert back.machine == flat.machine

    def test_quad_export(self):
        quad = run_quad(build_program(ONE_KERNEL))
        data = quad_to_dict(quad)
        main = data["kernels"]["main"]
        row = quad.row("main")
        assert main["in_unma_excl"] == row.in_unma_excl
        assert main["in_excl"] == row.in_excl
        assert any(b["producer"] == "main" for b in data["bindings"])

    def test_quad_roundtrip(self):
        quad = run_quad(build_program(ONE_KERNEL))
        back = quad_from_json(quad_to_json(quad))
        assert back.format_table() == quad.format_table()
        assert back.bindings.keys() == quad.bindings.keys()
        assert back.total_instructions == quad.total_instructions
        # UnMA sets collapse to cardinalities on export — the round-trip
        # re-serialises byte-identically all the same
        assert quad_to_json(back) == quad_to_json(quad)

    def test_quad_kind_mismatch_rejected(self):
        rep = run_tquad(build_program(ONE_KERNEL),
                        options=TQuadOptions(slice_interval=100))
        with pytest.raises(ValueError):
            quad_from_json(tquad_to_json(rep))

    def test_kind_mismatch_rejected(self):
        rep = run_tquad(build_program(ONE_KERNEL),
                        options=TQuadOptions(slice_interval=100))
        blob = tquad_to_json(rep)
        with pytest.raises(ValueError):
            flat_from_json(blob)
