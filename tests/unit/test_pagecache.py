"""The persistent decoded-page sidecar (:mod:`repro.capture.pagecache`).

The contract: a path-backed capture gets a ``<file>.pages`` sidecar of
raw little-endian int64 page arrays on first open, every later open
mmaps it into zero-copy read-only views, and replays served from the
sidecar are byte-identical to cold decodes.  Invalid sidecars — corrupt,
truncated, or left behind by a different capture — are evicted and
rebuilt, never trusted.
"""

import io
import multiprocessing
import os

import numpy as np
import pytest

from repro.capture import (CaptureReader, PageCacheError,
                           STREAM_TQUAD_READ, capture_run, load_sidecar,
                           replay_tquad, sidecar_path)
from repro.core import TQuadOptions
from repro.minic import build_program
from repro.serialize import tquad_to_json

APP = """
int a[48]; int b[48];
int produce() { int i; for (i = 0; i < 48; i = i + 1) { a[i] = i * 3; }
                return 0; }
int consume() { int i; int s = 0; for (i = 0; i < 48; i = i + 1)
                { s = s + a[i] + b[i]; } return s; }
int main() { produce(); return consume() & 15; }
"""

OTHER_APP = APP.replace("48", "32")


def _capture_file(tmp_path, source=APP, *, grain=50, name="run.capture"):
    program = build_program(source)
    path = tmp_path / name
    capture_run(program, str(path), tools=("tquad", "gprof", "quad"),
                options=TQuadOptions(slice_interval=grain))
    return path


def _touch_all(reader):
    for stream, info in sorted(reader.streams.items()):
        for index in range(info["pages"]):
            reader.page(stream, index, info["stride"])


def _total_pages(reader):
    return sum(info["pages"] for info in reader.streams.values())


class TestSidecarLifecycle:
    def test_first_open_builds_then_warm(self, tmp_path):
        path = _capture_file(tmp_path)
        sidecar = sidecar_path(path)
        assert not sidecar.exists()
        with CaptureReader(str(path)) as reader:
            assert reader.page_cache_state == "built"
            _touch_all(reader)
            assert reader.stats["decoded_pages"] == 0
            assert reader.stats["disk_cache_hits"] == _total_pages(reader)
        assert sidecar.exists()
        with CaptureReader(str(path)) as reader:
            assert reader.page_cache_state == "warm"
            _touch_all(reader)
            assert reader.stats["decoded_pages"] == 0

    def test_warm_replay_byte_identical_to_cold(self, tmp_path):
        path = _capture_file(tmp_path)
        opts = TQuadOptions(slice_interval=100)
        with CaptureReader(str(path), page_cache=False) as reader:
            cold = tquad_to_json(replay_tquad(reader, opts))
            assert reader.stats["decoded_pages"] > 0
        with CaptureReader(str(path)) as reader:       # builds the sidecar
            built = tquad_to_json(replay_tquad(reader, opts))
        with CaptureReader(str(path)) as reader:       # served warm
            warm = tquad_to_json(replay_tquad(reader, opts))
            assert reader.stats["decoded_pages"] == 0
            assert reader.stats["disk_cache_hits"] > 0
        assert cold == built == warm

    def test_pages_are_readonly_zero_copy_views(self, tmp_path):
        path = _capture_file(tmp_path)
        with CaptureReader(str(path)):
            pass                                       # build the sidecar
        with CaptureReader(str(path)) as reader:
            (stream, info), *_ = sorted(reader.streams.items())
            page = reader.page(stream, 0, info["stride"])
            assert not page.flags.writeable
            assert not page.flags.owndata              # mmap-backed view
            with pytest.raises(ValueError):
                page[0] = 0

    def test_page_cache_false_writes_no_sidecar(self, tmp_path):
        path = _capture_file(tmp_path)
        with CaptureReader(str(path), page_cache=False) as reader:
            assert reader.page_cache_state == "off"
            _touch_all(reader)
        assert not sidecar_path(path).exists()

    def test_in_memory_capture_has_no_sidecar(self):
        program = build_program(APP)
        buf = io.BytesIO()
        capture_run(program, buf, tools=("tquad",),
                    options=TQuadOptions(slice_interval=50))
        buf.seek(0)
        with CaptureReader(buf) as reader:
            assert reader.page_cache_state == "off"

    def test_page_cache_true_needs_a_path(self):
        program = build_program(APP)
        buf = io.BytesIO()
        capture_run(program, buf, tools=("tquad",),
                    options=TQuadOptions(slice_interval=50))
        buf.seek(0)
        with pytest.raises(ValueError, match="path-backed"):
            CaptureReader(buf, page_cache=True)

    def test_format_stats_mentions_disk_hits(self, tmp_path):
        path = _capture_file(tmp_path)
        with CaptureReader(str(path)) as reader:
            _touch_all(reader)
            text = reader.format_stats()
        assert "pages decoded" in text
        assert "disk hits" in text
        assert "cache off" in text        # the in-memory cache
        with CaptureReader(str(path), cache_pages=True) as reader:
            assert "cache on" in reader.format_stats()


class TestInvalidation:
    @pytest.mark.parametrize("damage", [
        b"",                                   # empty file
        b"garbage",                            # no magic
        b"TQPAGES1" + b"\xff" * 32,            # absurd header length
        None,                                  # truncated (half the file)
    ])
    def test_damaged_sidecar_rebuilt(self, tmp_path, damage):
        path = _capture_file(tmp_path)
        with CaptureReader(str(path)):
            pass
        sidecar = sidecar_path(path)
        if damage is None:
            blob = sidecar.read_bytes()
            sidecar.write_bytes(blob[:len(blob) // 2])
        else:
            sidecar.write_bytes(damage)
        with CaptureReader(str(path)) as reader:
            assert reader.page_cache_state == "rebuilt"
            _touch_all(reader)
            assert reader.stats["decoded_pages"] == 0
        with CaptureReader(str(path)) as reader:
            assert reader.page_cache_state == "warm"

    def test_recapture_evicts_stale_sidecar(self, tmp_path):
        """A sidecar keyed to the old capture must not survive the
        capture file being rewritten for a different program."""
        path = _capture_file(tmp_path)
        with CaptureReader(str(path)) as reader:
            old = tquad_to_json(replay_tquad(
                reader, TQuadOptions(slice_interval=50)))
        stale = sidecar_path(path).read_bytes()
        _capture_file(tmp_path, OTHER_APP)     # overwrite the capture
        with CaptureReader(str(path)) as reader:
            assert reader.page_cache_state == "rebuilt"
            new = tquad_to_json(replay_tquad(
                reader, TQuadOptions(slice_interval=50)))
        assert new != old
        assert sidecar_path(path).read_bytes() != stale

    def test_load_sidecar_rejects_wrong_digest(self, tmp_path):
        path = _capture_file(tmp_path)
        with CaptureReader(str(path)):
            pass
        with pytest.raises(PageCacheError, match="stale"):
            load_sidecar(sidecar_path(path), "0" * 64)

    def test_mapped_pages_miss_returns_none(self, tmp_path):
        path = _capture_file(tmp_path)
        with CaptureReader(str(path)):
            pass
        with CaptureReader(str(path)) as reader:
            disk = reader._disk
            assert disk.get("no.such.stream", 0, 4) is None
            assert disk.get(STREAM_TQUAD_READ, 10 ** 6, 4) is None
            # stride mismatch must miss, not mis-shape
            assert disk.get(STREAM_TQUAD_READ, 0, 3) is None


def _forked_replay(path, queue):  # pragma: no cover - child process
    with CaptureReader(path) as reader:
        report = replay_tquad(reader, TQuadOptions(slice_interval=100))
        queue.put((os.getpid(), reader.page_cache_state,
                   reader.stats["decoded_pages"], tquad_to_json(report)))


class TestSharedMmap:
    def test_forked_workers_share_one_sidecar(self, tmp_path):
        """Two forked workers mmap the same sidecar concurrently and
        replay byte-identically, decoding nothing."""
        path = _capture_file(tmp_path)
        with CaptureReader(str(path)):                 # build once
            pass
        ctx = multiprocessing.get_context("fork")
        queue = ctx.Queue()
        workers = [ctx.Process(target=_forked_replay,
                               args=(str(path), queue))
                   for _ in range(2)]
        for w in workers:
            w.start()
        outcomes = [queue.get(timeout=60) for _ in workers]
        for w in workers:
            w.join(timeout=60)
            assert w.exitcode == 0
        (pid_a, state_a, decoded_a, json_a), \
            (pid_b, state_b, decoded_b, json_b) = outcomes
        assert pid_a != pid_b
        assert state_a == state_b == "warm"
        assert decoded_a == decoded_b == 0
        assert json_a == json_b

    def test_sidecar_raw_data_matches_decoded_pages(self, tmp_path):
        """The sidecar body is exactly the decoded pages, little-endian
        int64, in header order — no recompression, no framing."""
        path = _capture_file(tmp_path)
        with CaptureReader(str(path), page_cache=False) as cold, \
                CaptureReader(str(path)) as warm:
            for stream, info in sorted(cold.streams.items()):
                for index in range(info["pages"]):
                    a = cold.page(stream, index, info["stride"])
                    b = warm.page(stream, index, info["stride"])
                    assert a.dtype == b.dtype == np.dtype("<i8")
                    assert np.array_equal(a, b)
