"""Unit tests for the ISA: opcode table, instruction predicates, encoding."""

import pytest

from repro.isa import (BY_NAME, INSTR_BYTES, NO_PRED, NUM_OPCODES, OPCODES,
                       EncodingError, Fmt, Instr, decode, decode_program,
                       encode, encode_program, format_instr, validate, xreg,
                       freg)
from repro.isa import opcodes as oc


class TestOpcodeTable:
    def test_codes_are_dense_and_consistent(self):
        for i, info in enumerate(OPCODES):
            assert info.code == i
            assert BY_NAME[info.name] is info

    def test_memory_properties(self):
        assert OPCODES[oc.LD].mem_read == 8
        assert OPCODES[oc.LW].mem_read == 4
        assert OPCODES[oc.LB].mem_read == 1
        assert OPCODES[oc.SD].mem_write == 8
        assert OPCODES[oc.SH].mem_write == 2
        assert OPCODES[oc.FLD].mem_read == 8
        assert OPCODES[oc.FSD].mem_write == 8

    def test_control_flow_properties(self):
        assert OPCODES[oc.JAL].is_call
        assert OPCODES[oc.JALR].is_call
        assert OPCODES[oc.RET].is_ret
        assert OPCODES[oc.BEQ].is_branch
        assert not OPCODES[oc.J].is_call

    def test_prefetch_is_flagged(self):
        info = OPCODES[oc.PREFETCH]
        assert info.is_prefetch
        assert info.mem_read > 0  # it has a memory operand...

    def test_prefetch_not_counted_as_memory_read(self):
        # ...but the instrumentation predicate must reject it (paper:
        # "analysis routines return immediately upon detection of a
        # prefetch state").
        ins = Instr(oc.PREFETCH, rd=5, rs1=6, imm=0)
        assert not ins.is_memory_read()
        assert ins.is_prefetch()

    def test_float_opcodes_marked(self):
        assert OPCODES[oc.FADD].is_float
        assert OPCODES[oc.FLD].is_float
        assert not OPCODES[oc.LD].is_float


class TestRegisters:
    def test_aliases(self):
        assert xreg("zero") == xreg("x0") == 0
        assert xreg("ra") == 1
        assert xreg("sp") == 2
        assert xreg("a0") == 5
        assert freg("fa0") == 0
        assert freg("ft0") == 8
        assert freg("fs0") == 20

    def test_unknown_register_raises(self):
        with pytest.raises(ValueError):
            xreg("q7")
        with pytest.raises(ValueError):
            freg("a0")  # integer alias is not a float register


class TestInstrPredicates:
    def test_memory_read_write(self):
        ld = Instr(oc.LD, rd=5, rs1=6, imm=8)
        sd = Instr(oc.SD, rd=5, rs1=6, imm=8)
        assert ld.is_memory_read() and not ld.is_memory_write()
        assert sd.is_memory_write() and not sd.is_memory_read()
        assert ld.memory_read_size() == 8
        assert sd.memory_write_size() == 8

    def test_predication_flag(self):
        plain = Instr(oc.LD, rd=5, rs1=6)
        pred = Instr(oc.LD, rd=5, rs1=6, pred=13)
        assert not plain.is_predicated()
        assert pred.is_predicated()

    def test_validate_rejects_bad_fields(self):
        with pytest.raises(ValueError):
            validate(Instr(op=NUM_OPCODES))
        with pytest.raises(ValueError):
            validate(Instr(oc.ADD, rd=32))
        with pytest.raises(ValueError):
            validate(Instr(oc.FLI, rd=1, imm=3))     # int imm on fli
        with pytest.raises(ValueError):
            validate(Instr(oc.ADDI, rd=1, imm=1.5))  # float imm on addi
        with pytest.raises(ValueError):
            validate(Instr(oc.ADDI, rd=1, imm=2**63))

    def test_validate_accepts_good(self):
        validate(Instr(oc.ADD, rd=1, rs1=2, rs2=3))
        validate(Instr(oc.FLI, rd=1, imm=2.5))
        validate(Instr(oc.LD, rd=1, rs1=2, imm=-8, pred=13))


class TestEncoding:
    CASES = [
        Instr(oc.ADD, rd=1, rs1=2, rs2=3),
        Instr(oc.ADDI, rd=31, rs1=0, imm=-(2**63)),
        Instr(oc.LI, rd=7, imm=2**63 - 1),
        Instr(oc.FLI, rd=9, imm=-0.5),
        Instr(oc.LD, rd=5, rs1=2, imm=-16, pred=13),
        Instr(oc.RET),
        Instr(oc.PREFETCH, rd=0, rs1=6, imm=64),
    ]

    @pytest.mark.parametrize("ins", CASES, ids=lambda i: i.info.name)
    def test_roundtrip(self, ins):
        raw = encode(ins)
        assert len(raw) == INSTR_BYTES
        back = decode(raw)
        assert back == ins

    def test_program_roundtrip(self):
        raw = encode_program(self.CASES)
        assert decode_program(raw) == self.CASES

    def test_decode_rejects_garbage(self):
        with pytest.raises(EncodingError):
            decode(b"\x00" * 8)  # truncated
        bad = bytearray(encode(Instr(oc.ADD)))
        bad[0] = 0xFF
        bad[1] = 0xFF
        with pytest.raises(EncodingError):
            decode(bytes(bad))

    def test_decode_program_rejects_misaligned(self):
        with pytest.raises(EncodingError):
            decode_program(b"\x00" * 17)


class TestDisasm:
    def test_formats_do_not_crash(self):
        # Every opcode format renders.
        seen_fmts = set()
        for info in OPCODES:
            ins = Instr(info.code, rd=1, rs1=2, rs2=3,
                        imm=1.5 if info.fmt is Fmt.FRI else 16)
            text = format_instr(ins)
            assert info.name.split(".")[0] in text
            seen_fmts.add(info.fmt)
        assert seen_fmts == set(Fmt)

    def test_predicate_rendered(self):
        ins = Instr(oc.LD, rd=5, rs1=6, imm=8, pred=13)
        assert "?t0" in format_instr(ins)
