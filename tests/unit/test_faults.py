"""Unit tests for the deterministic fault-injection seam
(``repro.testing.faults``)."""

import pytest

from repro.testing.faults import (ENV_VAR, FAULT_KINDS, STAGES,
                                  FaultInjector, FaultPlan, FaultSpec,
                                  InjectedFault, WorkerExit)


class TestFaultSpec:
    def test_defaults_target_first_attempt_anywhere(self):
        spec = FaultSpec(kind="exit")
        assert spec.stage == "replay"
        assert spec.shard is None and spec.worker is None
        assert spec.attempt == 0

    @pytest.mark.parametrize("kind", FAULT_KINDS)
    @pytest.mark.parametrize("stage", STAGES)
    def test_every_kind_stage_combination_constructs(self, kind, stage):
        FaultSpec(kind=kind, stage=stage)

    def test_unknown_kind_and_stage_rejected(self):
        with pytest.raises(ValueError, match="unknown fault kind"):
            FaultSpec(kind="meteor")
        with pytest.raises(ValueError, match="unknown pipeline stage"):
            FaultSpec(kind="exit", stage="teardown")

    def test_matching_semantics(self):
        spec = FaultSpec(kind="exit", stage="replay", shard=2, worker=1,
                         attempt=0)
        assert spec.matches("replay", 2, 1, 0)
        assert not spec.matches("payload", 2, 1, 0)
        assert not spec.matches("replay", 3, 1, 0)
        assert not spec.matches("replay", 2, 2, 0)
        assert not spec.matches("replay", 2, 1, 1)

    def test_none_selectors_match_anything(self):
        spec = FaultSpec(kind="stall", shard=None, worker=None, attempt=None)
        for attempt in (0, 1, 5):
            assert spec.matches("replay", 9, 3, attempt)


class TestParsing:
    def test_minimal(self):
        spec = FaultSpec.parse("exit@replay")
        assert (spec.kind, spec.stage) == ("exit", "replay")

    def test_kind_only_defaults_to_replay(self):
        assert FaultSpec.parse("stall").stage == "replay"

    def test_full_parameters(self):
        spec = FaultSpec.parse(
            "truncate@payload:shard=1,worker=2,attempt=any,truncate_to=4")
        assert spec.shard == 1 and spec.worker == 2
        assert spec.attempt is None
        assert spec.truncate_to == 4

    def test_stall_seconds_and_exit_code(self):
        spec = FaultSpec.parse("stall@replay:stall_seconds=0.5")
        assert spec.stall_seconds == 0.5
        assert FaultSpec.parse("exit@merge:exit_code=3").exit_code == 3

    def test_star_is_wildcard(self):
        assert FaultSpec.parse("exit@replay:shard=*").shard is None

    def test_malformed_rejected(self):
        with pytest.raises(ValueError, match="malformed fault parameter"):
            FaultSpec.parse("exit@replay:shard")
        with pytest.raises(ValueError, match="unknown fault parameter"):
            FaultSpec.parse("exit@replay:color=red")

    def test_plan_parses_semicolon_separated_specs(self):
        plan = FaultPlan.parse("exit@replay:shard=1; stall@replay ;")
        assert [s.kind for s in plan.specs] == ["exit", "stall"]
        assert bool(plan)
        assert not FaultPlan()

    def test_plan_from_env(self):
        env = {ENV_VAR: "exception@merge"}
        plan = FaultPlan.from_env(env)
        assert plan.specs[0].stage == "merge"
        assert not FaultPlan.from_env({})
        assert not FaultPlan.from_env({ENV_VAR: "   "})

    def test_plan_is_picklable(self):
        import pickle

        plan = FaultPlan.parse("exit@replay:shard=1;truncate@payload")
        assert pickle.loads(pickle.dumps(plan)) == plan


class TestInjector:
    def test_healthy_plan_never_fires(self):
        inj = FaultInjector(None)
        for stage in STAGES:
            inj.fire(stage, shard=0, worker=1, attempt=0)
        assert inj.fired == []

    def test_exception_fault_raises(self):
        inj = FaultInjector(FaultPlan.parse("exception@replay:shard=1"))
        inj.fire("replay", shard=0, worker=1, attempt=0)   # wrong shard
        with pytest.raises(InjectedFault, match="shard=1"):
            inj.fire("replay", shard=1, worker=1, attempt=0)
        assert inj.fired == [("exception", "replay", 1, 1, 0)]

    def test_stall_fault_sleeps(self):
        naps = []
        inj = FaultInjector(
            FaultPlan.parse("stall@replay:stall_seconds=12.5"),
            sleep=naps.append)
        inj.fire("replay", shard=0, worker=1, attempt=0)
        assert naps == [12.5]

    def test_exit_fault_in_parent_role_raises_worker_exit(self):
        inj = FaultInjector(FaultPlan.parse("exit@merge:exit_code=7"),
                            role="parent")
        with pytest.raises(WorkerExit) as info:
            inj.fire("merge")
        assert info.value.code == 7

    def test_exit_fault_in_worker_role_calls_os_exit(self, monkeypatch):
        calls = []
        monkeypatch.setattr("repro.testing.faults.os._exit", calls.append)
        inj = FaultInjector(FaultPlan.parse("exit@replay:exit_code=9"))
        inj.fire("replay", shard=0, worker=1, attempt=0)
        assert calls == [9]

    def test_first_attempt_only_by_default(self):
        inj = FaultInjector(FaultPlan.parse("exception@replay"))
        with pytest.raises(InjectedFault):
            inj.fire("replay", shard=0, worker=1, attempt=0)
        inj.fire("replay", shard=0, worker=2, attempt=1)   # retry: no fault

    def test_persistent_fault_fires_every_attempt(self):
        inj = FaultInjector(FaultPlan.parse("exception@replay:attempt=any"))
        for attempt in range(3):
            with pytest.raises(InjectedFault):
                inj.fire("replay", shard=0, worker=1, attempt=attempt)

    def test_truncate_is_skipped_by_fire_and_applied_by_mangle(self):
        inj = FaultInjector(
            FaultPlan.parse("truncate@payload:truncate_to=3"))
        inj.fire("payload", shard=0, worker=1, attempt=0)   # no-op
        assert inj.fired == []
        assert inj.mangle("payload", b"abcdefgh", shard=0, worker=1,
                          attempt=0) == b"abc"
        assert inj.fired == [("truncate", "payload", 0, 1, 0)]

    def test_mangle_passes_through_when_unmatched(self):
        inj = FaultInjector(
            FaultPlan.parse("truncate@payload:shard=5"))
        blob = b"payload-bytes"
        assert inj.mangle("payload", blob, shard=0, worker=1,
                          attempt=0) is blob
