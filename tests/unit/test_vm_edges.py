"""VM edge cases: syscall failures, sbrk exhaustion, guard pages, bursts."""

import pytest

from repro.asmkit import assemble
from repro.core.ledger import BandwidthLedger, R_INCL
from repro.minic import run_minic
from repro.vm import (GuestFS, Machine, MemoryFault, SyscallError,
                      HEAP_BASE)


def run_asm(src, fs=None, **kw):
    m = Machine(assemble(".text\n" + src), fs=fs)
    m.run(**kw)
    return m


class TestSyscallEdges:
    def test_unknown_syscall_faults(self):
        with pytest.raises(SyscallError):
            run_asm("li a0, 999\necall\nhalt\n")

    def test_read_into_bad_buffer_faults(self):
        fs = GuestFS()
        fs.put("f", b"abc")
        with pytest.raises(MemoryFault):
            run_asm("""
                li a0, 3
                li a1, 3
                li a2, 0
                li a3, 8
                ecall
                halt
            """, fs=fs)

    def test_open_missing_file_returns_minus_one(self):
        m = run_minic("""
        int main() { return open("ghost.bin", 0); }
        """)
        assert m.exit_code == -1

    def test_write_to_unopened_fd(self):
        m = run_minic("""
        char b[4];
        int main() { return write(77, b, 4); }
        """)
        assert m.exit_code == -1

    def test_unterminated_path_string_faults(self):
        # a path pointer into a memory region with no NUL in reach
        src = """
        int main() {
            char* p = (char*)malloc(8192);
            memset(p, 65, 8192);           // 'A' everywhere, no terminator
            return open(p, 0);
        }
        """
        with pytest.raises(SyscallError):
            run_minic(src)


class TestSbrk:
    def test_sbrk_growth_and_query(self):
        m = run_minic("""
        int main() {
            char* a = malloc(100);
            char* b = malloc(100);
            return (int)(b - a);
        }
        """)
        assert m.exit_code >= 100  # rounded to 16

    def test_sbrk_exhaustion_returns_minus_one(self):
        m = run_asm(f"""
            li a0, 5
            li a1, {1 << 40}
            ecall
            mv t6, a0
            halt
        """)
        assert m.x[19] == -1
        assert m.brk == HEAP_BASE  # unchanged

    def test_negative_sbrk_below_heap_base_fails(self):
        m = run_asm("""
            li a0, 5
            li a1, -4096
            ecall
            mv t6, a0
            halt
        """)
        assert m.x[19] == -1


class TestGuardPages:
    def test_null_write_faults(self):
        with pytest.raises(MemoryFault):
            run_minic("int main() { int* p = (int*)0; *p = 1; return 0; }")

    def test_null_read_faults(self):
        with pytest.raises(MemoryFault):
            run_minic("int main() { int* p = (int*)8; return *p; }")

    def test_fault_reports_location(self):
        with pytest.raises(MemoryFault) as err:
            run_minic("int main() { int* p = (int*)0; return *p; }")
        assert "pc=" in str(err.value)


class TestBursts:
    def _series(self, slices):
        led = BandwidthLedger(10)
        for s in slices:
            led.bucket("k", s)[R_INCL] += 1
        led.flush()
        return led.series("k")

    def test_contiguous_single_burst(self):
        assert self._series([0, 1, 2, 3]).bursts() == [(0, 3)]

    def test_gap_splits(self):
        assert self._series([0, 1, 5, 6]).bursts() == [(0, 1), (5, 6)]

    def test_max_gap_merges(self):
        s = self._series([0, 1, 3, 4])
        assert s.bursts() == [(0, 1), (3, 4)]
        assert s.bursts(max_gap=1) == [(0, 4)]

    def test_empty(self):
        led = BandwidthLedger(10)
        led.flush()
        assert led.series("none").bursts() == []

    def test_single_slice(self):
        assert self._series([7]).bursts() == [(7, 7)]

    def test_bursts_cover_activity_span(self):
        s = self._series([2, 3, 9, 15, 16])
        bursts = s.bursts()
        first, last, count = s.activity_span()
        assert bursts[0][0] == first
        assert bursts[-1][1] == last
        assert sum(b - a + 1 for a, b in bursts) == count
