"""Tests for wavio, the machine model and the guest filesystem."""

import numpy as np
import pytest

from repro.core.machine_model import MachineModel, PAPER_MACHINE
from repro.vm.filesystem import GuestFS, O_RDONLY, O_WRONLY
from repro.wavio import (WAV_HEADER_BYTES, read_wav, sine, sine_sweep,
                         white_noise, write_wav)


class TestWavCodec:
    def test_roundtrip_mono(self):
        samples = np.arange(-50, 50, dtype=np.int16)
        raw = write_wav(48000, samples)
        back = read_wav(raw)
        assert back.sample_rate == 48000
        assert back.channels == 1
        np.testing.assert_array_equal(back.samples[:, 0], samples)

    def test_roundtrip_multichannel(self):
        samples = np.arange(24, dtype=np.int16).reshape(8, 3)
        back = read_wav(write_wav(44100, samples))
        assert back.channels == 3
        assert back.frames == 8
        np.testing.assert_array_equal(back.samples, samples)

    def test_float_input_quantised(self):
        raw = write_wav(8000, np.array([0.0, 0.5, -1.0, 1.0]))
        back = read_wav(raw)
        assert back.samples[0, 0] == 0
        assert back.samples[1, 0] == 16384  # rint(0.5 * 32767)
        assert back.samples[2, 0] == -32767
        assert back.samples[3, 0] == 32767

    def test_header_size(self):
        raw = write_wav(8000, np.zeros(4, dtype=np.int16))
        assert len(raw) == WAV_HEADER_BYTES + 8

    def test_reject_garbage(self):
        with pytest.raises(ValueError):
            read_wav(b"not a wav file at all........................")

    def test_reject_wrong_format(self):
        raw = bytearray(write_wav(8000, np.zeros(4, dtype=np.int16)))
        raw[20] = 3  # audio format != PCM
        with pytest.raises(ValueError):
            read_wav(bytes(raw))

    def test_reject_bad_dims(self):
        with pytest.raises(ValueError):
            write_wav(8000, np.zeros((2, 2, 2)))


class TestSynth:
    def test_sine_bounds_and_period(self):
        s = sine(48000, freq_hz=1000.0, amplitude=0.5)
        assert np.abs(s).max() <= 0.5 + 1e-12
        assert s[0] == 0.0

    def test_sweep_is_deterministic_and_broadband(self):
        a = sine_sweep(4096)
        b = sine_sweep(4096)
        np.testing.assert_array_equal(a, b)
        spectrum = np.abs(np.fft.rfft(a))
        # energy spread across many bins, not a single tone
        assert (spectrum > spectrum.max() * 0.05).sum() > 20

    def test_noise_reproducible(self):
        np.testing.assert_array_equal(white_noise(100, seed=1),
                                      white_noise(100, seed=1))
        assert not np.array_equal(white_noise(100, seed=1),
                                  white_noise(100, seed=2))


class TestMachineModel:
    def test_paper_machine(self):
        assert PAPER_MACHINE.frequency_hz == pytest.approx(2.83e9)
        assert PAPER_MACHINE.seconds(2.83e9) == pytest.approx(1.0)

    def test_conversions(self):
        m = MachineModel(frequency_hz=1e9, ipc=2.0)
        assert m.instructions_per_second == 2e9
        assert m.milliseconds(2e6) == pytest.approx(1.0)
        assert m.cycles(10) == 5.0
        assert m.bytes_per_second(2.0) == 4e9

    def test_validation(self):
        with pytest.raises(ValueError):
            MachineModel(frequency_hz=0)
        with pytest.raises(ValueError):
            MachineModel(ipc=-1)


class TestGuestFS:
    def test_read_roundtrip(self):
        fs = GuestFS()
        fs.put("f", b"hello world")
        fd = fs.open("f", O_RDONLY)
        assert fs.read(fd, 5) == b"hello"
        assert fs.read(fd, 100) == b" world"
        assert fs.read(fd, 10) == b""
        assert fs.close(fd) == 0

    def test_open_missing(self):
        fs = GuestFS()
        assert fs.open("nope", O_RDONLY) == -1

    def test_write_creates_and_truncates(self):
        fs = GuestFS()
        fs.put("f", b"old content")
        fd = fs.open("f", O_WRONLY)
        fs.write(fd, b"new")
        fs.close(fd)
        assert fs.get("f") == b"new"

    def test_write_to_readonly_fd(self):
        fs = GuestFS()
        fs.put("f", b"x")
        fd = fs.open("f", O_RDONLY)
        assert fs.write(fd, b"y") == -1

    def test_seek_and_size(self):
        fs = GuestFS()
        fs.put("f", b"0123456789")
        fd = fs.open("f", O_RDONLY)
        assert fs.size(fd) == 10
        assert fs.seek(fd, 7) == 7
        assert fs.read(fd, 10) == b"789"
        assert fs.seek(fd, -1) == -1

    def test_sparse_write_extends(self):
        fs = GuestFS()
        fd = fs.open("f", O_WRONLY)
        fs.seek(fd, 4)
        fs.write(fd, b"ab")
        fs.close(fd)
        assert fs.get("f") == b"\0\0\0\0ab"

    def test_bad_descriptor_operations(self):
        fs = GuestFS()
        assert fs.read(99, 4) is None
        assert fs.write(99, b"x") == -1
        assert fs.close(99) == -1
        assert fs.size(99) == -1

    def test_open_count(self):
        fs = GuestFS()
        fs.put("f", b"x")
        fd = fs.open("f", O_RDONLY)
        assert fs.open_count() == 1
        fs.close(fd)
        assert fs.open_count() == 0
