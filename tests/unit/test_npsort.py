"""Radix argsort helper (:mod:`repro.core.npsort`).

``stable_argsort`` must return *exactly* ``np.argsort(keys,
kind="stable")`` — the replay engines lean on tie order for
byte-identical reports — across every route: the small-array
passthrough, the one- and two-pass radix paths, and the fallbacks for
keys the 32-bit decomposition cannot carry.
"""

import numpy as np
import pytest

from repro.core.npsort import _SMALL, stable_argsort


def _assert_matches_numpy(keys):
    expect = np.argsort(keys, kind="stable")
    got = stable_argsort(keys)
    assert got.tolist() == expect.tolist()


class TestStableArgsort:
    def test_small_array_passthrough(self):
        keys = np.array([5, 1, 5, 0, 1], dtype=np.int64)
        assert keys.size < _SMALL
        _assert_matches_numpy(keys)

    def test_single_pass_route_16bit_keys(self):
        rng = np.random.default_rng(7)
        keys = rng.integers(0, 1 << 16, size=_SMALL + 100).astype(np.int64)
        _assert_matches_numpy(keys)

    def test_two_pass_route_32bit_keys(self):
        rng = np.random.default_rng(11)
        keys = rng.integers(0, 1 << 32, size=_SMALL + 100).astype(np.int64)
        _assert_matches_numpy(keys)

    def test_ties_keep_input_order(self):
        rng = np.random.default_rng(3)
        keys = rng.integers(0, 50, size=_SMALL * 2).astype(np.int64)
        order = stable_argsort(keys)
        sk = keys[order]
        assert (sk[1:] >= sk[:-1]).all()
        # within every equal-key run the original indices ascend
        ties = sk[1:] == sk[:-1]
        assert (order[1:][ties] > order[:-1][ties]).all()

    @pytest.mark.parametrize("bad", [-1, 1 << 32])
    def test_out_of_range_keys_fall_back(self, bad):
        rng = np.random.default_rng(5)
        keys = rng.integers(0, 1 << 20, size=_SMALL + 10).astype(np.int64)
        keys[123] = bad
        _assert_matches_numpy(keys)
