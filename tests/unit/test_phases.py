"""Phase detection tests (timeline partition + kernel clustering)."""

import pytest

from repro.core import (TQuadOptions, cluster_kernel_phases, detect_phases,
                        run_tquad)
from repro.core.ledger import BandwidthLedger, R_INCL, W_INCL
from repro.core.options import TQuadOptions as Opts
from repro.core.report import TQuadReport
from repro.minic import build_program


def synthetic_report(layout: dict[str, list[int]], *, interval: int = 100,
                     n_slices: int | None = None) -> TQuadReport:
    """Build a report where each kernel is active in the given slices."""
    led = BandwidthLedger(interval)
    for name, slices in layout.items():
        for s in slices:
            c = led.bucket(name, s)
            c[R_INCL] += 10
            c[W_INCL] += 4
    led.flush()
    total_slices = n_slices or (max(max(v) for v in layout.values()) + 1)
    return TQuadReport(ledger=led, options=Opts(slice_interval=interval),
                       total_instructions=total_slices * interval,
                       images={k: "main" for k in layout})


class TestTimelinePhases:
    def test_three_sequential_stages(self):
        rep = synthetic_report({
            "a": list(range(0, 10)),
            "b": list(range(10, 20)),
            "c": list(range(20, 30)),
        })
        pa = detect_phases(rep)
        assert len(pa) == 3
        spans = [(p.start_slice, p.end_slice) for p in pa]
        assert spans == [(0, 9), (10, 19), (20, 29)]
        assert [p.kernels[0].name for p in pa] == ["a", "b", "c"]

    def test_phases_are_a_partition(self):
        rep = synthetic_report({
            "a": list(range(0, 12)),
            "b": list(range(8, 25)),
            "c": list(range(25, 40)),
        })
        pa = detect_phases(rep)
        covered = []
        for p in pa.phases:
            covered.extend(range(p.start_slice, p.end_slice + 1))
        assert covered == sorted(set(covered))  # no overlaps

    def test_gap_bridging(self):
        # kernel a blinks (every other slice) — gap closing keeps one phase
        rep = synthetic_report({"a": list(range(0, 30, 2))})
        pa = detect_phases(rep, gap_window=2)
        assert len(pa) == 1

    def test_short_segment_absorbed(self):
        rep = synthetic_report({
            "a": list(range(0, 15)) + [16],   # one-slice blip
            "b": list(range(17, 30)),
        })
        pa = detect_phases(rep, min_phase_slices=3)
        assert len(pa) == 2

    def test_max_phases_cap(self):
        rep = synthetic_report({
            "a": list(range(0, 5)),
            "b": list(range(5, 10)),
            "c": list(range(10, 15)),
            "d": list(range(15, 20)),
        })
        pa = detect_phases(rep, max_phases=2)
        assert len(pa) <= 2

    def test_phase_of_slice(self):
        rep = synthetic_report({
            "a": list(range(0, 10)),
            "b": list(range(10, 20)),
        })
        pa = detect_phases(rep)
        assert pa.phase_of_slice(3).kernels[0].name == "a"
        assert pa.phase_of_slice(15).kernels[0].name == "b"
        assert pa.phase_of_slice(999) is None

    def test_aggregate_mbw_is_sum_of_maxima(self):
        rep = synthetic_report({"a": [0, 1], "b": [0, 1]})
        pa = detect_phases(rep)
        (phase,) = pa.phases
        assert phase.aggregate_mbw == pytest.approx(
            sum(k.max_bw_incl for k in phase.kernels))

    def test_format_table(self):
        rep = synthetic_report({"a": [0, 1, 2], "b": [3, 4, 5]})
        text = detect_phases(rep).format_table()
        assert "%span" in text and "aggMBW" in text


class TestKernelClusterPhases:
    def test_overlapping_spans_allowed(self):
        rep = synthetic_report({
            "dense": list(range(0, 40)),
            "sparse": list(range(0, 20, 5)),   # overlaps dense temporally
            "tail": list(range(40, 50)),
        })
        pa = cluster_kernel_phases(rep, coarsen_blocks=50,
                                   similarity_threshold=0.5)
        by_kernel = {k: p for p in pa for k in p.kernel_names()}
        assert by_kernel["dense"] is not by_kernel["sparse"]
        assert by_kernel["dense"] is not by_kernel["tail"]
        # sparse's phase is fully inside dense's span: overlap is preserved
        assert by_kernel["sparse"].start_slice >= by_kernel["dense"].start_slice
        assert by_kernel["sparse"].end_slice <= by_kernel["dense"].end_slice

    def test_coactive_kernels_cluster(self):
        rep = synthetic_report({
            "x": list(range(0, 30)),
            "y": list(range(0, 30)),
            "z": list(range(30, 60)),
        })
        pa = cluster_kernel_phases(rep, coarsen_blocks=60)
        assert len(pa) == 2
        first = pa.phases[0]
        assert set(first.kernel_names()) == {"x", "y"}

    def test_interleaved_kernels_cluster_after_coarsening(self):
        # x active on even slices, y on odd: disjoint fine sets, same blocks
        rep = synthetic_report({
            "x": list(range(0, 40, 2)),
            "y": list(range(1, 40, 2)),
        })
        fine = cluster_kernel_phases(rep, coarsen_blocks=10**9)
        coarse = cluster_kernel_phases(rep, coarsen_blocks=10)
        assert len(fine) == 2
        assert len(coarse) == 1

    def test_max_phases_forces_merging(self):
        rep = synthetic_report({
            "a": list(range(0, 10)),
            "b": list(range(20, 30)),
            "c": list(range(40, 50)),
        })
        pa = cluster_kernel_phases(rep, coarsen_blocks=60, max_phases=2)
        assert len(pa) == 2

    def test_phase_of_kernel(self):
        rep = synthetic_report({"a": [0, 1], "b": [10, 11]})
        pa = cluster_kernel_phases(rep, coarsen_blocks=12)
        assert pa.phase_of_kernel("a") is not None
        assert pa.phase_of_kernel("nope") is None

    def test_empty_report(self):
        led = BandwidthLedger(10)
        led.flush()
        rep = TQuadReport(ledger=led, options=Opts(slice_interval=10),
                          total_instructions=0)
        pa = cluster_kernel_phases(rep)
        assert len(pa) == 0

    def test_format_table_mentions_slice_count(self):
        rep = synthetic_report({"a": [0, 1]})
        text = cluster_kernel_phases(rep).format_table()
        assert "time slices were measured in total" in text


class TestOnRealProgram:
    def test_pipeline_stage_order(self):
        src = """
        int a[128]; int b[128];
        int s1() { int i; for (i=0;i<128;i=i+1) { a[i]=i; } return 0; }
        int s2() { int i; int s=0; for (i=0;i<128;i=i+1) { b[i]=a[i]; s=s+b[i]; } return s; }
        int main() { s1(); return s2() & 63; }
        """
        rep = run_tquad(build_program(src),
                        options=TQuadOptions(slice_interval=300))
        pa = detect_phases(rep, kernels=["s1", "s2"])
        assert len(pa) == 2
        assert pa.phases[0].kernels[0].name == "s1"
        assert pa.phases[1].kernels[0].name == "s2"
