"""Differential fuzzing of the profiler stack.

Hypothesis-generated MiniC guests (and a checked-in seed corpus) run
under all three tools in three configurations — serial, sharded
(``jobs=4``), and with the superblock JIT disabled — and every byte of
every report must agree: JSON serialisations, rendered tables, the gprof
call graph, the guest exit code and the retired-instruction count.  Any
divergence is a real bug in the VM, the JIT, the instrumentation engine,
or the shard/merge pipeline.

Budget: the hypothesis example count comes from ``FUZZ_EXAMPLES``
(default 15 — CI-sized); the nightly job sets ``TQUAD_NIGHTLY=1`` and a
larger budget.  The hypothesis loop uses the inline executor (identical
shard/seed/merge machinery, no fork overhead); real worker processes are
exercised over the corpus.
"""

import os
import pathlib

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.core import TQuadOptions
from repro.minic import build_program
from repro.parallel import (GprofSpec, QuadSpec, TQuadSpec,
                            parallel_profile)
from repro.serialize import flat_to_json, quad_to_json, tquad_to_json
from repro.testing.workloads import (SHAPES, WorkloadSpec,
                                     generate_workload)

CORPUS_DIR = pathlib.Path(__file__).parent / "corpus"
CORPUS = sorted(CORPUS_DIR.glob("*.mc"))

FUZZ_EXAMPLES = int(os.environ.get("FUZZ_EXAMPLES", "15"))
FUZZ_NIGHTLY_EXAMPLES = int(os.environ.get("FUZZ_NIGHTLY_EXAMPLES", "200"))
NIGHTLY = os.environ.get("TQUAD_NIGHTLY", "") == "1"

INTERVAL = 97          # deliberately not a divisor of anything
SPECS = (TQuadSpec(options=TQuadOptions(slice_interval=INTERVAL)),
         QuadSpec(), GprofSpec())


def fingerprint(src, *, jobs: int = 1, jit: bool = True,
                executor: str = "process",
                quantum: int | None = None, fs_factory=None) -> tuple:
    """Every byte-level artifact of one profiling configuration.

    ``src`` is MiniC source or a prebuilt ``Program``; ``fs_factory``
    supplies a fresh workspace per run for guests that read input files
    (the corpus property tests reuse this harness).
    """
    program = src if not isinstance(src, str) else build_program(src)
    fs = fs_factory() if fs_factory is not None else None
    run = parallel_profile(program, SPECS, jobs=jobs, jit=jit, fs=fs,
                           executor=executor, quantum=quantum, align=False)
    tq, q, g = (run.reports["tquad"], run.reports["quad"],
                run.reports["gprof"])
    return (tquad_to_json(tq), tq.format_table(),
            quad_to_json(q), q.format_table(),
            flat_to_json(g), g.format_table(), g.format_call_graph(),
            run.exit_code, run.total_instructions)


def assert_all_configs_agree(src, *, executor: str = "inline",
                             quantum: int = 173, fs_factory=None) -> None:
    reference = fingerprint(src, fs_factory=fs_factory)
    sharded = fingerprint(src, jobs=4, executor=executor, quantum=quantum,
                          fs_factory=fs_factory)
    nojit = fingerprint(src, jit=False, fs_factory=fs_factory)
    for i, (a, b) in enumerate(zip(reference, sharded)):
        assert a == b, f"serial vs jobs=4 diverged at artifact {i}"
    for i, (a, b) in enumerate(zip(reference, nojit)):
        assert a == b, f"serial vs jit-off diverged at artifact {i}"


# --------------------------------------------------------------- generator
@st.composite
def guest_programs(draw):
    """Random MiniC guests mixing int/float arrays, branches and calls."""
    size = draw(st.sampled_from([8, 16, 24]))
    n_funcs = draw(st.integers(min_value=1, max_value=4))
    use_floats = draw(st.booleans())
    decls = [f"int ga[{size}]; int gb[{size}];"]
    if use_floats:
        decls.append(f"float gf[{size}];")
    funcs, calls = [], []
    for f in range(n_funcs):
        stmts = []
        for _ in range(draw(st.integers(min_value=1, max_value=3))):
            kind = draw(st.sampled_from(
                ["fill", "sum", "copy", "branchy", "shift"]
                + (["fsynth", "fsum"] if use_floats else [])))
            k = draw(st.integers(1, 9))
            if kind == "fill":
                stmts.append(f"for (i = 0; i < {size}; i++) "
                             f"{{ ga[i] = i * {k} + {f}; }}")
            elif kind == "sum":
                stmts.append(f"for (i = 0; i < {size}; i++) "
                             f"{{ acc = acc + ga[i]; }}")
            elif kind == "copy":
                stmts.append(f"for (i = 0; i < {size}; i++) "
                             f"{{ gb[i] = ga[i] ^ {k}; }}")
            elif kind == "branchy":
                stmts.append(
                    f"for (i = 0; i < {size}; i++) {{ "
                    f"if (ga[i] % {k + 1} == 0) {{ acc = acc + gb[i]; }} "
                    f"else {{ gb[i] = gb[i] + {k}; }} }}")
            elif kind == "shift":
                stmts.append(f"for (i = 0; i < {size}; i++) "
                             f"{{ gb[i] = (gb[i] << 1) | (ga[i] >> 1); }}")
            elif kind == "fsynth":
                stmts.append(f"for (i = 0; i < {size}; i++) "
                             f"{{ gf[i] = (float)ga[i] * 0.5; }}")
            else:  # fsum
                stmts.append(f"for (i = 0; i < {size}; i++) "
                             f"{{ acc = acc + (int)gf[i]; }}")
        funcs.append(f"int f{f}() {{ int i; int acc = 0; "
                     + " ".join(stmts) + " return acc; }")
        for _ in range(draw(st.integers(min_value=1, max_value=2))):
            calls.append(f"r = r + f{f}();")
    return ("\n".join(decls) + "\n" + "\n".join(funcs)
            + "\nint main() { int r = 0; " + " ".join(calls)
            + " print_int(r); return r & 255; }")


@st.composite
def workload_specs(draw, max_size: int = 48):
    """Specs for the deterministic shape generator — the corpus' three
    bandwidth shapes (pointer / bursty / streaming) at fuzz scale."""
    return WorkloadSpec(
        shape=draw(st.sampled_from(SHAPES)),
        seed=draw(st.integers(min_value=1, max_value=0x7FFFFFFF)),
        size=draw(st.integers(min_value=8, max_value=max_size)),
        kernels=draw(st.integers(min_value=1, max_value=3)),
        steps=draw(st.integers(min_value=1, max_value=3)))


# -------------------------------------------------------------- the tests
@pytest.mark.parametrize("path", CORPUS, ids=lambda p: p.stem)
def test_corpus_differential_with_real_processes(path):
    """Seed corpus: serial == --jobs 4 (real workers) == JIT-off."""
    assert_all_configs_agree(path.read_text(), executor="process",
                             quantum=600)


def test_corpus_is_checked_in():
    assert len(CORPUS) >= 5, "seed corpus missing"


@given(guest_programs())
@settings(max_examples=FUZZ_EXAMPLES, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
def test_fuzz_differential(src):
    """Generated guests: all three configurations byte-agree."""
    assert_all_configs_agree(src)


@given(workload_specs(max_size=24))
@settings(max_examples=max(3, FUZZ_EXAMPLES // 3), deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
def test_fuzz_generated_workloads(spec):
    """Shape-generator guests: all three configurations byte-agree."""
    assert_all_configs_agree(generate_workload(spec))


@pytest.mark.nightly
@pytest.mark.skipif(not NIGHTLY, reason="nightly budget (TQUAD_NIGHTLY=1)")
@given(guest_programs())
@settings(max_examples=FUZZ_NIGHTLY_EXAMPLES, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
def test_fuzz_differential_nightly(src):
    """The same property at the nightly example budget, with shard
    boundaries forced off slice edges at a second quantum."""
    assert_all_configs_agree(src)
    assert_all_configs_agree(src, quantum=311)


@pytest.mark.nightly
@pytest.mark.skipif(not NIGHTLY, reason="nightly budget (TQUAD_NIGHTLY=1)")
@given(workload_specs())
@settings(max_examples=FUZZ_NIGHTLY_EXAMPLES, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
def test_fuzz_generated_workloads_nightly(spec):
    """Shape-generator guests at the nightly budget and second quantum."""
    src = generate_workload(spec)
    assert_all_configs_agree(src)
    assert_all_configs_agree(src, quantum=311)
