#!/usr/bin/env python3
"""The paper's full case study (§V) on the hArtes-wfs reconstruction.

Regenerates, in order, the analogues of:

* Table I   — gprof flat profile;
* Table II  — QUAD producer/consumer statistics (stack incl./excl.);
* Table III — flat profile of the QUAD-instrumented run (rank + trend);
* Figure 6  — read-bandwidth strips, stack included, top kernels;
* Figure 7  — write-bandwidth strips, stack excluded, bottom kernels;
* Table IV  — the five execution phases.

Run:  python examples/wfs_case_study.py [tiny|small|demo]
(tiny takes seconds; small is the benchmark-harness scale and takes a
couple of minutes because QUAD's byte-granular shadow memory is expensive.)
"""

import sys

from repro.analysis import bandwidth_strips
from repro.apps.wfs import PRESETS, build_wfs_program, make_workspace
from repro.core import TQuadOptions, cluster_kernel_phases, run_tquad
from repro.gprofsim import run_gprof
from repro.pin import PinEngine
from repro.quad import QuadTool, instrumented_profile, rank_shifts

PAPER_KERNELS = [
    "wav_store", "fft1d", "DelayLine_processChunk", "bitrev", "zeroRealVec",
    "AudioIo_setFrames", "perm", "cadd", "cmult", "Filter_process",
    "wav_load", "Filter_process_pre_", "zeroCplxVec", "r2c", "c2r",
    "AudioIo_getFrames", "ffw", "vsmult2d", "calculateGainPQ",
    "PrimarySource_deriveTP", "ldint",
]


def main() -> None:
    preset = sys.argv[1] if len(sys.argv) > 1 else "tiny"
    cfg = PRESETS[preset]
    print(f"=== hArtes-wfs case study, preset {cfg.name!r} "
          f"(chunk={cfg.chunk}, chunks={cfg.n_chunks}, "
          f"speakers={cfg.n_speakers}) ===\n")
    program = build_wfs_program(cfg)

    # ---- Table I: gprof flat profile --------------------------------------
    flat = run_gprof(program, fs=make_workspace(cfg))
    print("--- Table I analogue: flat profile ---")
    print(flat.format_table(top=21))
    print()

    # ---- Table II: QUAD ----------------------------------------------------
    engine = PinEngine(program, fs=make_workspace(cfg))
    quad_tool = QuadTool().attach(engine)
    engine.run()
    quad = quad_tool.report()
    print("--- Table II analogue: QUAD producer/consumer data ---")
    print(quad.format_table())
    print()

    # ---- Table III: QUAD-instrumented profile ------------------------------
    inst = instrumented_profile(flat, quad)
    print("--- Table III analogue: QUAD-instrumented flat profile ---")
    print(f"{'kernel':<26}{'%time':>8}{'rank':>6}{'trend':>7}")
    for shift in rank_shifts(flat, inst)[:10]:
        print(f"{shift.kernel:<26}{shift.instrumented_percent:>8.2f}"
              f"{shift.instrumented_rank:>6}{shift.trend:>7}")
    print()

    # ---- tQUAD run ----------------------------------------------------------
    interval = max(cfg.frames, 2000)
    report = run_tquad(program, fs=make_workspace(cfg),
                       options=TQuadOptions(slice_interval=interval))
    top10 = report.top_kernels(10)
    names, mat = report.bandwidth_matrix(top10, write=False,
                                         include_stack=True)
    print("--- Figure 6 analogue: read bandwidth incl. stack, top 10 ---")
    print(bandwidth_strips(names, mat, interval=interval, width=90))
    print()

    bottom = [k for k in report.kernels() if k in PAPER_KERNELS
              and k not in top10][:10]
    names, mat = report.bandwidth_matrix(bottom, write=True,
                                         include_stack=False)
    # the paper cuts off the second half (only wav_store is active there)
    mat = mat[:, :mat.shape[1] // 2]
    print("--- Figure 7 analogue: write bandwidth excl. stack, last 10, "
          "first half ---")
    print(bandwidth_strips(names, mat, interval=interval, width=90))
    print()

    # ---- Table IV: phases ----------------------------------------------------
    fine = run_tquad(program, fs=make_workspace(cfg),
                     options=TQuadOptions(slice_interval=2000))
    phases = cluster_kernel_phases(fine, kernels=PAPER_KERNELS, max_phases=5)
    print("--- Table IV analogue: execution phases ---")
    print(phases.format_table())


if __name__ == "__main__":
    main()
