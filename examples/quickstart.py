#!/usr/bin/env python3
"""Quickstart: profile a small program with tQUAD in ~30 lines.

Compiles a MiniC program, runs it under the tQUAD profiler, and prints the
temporal memory-bandwidth table plus a Figure-6-style intensity strip chart.

Run:  python examples/quickstart.py
"""

from repro import build_program, run_tquad, TQuadOptions
from repro.analysis import bandwidth_strips

SOURCE = r"""
float a[512];
float b[512];

int stage_fill() {
    int i;
    for (i = 0; i < 512; i = i + 1) { a[i] = __sin(0.01 * (float)i); }
    return 0;
}

int stage_smooth() {
    int i;
    for (i = 1; i < 511; i = i + 1) {
        b[i] = 0.25 * a[i - 1] + 0.5 * a[i] + 0.25 * a[i + 1];
    }
    return 0;
}

float stage_energy() {
    int i;
    float e = 0.0;
    for (i = 0; i < 512; i = i + 1) { e = e + b[i] * b[i]; }
    return e;
}

int main() {
    stage_fill();
    stage_smooth();
    print_float(stage_energy());
    print_str("\n");
    return 0;
}
"""


def main() -> None:
    program = build_program(SOURCE)
    report = run_tquad(program, options=TQuadOptions(slice_interval=1000))

    print("Per-kernel temporal memory bandwidth (bytes/instruction):\n")
    print(report.format_table())

    kernels = report.top_kernels(4)
    names, matrix = report.bandwidth_matrix(kernels, write=False,
                                            include_stack=True)
    print("\nRead-bandwidth intensity over time (cf. paper Figure 6):\n")
    print(bandwidth_strips(names, matrix, interval=report.interval,
                           width=72))


if __name__ == "__main__":
    main()
