#!/usr/bin/env python3
"""Writing your own pintool against the Pin-workalike API.

tQUAD and QUAD are both ordinary clients of :mod:`repro.pin`; this example
builds a third tool from scratch — a *working-set tracker* that measures, per
kernel, how many distinct 64-byte cache lines it touches, and a memory
heatmap over the guest address space.

Run:  python examples/custom_pintool.py
"""

from collections import defaultdict

from repro import build_program
from repro.core.callstack import CallStack
from repro.pin import IARG, INS, IPOINT, PinEngine, RTN

SOURCE = r"""
int table[4096];
float samples[2048];

int scatter() {
    int i;
    int x = 7;
    for (i = 0; i < 4096; i = i + 1) {
        x = (x * 1103515245 + 12345) % 1048576;
        table[x % 4096] = i;
    }
    return 0;
}

int stream() {
    int i;
    for (i = 0; i < 2048; i = i + 1) {
        samples[i] = (float)(i % 17) * 0.125;
    }
    return 0;
}

float reduce() {
    int i;
    float acc = 0.0;
    for (i = 0; i < 2048; i = i + 1) { acc = acc + samples[i]; }
    return acc;
}

int main() {
    scatter();
    stream();
    print_float(reduce());
    print_str("\n");
    return 0;
}
"""

LINE_SHIFT = 6  # 64-byte cache lines


class WorkingSetTool:
    """Counts distinct cache lines touched per kernel + a global heatmap."""

    def __init__(self):
        self.callstack = CallStack()
        self.lines: dict[str, set[int]] = defaultdict(set)
        self.accesses: dict[str, int] = defaultdict(int)
        self.heatmap: dict[int, int] = defaultdict(int)  # 4 KiB pages

    def attach(self, engine: PinEngine) -> "WorkingSetTool":
        engine.INS_AddInstrumentFunction(self._instrument)
        engine.RTN_AddInstrumentFunction(self._instrument_rtn)
        return self

    def _instrument(self, ins: INS) -> None:
        if ins.IsMemoryRead() or ins.IsMemoryWrite():
            ins.InsertPredicatedCall(IPOINT.BEFORE, self._on_access,
                                     IARG.MEMORY_EA, IARG.MEMORY_SIZE)
        if ins.IsRet():
            ins.InsertCall(IPOINT.BEFORE, self.callstack.on_ret)

    def _instrument_rtn(self, rtn: RTN) -> None:
        rtn.InsertCall(IPOINT.BEFORE, self.callstack.enter,
                       IARG.RTN_NAME, IARG.RTN_IMAGE)

    def _on_access(self, ea: int, size: int) -> None:
        kernel = self.callstack.current_kernel or "?"
        self.lines[kernel].add(ea >> LINE_SHIFT)
        self.accesses[kernel] += 1
        self.heatmap[ea >> 12] += 1


def main() -> None:
    program = build_program(SOURCE)
    engine = PinEngine(program)
    tool = WorkingSetTool().attach(engine)
    engine.run()

    print(f"{'kernel':<12}{'accesses':>10}{'cache lines':>13}"
          f"{'locality (acc/line)':>21}")
    for kernel in sorted(tool.lines, key=lambda k: -len(tool.lines[k])):
        n_lines = len(tool.lines[kernel])
        n_acc = tool.accesses[kernel]
        print(f"{kernel:<12}{n_acc:>10}{n_lines:>13}"
              f"{n_acc / n_lines:>21.1f}")

    print("\nAddress-space heatmap (4 KiB pages, accesses):")
    for page in sorted(tool.heatmap):
        count = tool.heatmap[page]
        bar = "#" * min(60, max(1, count // 200))
        print(f"  {page << 12:#10x}  {count:>8}  {bar}")


if __name__ == "__main__":
    main()
