#!/usr/bin/env python3
"""Advanced workflows: multi-pass averaging, raw traces, archiving reports.

On the 2-D convolution workload this example shows

1. the paper's multi-pass methodology — "the average memory bandwidth usage
   is calculated over several passes with different time slices", with the
   ``<`` upper-bound markers of Table IV when passes disagree;
2. raw memory tracing with :class:`~repro.pin.MemoryTraceTool` and an
   offline cross-check of tQUAD's ledger from the trace;
3. archiving a report to JSON and re-analysing it without re-running the
   guest (phases from the archived run).

Run:  python examples/advanced_analysis.py
"""

import tempfile
from pathlib import Path

from repro.apps.kernels import build_conv2d
from repro.core import TQuadOptions, TQuadTool, cluster_kernel_phases, \
    profile_passes
from repro.pin import MemoryTraceTool, PinEngine
from repro.serialize import tquad_from_json, tquad_to_json


def main() -> None:
    # ---- 1. multi-pass averaging -----------------------------------------
    result = profile_passes(lambda: (build_conv2d(32, 24), None),
                            intervals=[500, 2000, 8000])
    print("--- multi-pass bandwidth averages (three slice intervals) ---")
    print(result.format_table(result.finest.top_kernels(5)))
    assert result.total_bytes_consistent()
    print("byte totals consistent across passes: yes\n")

    # ---- 2. raw trace + offline cross-check -------------------------------
    program = build_conv2d(32, 24)
    engine = PinEngine(program)
    tracer = MemoryTraceTool(limit=2_000_000).attach(engine)
    tquad = TQuadTool(TQuadOptions(slice_interval=2000)).attach(engine)
    engine.run()
    trace = tracer.trace()
    report = tquad.report()
    print(f"--- raw trace: {len(trace)} accesses, "
          f"{trace.bytes_moved()} bytes, kernels {trace.kernels} ---")
    offline = trace.slice_totals(2000)
    online = sum(report.series(k).dense(report.n_slices, write=False,
                                        include_stack=True)
                 + report.series(k).dense(report.n_slices, write=True,
                                          include_stack=True)
                 for k in report.ledger.kernels())
    agree = (offline == online[:len(offline)]).all()
    print(f"offline slice totals match tQUAD's online ledger: "
          f"{'yes' if agree else 'NO'}\n")

    # ---- 3. archive + reload ----------------------------------------------
    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "conv2d.tquad.json"
        path.write_text(tquad_to_json(report))
        reloaded = tquad_from_json(path.read_text())
        print(f"--- phases recomputed from the {path.name} archive ---")
        phases = cluster_kernel_phases(reloaded)
        for p in phases:
            print(f"  {p.label:<28} span {p.start_slice}-{p.end_slice} "
                  f"aggregate {p.aggregate_mbw:.3f} B/ins")


if __name__ == "__main__":
    main()
