#!/usr/bin/env python3
"""Phase identification + task clustering on a multi-stage pipeline.

Demonstrates the Delft-WorkBench use the paper motivates: identify execution
phases from temporal bandwidth data, then cluster kernels by QDU
communication so that "intra-cluster communication is maximized whereas
inter-cluster communication is minimized" (§V-B) — the input a HW/SW
partitioner needs.

Run:  python examples/phase_partitioning.py
"""

from repro import build_program
from repro.analysis import cluster_kernels
from repro.apps.kernels import pipeline_source
from repro.core import (TQuadOptions, cluster_kernel_phases, detect_phases,
                        run_tquad)
from repro.quad import run_quad


def main() -> None:
    program = build_program(pipeline_source(length=1024))

    report = run_tquad(program, options=TQuadOptions(slice_interval=2000))
    print("--- timeline phases (partition of the execution span) ---")
    timeline = detect_phases(report)
    for p in timeline:
        kernels = ", ".join(k.name for k in p.kernels)
        print(f"  slices {p.start_slice:>3}-{p.end_slice:<3} "
              f"({p.span:>3} slices): {kernels}")

    print("\n--- kernel phases (co-activity clusters, Table IV style) ---")
    clusters = cluster_kernel_phases(report)
    for p in clusters:
        print(f"  {p.label:<24} span {p.start_slice}-{p.end_slice} "
              f"aggregate MBW {p.aggregate_mbw:.3f} B/ins")

    quad = run_quad(program)
    print("\n--- QDU communication (bytes, producer -> consumer) ---")
    for (prod, cons), counts in sorted(quad.bindings.items(),
                                       key=lambda kv: -kv[1][1]):
        if prod != cons and counts[1] > 0:
            print(f"  {prod:>12} -> {cons:<12} {counts[1]:>8} bytes")

    print("\n--- task clustering for HW/SW partitioning ---")
    for n in (3, 2):
        result = cluster_kernels(quad, n_clusters=n)
        groups = " | ".join("{" + ", ".join(sorted(c.members)) + "}"
                            for c in result.clusters)
        print(f"  {n} clusters: {groups}")
        print(f"    intra-cluster traffic kept: "
              f"{100 * result.intra_fraction:.1f}%")


if __name__ == "__main__":
    main()
