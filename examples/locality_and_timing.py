#!/usr/bin/env python3
"""Beyond bandwidth: cache locality and static timing for the same run.

tQUAD reports platform-independent bytes/instruction.  Two companion
analyses complete the picture the Delft WorkBench flow needs for HW/SW
partitioning decisions:

* the data-cache simulator (`repro.tools`) shows which kernels are
  bandwidth-hungry but cache-friendly (cheap in software) vs genuinely
  memory-bound (candidates for on-chip buffers — §V-B's discussion of
  local buffer mapping);
* the static WCET analyzer (`repro.static`) bounds kernel timing the way
  the tools of §II do, demonstrating both its exactness on counted loops
  and the over-pessimism the paper criticises.

Run:  python examples/locality_and_timing.py
"""

from repro import build_program
from repro.core import TQuadOptions, TQuadTool
from repro.gprofsim import GprofTool
from repro.pin import PinEngine
from repro.static import WCETAnalyzer
from repro.tools import CacheConfig, DCacheTool

SOURCE = r"""
int table[4096];
float samples[4096];

int scatter_fill() {
    int i; int x = 7;
    for (i = 0; i < 4096; i++) {
        x = (x * 1103515245 + 12345) % 1048576;
        table[x % 4096] = i;
    }
    return 0;
}

float stream_filter() {
    int i;
    float prev = 0.0;
    for (i = 0; i < 4096; i++) {
        float v = (float)(table[i] % 97) * 0.125;
        samples[i] = 0.5 * v + 0.5 * prev;
        prev = v;
    }
    return samples[4095];
}

float reduce() {
    int i; float acc = 0.0;
    for (i = 0; i < 4096; i++) { acc += samples[i]; }
    return acc;
}

int main() {
    scatter_fill();
    stream_filter();
    return (int)reduce() & 255;
}
"""

LOOP_BOUNDS = {"scatter_fill": [4096], "stream_filter": [4096],
               "reduce": [4096]}


def main() -> None:
    program = build_program(SOURCE)
    engine = PinEngine(program)
    tquad = TQuadTool(TQuadOptions(slice_interval=10_000)).attach(engine)
    dcache = DCacheTool(CacheConfig(size_bytes=8 * 1024)).attach(engine)
    gprof = GprofTool().attach(engine)
    engine.run()

    print("--- bandwidth (tQUAD) vs locality (dcache), same run ---")
    report = tquad.report()
    flat = gprof.report()
    print(f"{'kernel':<16}{'B/instr (x)':>13}{'miss rate':>11}"
          f"{'verdict':>34}")
    for kernel in ("scatter_fill", "stream_filter", "reduce"):
        s = report.series(kernel)
        bw = (s.average_bandwidth(write=False, include_stack=False)
              + s.average_bandwidth(write=True, include_stack=False))
        mr = dcache.stats(kernel).miss_rate
        verdict = ("memory-bound: wants on-chip buffer" if mr > 0.05
                   else "streams well: fine in software")
        print(f"{kernel:<16}{bw:>13.4f}{mr:>11.4f}{verdict:>34}")

    print("\n--- static WCET vs dynamic measurement ---")
    analyzer = WCETAnalyzer(program, loop_bounds=LOOP_BOUNDS)
    print(f"{'kernel':<16}{'measured':>10}{'WCET':>10}{'ratio':>8}")
    for kernel in LOOP_BOUNDS:
        measured = flat.row(kernel).cumulative_instructions
        bound = analyzer.analyze(kernel).bound
        print(f"{kernel:<16}{measured:>10}{bound:>10.0f}"
              f"{bound / measured:>8.2f}")


if __name__ == "__main__":
    main()
