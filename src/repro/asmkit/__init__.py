"""Two-pass assembler for the repro ISA."""

from .assembler import Assembler, assemble
from .errors import AsmError
from .lexer import Line, tokenize

__all__ = ["assemble", "Assembler", "AsmError", "tokenize", "Line"]
