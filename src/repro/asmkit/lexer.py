"""Line-oriented lexer for the assembly language.

The surface syntax is classic Unix assembler::

    # comment
    .data
    buf:    .space 64
    msg:    .asciz "hello"
        .text
        .func main
    main:
        addi sp, sp, -16
        sd   ra, 0(sp)
        li   a0, 42
        ld   t0, 8(sp) ?t1       # predicated on t1 != 0
        ret
        .endfunc

Each non-empty line yields a :class:`Line` with optional label, optional
mnemonic/directive and raw operand strings (split on top-level commas, with
quoted strings kept intact).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .errors import AsmError


@dataclass
class Line:
    number: int
    label: str | None = None
    op: str | None = None          #: mnemonic or directive (with leading '.')
    operands: list[str] = field(default_factory=list)
    text: str = ""


def _strip_comment(text: str) -> str:
    """Remove ``#`` / ``;`` comments, respecting double-quoted strings."""
    out = []
    in_str = False
    i = 0
    while i < len(text):
        c = text[i]
        if in_str:
            out.append(c)
            if c == "\\" and i + 1 < len(text):
                out.append(text[i + 1])
                i += 1
            elif c == '"':
                in_str = False
        else:
            if c in "#;":
                break
            out.append(c)
            if c == '"':
                in_str = True
        i += 1
    return "".join(out)


def _split_operands(text: str) -> list[str]:
    """Split an operand list on commas outside quotes and parentheses."""
    parts: list[str] = []
    cur: list[str] = []
    depth = 0
    in_str = False
    i = 0
    while i < len(text):
        c = text[i]
        if in_str:
            cur.append(c)
            if c == "\\" and i + 1 < len(text):
                cur.append(text[i + 1])
                i += 1
            elif c == '"':
                in_str = False
        elif c == '"':
            in_str = True
            cur.append(c)
        elif c == "(":
            depth += 1
            cur.append(c)
        elif c == ")":
            depth -= 1
            cur.append(c)
        elif c == "," and depth == 0:
            parts.append("".join(cur).strip())
            cur = []
        else:
            cur.append(c)
        i += 1
    tail = "".join(cur).strip()
    if tail:
        parts.append(tail)
    return parts


_LABEL_OK = set("abcdefghijklmnopqrstuvwxyz"
                "ABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789_.$")


def tokenize(source: str) -> list[Line]:
    """Tokenize assembly source into :class:`Line` records."""
    lines: list[Line] = []
    for number, raw in enumerate(source.splitlines(), start=1):
        text = _strip_comment(raw).strip()
        if not text:
            continue
        line = Line(number=number, text=raw)
        # Leading label(s): "name:" — allow at most one per line.
        if ":" in text:
            head, _, rest = text.partition(":")
            head = head.strip()
            if head and all(ch in _LABEL_OK for ch in head) and not head[0].isdigit():
                line.label = head
                text = rest.strip()
        if text:
            parts = text.split(None, 1)
            line.op = parts[0].lower()
            line.operands = _split_operands(parts[1]) if len(parts) > 1 else []
        if line.label is None and line.op is None:
            raise AsmError("unparsable line", line=number, text=raw)
        lines.append(line)
    return lines
