"""Two-pass assembler producing :class:`~repro.vm.program.Program` objects.

Pass 1 walks the token stream assigning addresses (instruction indices in
``.text``, byte offsets in ``.data``) and collecting labels, routine extents
(``.func``/``.endfunc``) and image annotations (``.image``).  Pass 2 resolves
operands against the symbol table and emits decoded instructions plus the
initialised data image.

Pseudo-instructions expanded here: ``mv``, ``neg``, ``not``, ``la``,
``call``, ``beqz``, ``bnez``, ``subi``.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass

from ..isa import opcodes as oc
from ..isa.instruction import NO_PRED, Instr
from ..isa.opcodes import BY_NAME, Fmt
from ..isa.registers import RA, FREG_NAMES, XREG_NAMES
from ..vm.layout import DATA_BASE, index_to_pc
from ..vm.program import MAIN_IMAGE, Program, Routine
from .errors import AsmError
from .lexer import Line, tokenize

_PSEUDO = {"mv", "neg", "not", "la", "call", "beqz", "bnez", "subi"}

_DATA_DIRECTIVES = {".space", ".i64", ".f64", ".byte", ".i32", ".asciz",
                    ".align"}


@dataclass
class _Func:
    name: str
    start: int
    image: str


class Assembler:
    """One assembly unit.  Use :func:`assemble` for the common case."""

    def __init__(self, source: str):
        self.source = source
        self.lines = tokenize(source)
        self.symbols: dict[str, int] = {}
        self.routines: list[Routine] = []
        self.instrs: list[Instr] = []
        self.data = bytearray()
        self.entry_name: str | None = None

    # ------------------------------------------------------------- pass 1
    def _layout(self) -> None:
        section = ".text"
        text_index = 0
        image = MAIN_IMAGE
        open_func: _Func | None = None
        self._line_index: dict[int, int] = {}  # line number -> instr index
        for line in self.lines:
            if line.label is not None:
                value = (index_to_pc(text_index) if section == ".text"
                         else DATA_BASE + len(self.data))
                # `.func f` pre-registers `f`; a following `f:` label at the
                # same address is fine, anything else is a duplicate.
                if line.label in self.symbols and self.symbols[line.label] != value:
                    raise AsmError(f"duplicate label {line.label!r}",
                                   line=line.number, text=line.text)
                self.symbols[line.label] = value
            op = line.op
            if op is None:
                continue
            if op.startswith("."):
                if op in (".text", ".data"):
                    section = op
                elif op == ".global":
                    if not line.operands:
                        raise AsmError(".global needs a name",
                                       line=line.number, text=line.text)
                    if self.entry_name is None:
                        self.entry_name = line.operands[0]
                elif op == ".image":
                    image = line.operands[0] if line.operands else MAIN_IMAGE
                elif op == ".func":
                    if open_func is not None:
                        raise AsmError("nested .func", line=line.number,
                                       text=line.text)
                    if not line.operands:
                        raise AsmError(".func needs a name",
                                       line=line.number, text=line.text)
                    name = line.operands[0]
                    open_func = _Func(name=name, start=text_index, image=image)
                    if name not in self.symbols:
                        self.symbols[name] = index_to_pc(text_index)
                elif op == ".endfunc":
                    if open_func is None:
                        raise AsmError(".endfunc without .func",
                                       line=line.number, text=line.text)
                    self.routines.append(Routine(
                        name=open_func.name, start=open_func.start,
                        end=text_index, image=open_func.image))
                    open_func = None
                elif op in _DATA_DIRECTIVES:
                    if section != ".data":
                        raise AsmError(f"{op} outside .data",
                                       line=line.number, text=line.text)
                    self._emit_data(line, define_label=False)
                else:
                    raise AsmError(f"unknown directive {op}",
                                   line=line.number, text=line.text)
                continue
            # instruction: count expansion size (all pseudos expand to 1)
            self._line_index[line.number] = text_index
            text_index += 1
        if open_func is not None:
            raise AsmError(f"unterminated .func {open_func.name}",
                           line=self.lines[-1].number)

    def _emit_data(self, line: Line, *, define_label: bool) -> None:
        op = line.op
        ops = line.operands
        if op == ".align":
            n = self._int_literal(ops[0], line)
            while len(self.data) % n:
                self.data.append(0)
            if line.label is not None:
                # alignment moved the label; re-pin it
                self.symbols[line.label] = DATA_BASE + len(self.data)
            return
        if op == ".space":
            n = self._int_literal(ops[0], line)
            self.data.extend(b"\0" * n)
            return
        if op == ".i64":
            for item in ops:
                self.data.extend(struct.pack(
                    "<q", self._int_literal(item, line)))
            return
        if op == ".i32":
            for item in ops:
                self.data.extend(struct.pack(
                    "<i", self._int_literal(item, line)))
            return
        if op == ".byte":
            for item in ops:
                self.data.append(self._int_literal(item, line) & 0xFF)
            return
        if op == ".f64":
            for item in ops:
                self.data.extend(struct.pack("<d", float(item)))
            return
        if op == ".asciz":
            self.data.extend(self._string_literal(ops[0], line))
            self.data.append(0)
            return
        raise AsmError(f"unhandled data directive {op}", line=line.number)

    # ------------------------------------------------------------- pass 2
    def _emit_text(self) -> None:
        for line in self.lines:
            op = line.op
            if op is None or op.startswith("."):
                continue
            index = self._line_index[line.number]
            assert index == len(self.instrs), "pass1/pass2 drift"
            self.instrs.append(self._encode_line(line, index))

    def _encode_line(self, line: Line, index: int) -> Instr:
        op = line.op
        operands = list(line.operands)
        pred = NO_PRED
        if operands:
            # `?reg` may arrive as its own operand ("ld a0, x, ?t1") or glued
            # to the last one by whitespace ("ld a0, 0(sp) ?t1").
            if operands[-1].startswith("?"):
                pred = self._xreg(operands.pop()[1:], line)
            elif " ?" in operands[-1]:
                body, _, tail = operands[-1].rpartition(" ?")
                pred = self._xreg(tail, line)
                operands[-1] = body.strip()
        if op in _PSEUDO:
            op, operands = self._expand_pseudo(op, operands, line)
        info = BY_NAME.get(op)
        if info is None:
            raise AsmError(f"unknown mnemonic {op!r}", line=line.number,
                           text=line.text)
        try:
            ins = self._encode_operands(info, operands, line, pred)
        except (ValueError, IndexError) as err:
            raise AsmError(f"bad operands for {op}: {err}",
                           line=line.number, text=line.text) from None
        return ins

    def _expand_pseudo(self, op: str, ops: list[str],
                       line: Line) -> tuple[str, list[str]]:
        if op == "mv":
            return "addi", [ops[0], ops[1], "0"]
        if op == "neg":
            return "sub", [ops[0], "zero", ops[1]]
        if op == "not":
            return "xori", [ops[0], ops[1], "-1"]
        if op == "la":
            return "li", ops
        if op == "call":
            return "jal", ["ra", ops[0]]
        if op == "beqz":
            return "beq", [ops[0], "zero", ops[1]]
        if op == "bnez":
            return "bne", [ops[0], "zero", ops[1]]
        if op == "subi":
            neg = str(-self._int_or_symbol(ops[2], line))
            return "addi", [ops[0], ops[1], neg]
        raise AsmError(f"unknown pseudo {op}", line=line.number)

    def _encode_operands(self, info, ops: list[str], line: Line,
                         pred: int) -> Instr:
        fmt = info.fmt
        code = info.code
        src = line.text.strip()
        if fmt is Fmt.RRR:
            return Instr(code, self._xreg(ops[0], line),
                         self._xreg(ops[1], line), self._xreg(ops[2], line),
                         pred=pred, src=src)
        if fmt is Fmt.RRI:
            return Instr(code, self._xreg(ops[0], line),
                         self._xreg(ops[1], line),
                         imm=self._int_or_symbol(ops[2], line),
                         pred=pred, src=src)
        if fmt is Fmt.RI:
            return Instr(code, self._xreg(ops[0], line),
                         imm=self._int_or_symbol(ops[1], line),
                         pred=pred, src=src)
        if fmt is Fmt.FRI:
            return Instr(code, self._freg(ops[0], line),
                         imm=float(ops[1]), pred=pred, src=src)
        if fmt is Fmt.FFF:
            return Instr(code, self._freg(ops[0], line),
                         self._freg(ops[1], line), self._freg(ops[2], line),
                         pred=pred, src=src)
        if fmt is Fmt.FF:
            return Instr(code, self._freg(ops[0], line),
                         self._freg(ops[1], line), pred=pred, src=src)
        if fmt is Fmt.RFF:
            return Instr(code, self._xreg(ops[0], line),
                         self._freg(ops[1], line), self._freg(ops[2], line),
                         pred=pred, src=src)
        if fmt is Fmt.FR:
            return Instr(code, self._freg(ops[0], line),
                         self._xreg(ops[1], line), pred=pred, src=src)
        if fmt is Fmt.RF:
            return Instr(code, self._xreg(ops[0], line),
                         self._freg(ops[1], line), pred=pred, src=src)
        if fmt is Fmt.MEM:
            data_reg = (self._freg(ops[0], line) if info.is_float
                        else self._xreg(ops[0], line))
            offset, base = self._mem_operand(ops[1], line)
            return Instr(code, data_reg, base, imm=offset, pred=pred, src=src)
        if fmt is Fmt.BRANCH:
            return Instr(code, 0, self._xreg(ops[0], line),
                         self._xreg(ops[1], line),
                         imm=self._int_or_symbol(ops[2], line),
                         pred=pred, src=src)
        if fmt is Fmt.JUMP:
            if len(ops) == 1:  # "jal label" / "j label"
                rd = RA if info.is_call else 0
                target = ops[0]
            else:
                rd = self._xreg(ops[0], line)
                target = ops[1]
            return Instr(code, rd, imm=self._int_or_symbol(target, line),
                         pred=pred, src=src)
        if fmt is Fmt.JUMPR:
            if len(ops) == 1:  # "jalr rs1"
                return Instr(code, RA, self._xreg(ops[0], line),
                             imm=0, pred=pred, src=src)
            return Instr(code, self._xreg(ops[0], line),
                         self._xreg(ops[1], line),
                         imm=self._int_or_symbol(ops[2], line)
                         if len(ops) > 2 else 0, pred=pred, src=src)
        if fmt is Fmt.NONE:
            if ops:
                raise AsmError(f"{info.name} takes no operands",
                               line=line.number, text=line.text)
            return Instr(code, pred=pred, src=src)
        raise AsmError(f"unhandled format {fmt}", line=line.number)

    # --------------------------------------------------------- primitives
    def _xreg(self, name: str, line: Line) -> int:
        r = XREG_NAMES.get(name.strip())
        if r is None:
            raise AsmError(f"not an integer register: {name!r}",
                           line=line.number, text=line.text)
        return r

    def _freg(self, name: str, line: Line) -> int:
        r = FREG_NAMES.get(name.strip())
        if r is None:
            raise AsmError(f"not a float register: {name!r}",
                           line=line.number, text=line.text)
        return r

    def _int_literal(self, text: str, line: Line) -> int:
        try:
            return int(text.strip(), 0)
        except ValueError:
            raise AsmError(f"not an integer literal: {text!r}",
                           line=line.number, text=line.text) from None

    def _int_or_symbol(self, text: str, line: Line) -> int:
        """An immediate: integer literal, symbol, or symbol±offset."""
        text = text.strip()
        try:
            return int(text, 0)
        except ValueError:
            pass
        base, sign, off = text, 1, 0
        for s in "+-":
            # split at the last +/- that isn't leading
            pos = text.rfind(s)
            if pos > 0:
                try:
                    off = int(text[pos + 1:], 0)
                except ValueError:
                    continue
                base = text[:pos]
                sign = 1 if s == "+" else -1
                break
        if base in self.symbols:
            return self.symbols[base] + sign * off
        raise AsmError(f"undefined symbol {base!r}", line=line.number,
                       text=line.text)

    def _mem_operand(self, text: str, line: Line) -> tuple[int, int]:
        """Parse ``offset(base)`` into (offset, base register)."""
        text = text.strip()
        if not text.endswith(")") or "(" not in text:
            raise AsmError(f"bad memory operand {text!r}",
                           line=line.number, text=line.text)
        off_text, _, reg_text = text[:-1].rpartition("(")
        offset = self._int_or_symbol(off_text, line) if off_text.strip() else 0
        return offset, self._xreg(reg_text, line)

    def _string_literal(self, text: str, line: Line) -> bytes:
        text = text.strip()
        if len(text) < 2 or text[0] != '"' or text[-1] != '"':
            raise AsmError(f"bad string literal {text!r}",
                           line=line.number, text=line.text)
        body = text[1:-1]
        out = bytearray()
        i = 0
        escapes = {"n": 10, "t": 9, "0": 0, "\\": 92, '"': 34, "r": 13}
        while i < len(body):
            c = body[i]
            if c == "\\" and i + 1 < len(body):
                nxt = body[i + 1]
                if nxt not in escapes:
                    raise AsmError(f"unknown escape \\{nxt}",
                                   line=line.number, text=line.text)
                out.append(escapes[nxt])
                i += 2
            else:
                out.extend(c.encode("latin-1"))
                i += 1
        return bytes(out)

    # --------------------------------------------------------------- build
    def build(self) -> Program:
        self._layout()
        self._emit_text()
        entry = 0
        for candidate in filter(None, (self.entry_name, "_start", "main")):
            if candidate in self.symbols:
                entry = (self.symbols[candidate] - index_to_pc(0)) // 16
                break
        return Program(instrs=self.instrs, data=bytes(self.data),
                       symbols=dict(self.symbols), routines=self.routines,
                       entry=entry, source=self.source)


def assemble(source: str) -> Program:
    """Assemble ``source`` text into a loadable :class:`Program`."""
    return Assembler(source).build()
