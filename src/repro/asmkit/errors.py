"""Assembler diagnostics."""

from __future__ import annotations


class AsmError(Exception):
    """A source-level assembly error with file/line context."""

    def __init__(self, message: str, *, line: int | None = None,
                 text: str | None = None):
        self.line = line
        self.text = text
        loc = f"line {line}: " if line is not None else ""
        suffix = f"\n    {text.strip()}" if text else ""
        super().__init__(f"{loc}{message}{suffix}")
