"""The hArtes-wfs application (MiniC reconstruction) and its workloads."""

from .config import DEMO, PAPER, PRESETS, SMALL, TINY, WfsConfig
from .runner import WfsRun, run_wfs
from .source import (build_wfs_program, config_file_bytes, input_signal,
                     make_workspace, wfs_source)

__all__ = [
    "WfsConfig", "TINY", "SMALL", "DEMO", "PAPER", "PRESETS",
    "wfs_source", "build_wfs_program", "make_workspace", "input_signal",
    "config_file_bytes", "run_wfs", "WfsRun",
]
