"""The hArtes-wfs application, reconstructed in MiniC.

A self-contained Wave Field Synthesis system in the structure the paper
describes (§V): a primary source signal is loaded from a WAV file, pre-
filtered, FFT-filtered per chunk, distributed over an array of secondary
sources (speakers) through per-speaker delay lines and gains, interleaved
into a multi-channel output buffer, and finally stored as a WAV file in a
single, long-running ``wav_store`` call.

Kernel names, call multiplicities and buffer placement (stack vs global)
follow Table I/II of the paper:

========================  =====================================  ============
kernel                    role                                   calls
========================  =====================================  ============
ldint                     read integer config                    1
wav_load                  WAV → float samples                    1
ffw                       windowed-sinc filter design            2
fft1d                     radix-2 in-place Danielson-Lanczos     2/chunk + 2
perm / bitrev             bit-reversal permutation               1 per fft / N per perm
cadd / cmult              complex helpers (spectral MAC)         N per chunk
zeroRealVec               clear speaker chunk buffer             NSPK per chunk
zeroCplxVec               clear FFT work buffer                  1 per chunk + init
r2c / c2r                 real ⇄ complex conversion              1 per chunk
Filter_process_pre_       time-domain FIR pre-filter             1 per chunk
Filter_process            FFT-domain main filter                 1 per chunk
PrimarySource_deriveTP    source trajectory point                1 per position
calculateGainPQ           per-speaker gain/delay                 NSPK per position
vsmult2d                  scale gain/aux pairs                   NSPK per position
DelayLine_processChunk    per-speaker delay + mix                1 per chunk
AudioIo_getFrames         fetch input chunk                      1 per chunk
AudioIo_setFrames         interleave into output (distinct       1 per chunk
                          addresses every call — the paper's
                          bottleneck observation)
wav_store                 normalise + quantise + write WAV       1 (second half
                                                                 of the run)
========================  =====================================  ============
"""

from __future__ import annotations

import struct

import numpy as np

from ...minic import build_program
from ...vm import GuestFS
from ...vm.program import Program
from ...wavio import sine_sweep, write_wav
from .config import WfsConfig

_TEMPLATE = r"""
// ------------------------------------------------------------------ globals
float input[@FRAMES@];
float out_f[@OUTLEN@];

float X[@N2@];
float H[@N2@];
float REG[@N2@];
float h_main[@N@];
float h_reg[@N@];

float chunk_in[@N@];
float chunk_pre[@N@];
float chunk_flt[@N@];
float spk[@SPKLEN@];
float dl[@DLLEN@];

float pre_coeff[@NTAPS@];
float pre_state[@NTAPS@];

float gq[@GQLEN@];           // per speaker: [gain, aux]
int   delays[@NSPK@];
float src_x;
float src_y;

int cfg_rate;
int cfg_nsrc;
int cfg_nspk;
int cfg_flags;

char in_name[12]  = "input.wav";
char out_name[12] = "wfs_out.wav";
char cfg_name[8]  = "wfs.cfg";

// -------------------------------------------------------------- small utils
float clampf(float v, float lo, float hi) {
    if (v < lo) { return lo; }
    if (v > hi) { return hi; }
    return v;
}

float hamming(int i, int n) {
    if (n < 2) { return 1.0; }
    return 0.54 - 0.46 * __cos(6.283185307179586 * (float)i / (float)(n - 1));
}

int read_i64(int fd) {
    // read a little-endian 64-bit integer from a file
    char b[8];
    int k;
    int v = 0;
    read(fd, b, 8);
    for (k = 7; k >= 0; k = k - 1) {
        v = (v << 8) | (int)b[k];
    }
    return v;
}

void put_u32(char* p, int v) {
    p[0] = (char)(v & 255);
    p[1] = (char)((v >> 8) & 255);
    p[2] = (char)((v >> 16) & 255);
    p[3] = (char)((v >> 24) & 255);
}

void put_u16(char* p, int v) {
    p[0] = (char)(v & 255);
    p[1] = (char)((v >> 8) & 255);
}

int get_u32(char* p) {
    return (int)p[0] | ((int)p[1] << 8) | ((int)p[2] << 16)
         | ((int)p[3] << 24);
}

// ------------------------------------------------------------ configuration
int ldint(char* path) {
    int fd = open(path, 0);
    if (fd < 0) { return -1; }
    cfg_rate  = read_i64(fd);
    cfg_nsrc  = read_i64(fd);
    cfg_nspk  = read_i64(fd);
    cfg_flags = read_i64(fd);
    close(fd);
    return 4;
}

// ------------------------------------------------------------- filter design
void ffw(float* c, int n, float fc) {
    // windowed-sinc low-pass prototype
    int i;
    float mid = (float)(n - 1) / 2.0;
    for (i = 0; i < n; i = i + 1) {
        float x = (float)i - mid;
        float v;
        if (__fabs(x) < 0.000000001) {
            v = 2.0 * fc;
        } else {
            v = __sin(6.283185307179586 * fc * x)
                / (3.141592653589793 * x);
        }
        c[i] = v * hamming(i, n);
    }
}

// --------------------------------------------------------------- FFT kernels
int bitrev(int i, int bits) {
    int r = 0;
    int b;
    for (b = 0; b < bits; b = b + 1) {
        r = (r << 1) | (i & 1);
        i = i >> 1;
    }
    return r;
}

void perm(float* data, int n) {
    int bits = 0;
    int i;
    while ((1 << bits) < n) { bits = bits + 1; }
    for (i = 0; i < n; i = i + 1) {
        int j = bitrev(i, bits);
        if (j > i) {
            float tr = data[2 * i];
            float ti = data[2 * i + 1];
            data[2 * i] = data[2 * j];
            data[2 * i + 1] = data[2 * j + 1];
            data[2 * j] = tr;
            data[2 * j + 1] = ti;
        }
    }
}

void fft1d(float* data, int n, int isign) {
    // in-place radix-2 Danielson-Lanczos on interleaved complex data
    int len;
    perm(data, n);
    for (len = 2; len <= n; len = len * 2) {
        float ang = 6.283185307179586 / (float)len;
        if (isign < 0) { ang = 0.0 - ang; }
        float wre = __cos(ang);
        float wim = __sin(ang);
        int i;
        for (i = 0; i < n; i = i + len) {
            float cre = 1.0;
            float cim = 0.0;
            int j;
            int half = len / 2;
            for (j = 0; j < half; j = j + 1) {
                int a = 2 * (i + j);
                int b = 2 * (i + j + half);
                float ure = data[a];
                float uim = data[a + 1];
                float vre = data[b] * cre - data[b + 1] * cim;
                float vim = data[b] * cim + data[b + 1] * cre;
                data[a] = ure + vre;
                data[a + 1] = uim + vim;
                data[b] = ure - vre;
                data[b + 1] = uim - vim;
                float ncre = cre * wre - cim * wim;
                cim = cre * wim + cim * wre;
                cre = ncre;
            }
        }
    }
    if (isign < 0) {
        float inv = 1.0 / (float)n;
        int k;
        for (k = 0; k < 2 * n; k = k + 1) {
            data[k] = data[k] * inv;
        }
    }
}

void cadd(float* a, float* b, float* r) {
    float re = a[0] + b[0];
    float im = a[1] + b[1];
    r[0] = re;
    r[1] = im;
}

void cmult(float* a, float* b, float* r) {
    float re = a[0] * b[0] - a[1] * b[1];
    float im = a[0] * b[1] + a[1] * b[0];
    r[0] = re;
    r[1] = im;
}

// ------------------------------------------------------------ vector helpers
void zeroRealVec(float* v, int n) {
    int i;
    for (i = 0; i < n; i = i + 1) { v[i] = 0.0; }
}

void zeroCplxVec(float* v, int n) {
    int i;
    for (i = 0; i < 2 * n; i = i + 1) { v[i] = 0.0; }
}

void r2c(float* re, float* cx, int n) {
    int i;
    for (i = 0; i < n; i = i + 1) {
        cx[2 * i] = re[i];
    }
}

void c2r(float* cx, float* re, int n) {
    int i;
    for (i = 0; i < n; i = i + 1) {
        re[i] = cx[2 * i];
    }
}

void vsmult2d(float* m, int rows, int cols, float s) {
    int i;
    int total = rows * cols;
    for (i = 0; i < total; i = i + 1) {
        m[i] = m[i] * s;
    }
}

// ----------------------------------------------------------------- filtering
void Filter_process_pre_(float* src, float* dst, int n) {
    int i;
    for (i = 0; i < n; i = i + 1) {
        int t;
        for (t = @NTAPS@ - 1; t > 0; t = t - 1) {
            pre_state[t] = pre_state[t - 1];
        }
        pre_state[0] = src[i];
        float acc = 0.0;
        for (t = 0; t < @NTAPS@; t = t + 1) {
            acc = acc + pre_coeff[t] * pre_state[t];
        }
        dst[i] = acc;
    }
}

void Filter_process(float* src, float* dst, int n) {
    int k;
    zeroCplxVec(X, n);
    r2c(src, X, n);
    fft1d(X, n, 1);
    for (k = 0; k < n; k = k + 1) {
        cmult(X + 2 * k, H + 2 * k, X + 2 * k);
        cadd(X + 2 * k, REG + 2 * k, X + 2 * k);
    }
    fft1d(X, n, -1);
    c2r(X, dst, n);
}

// ------------------------------------------------------------ wave propagation
void PrimarySource_deriveTP(int p) {
    float t = (float)p / (float)@NPOS@;
    src_x = @SPKW@ * (t - 0.5);
    src_y = @DEPTH@ * (1.0 + 0.2 * __sin(6.283185307179586 * t));
}

float calculateGainPQ(int s) {
    float spx = ((float)s / (float)@NSPKM1@) * @SPKW@ - @SPKWHALF@;
    float dx = spx - src_x;
    float dy = 0.0 - src_y;
    float dist = __sqrt(dx * dx + dy * dy) + 0.1;
    delays[s] = ((int)(dist * @DELAYSCALE@)) % @MAXDELAY@;
    return 1.0 / __sqrt(dist);
}

// --------------------------------------------------------------- delay lines
void DelayLine_processChunk(float* src, int wpos) {
    int i;
    int s;
    for (i = 0; i < @N@; i = i + 1) {
        dl[(wpos + i) & @DLMASK@] = src[i];
    }
    for (s = 0; s < @NSPK@; s = s + 1) {
        float g = gq[2 * s];
        int d = delays[s];
        float* row = spk + s * @N@;
        for (i = 0; i < @N@; i = i + 1) {
            // two-tap fractional-delay interpolation
            int p = wpos + i - d;
            row[i] = row[i] + g * 0.5 * (dl[p & @DLMASK@]
                                         + dl[(p - 1) & @DLMASK@]);
        }
    }
}

// ------------------------------------------------------------------ audio I/O
void AudioIo_getFrames(float* dst, int pos, int n) {
    int i;
    for (i = 0; i < n; i = i + 1) {
        dst[i] = input[pos + i];
    }
}

void AudioIo_setFrames(int pos, int n) {
    // interleave speaker chunks into the global output: every call writes
    // to fresh, distinct addresses (the paper's AudioIo_setFrames pattern)
    int i;
    int s;
    for (s = 0; s < @NSPK@; s = s + 1) {
        float* dst = out_f + pos * @NSPK@ + s;
        float* src = spk + s * @N@;
        for (i = 0; i < n; i = i + 1) {
            *dst = src[i];
            dst = dst + @NSPK@;
        }
    }
}

// -------------------------------------------------------------------- wav I/O
int wav_read_header(int fd) {
    char hdr[44];
    if (read(fd, hdr, 44) != 44) { return -1; }
    if (hdr[0] != 'R') { return -1; }
    if (hdr[1] != 'I') { return -1; }
    if (hdr[8] != 'W') { return -1; }
    return get_u32(hdr + 40);       // data chunk size in bytes
}

void wav_write_header(int fd, int nch, int rate, int nbytes) {
    char h[44];
    h[0] = 'R'; h[1] = 'I'; h[2] = 'F'; h[3] = 'F';
    put_u32(h + 4, 36 + nbytes);
    h[8] = 'W'; h[9] = 'A'; h[10] = 'V'; h[11] = 'E';
    h[12] = 'f'; h[13] = 'm'; h[14] = 't'; h[15] = ' ';
    put_u32(h + 16, 16);
    put_u16(h + 20, 1);
    put_u16(h + 22, nch);
    put_u32(h + 24, rate);
    put_u32(h + 28, rate * nch * 2);
    put_u16(h + 32, nch * 2);
    put_u16(h + 34, 16);
    h[36] = 'd'; h[37] = 'a'; h[38] = 't'; h[39] = 'a';
    put_u32(h + 40, nbytes);
    write(fd, h, 44);
}

int wav_load(char* path, float* dst, int maxn) {
    char rbuf[@RBUF@];
    int fd = open(path, 0);
    if (fd < 0) { return -1; }
    int nbytes = wav_read_header(fd);
    if (nbytes < 0) { close(fd); return -1; }
    int total = nbytes / 2;
    if (total > maxn) { total = maxn; }
    int done = 0;
    while (done < total) {
        int want = (total - done) * 2;
        if (want > @RBUF@) { want = @RBUF@; }
        int got = read(fd, rbuf, want);
        if (got < 2) { break; }
        int k;
        for (k = 0; k + 1 < got; k = k + 2) {
            int v = (int)rbuf[k] | ((int)rbuf[k + 1] << 8);
            if (v > 32767) { v = v - 65536; }
            dst[done] = (float)v / 32768.0;
            done = done + 1;
        }
    }
    close(fd);
    return done;
}

int wav_store(char* path) {
    char stage[@STAGE@];
    int fd = open(path, 1);
    if (fd < 0) { return -1; }
    // pass 1: normalisation scan over every produced sample
    float peak = 0.0;
    int k;
    for (k = 0; k < @OUTLEN@; k = k + 1) {
        float v = __fabs(out_f[k]);
        if (v > peak) { peak = v; }
    }
    float scale = 1.0;
    if (peak > 1.0) { scale = 1.0 / peak; }
    // pass 2: quantise into a local staging buffer, flush by syscall
    wav_write_header(fd, @NSPK@, @SR@, @OUTLEN@ * 2);
    int fill = 0;
    for (k = 0; k < @OUTLEN@; k = k + 1) {
        float v = out_f[k] * scale;
        if (v < -1.0) { v = -1.0; }
        if (v > 1.0) { v = 1.0; }
        int iv = (int)(v * 32767.0);
        stage[fill] = (char)(iv & 255);
        stage[fill + 1] = (char)((iv >> 8) & 255);
        fill = fill + 2;
        if (fill >= @STAGE@) {
            write(fd, stage, fill);
            fill = 0;
        }
    }
    if (fill > 0) { write(fd, stage, fill); }
    close(fd);
    return @OUTLEN@;
}

// ----------------------------------------------------------------------- main
int main() {
    int c;
    int posidx = 0;
    int s;

    // ---- initialisation phase
    ldint(cfg_name);
    ffw(h_main, @N@, @FC@);
    ffw(h_reg, @N@, @FC2@);
    zeroCplxVec(H, @N@);
    r2c(h_main, H, @N@);
    fft1d(H, @N@, 1);
    zeroCplxVec(REG, @N@);
    r2c(h_reg, REG, @N@);
    fft1d(REG, @N@, 1);
    vsmult2d(REG, 1, @N2@, 0.001);
    for (s = 0; s < @NTAPS@; s = s + 1) {
        pre_coeff[s] = 1.0 / (float)(@NTAPS@ + s);
        pre_state[s] = 0.0;
    }

    // ---- wave load phase
    wav_load(in_name, input, @FRAMES@);

    // initial source position and gains
    PrimarySource_deriveTP(0);
    for (s = 0; s < @NSPK@; s = s + 1) {
        gq[2 * s] = calculateGainPQ(s);
        gq[2 * s + 1] = 1.0;
        vsmult2d(gq + 2 * s, 1, 2, 0.7071);
    }

    // ---- WFS main processing (with interleaved wave propagation updates)
    for (c = 0; c < @NCHUNKS@; c = c + 1) {
        int pos = c * @N@;
        if ((c % @GUPDATE@ == 0) && (c < @MOVCHUNKS@) && (c > 0)) {
            PrimarySource_deriveTP(posidx);
            for (s = 0; s < @NSPK@; s = s + 1) {
                gq[2 * s] = calculateGainPQ(s);
                vsmult2d(gq + 2 * s, 1, 2, 0.7071);
            }
            posidx = posidx + 1;
        }
        AudioIo_getFrames(chunk_in, pos, @N@);
        Filter_process_pre_(chunk_in, chunk_pre, @N@);
        Filter_process(chunk_pre, chunk_flt, @N@);
        for (s = 0; s < @NSPK@; s = s + 1) {
            zeroRealVec(spk + s * @N@, @N@);
        }
        DelayLine_processChunk(chunk_flt, pos & @DLMASK@);
        AudioIo_setFrames(pos, @N@);
    }

    // ---- wave save phase
    wav_store(out_name);
    return 0;
}
"""


def wfs_source(cfg: WfsConfig) -> str:
    """Instantiate the MiniC source for a configuration."""
    n = cfg.chunk
    nspk = cfg.n_speakers
    subs = {
        "@N2@": str(2 * n),
        "@N@": str(n),
        "@NSPKM1@": str(max(nspk - 1, 1)),
        "@NSPK@": str(nspk),
        "@NCHUNKS@": str(cfg.n_chunks),
        "@FRAMES@": str(cfg.frames),
        "@OUTLEN@": str(cfg.frames * nspk),
        "@SPKLEN@": str(nspk * n),
        "@GQLEN@": str(2 * nspk),
        "@DLLEN@": str(cfg.delay_line_len),
        "@DLMASK@": str(cfg.delay_line_len - 1),
        "@MAXDELAY@": str(cfg.max_delay),
        "@NTAPS@": str(cfg.n_taps),
        "@NPOS@": str(cfg.n_positions),
        "@GUPDATE@": str(cfg.gain_update_every),
        "@MOVCHUNKS@": str(int(cfg.n_chunks * cfg.moving_fraction)),
        "@FC@": repr(cfg.filter_cutoff),
        "@FC2@": repr(cfg.filter_cutoff * 0.5),
        "@SR@": str(cfg.sample_rate),
        "@SPKWHALF@": repr(cfg.array_width_m / 2.0),
        "@SPKW@": repr(cfg.array_width_m),
        "@DEPTH@": repr(cfg.source_depth_m),
        "@DELAYSCALE@": repr(_delay_scale(cfg)),
        "@STAGE@": "256",
        "@RBUF@": "512",
    }
    text = _TEMPLATE
    for token, value in subs.items():
        text = text.replace(token, value)
    if "@" in text:
        at = text.index("@")
        raise ValueError(f"unsubstituted template token near: "
                         f"{text[at:at + 30]!r}")
    return text


def _delay_scale(cfg: WfsConfig) -> float:
    """Samples of delay per metre, scaled so the farthest speaker still fits
    in the delay line."""
    import math

    max_dist = math.hypot(cfg.array_width_m, cfg.source_depth_m * 1.2) + 0.1
    return (cfg.max_delay - 1) / max_dist


def build_wfs_program(cfg: WfsConfig) -> Program:
    """Compile the WFS app (plus runtime) for a configuration."""
    return build_program(wfs_source(cfg))


def input_signal(cfg: WfsConfig) -> np.ndarray:
    """The deterministic input stimulus (float64 in [-1, 1])."""
    return sine_sweep(cfg.frames, f0=100.0, f1=cfg.sample_rate * 0.35,
                      sample_rate=cfg.sample_rate, amplitude=0.5)


def config_file_bytes(cfg: WfsConfig) -> bytes:
    """The binary config file ``ldint`` reads (four little-endian i64s)."""
    return struct.pack("<4q", cfg.sample_rate, 1, cfg.n_speakers, 0)


def make_workspace(cfg: WfsConfig) -> GuestFS:
    """A guest filesystem seeded with the input WAV and the config file."""
    fs = GuestFS()
    samples = np.clip(np.rint(input_signal(cfg) * 32768.0), -32768,
                      32767).astype(np.int16)
    fs.put(cfg.input_wav_name, write_wav(cfg.sample_rate, samples))
    fs.put(cfg.config_file_name, config_file_bytes(cfg))
    return fs
