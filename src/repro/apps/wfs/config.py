"""Configuration of the hArtes-wfs reconstruction.

The paper's run executes >6·10⁹ instructions (Fraunhofer's full WFS system,
32 speakers, multi-second audio).  A Python-interpreted VM sustains ~10⁶
guest instructions/s, so the workload is parameterised and scaled down; the
*structure* (which kernels exist, who calls whom how often, which buffers
live on the stack) is preserved, which is what the paper's analyses measure.
See DESIGN.md §2 for the substitution argument.
"""

from __future__ import annotations

from dataclasses import dataclass, replace


@dataclass(frozen=True)
class WfsConfig:
    """All knobs of the WFS workload."""

    name: str = "small"
    chunk: int = 64            #: samples per chunk == FFT size (power of 2)
    n_chunks: int = 40         #: processing iterations (paper: 493)
    n_speakers: int = 12       #: secondary sources (paper: 32)
    n_taps: int = 4            #: pre-filter FIR length
    sample_rate: int = 48000
    gain_update_every: int = 2  #: chunks between source-position updates
    moving_fraction: float = 0.5  #: fraction of chunks with a moving source
    filter_cutoff: float = 0.25   #: normalised cutoff of the main filter
    array_width_m: float = 4.0    #: speaker array span
    source_depth_m: float = 2.0   #: primary source distance from the array
    sound_speed_m_s: float = 343.0

    def __post_init__(self) -> None:
        if self.chunk & (self.chunk - 1) or self.chunk < 4:
            raise ValueError("chunk must be a power of two >= 4")
        if self.n_chunks < 2 or self.n_speakers < 1 or self.n_taps < 1:
            raise ValueError("degenerate configuration")
        if not 0.0 <= self.moving_fraction <= 1.0:
            raise ValueError("moving_fraction must be within [0, 1]")

    # ------------------------------------------------------------- derived
    @property
    def frames(self) -> int:
        """Total input/output frames."""
        return self.chunk * self.n_chunks

    @property
    def log2_chunk(self) -> int:
        return self.chunk.bit_length() - 1

    @property
    def delay_line_len(self) -> int:
        """Ring-buffer length (power of two, ≥ 4 chunks)."""
        return 4 * self.chunk

    @property
    def max_delay(self) -> int:
        """Largest representable delay in samples."""
        return self.delay_line_len - self.chunk - 1

    @property
    def n_positions(self) -> int:
        """Number of distinct primary-source positions."""
        moving_chunks = int(self.n_chunks * self.moving_fraction)
        return max(1, moving_chunks // self.gain_update_every)

    @property
    def input_wav_name(self) -> str:
        return "input.wav"

    @property
    def output_wav_name(self) -> str:
        return "wfs_out.wav"

    @property
    def config_file_name(self) -> str:
        return "wfs.cfg"

    def scaled(self, **changes) -> "WfsConfig":
        return replace(self, **changes)


#: Presets.  ``tiny`` is the test workload, ``small`` drives the benchmark
#: harness, ``demo`` is for interactive exploration, and ``paper`` documents
#: (but is not meant to be executed on the Python VM) the published scale.
TINY = WfsConfig(name="tiny", chunk=16, n_chunks=8, n_speakers=4, n_taps=2)
SMALL = WfsConfig(name="small")
DEMO = WfsConfig(name="demo", chunk=64, n_chunks=96, n_speakers=16,
                 n_taps=6)
PAPER = WfsConfig(name="paper", chunk=2048, n_chunks=492, n_speakers=32,
                  n_taps=32)

PRESETS: dict[str, WfsConfig] = {c.name: c for c in (TINY, SMALL, DEMO,
                                                     PAPER)}
