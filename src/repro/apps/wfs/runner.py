"""One-call execution of the WFS app, uninstrumented or under a profiler."""

from __future__ import annotations

from dataclasses import dataclass

from ...vm import GuestFS, Machine
from ...vm.program import Program
from .config import WfsConfig
from .source import build_wfs_program, make_workspace

#: Safety budget: generous multiple of the largest expected run.
DEFAULT_BUDGET = 500_000_000


@dataclass
class WfsRun:
    """Result of an uninstrumented WFS execution."""

    cfg: WfsConfig
    machine: Machine
    program: Program
    exit_code: int

    @property
    def instructions(self) -> int:
        return self.machine.icount

    @property
    def output_wav(self) -> bytes:
        return self.machine.fs.get(self.cfg.output_wav_name)


def run_wfs(cfg: WfsConfig, *, program: Program | None = None,
            fs: GuestFS | None = None,
            max_instructions: int = DEFAULT_BUDGET) -> WfsRun:
    """Compile (or reuse) the WFS program and run it to completion."""
    if program is None:
        program = build_wfs_program(cfg)
    if fs is None:
        fs = make_workspace(cfg)
    machine = Machine(program, fs=fs)
    code = machine.run(max_instructions=max_instructions)
    return WfsRun(cfg=cfg, machine=machine, program=program, exit_code=code)
