"""The guest-application registry: one uniform handle per workload.

Every realistic guest the repo ships — the WFS case study, the DCT
codec, and the corpus guests (hash join, BFS, stencil) — is registered
here as a :class:`GuestApp`: named presets, a program builder, and a
workspace factory.  The ``tquad guest`` subcommand and the capture-corpus
fleet (:mod:`repro.corpus`) both drive guests exclusively through this
table, so adding a workload is one entry, not one CLI.

Labels: a capture of a guest records ``"<app>-<preset>"`` in its
manifest (:func:`guest_label`).  Presets with equal sizes but different
data seeds compile to the *same* binary, so the program digest alone
cannot tell their captures apart — the label is the preset-identity the
replay paths validate (``repro.capture.format.check_label``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Mapping

from ..vm import GuestFS
from ..vm.program import Program
from . import bfs, codec, hashjoin, stencil
from .wfs import PRESETS as WFS_PRESETS
from .wfs import build_wfs_program, make_workspace as make_wfs_workspace


@dataclass(frozen=True)
class GuestApp:
    """One registered guest workload."""

    name: str
    description: str
    presets: Mapping[str, Any]
    build_program: Callable[[Any], Program]
    make_workspace: Callable[[Any], GuestFS]
    #: Default tQUAD slice interval for this guest's scale.
    default_interval: int = 1000
    #: Preset names that exist for documentation but cannot execute on
    #: the Python VM (the WFS ``paper`` preset).
    unrunnable: tuple[str, ...] = field(default=())

    def config(self, preset: str):
        try:
            return self.presets[preset]
        except KeyError:
            raise KeyError(
                f"unknown preset {preset!r} for guest {self.name!r} "
                f"(have: {', '.join(sorted(self.presets))})") from None


def guest_label(app: str, cfg) -> str:
    """The manifest label identifying a guest capture's preset."""
    return f"{app}-{cfg.name}"


GUEST_APPS: dict[str, GuestApp] = {
    "hashjoin": GuestApp(
        name="hashjoin",
        description="chained hash join — pointer-chasing, irregular",
        presets=hashjoin.JOIN_PRESETS,
        build_program=hashjoin.build_join_program,
        make_workspace=hashjoin.make_join_workspace,
        default_interval=1000),
    "bfs": GuestApp(
        name="bfs",
        description="level-synchronous graph BFS — frontier bursts",
        presets=bfs.BFS_PRESETS,
        build_program=bfs.build_bfs_program,
        make_workspace=bfs.make_bfs_workspace,
        default_interval=500),
    "stencil": GuestApp(
        name="stencil",
        description="blur/edge stencil chain — streaming regular",
        presets=stencil.STENCIL_PRESETS,
        build_program=stencil.build_stencil_program,
        make_workspace=stencil.make_stencil_workspace,
        default_interval=2000),
    "codec": GuestApp(
        name="codec",
        description="DCT image codec — block-strided multimedia",
        presets=codec.CODEC_PRESETS,
        build_program=codec.build_codec_program,
        make_workspace=codec.make_codec_workspace,
        default_interval=2000),
    "wfs": GuestApp(
        name="wfs",
        description="hArtes wave-field-synthesis case study (the paper's)",
        presets=WFS_PRESETS,
        build_program=build_wfs_program,
        make_workspace=make_wfs_workspace,
        default_interval=5000,
        unrunnable=("paper",)),
}
