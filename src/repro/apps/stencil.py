"""An image-pipeline stencil guest: streaming, regular traffic.

The corpus' third structurally new workload.  A grayscale frame read
from the guest FS flows through an alternating chain of 3x3-ish integer
stencils — a centre-weighted box blur and a gradient-magnitude edge
pass — ping-ponged between two full-frame buffers by pointer swap.  The
access pattern is the streaming-regular extreme of the corpus: long
unit-stride row scans with a fixed reuse distance of one row, no data
dependence in the addresses.

All arithmetic is integral (shifts, clamps), so the pure-Python oracle
(:func:`reference_stencil`) reproduces ``frame.out`` byte-for-byte.  The
frame *sizes and pass count* are compile-time; the frame *content* comes
from the workspace, seeded — as with the join, equal-size presets with
different seeds share one binary.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..minic import build_program
from ..testing.workloads import Lcg as _Lcg
from ..vm import GuestFS
from ..vm.program import Program

_TEMPLATE = r"""
char img[@PIX@];
char tmp[@PIX@];

char in_name[10]  = "frame.raw";
char out_name[10] = "frame.out";

// ----------------------------------------------------------------- frame I/O
int load_frame() {
    int fd = open(in_name, 0);
    if (fd < 0) { return -1; }
    int done = 0;
    while (done < @PIX@) {
        int got = read(fd, img + done, @PIX@ - done);
        if (got <= 0) { close(fd); return -1; }
        done += got;
    }
    close(fd);
    return 0;
}

int store_frame(char* src) {
    int fd = open(out_name, 1);
    if (fd < 0) { return -1; }
    int done = 0;
    while (done < @PIX@) {
        int n = @PIX@ - done;
        if (n > @CHUNK@) { n = @CHUNK@; }
        write(fd, src + done, n);
        done += n;
    }
    close(fd);
    return 0;
}

// -------------------------------------------------------------- the stencils
void blur_pass(char* src, char* dst) {
    // centre-weighted cross blur, clamped-replicate borders
    int y;
    for (y = 0; y < @H@; y++) {
        int x;
        for (x = 0; x < @W@; x++) {
            int c = (int)src[y * @W@ + x];
            int n = c;
            int s = c;
            int w = c;
            int e = c;
            if (y > 0)        { n = (int)src[(y - 1) * @W@ + x]; }
            if (y < @H@ - 1)  { s = (int)src[(y + 1) * @W@ + x]; }
            if (x > 0)        { w = (int)src[y * @W@ + x - 1]; }
            if (x < @W@ - 1)  { e = (int)src[y * @W@ + x + 1]; }
            dst[y * @W@ + x] = (char)((c * 4 + n + s + w + e + 4) >> 3);
        }
    }
}

void edge_pass(char* src, char* dst) {
    // forward-difference gradient magnitude, saturated to 255
    int y;
    for (y = 0; y < @H@; y++) {
        int x;
        for (x = 0; x < @W@; x++) {
            int c = (int)src[y * @W@ + x];
            int r = c;
            int d = c;
            if (x < @W@ - 1) { r = (int)src[y * @W@ + x + 1]; }
            if (y < @H@ - 1) { d = (int)src[(y + 1) * @W@ + x]; }
            int gx = c - r;
            if (gx < 0) { gx = -gx; }
            int gy = c - d;
            if (gy < 0) { gy = -gy; }
            int v = gx + gy;
            if (v > 255) { v = 255; }
            dst[y * @W@ + x] = (char)v;
        }
    }
}

int checksum(char* src) {
    int acc = 0;
    int i;
    for (i = 0; i < @PIX@; i++) {
        acc = (acc * 31 + (int)src[i]) & 1073741823;
    }
    return acc;
}

int main() {
    if (load_frame() < 0) { return 1; }
    char* a = img;
    char* b = tmp;
    int p;
    for (p = 0; p < @PASSES@; p++) {
        if (p % 2 == 0) { blur_pass(a, b); }
        else            { edge_pass(a, b); }
        char* t = a;
        a = b;
        b = t;
    }
    if (store_frame(a) < 0) { return 2; }
    print_int(checksum(a));
    return 0;
}
"""


@dataclass(frozen=True)
class StencilConfig:
    """Knobs of the stencil pipeline.  ``width``/``height``/``passes``
    are compile-time; ``seed`` only shapes the input frame."""

    name: str = "small"
    width: int = 64
    height: int = 48
    passes: int = 4
    seed: int = 0x57E9C

    def __post_init__(self) -> None:
        if self.width < 2 or self.height < 2:
            raise ValueError("frame too small")
        if self.passes < 1:
            raise ValueError("need at least one pass")

    @property
    def pixels(self) -> int:
        return self.width * self.height


TINY_STENCIL = StencilConfig(name="tiny", width=32, height=24, passes=3,
                             seed=0x57E9C)
TINY_ALT_STENCIL = StencilConfig(name="tiny-alt", width=32, height=24,
                                 passes=3, seed=0x1C0DE)
SMALL_STENCIL = StencilConfig(name="small")
STRESS_STENCIL = StencilConfig(name="stress", width=96, height=64, passes=6,
                               seed=0xF00D)

STENCIL_PRESETS: dict[str, StencilConfig] = {
    c.name: c for c in (TINY_STENCIL, TINY_ALT_STENCIL, SMALL_STENCIL,
                        STRESS_STENCIL)
}


def stencil_source(cfg: StencilConfig = SMALL_STENCIL) -> str:
    subs = {"@PIX@": str(cfg.pixels), "@W@": str(cfg.width),
            "@H@": str(cfg.height), "@PASSES@": str(cfg.passes),
            "@CHUNK@": "256"}
    text = _TEMPLATE
    for token, value in subs.items():
        text = text.replace(token, value)
    if "@" in text:
        raise ValueError("unsubstituted template token")
    return text


def build_stencil_program(cfg: StencilConfig = SMALL_STENCIL) -> Program:
    return build_program(stencil_source(cfg))


def make_frame(cfg: StencilConfig) -> bytes:
    """The deterministic input frame: LCG noise over a coarse gradient,
    so both smooth regions and speckle survive the blur/edge chain."""
    rng = _Lcg(cfg.seed)
    out = bytearray()
    for y in range(cfg.height):
        for x in range(cfg.width):
            base = (4 * x + 3 * y) % 160
            out.append((base + rng.next() % 96) & 0xFF)
    return bytes(out)


def make_stencil_workspace(cfg: StencilConfig = SMALL_STENCIL) -> GuestFS:
    fs = GuestFS()
    fs.put("frame.raw", make_frame(cfg))
    return fs


@dataclass(frozen=True)
class StencilResult:
    output: bytes
    checksum: int


def reference_stencil(cfg: StencilConfig = SMALL_STENCIL) -> StencilResult:
    """Pure-Python oracle: the same integer stencil chain, same clamped
    borders, same polynomial checksum."""
    w, h = cfg.width, cfg.height
    frame = list(make_frame(cfg))
    other = [0] * (w * h)

    def blur(src, dst):
        for y in range(h):
            for x in range(w):
                c = src[y * w + x]
                n = src[(y - 1) * w + x] if y > 0 else c
                s = src[(y + 1) * w + x] if y < h - 1 else c
                ww = src[y * w + x - 1] if x > 0 else c
                e = src[y * w + x + 1] if x < w - 1 else c
                dst[y * w + x] = (c * 4 + n + s + ww + e + 4) >> 3

    def edge(src, dst):
        for y in range(h):
            for x in range(w):
                c = src[y * w + x]
                r = src[y * w + x + 1] if x < w - 1 else c
                d = src[(y + 1) * w + x] if y < h - 1 else c
                v = abs(c - r) + abs(c - d)
                dst[y * w + x] = min(v, 255)

    a, b = frame, other
    for p in range(cfg.passes):
        (blur if p % 2 == 0 else edge)(a, b)
        a, b = b, a
    acc = 0
    for byte in a:
        acc = (acc * 31 + byte) & 0x3FFFFFFF
    return StencilResult(output=bytes(a), checksum=acc)


def run_stencil_in_guest(cfg: StencilConfig = SMALL_STENCIL,
                         max_instructions: int = 200_000_000) -> bytes:
    """Execute the guest and return its ``frame.out`` bytes."""
    from ..vm import Machine

    fs = make_stencil_workspace(cfg)
    machine = Machine(build_stencil_program(cfg), fs=fs)
    code = machine.run(max_instructions=max_instructions)
    if code != 0:
        raise RuntimeError(f"stencil guest failed with exit code {code}")
    return fs.get("frame.out")
