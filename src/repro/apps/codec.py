"""A second case-study application: a DCT-based image codec in MiniC.

The paper notes tQUAD "was tested on a set of real applications" (§V) but
details only the WFS system.  This codec is a second multimedia workload
with a different memory character: block-strided reads (8×8 tiles), a dense
float transform (2-D DCT-II), integer quantisation, zigzag reordering and a
run-length entropy stage writing a byte stream — load / transform / entropy
/ store phases.

As with WFS, a pure-Python reference (:func:`reference_encode`) mirrors the
guest operation-for-operation, so the produced bitstream is byte-identical.
"""

from __future__ import annotations

import math
import struct
from dataclasses import dataclass

import numpy as np

from ..minic import build_program
from ..vm import GuestFS
from ..vm.program import Program

_TEMPLATE = r"""
char image[@PIX@];
float block[64];
float coef[64];
float dct_mat[64];
int   quant[64];
int   zz[64];
int   iq[64];
char  stage[@STAGE@];
int   stage_fill;
int   out_fd;

char in_name[12]  = "image.raw";
char out_name[12] = "image.dct";

// ------------------------------------------------------------ init tables
void build_dct_matrix() {
    int k;
    int n;
    for (k = 0; k < 8; k++) {
        float scale = 0.5;
        if (k == 0) { scale = 0.35355339059327373; }  // 1/(2*sqrt(2))
        for (n = 0; n < 8; n++) {
            dct_mat[k * 8 + n] = scale
                * __cos(0.19634954084936207 * (2.0 * (float)n + 1.0)
                        * (float)k);   // pi/16
        }
    }
}

void build_quant_table() {
    int u;
    int v;
    for (v = 0; v < 8; v++) {
        for (u = 0; u < 8; u++) {
            quant[v * 8 + u] = 4 + (u + v) * 2;
        }
    }
}

void build_zigzag() {
    // classic 8x8 zigzag scan order
    int x = 0;
    int y = 0;
    int i;
    for (i = 0; i < 64; i++) {
        zz[i] = y * 8 + x;
        if ((x + y) % 2 == 0) {          // moving up-right
            if (x == 7) { y++; }
            else if (y == 0) { x++; }
            else { x++; y--; }
        } else {                         // moving down-left
            if (y == 7) { x++; }
            else if (x == 0) { y++; }
            else { x--; y++; }
        }
    }
}

// --------------------------------------------------------------- image I/O
int img_load(char* path) {
    int fd = open(path, 0);
    if (fd < 0) { return -1; }
    int total = @PIX@;
    int done = 0;
    while (done < total) {
        int want = total - done;
        if (want > @STAGE@) { want = @STAGE@; }
        int got = read(fd, stage, want);
        if (got <= 0) { break; }
        int k;
        for (k = 0; k < got; k++) {
            image[done + k] = stage[k];
        }
        done += got;
    }
    close(fd);
    return done;
}

void flush_stage() {
    if (stage_fill > 0) {
        write(out_fd, stage, stage_fill);
        stage_fill = 0;
    }
}

void emit_byte(int v) {
    stage[stage_fill] = (char)(v & 255);
    stage_fill++;
    if (stage_fill >= @STAGE@) { flush_stage(); }
}

void emit_i16(int v) {
    emit_byte(v & 255);
    emit_byte((v >> 8) & 255);
}

// --------------------------------------------------------- block pipeline
void fetch_block(int bx, int by) {
    // strided 8x8 gather, centred around zero
    int y;
    int x;
    for (y = 0; y < 8; y++) {
        for (x = 0; x < 8; x++) {
            int pix = (int)image[(by * 8 + y) * @W@ + bx * 8 + x];
            block[y * 8 + x] = (float)(pix - 128);
        }
    }
}

void dct8_rows(float* src, float* dst) {
    // dst = src * dct_mat^T, row-wise 1-D DCT
    int r;
    for (r = 0; r < 8; r++) {
        int k;
        for (k = 0; k < 8; k++) {
            float acc = 0.0;
            int n;
            for (n = 0; n < 8; n++) {
                acc += src[r * 8 + n] * dct_mat[k * 8 + n];
            }
            dst[r * 8 + k] = acc;
        }
    }
}

void transpose8(float* m) {
    int y;
    int x;
    for (y = 0; y < 8; y++) {
        for (x = y + 1; x < 8; x++) {
            float t = m[y * 8 + x];
            m[y * 8 + x] = m[x * 8 + y];
            m[x * 8 + y] = t;
        }
    }
}

void dct2d_block() {
    dct8_rows(block, coef);
    transpose8(coef);
    dct8_rows(coef, block);
    transpose8(block);
    int i;
    for (i = 0; i < 64; i++) { coef[i] = block[i]; }
}

void quantize_block() {
    int i;
    for (i = 0; i < 64; i++) {
        iq[i] = (int)(coef[i] / (float)quant[i]);
    }
}

int rle_encode_block() {
    // zigzag scan; runs of zeros become (0, runlen); end marker (127, 0)
    int emitted = 0;
    int run = 0;
    int i;
    for (i = 0; i < 64; i++) {
        int v = iq[zz[i]];
        if (v == 0) {
            run++;
        } else {
            while (run > 0) {
                int chunk = run;
                if (chunk > 255) { chunk = 255; }
                emit_byte(0);
                emit_byte(chunk);
                run -= chunk;
                emitted += 2;
            }
            emit_byte(1);
            emit_i16(v);
            emitted += 3;
        }
    }
    emit_byte(127);
    emit_byte(0);
    return emitted + 2;
}

// --------------------------------------------------------------------- main
int main() {
    build_dct_matrix();
    build_quant_table();
    build_zigzag();
    if (img_load(in_name) != @PIX@) { return 1; }
    out_fd = open(out_name, 1);
    if (out_fd < 0) { return 2; }
    stage_fill = 0;
    // header: magic + dimensions
    emit_byte('D'); emit_byte('C'); emit_byte('T'); emit_byte('1');
    emit_i16(@W@);
    emit_i16(@H@);
    int total = 0;
    int by;
    for (by = 0; by < @BH@; by++) {
        int bx;
        for (bx = 0; bx < @BW@; bx++) {
            fetch_block(bx, by);
            dct2d_block();
            quantize_block();
            total += rle_encode_block();
        }
    }
    flush_stage();
    close(out_fd);
    return 0;
}
"""


_DECODER_TEMPLATE = r"""
char recon[@PIX@];
float coef[64];
float pix[64];
float dct_mat[64];
int   quant[64];
int   zz[64];
char  rbuf[@STAGE@];
int   rlen;
int   rpos;
int   in_fd;

char in_name[12]  = "image.dct";
char out_name[12] = "image.out";

void build_dct_matrix() {
    int k;
    int n;
    for (k = 0; k < 8; k++) {
        float scale = 0.5;
        if (k == 0) { scale = 0.35355339059327373; }
        for (n = 0; n < 8; n++) {
            dct_mat[k * 8 + n] = scale
                * __cos(0.19634954084936207 * (2.0 * (float)n + 1.0)
                        * (float)k);
        }
    }
}

void build_quant_table() {
    int u;
    int v;
    for (v = 0; v < 8; v++) {
        for (u = 0; u < 8; u++) {
            quant[v * 8 + u] = 4 + (u + v) * 2;
        }
    }
}

void build_zigzag() {
    int x = 0;
    int y = 0;
    int i;
    for (i = 0; i < 64; i++) {
        zz[i] = y * 8 + x;
        if ((x + y) % 2 == 0) {
            if (x == 7) { y++; }
            else if (y == 0) { x++; }
            else { x++; y--; }
        } else {
            if (y == 7) { x++; }
            else if (x == 0) { y++; }
            else { x--; y++; }
        }
    }
}

int next_byte() {
    if (rpos >= rlen) {
        rlen = read(in_fd, rbuf, @STAGE@);
        rpos = 0;
        if (rlen <= 0) { return -1; }
    }
    int v = (int)rbuf[rpos];
    rpos++;
    return v;
}

int next_i16() {
    int lo = next_byte();
    int hi = next_byte();
    int v = lo | (hi << 8);
    if (v > 32767) { v = v - 65536; }
    return v;
}

// parse one block's RLE stream into dequantised coefficients
int read_block() {
    int i;
    for (i = 0; i < 64; i++) { coef[i] = 0.0; }
    i = 0;
    while (1) {
        int tag = next_byte();
        if (tag < 0) { return -1; }
        if (tag == 127) {
            next_byte();             // skip the pad byte
            return 0;
        }
        if (tag == 0) {
            i += next_byte();
        } else {
            int v = next_i16();
            coef[zz[i]] = (float)(v * quant[zz[i]]);
            i++;
        }
    }
    return 0;
}

void idct8_rows(float* src, float* dst) {
    // dst = src * dct_mat (inverse of the encoder's src * dct_mat^T)
    int r;
    for (r = 0; r < 8; r++) {
        int n;
        for (n = 0; n < 8; n++) {
            float acc = 0.0;
            int k;
            for (k = 0; k < 8; k++) {
                acc += src[r * 8 + k] * dct_mat[k * 8 + n];
            }
            dst[r * 8 + n] = acc;
        }
    }
}

void transpose8(float* m) {
    int y;
    int x;
    for (y = 0; y < 8; y++) {
        for (x = y + 1; x < 8; x++) {
            float t = m[y * 8 + x];
            m[y * 8 + x] = m[x * 8 + y];
            m[x * 8 + y] = t;
        }
    }
}

void idct2d_block() {
    // pixels = M^T C M: transpose, row-transform, transpose, row-transform
    transpose8(coef);
    idct8_rows(coef, pix);
    transpose8(pix);
    idct8_rows(pix, coef);
    int i;
    for (i = 0; i < 64; i++) { pix[i] = coef[i]; }
}

void store_block(int bx, int by) {
    int y;
    int x;
    for (y = 0; y < 8; y++) {
        for (x = 0; x < 8; x++) {
            float v = pix[y * 8 + x] + 128.0;
            int iv = (int)(v + 0.5);
            if (iv < 0) { iv = 0; }
            if (iv > 255) { iv = 255; }
            recon[(by * 8 + y) * @W@ + bx * 8 + x] = (char)iv;
        }
    }
}

int main() {
    build_dct_matrix();
    build_quant_table();
    build_zigzag();
    in_fd = open(in_name, 0);
    if (in_fd < 0) { return 1; }
    rlen = 0;
    rpos = 0;
    // header
    if (next_byte() != 'D') { return 2; }
    if (next_byte() != 'C') { return 2; }
    if (next_byte() != 'T') { return 2; }
    if (next_byte() != '1') { return 2; }
    int w = next_byte() | (next_byte() << 8);
    int h = next_byte() | (next_byte() << 8);
    if (w != @W@) { return 3; }
    if (h != @H@) { return 3; }
    int by;
    for (by = 0; by < @BH@; by++) {
        int bx;
        for (bx = 0; bx < @BW@; bx++) {
            if (read_block() < 0) { return 4; }
            idct2d_block();
            store_block(bx, by);
        }
    }
    close(in_fd);
    int fd = open(out_name, 1);
    if (fd < 0) { return 5; }
    int done = 0;
    while (done < @PIX@) {
        int n = @PIX@ - done;
        if (n > @STAGE@) { n = @STAGE@; }
        write(fd, recon + done, n);
        done += n;
    }
    close(fd);
    return 0;
}
"""


@dataclass(frozen=True)
class CodecConfig:
    width: int = 64
    height: int = 48
    name: str = "custom"

    def __post_init__(self) -> None:
        if self.width % 8 or self.height % 8:
            raise ValueError("dimensions must be multiples of 8")
        if self.width < 8 or self.height < 8:
            raise ValueError("image too small")

    @property
    def pixels(self) -> int:
        return self.width * self.height

    @property
    def blocks(self) -> tuple[int, int]:
        return self.width // 8, self.height // 8


TINY_CODEC = CodecConfig(width=32, height=24, name="tiny")
SMALL_CODEC = CodecConfig(width=64, height=48, name="small")

CODEC_PRESETS: dict[str, CodecConfig] = {
    c.name: c for c in (TINY_CODEC, SMALL_CODEC)
}


def codec_source(cfg: CodecConfig = SMALL_CODEC) -> str:
    bw, bh = cfg.blocks
    subs = {"@PIX@": str(cfg.pixels), "@W@": str(cfg.width),
            "@H@": str(cfg.height), "@BW@": str(bw), "@BH@": str(bh),
            "@STAGE@": "256"}
    text = _TEMPLATE
    for token, value in subs.items():
        text = text.replace(token, value)
    if "@" in text:
        raise ValueError("unsubstituted template token")
    return text


def build_codec_program(cfg: CodecConfig = SMALL_CODEC) -> Program:
    return build_program(codec_source(cfg))


def decoder_source(cfg: CodecConfig = SMALL_CODEC) -> str:
    bw, bh = cfg.blocks
    subs = {"@PIX@": str(cfg.pixels), "@W@": str(cfg.width),
            "@H@": str(cfg.height), "@BW@": str(bw), "@BH@": str(bh),
            "@STAGE@": "256"}
    text = _DECODER_TEMPLATE
    for token, value in subs.items():
        text = text.replace(token, value)
    if "@" in text:
        raise ValueError("unsubstituted template token")
    return text


def build_decoder_program(cfg: CodecConfig = SMALL_CODEC) -> Program:
    return build_program(decoder_source(cfg))


def roundtrip_in_guest(cfg: CodecConfig,
                       image: np.ndarray | None = None
                       ) -> tuple[np.ndarray, bytes]:
    """Encode then decode entirely inside the guest.

    Returns (reconstructed image, bitstream).
    """
    from ..vm import Machine

    fs = make_codec_workspace(cfg, image)
    enc = Machine(build_codec_program(cfg), fs=fs)
    if enc.run(max_instructions=200_000_000) != 0:
        raise RuntimeError("guest encoder failed")
    bitstream = fs.get("image.dct")
    dec = Machine(build_decoder_program(cfg), fs=fs)
    code = dec.run(max_instructions=200_000_000)
    if code != 0:
        raise RuntimeError(f"guest decoder failed with exit code {code}")
    raw = fs.get("image.out")
    recon = np.frombuffer(raw, dtype=np.uint8).reshape(cfg.height,
                                                       cfg.width)
    return recon, bitstream


def synthetic_image(cfg: CodecConfig) -> np.ndarray:
    """A deterministic grayscale test chart (uint8, row-major)."""
    y, x = np.mgrid[0:cfg.height, 0:cfg.width]
    img = (128 + 80 * np.sin(x * 0.3) * np.cos(y * 0.2)
           + 20 * ((x // 8 + y // 8) % 2))
    return np.clip(np.rint(img), 0, 255).astype(np.uint8)


def make_codec_workspace(cfg: CodecConfig,
                         image: np.ndarray | None = None) -> GuestFS:
    """Guest FS with the input image (defaults to the synthetic chart)."""
    if image is None:
        image = synthetic_image(cfg)
    if image.shape != (cfg.height, cfg.width) or image.dtype != np.uint8:
        raise ValueError("image must be uint8 of shape (height, width)")
    fs = GuestFS()
    fs.put("image.raw", image.tobytes())
    return fs


def decode_stream(raw: bytes) -> np.ndarray:
    """Host-side decoder: invert RLE, zigzag, quantisation and the DCT.

    Returns the reconstructed grayscale image (uint8).  Used to validate
    that the guest's bitstream is not merely self-consistent but actually
    encodes the image (bounded reconstruction error).
    """
    if raw[:4] != b"DCT1":
        raise ValueError("bad magic")
    w, h = struct.unpack_from("<HH", raw, 4)
    cfg = CodecConfig(width=w, height=h)
    bw, bh = cfg.blocks
    pos = 8
    # tables
    k = np.arange(8)
    n = np.arange(8)
    dct_mat = 0.5 * np.cos(0.19634954084936207
                           * (2.0 * n[None, :] + 1.0) * k[:, None])
    dct_mat[0, :] = 0.35355339059327373 * np.cos(np.zeros(8))
    quant = np.array([[4 + (u + v) * 2 for u in range(8)]
                      for v in range(8)], dtype=float)
    zz = []
    x = y = 0
    for _ in range(64):
        zz.append(y * 8 + x)
        if (x + y) % 2 == 0:
            if x == 7:
                y += 1
            elif y == 0:
                x += 1
            else:
                x += 1
                y -= 1
        else:
            if y == 7:
                x += 1
            elif x == 0:
                y += 1
            else:
                x -= 1
                y += 1
    img = np.zeros((h, w), dtype=float)
    for by in range(bh):
        for bx in range(bw):
            coeffs = np.zeros(64)
            i = 0
            while True:
                tag = raw[pos]
                pos += 1
                if tag == 127:
                    pos += 1  # skip the 0 pad
                    break
                if tag == 0:
                    i += raw[pos]
                    pos += 1
                else:
                    (v,) = struct.unpack_from("<h", raw, pos)
                    pos += 2
                    coeffs[zz[i]] = v
                    i += 1
            block = coeffs.reshape(8, 8) * quant
            # inverse 2-D DCT: pixels = M^T @ C @ M for orthonormal-ish M
            recon = dct_mat.T @ block @ dct_mat
            img[by * 8:(by + 1) * 8, bx * 8:(bx + 1) * 8] = recon
    return np.clip(np.rint(img + 128), 0, 255).astype(np.uint8)


def psnr(a: np.ndarray, b: np.ndarray) -> float:
    """Peak signal-to-noise ratio between two uint8 images (dB)."""
    mse = float(np.mean((a.astype(float) - b.astype(float)) ** 2))
    if mse == 0:
        return float("inf")
    return 10.0 * math.log10(255.0 ** 2 / mse)


# ------------------------------------------------------------------ reference
def reference_encode(cfg: CodecConfig,
                     image: np.ndarray | None = None) -> bytes:
    """Pure-Python mirror of the guest codec (same float operation order)."""
    img = synthetic_image(cfg) if image is None else image
    w, h = cfg.width, cfg.height
    bw, bh = cfg.blocks
    # tables, exactly as the guest builds them
    dct_mat = [[0.0] * 8 for _ in range(8)]
    for k in range(8):
        scale = 0.35355339059327373 if k == 0 else 0.5
        for n in range(8):
            dct_mat[k][n] = scale * math.cos(
                0.19634954084936207 * (2.0 * n + 1.0) * k)
    quant = [[4 + (u + v) * 2 for u in range(8)] for v in range(8)]
    zz = []
    x = y = 0
    for _ in range(64):
        zz.append(y * 8 + x)
        if (x + y) % 2 == 0:
            if x == 7:
                y += 1
            elif y == 0:
                x += 1
            else:
                x += 1
                y -= 1
        else:
            if y == 7:
                x += 1
            elif x == 0:
                y += 1
            else:
                x -= 1
                y += 1

    out = bytearray()
    out += b"DCT1"
    out += struct.pack("<HH", w, h)

    def dct8_rows(src):
        dst = [0.0] * 64
        for r in range(8):
            for k in range(8):
                acc = 0.0
                for n in range(8):
                    acc += src[r * 8 + n] * dct_mat[k][n]
                dst[r * 8 + k] = acc
        return dst

    def transpose(m):
        for yy in range(8):
            for xx in range(yy + 1, 8):
                m[yy * 8 + xx], m[xx * 8 + yy] = (m[xx * 8 + yy],
                                                  m[yy * 8 + xx])

    for by in range(bh):
        for bx in range(bw):
            block = [0.0] * 64
            for yy in range(8):
                for xx in range(8):
                    pix = int(img[by * 8 + yy, bx * 8 + xx])
                    block[yy * 8 + xx] = float(pix - 128)
            coef = dct8_rows(block)
            transpose(coef)
            block = dct8_rows(coef)
            transpose(block)
            coef = list(block)
            iq = [int(coef[i] / quant[i // 8][i % 8]) for i in range(64)]
            run = 0
            for i in range(64):
                v = iq[zz[i]]
                if v == 0:
                    run += 1
                else:
                    while run > 0:
                        chunk = min(run, 255)
                        out += bytes([0, chunk])
                        run -= chunk
                    out.append(1)
                    out += struct.pack("<h", v)
            out += bytes([127, 0])
    return bytes(out)
