"""Guest applications: the hArtes-wfs case study, the corpus guests
(hash join, BFS, stencil, codec) and auxiliary kernels."""

from . import bfs, codec, hashjoin, kernels, stencil, wfs

__all__ = ["wfs", "kernels", "codec", "hashjoin", "bfs", "stencil"]
