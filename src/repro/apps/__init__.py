"""Guest applications: the hArtes-wfs case study and auxiliary kernels."""

from . import kernels, wfs

__all__ = ["wfs", "kernels"]
