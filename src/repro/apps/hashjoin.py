"""A database-style hash-join guest: pointer-chasing, irregular traffic.

The corpus' first structurally new workload (ROADMAP item 5).  The guest
builds a chained hash table over a build relation read from the guest FS,
then streams a probe relation through it.  Bucket chains are index-linked
lists (``head``/``nxt`` arrays), so the probe phase is dependent-load
pointer chasing over a working set with no spatial locality — the
opposite bandwidth shape of the codec's streaming block pipeline.

Relations are generated host-side from a seeded LCG
(:func:`make_join_tables`), so the *sizes* live in the program text while
the *data* lives in the workspace: two presets with equal sizes but
different seeds compile to the identical binary (same
``program_sha256``), which is exactly the hazard the capture-label check
guards (see ``repro.capture.format.check_label``).

A pure-Python oracle (:func:`reference_join`) mirrors the guest's
arithmetic bit-for-bit, so the produced ``join.out`` is byte-identical.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass

from ..minic import build_program
from ..testing.workloads import Lcg as _Lcg
from ..vm import GuestFS
from ..vm.program import Program

#: Aggregate masks (powers of two minus one, so the reduction is modular
#: and therefore order-independent — the oracle need not replay chains).
_AGG_MASK = 0xFFFFF
_SUM_MASK = 0x3FFFFFFF

_TEMPLATE = r"""
int head[@NBUCKETS@];
int nxt[@NBUILD@];
int bkey[@NBUILD@];
int bval[@NBUILD@];
int hits[@NPROBE@];
char stage[@STAGE@];
int g_matches;
int g_agg;

char build_name[10] = "build.tbl";
char probe_name[10] = "probe.tbl";
char out_name[9]  = "join.out";

// ------------------------------------------------------------- staging I/O
int read_exact(int fd, int want) {
    int got = 0;
    while (got < want) {
        int n = read(fd, stage + got, want - got);
        if (n <= 0) { return got; }
        got += n;
    }
    return got;
}

int decode_i32(int off) {
    return (int)stage[off]
         | ((int)stage[off + 1] << 8)
         | ((int)stage[off + 2] << 16)
         | ((int)stage[off + 3] << 24);
}

void emit_i32(int off, int v) {
    stage[off]     = (char)(v & 255);
    stage[off + 1] = (char)((v >> 8) & 255);
    stage[off + 2] = (char)((v >> 16) & 255);
    stage[off + 3] = (char)((v >> 24) & 255);
}

// ------------------------------------------------------------- hash table
int hash_key(int k) {
    int h = k * 2654435761;
    h = h ^ (h >> 15);
    return h & (@NBUCKETS@ - 1);
}

void init_table() {
    int b;
    for (b = 0; b < @NBUCKETS@; b++) { head[b] = -1; }
}

void insert_row(int i) {
    int b = hash_key(bkey[i]);
    nxt[i] = head[b];
    head[b] = i;
}

int load_build() {
    int fd = open(build_name, 0);
    if (fd < 0) { return -1; }
    int i = 0;
    while (i < @NBUILD@) {
        int chunk = @BUILD_CHUNK@;
        if (chunk > @NBUILD@ - i) { chunk = @NBUILD@ - i; }
        if (read_exact(fd, chunk * 8) != chunk * 8) {
            close(fd);
            return -1;
        }
        int r;
        for (r = 0; r < chunk; r++) {
            bkey[i] = decode_i32(r * 8);
            bval[i] = decode_i32(r * 8 + 4);
            insert_row(i);
            i++;
        }
    }
    close(fd);
    return 0;
}

// ------------------------------------------------------------ probe phase
int probe_one(int k) {
    int count = 0;
    int p = head[hash_key(k)];
    while (p >= 0) {                       // dependent-load chain walk
        if (bkey[p] == k) {
            count++;
            g_agg = (g_agg + ((k ^ bval[p]) & @AGG_MASK@)) & @SUM_MASK@;
        }
        p = nxt[p];
    }
    g_matches += count;
    return count;
}

int probe_all() {
    int fd = open(probe_name, 0);
    if (fd < 0) { return -1; }
    int i = 0;
    while (i < @NPROBE@) {
        int chunk = @PROBE_CHUNK@;
        if (chunk > @NPROBE@ - i) { chunk = @NPROBE@ - i; }
        if (read_exact(fd, chunk * 4) != chunk * 4) {
            close(fd);
            return -1;
        }
        int r;
        for (r = 0; r < chunk; r++) {
            hits[i] = probe_one(decode_i32(r * 4));
            i++;
        }
    }
    close(fd);
    return 0;
}

// ----------------------------------------------------------------- output
int write_hits() {
    int fd = open(out_name, 1);
    if (fd < 0) { return -1; }
    int i = 0;
    while (i < @NPROBE@) {
        int chunk = @PROBE_CHUNK@;
        if (chunk > @NPROBE@ - i) { chunk = @NPROBE@ - i; }
        int r;
        for (r = 0; r < chunk; r++) {
            emit_i32(r * 4, hits[i]);
            i++;
        }
        write(fd, stage, chunk * 4);
    }
    emit_i32(0, g_matches);
    emit_i32(4, g_agg);
    write(fd, stage, 8);
    close(fd);
    return 0;
}

int main() {
    init_table();
    if (load_build() < 0) { return 1; }
    if (probe_all() < 0) { return 2; }
    if (write_hits() < 0) { return 3; }
    print_int(g_matches);
    return 0;
}
"""


@dataclass(frozen=True)
class JoinConfig:
    """Knobs of the hash-join workload.

    ``n_build``/``n_probe``/``n_buckets`` are compile-time sizes (they
    shape the binary); ``key_space`` and ``seed`` only shape the
    workspace data.
    """

    name: str = "small"
    n_build: int = 320
    n_probe: int = 768
    n_buckets: int = 64
    key_space: int = 240
    seed: int = 0x5EED


    def __post_init__(self) -> None:
        if self.n_buckets & (self.n_buckets - 1) or self.n_buckets < 2:
            raise ValueError("n_buckets must be a power of two >= 2")
        if self.n_build < 1 or self.n_probe < 1:
            raise ValueError("relations must be non-empty")
        if self.key_space < 1:
            raise ValueError("key_space must be positive")


TINY_JOIN = JoinConfig(name="tiny", n_build=64, n_probe=128, n_buckets=32,
                       key_space=48, seed=0x5EED)
#: Same binary as ``tiny`` (equal sizes), different data — the preset
#: pair the capture-label mismatch check exists for.
TINY_ALT_JOIN = JoinConfig(name="tiny-alt", n_build=64, n_probe=128,
                           n_buckets=32, key_space=48, seed=0xA17)
SMALL_JOIN = JoinConfig(name="small")
STRESS_JOIN = JoinConfig(name="stress", n_build=1024, n_probe=2048,
                         n_buckets=128, key_space=640, seed=0x57E55)

JOIN_PRESETS: dict[str, JoinConfig] = {
    c.name: c for c in (TINY_JOIN, TINY_ALT_JOIN, SMALL_JOIN, STRESS_JOIN)
}


def join_source(cfg: JoinConfig = SMALL_JOIN) -> str:
    subs = {"@NBUILD@": str(cfg.n_build), "@NPROBE@": str(cfg.n_probe),
            "@NBUCKETS@": str(cfg.n_buckets), "@STAGE@": "512",
            "@BUILD_CHUNK@": "64", "@PROBE_CHUNK@": "128",
            "@AGG_MASK@": str(_AGG_MASK), "@SUM_MASK@": str(_SUM_MASK)}
    text = _TEMPLATE
    for token, value in subs.items():
        text = text.replace(token, value)
    if "@" in text:
        raise ValueError("unsubstituted template token")
    return text


def build_join_program(cfg: JoinConfig = SMALL_JOIN) -> Program:
    return build_program(join_source(cfg))


def make_join_tables(cfg: JoinConfig) -> tuple[list[tuple[int, int]],
                                               list[int]]:
    """The deterministic relations: build ``(key, value)`` rows and probe
    keys, both drawn from one seeded LCG stream."""
    rng = _Lcg(cfg.seed)
    rows = [(rng.next() % cfg.key_space, rng.next() % 65536)
            for _ in range(cfg.n_build)]
    probes = [rng.next() % cfg.key_space for _ in range(cfg.n_probe)]
    return rows, probes


def make_join_workspace(cfg: JoinConfig = SMALL_JOIN) -> GuestFS:
    rows, probes = make_join_tables(cfg)
    fs = GuestFS()
    fs.put("build.tbl",
           b"".join(struct.pack("<ii", k, v) for k, v in rows))
    fs.put("probe.tbl", b"".join(struct.pack("<i", k) for k in probes))
    return fs


@dataclass(frozen=True)
class JoinResult:
    """What the oracle predicts (and the guest must produce)."""

    hits: tuple[int, ...]
    matches: int
    agg: int

    @property
    def output(self) -> bytes:
        """The exact ``join.out`` byte stream."""
        body = b"".join(struct.pack("<i", h) for h in self.hits)
        return body + struct.pack("<ii", self.matches, self.agg)


def reference_join(cfg: JoinConfig = SMALL_JOIN) -> JoinResult:
    """Pure-Python oracle: per-probe match counts and the modular
    aggregate (masking makes the reduction order-independent, so a plain
    dict join predicts the chained table exactly)."""
    rows, probes = make_join_tables(cfg)
    table: dict[int, list[int]] = {}
    for key, value in rows:
        table.setdefault(key, []).append(value)
    hits = []
    matches = agg = 0
    for key in probes:
        values = table.get(key, ())
        for value in values:
            agg = (agg + ((key ^ value) & _AGG_MASK)) & _SUM_MASK
        hits.append(len(values))
        matches += len(values)
    return JoinResult(hits=tuple(hits), matches=matches, agg=agg)


def run_join_in_guest(cfg: JoinConfig = SMALL_JOIN,
                      max_instructions: int = 200_000_000) -> bytes:
    """Execute the guest and return its ``join.out`` bytes."""
    from ..vm import Machine

    fs = make_join_workspace(cfg)
    machine = Machine(build_join_program(cfg), fs=fs)
    code = machine.run(max_instructions=max_instructions)
    if code != 0:
        raise RuntimeError(f"hash-join guest failed with exit code {code}")
    return fs.get("join.out")
