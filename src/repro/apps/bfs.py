"""A graph BFS guest: frontier-driven bandwidth bursts.

The corpus' second structurally new workload.  A CSR graph (offsets +
adjacency targets) is generated host-side from a seeded LCG and read from
the guest FS; the guest runs level-synchronous breadth-first search with
explicit current/next frontier arrays swapped by pointer.  Memory traffic
arrives in *bursts*: a level with a wide frontier touches a large slice
of the adjacency array at once, then the frontier collapses — unlike the
join's steady pointer chasing or the stencil's uniform streaming.

Every node has exactly ``degree`` out-edges (targets random, duplicates
and self-loops allowed), so the CSR shape — and therefore the compiled
binary — depends only on the preset's sizes, never on its seed.

The oracle (:func:`reference_bfs`) computes the same distances with a
plain Python BFS; level-synchronous search makes distances independent
of intra-level visiting order, so ``dist.out`` is byte-exact.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass

from ..minic import build_program
from ..testing.workloads import Lcg as _Lcg
from ..vm import GuestFS
from ..vm.program import Program

_TEMPLATE = r"""
int off[@N1@];
int adj[@M@];
int dist[@N@];
int cur[@N@];
int nxt[@N@];
char stage[@STAGE@];

char graph_name[10] = "graph.csr";
char out_name[9]  = "dist.out";

// ------------------------------------------------------------- staging I/O
int read_exact(int fd, int want) {
    int got = 0;
    while (got < want) {
        int n = read(fd, stage + got, want - got);
        if (n <= 0) { return got; }
        got += n;
    }
    return got;
}

int decode_i32(int o) {
    return (int)stage[o]
         | ((int)stage[o + 1] << 8)
         | ((int)stage[o + 2] << 16)
         | ((int)stage[o + 3] << 24);
}

int load_ints(int fd, int* dst, int count) {
    int i = 0;
    while (i < count) {
        int chunk = @CHUNK@;
        if (chunk > count - i) { chunk = count - i; }
        if (read_exact(fd, chunk * 4) != chunk * 4) { return -1; }
        int r;
        for (r = 0; r < chunk; r++) {
            dst[i] = decode_i32(r * 4);
            i++;
        }
    }
    return 0;
}

int load_graph() {
    int fd = open(graph_name, 0);
    if (fd < 0) { return -1; }
    if (load_ints(fd, off, @N1@) < 0) { close(fd); return -1; }
    if (load_ints(fd, adj, @M@) < 0) { close(fd); return -1; }
    close(fd);
    return 0;
}

// ----------------------------------------------------- frontier expansion
int expand(int* a, int ncur, int* b, int level) {
    // one BFS level: scan the current frontier, gather unvisited
    // neighbours into the next one — the bursty inner loop
    int nnxt = 0;
    int i;
    for (i = 0; i < ncur; i++) {
        int u = a[i];
        int e;
        for (e = off[u]; e < off[u + 1]; e++) {
            int v = adj[e];
            if (dist[v] < 0) {
                dist[v] = level;
                b[nnxt] = v;
                nnxt++;
            }
        }
    }
    return nnxt;
}

int run_bfs() {
    int i;
    for (i = 0; i < @N@; i++) { dist[i] = -1; }
    int* a = cur;
    int* b = nxt;
    a[0] = @SRC@;
    dist[@SRC@] = 0;
    int ncur = 1;
    int level = 0;
    int reached = 1;
    while (ncur > 0) {
        level++;
        int nnxt = expand(a, ncur, b, level);
        reached += nnxt;
        int* t = a;
        a = b;
        b = t;
        ncur = nnxt;
    }
    return reached;
}

// ----------------------------------------------------------------- output
void emit_i32(int o, int v) {
    stage[o]     = (char)(v & 255);
    stage[o + 1] = (char)((v >> 8) & 255);
    stage[o + 2] = (char)((v >> 16) & 255);
    stage[o + 3] = (char)((v >> 24) & 255);
}

int write_dist() {
    int fd = open(out_name, 1);
    if (fd < 0) { return -1; }
    int i = 0;
    while (i < @N@) {
        int chunk = @CHUNK@;
        if (chunk > @N@ - i) { chunk = @N@ - i; }
        int r;
        for (r = 0; r < chunk; r++) {
            emit_i32(r * 4, dist[i]);
            i++;
        }
        write(fd, stage, chunk * 4);
    }
    close(fd);
    return 0;
}

int main() {
    if (load_graph() < 0) { return 1; }
    int reached = run_bfs();
    if (write_dist() < 0) { return 2; }
    print_int(reached);
    return 0;
}
"""


@dataclass(frozen=True)
class BfsConfig:
    """Knobs of the BFS workload.  ``n_nodes``/``degree`` are compile-time
    sizes; ``seed`` only shapes the workspace graph."""

    name: str = "small"
    n_nodes: int = 384
    degree: int = 3
    seed: int = 0xBF5
    source: int = 0

    def __post_init__(self) -> None:
        if self.n_nodes < 2:
            raise ValueError("graph needs at least two nodes")
        if self.degree < 1:
            raise ValueError("degree must be positive")
        if not 0 <= self.source < self.n_nodes:
            raise ValueError("source out of range")

    @property
    def n_edges(self) -> int:
        return self.n_nodes * self.degree


TINY_BFS = BfsConfig(name="tiny", n_nodes=96, degree=2, seed=0xBF5)
TINY_ALT_BFS = BfsConfig(name="tiny-alt", n_nodes=96, degree=2, seed=0x90D)
SMALL_BFS = BfsConfig(name="small")
STRESS_BFS = BfsConfig(name="stress", n_nodes=1536, degree=4, seed=0x6AF)

BFS_PRESETS: dict[str, BfsConfig] = {
    c.name: c for c in (TINY_BFS, TINY_ALT_BFS, SMALL_BFS, STRESS_BFS)
}


def bfs_source(cfg: BfsConfig = SMALL_BFS) -> str:
    subs = {"@N@": str(cfg.n_nodes), "@N1@": str(cfg.n_nodes + 1),
            "@M@": str(cfg.n_edges), "@SRC@": str(cfg.source),
            "@STAGE@": "512", "@CHUNK@": "128"}
    text = _TEMPLATE
    for token, value in subs.items():
        text = text.replace(token, value)
    if "@" in text:
        raise ValueError("unsubstituted template token")
    return text


def build_bfs_program(cfg: BfsConfig = SMALL_BFS) -> Program:
    return build_program(bfs_source(cfg))


def make_bfs_graph(cfg: BfsConfig) -> tuple[list[int], list[int]]:
    """The deterministic CSR graph: ``(offsets, targets)`` with exactly
    ``cfg.degree`` out-edges per node."""
    rng = _Lcg(cfg.seed)
    offsets = [u * cfg.degree for u in range(cfg.n_nodes + 1)]
    targets = [rng.next() % cfg.n_nodes for _ in range(cfg.n_edges)]
    return offsets, targets


def make_bfs_workspace(cfg: BfsConfig = SMALL_BFS) -> GuestFS:
    offsets, targets = make_bfs_graph(cfg)
    fs = GuestFS()
    fs.put("graph.csr",
           b"".join(struct.pack("<i", v) for v in offsets + targets))
    return fs


@dataclass(frozen=True)
class BfsResult:
    distances: tuple[int, ...]
    reached: int

    @property
    def output(self) -> bytes:
        """The exact ``dist.out`` byte stream (-1 = unreachable)."""
        return b"".join(struct.pack("<i", d) for d in self.distances)


def reference_bfs(cfg: BfsConfig = SMALL_BFS) -> BfsResult:
    """Pure-Python oracle: level-synchronous BFS distances from the
    configured source (order within a level cannot change them)."""
    offsets, targets = make_bfs_graph(cfg)
    dist = [-1] * cfg.n_nodes
    dist[cfg.source] = 0
    frontier = [cfg.source]
    level = 0
    reached = 1
    while frontier:
        level += 1
        nxt = []
        for u in frontier:
            for e in range(offsets[u], offsets[u + 1]):
                v = targets[e]
                if dist[v] < 0:
                    dist[v] = level
                    nxt.append(v)
                    reached += 1
        frontier = nxt
    return BfsResult(distances=tuple(dist), reached=reached)


def run_bfs_in_guest(cfg: BfsConfig = SMALL_BFS,
                     max_instructions: int = 200_000_000) -> bytes:
    """Execute the guest and return its ``dist.out`` bytes."""
    from ..vm import Machine

    fs = make_bfs_workspace(cfg)
    machine = Machine(build_bfs_program(cfg), fs=fs)
    code = machine.run(max_instructions=max_instructions)
    if code != 0:
        raise RuntimeError(f"BFS guest failed with exit code {code}")
    return fs.get("dist.out")
