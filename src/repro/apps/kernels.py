"""Auxiliary guest applications (MiniC sources).

Small, self-contained programs used by the examples, the test suite and the
engineering benchmarks: a blocked matrix multiply, a streaming FIR filter, a
merge sort, and a three-stage producer/transform/consumer pipeline with a
clean phase structure.
"""

from __future__ import annotations

from ..minic import build_program
from ..vm.program import Program

MATMUL = r"""
// Blocked dense matmul: C = A x B, checksum returned.
float A[@SIZE2@];
float B[@SIZE2@];
float C[@SIZE2@];

void init_matrices(int n) {
    int i;
    int j;
    for (i = 0; i < n; i = i + 1) {
        for (j = 0; j < n; j = j + 1) {
            A[i * n + j] = (float)((i + j) % 7) * 0.25;
            B[i * n + j] = (float)((i * 3 + j) % 5) * 0.5;
        }
    }
}

void matmul(int n) {
    int i;
    int j;
    int k;
    for (i = 0; i < n; i = i + 1) {
        for (j = 0; j < n; j = j + 1) {
            float acc = 0.0;
            for (k = 0; k < n; k = k + 1) {
                acc = acc + A[i * n + k] * B[k * n + j];
            }
            C[i * n + j] = acc;
        }
    }
}

float checksum(int n) {
    int i;
    float s = 0.0;
    for (i = 0; i < n * n; i = i + 1) {
        s = s + C[i];
    }
    return s;
}

int main() {
    init_matrices(@SIZE@);
    matmul(@SIZE@);
    float s = checksum(@SIZE@);
    print_float(s);
    print_str("\n");
    return 0;
}
"""

FIR = r"""
// Streaming FIR filter over a synthetic signal.
float signal[@LEN@];
float filtered[@LEN@];
float taps[@NTAPS@];
float state[@NTAPS@];

void make_signal(int n) {
    int i;
    for (i = 0; i < n; i = i + 1) {
        signal[i] = __sin(0.1 * (float)i) + 0.25 * __sin(0.31 * (float)i);
    }
}

void make_taps(int n) {
    int i;
    float norm = 0.0;
    for (i = 0; i < n; i = i + 1) {
        taps[i] = 1.0 / (float)(i + 1);
        norm = norm + taps[i];
    }
    for (i = 0; i < n; i = i + 1) {
        taps[i] = taps[i] / norm;
    }
}

void fir(int n) {
    int i;
    for (i = 0; i < n; i = i + 1) {
        int t;
        for (t = @NTAPS@ - 1; t > 0; t = t - 1) {
            state[t] = state[t - 1];
        }
        state[0] = signal[i];
        float acc = 0.0;
        for (t = 0; t < @NTAPS@; t = t + 1) {
            acc = acc + taps[t] * state[t];
        }
        filtered[i] = acc;
    }
}

float energy(int n) {
    int i;
    float e = 0.0;
    for (i = 0; i < n; i = i + 1) {
        e = e + filtered[i] * filtered[i];
    }
    return e;
}

int main() {
    make_signal(@LEN@);
    make_taps(@NTAPS@);
    fir(@LEN@);
    print_float(energy(@LEN@));
    print_str("\n");
    return 0;
}
"""

MERGESORT = r"""
// Bottom-up merge sort over a pseudo-random array.
int data[@LEN@];
int scratch[@LEN@];

void fill(int n) {
    int i;
    int x = 12345;
    for (i = 0; i < n; i = i + 1) {
        x = (x * 1103515245 + 12345) % 2147483648;
        if (x < 0) { x = 0 - x; }
        data[i] = x % 100000;
    }
}

void merge(int lo, int mid, int hi) {
    int i = lo;
    int j = mid;
    int k = lo;
    while (i < mid && j < hi) {
        if (data[i] <= data[j]) {
            scratch[k] = data[i];
            i = i + 1;
        } else {
            scratch[k] = data[j];
            j = j + 1;
        }
        k = k + 1;
    }
    while (i < mid) { scratch[k] = data[i]; i = i + 1; k = k + 1; }
    while (j < hi)  { scratch[k] = data[j]; j = j + 1; k = k + 1; }
    for (i = lo; i < hi; i = i + 1) { data[i] = scratch[i]; }
}

void sort(int n) {
    int width;
    for (width = 1; width < n; width = width * 2) {
        int lo;
        for (lo = 0; lo < n; lo = lo + 2 * width) {
            int mid = lo + width;
            int hi = lo + 2 * width;
            if (mid > n) { mid = n; }
            if (hi > n) { hi = n; }
            if (mid < hi) { merge(lo, mid, hi); }
        }
    }
}

int verify(int n) {
    int i;
    for (i = 1; i < n; i = i + 1) {
        if (data[i - 1] > data[i]) { return 0; }
    }
    return 1;
}

int main() {
    fill(@LEN@);
    sort(@LEN@);
    if (verify(@LEN@) == 0) { return 1; }
    return 0;
}
"""

PIPELINE = r"""
// Three sequential stages with distinct buffers: the cleanest possible
// phase structure for exercising phase detection.
int stage_a[@LEN@];
int stage_b[@LEN@];
int stage_c[@LEN@];

int produce() {
    int i;
    for (i = 0; i < @LEN@; i = i + 1) { stage_a[i] = i * 7 % 1000; }
    return 0;
}

int transform() {
    int i;
    for (i = 0; i < @LEN@; i = i + 1) { stage_b[i] = stage_a[i] * 3 + 1; }
    return 0;
}

int consume() {
    int i;
    int acc = 0;
    for (i = 0; i < @LEN@; i = i + 1) {
        stage_c[i] = stage_b[i] / 2;
        acc = acc + stage_c[i];
    }
    return acc;
}

int main() {
    produce();
    transform();
    return consume() % 251;
}
"""


CONV2D = r"""
// 3x3 box/sharpen convolution over a synthetic grayscale image, with
// separate border handling -- a classic streaming image kernel.
float img[@PIX@];
float out[@PIX@];
float kern[9];

void make_image(int w, int h) {
    int y;
    int x;
    for (y = 0; y < h; y++) {
        for (x = 0; x < w; x++) {
            img[y * w + x] = __sin(0.3 * (float)x) * __cos(0.2 * (float)y);
        }
    }
}

void make_kernel() {
    int i;
    for (i = 0; i < 9; i++) { kern[i] = -0.0625; }
    kern[4] = 1.5;
}

void convolve_interior(int w, int h) {
    int y;
    int x;
    for (y = 1; y < h - 1; y++) {
        for (x = 1; x < w - 1; x++) {
            float acc = 0.0;
            int ky;
            for (ky = 0; ky < 3; ky++) {
                int kx;
                for (kx = 0; kx < 3; kx++) {
                    acc += kern[ky * 3 + kx]
                         * img[(y + ky - 1) * w + (x + kx - 1)];
                }
            }
            out[y * w + x] = acc;
        }
    }
}

void copy_borders(int w, int h) {
    int x;
    int y;
    for (x = 0; x < w; x++) {
        out[x] = img[x];
        out[(h - 1) * w + x] = img[(h - 1) * w + x];
    }
    for (y = 0; y < h; y++) {
        out[y * w] = img[y * w];
        out[y * w + w - 1] = img[y * w + w - 1];
    }
}

float image_energy(int w, int h) {
    int i;
    float e = 0.0;
    for (i = 0; i < w * h; i++) { e += out[i] * out[i]; }
    return e;
}

int main() {
    make_image(@W@, @H@);
    make_kernel();
    convolve_interior(@W@, @H@);
    copy_borders(@W@, @H@);
    print_float(image_energy(@W@, @H@));
    print_str("\n");
    return 0;
}
"""

HISTOGRAM = r"""
// Byte-stream histogram with a scatter access pattern, then a scan.
char stream[@LEN@];
int bins[256];

void make_stream(int n) {
    int i;
    int x = 99991;
    for (i = 0; i < n; i++) {
        x = (x * 1103515245 + 12345) % 2147483648;
        if (x < 0) { x = -x; }
        stream[i] = (char)(x % 256);
    }
}

void build_histogram(int n) {
    int i;
    for (i = 0; i < n; i++) {
        bins[(int)stream[i]] += 1;
    }
}

int mode_bin() {
    int best = 0;
    int i;
    for (i = 1; i < 256; i++) {
        if (bins[i] > bins[best]) { best = i; }
    }
    return best;
}

int main() {
    make_stream(@LEN@);
    build_histogram(@LEN@);
    return mode_bin();
}
"""


def _instantiate(template: str, **subs: int) -> str:
    text = template
    for key, value in subs.items():
        text = text.replace(f"@{key}@", str(value))
    if "@" in text:
        raise ValueError("unsubstituted token in kernel template")
    return text


def matmul_source(size: int = 24) -> str:
    return _instantiate(MATMUL, SIZE=size, SIZE2=size * size)


def fir_source(length: int = 2048, n_taps: int = 16) -> str:
    return _instantiate(FIR, LEN=length, NTAPS=n_taps)


def mergesort_source(length: int = 1024) -> str:
    return _instantiate(MERGESORT, LEN=length)


def pipeline_source(length: int = 1024) -> str:
    return _instantiate(PIPELINE, LEN=length)


def build_matmul(size: int = 24) -> Program:
    return build_program(matmul_source(size))


def build_fir(length: int = 2048, n_taps: int = 16) -> Program:
    return build_program(fir_source(length, n_taps))


def build_mergesort(length: int = 1024) -> Program:
    return build_program(mergesort_source(length))


def build_pipeline(length: int = 1024) -> Program:
    return build_program(pipeline_source(length))


def conv2d_source(width: int = 48, height: int = 32) -> str:
    return _instantiate(CONV2D, W=width, H=height, PIX=width * height)


def histogram_source(length: int = 4096) -> str:
    return _instantiate(HISTOGRAM, LEN=length)


def build_conv2d(width: int = 48, height: int = 32) -> Program:
    return build_program(conv2d_source(width, height))


def build_histogram(length: int = 4096) -> Program:
    return build_program(histogram_source(length))
