"""Chrome trace-event export.

Serialises a :class:`~repro.obs.core.Telemetry` into the JSON object
format consumed by Perfetto (https://ui.perfetto.dev) and Chrome's
``chrome://tracing``: complete-duration ``"X"`` events with microsecond
timestamps, thread-name metadata rows for the parent and each worker,
and the final counter/gauge values under ``otherData``.
"""

from __future__ import annotations

import json

from .core import Telemetry

#: tid used by parent-process (orchestrator) spans.
MAIN_TID = 0


def _thread_name(tid: int) -> str:
    return "main" if tid == MAIN_TID else f"worker-{tid}"


def to_chrome_trace(tele: Telemetry, *, pid: int = 1) -> dict:
    """Render telemetry as a Chrome trace-event JSON object."""
    events: list[dict] = []
    tids = sorted({e[4] for e in tele.events} | {MAIN_TID})
    for tid in tids:
        events.append({"name": "thread_name", "ph": "M", "pid": pid,
                       "tid": tid,
                       "args": {"name": _thread_name(tid)}})
    for name, cat, ts, dur, tid, args in tele.events:
        ev = {"name": name, "cat": cat, "ph": "X" if dur else "i",
              "ts": ts / 1000.0, "pid": pid, "tid": tid}
        if dur:
            ev["dur"] = dur / 1000.0
        else:
            ev["s"] = "t"
        if args:
            ev["args"] = dict(args)
        events.append(ev)
    return {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {"counters": dict(tele.counters),
                      "gauges": dict(tele.gauges)},
    }


def write_chrome_trace(tele: Telemetry, path: str) -> None:
    """Write the trace-event JSON to ``path``."""
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(to_chrome_trace(tele), fh, indent=1)
        fh.write("\n")
