"""Spans, counters and gauges over a monotonic clock.

The profiler treats itself as an observable system: every coarse unit of
work — a checkpoint quantum, a shard replay, a record-buffer drain, a
merge — is wrapped in a :meth:`Telemetry.span`, and structural facts
(superblocks compiled, shards retried, shadow pages resident) land in
counters and gauges.

Overhead discipline
-------------------

Instrumentation is *phase-granular*, never per-instruction: no telemetry
call sits on the VM dispatch path or inside an analysis thunk.  When
tracing is disabled (the default) :meth:`Telemetry.span` returns a shared
no-op context manager, so a disabled span costs one attribute test plus a
``with`` on a ``__slots__``-only singleton; counters and gauges are plain
dict stores and stay live even when tracing is off (they are the cheap,
always-on part of the system — e.g. the ``--jobs`` clamp is recorded
whether or not a trace is being collected).

Clock
-----

Timestamps come from ``time.monotonic_ns`` — on Linux a system-wide
monotonic clock, so spans recorded in worker processes land on the same
timeline as the parent's and the merged Chrome trace lines up without
cross-process clock translation.
"""

from __future__ import annotations

import time
from typing import Callable


class _NullSpan:
    """Shared no-op context manager returned by disabled telemetry."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc) -> bool:
        return False


NULL_SPAN = _NullSpan()


class _Span:
    """One live span; records itself into the owning telemetry on exit."""

    __slots__ = ("_tele", "name", "cat", "tid", "args", "t0")

    def __init__(self, tele: "Telemetry", name: str, cat: str, tid: int,
                 args: dict):
        self._tele = tele
        self.name = name
        self.cat = cat
        self.tid = tid
        self.args = args

    def __enter__(self) -> "_Span":
        self.t0 = self._tele.clock()
        return self

    def __exit__(self, *exc) -> bool:
        tele = self._tele
        tele.events.append((self.name, self.cat, self.t0,
                            tele.clock() - self.t0, self.tid, self.args))
        return False


class Telemetry:
    """A run-scoped collection of spans, counters and gauges.

    ``events`` holds complete spans as plain tuples
    ``(name, cat, ts_ns, dur_ns, tid, args)`` — picklable, so worker
    processes ship their events back to the parent wholesale
    (:meth:`take_events` / :meth:`adopt`).
    """

    def __init__(self, enabled: bool = False,
                 clock: Callable[[], int] = time.monotonic_ns):
        self.enabled = enabled
        self.clock = clock
        self.events: list[tuple] = []
        self.counters: dict[str, int] = {}
        self.gauges: dict[str, float] = {}

    # ------------------------------------------------------------- recording
    def span(self, name: str, cat: str = "run", tid: int = 0, **args):
        """Context manager timing one unit of work (no-op when disabled)."""
        if not self.enabled:
            return NULL_SPAN
        return _Span(self, name, cat, tid, args)

    def count(self, name: str, n: int = 1) -> None:
        """Bump a monotonic counter (always on)."""
        c = self.counters
        c[name] = c.get(name, 0) + n

    def gauge(self, name: str, value: float) -> None:
        """Record the latest value of a level-style metric (always on)."""
        self.gauges[name] = value

    def instant(self, name: str, cat: str = "run", tid: int = 0,
                **args) -> None:
        """A zero-duration marker event (no-op when disabled)."""
        if self.enabled:
            self.events.append((name, cat, self.clock(), 0, tid, args))

    # ------------------------------------------------- cross-process merging
    def take_events(self) -> list[tuple]:
        """Detach and return the recorded spans (worker → wire)."""
        events, self.events = self.events, []
        return events

    def adopt(self, events: list[tuple], tid: int) -> None:
        """Merge spans shipped from another process, re-tagged to ``tid``."""
        self.events.extend((name, cat, ts, dur, tid, args)
                           for name, cat, ts, dur, _tid, args in events)

    def merge_counters(self, counters: dict[str, int]) -> None:
        for name, n in counters.items():
            self.count(name, n)

    # ------------------------------------------------------------- lifecycle
    def reset(self) -> None:
        self.events = []
        self.counters = {}
        self.gauges = {}

    # ------------------------------------------------------------ reporting
    def span_stats(self) -> dict[str, tuple[int, int]]:
        """Aggregate spans by name: ``{name: (count, total_ns)}``."""
        stats: dict[str, tuple[int, int]] = {}
        for name, _cat, _ts, dur, _tid, _args in self.events:
            n, total = stats.get(name, (0, 0))
            stats[name] = (n + 1, total + dur)
        return stats
