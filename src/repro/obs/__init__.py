"""Run telemetry: spans, counters, gauges, Chrome trace export.

The process-wide singleton :data:`TELEMETRY` is what the engine, the VM's
superblock compiler, the QUAD drains and the parallel pipeline record
into by default; code that wants an isolated collection (tests, the
worker processes) builds its own :class:`Telemetry` and passes it down
explicitly.

Usage::

    from repro import obs

    obs.enable()
    ... run a profile ...
    obs.write_chrome_trace(obs.TELEMETRY, "run.json")   # open in Perfetto
    print(obs.summary_table(obs.TELEMETRY))
    obs.disable()

Module-level :func:`span` / :func:`count` / :func:`gauge` are bound
methods of the singleton — the call sites stay one name long and the
singleton is never replaced, only reset.
"""

from .core import NULL_SPAN, Telemetry
from .summary import summary_table
from .trace import MAIN_TID, to_chrome_trace, write_chrome_trace

#: The process-wide default collection (tracing disabled until
#: :func:`enable`; counters/gauges are always on).
TELEMETRY = Telemetry()

span = TELEMETRY.span
count = TELEMETRY.count
gauge = TELEMETRY.gauge
instant = TELEMETRY.instant


def enable() -> Telemetry:
    """Turn span tracing on for the process-wide collection."""
    TELEMETRY.enabled = True
    return TELEMETRY


def disable() -> None:
    TELEMETRY.enabled = False


def reset() -> None:
    TELEMETRY.reset()


__all__ = [
    "Telemetry", "TELEMETRY", "NULL_SPAN", "MAIN_TID",
    "span", "count", "gauge", "instant",
    "enable", "disable", "reset",
    "to_chrome_trace", "write_chrome_trace", "summary_table",
]
