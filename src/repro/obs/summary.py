"""End-of-run telemetry summary: a plain-text table of where time went.

Spans are aggregated by name (count, total and mean wall time), followed
by the counters and gauges.  The table is what the CLI prints to stderr
after a run with ``--trace-out`` — the ten-second view, with the full
timeline in the exported Chrome trace.
"""

from __future__ import annotations

from .core import Telemetry


def _fmt_ms(ns: int) -> str:
    return f"{ns / 1e6:,.2f}"


def summary_table(tele: Telemetry) -> str:
    """Render the aggregated spans + counters + gauges as a table."""
    lines = ["== telemetry summary =="]
    stats = tele.span_stats()
    if stats:
        lines.append(f"{'span':<28}{'count':>8}{'total ms':>12}"
                     f"{'mean ms':>12}")
        for name, (n, total) in sorted(stats.items(),
                                       key=lambda kv: -kv[1][1]):
            lines.append(f"{name:<28}{n:>8}{_fmt_ms(total):>12}"
                         f"{_fmt_ms(total // n):>12}")
    if tele.counters:
        lines.append("")
        lines.append(f"{'counter':<40}{'value':>14}")
        for name in sorted(tele.counters):
            lines.append(f"{name:<40}{tele.counters[name]:>14,}")
    if tele.gauges:
        lines.append("")
        lines.append(f"{'gauge':<40}{'value':>14}")
        for name in sorted(tele.gauges):
            v = tele.gauges[name]
            text = f"{v:,.0f}" if float(v).is_integer() else f"{v:,.3f}"
            lines.append(f"{name:<40}{text:>14}")
    if len(lines) == 1:
        lines.append("(no telemetry recorded)")
    return "\n".join(lines)
