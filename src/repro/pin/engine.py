"""The Pin-workalike dynamic binary instrumentation engine.

The engine owns a :class:`~repro.vm.machine.Machine` and hooks its code
cache: the first time a program counter is reached the registered
*instrumentation* callbacks run once, deciding which *analysis* calls to
insert before the instruction (paper §IV-B: "the JIT compiles and instruments
the application code, which is then stored in the code cache").

API surface mirrors the slice of Pin the tQUAD paper uses (Figures 3–5):

* ``INS_AddInstrumentFunction`` / ``RTN_AddInstrumentFunction``
* ``INS.InsertCall`` / ``INS.InsertPredicatedCall`` with ``IARG_*``
* routine objects carrying name/image (``PIN_InitSymbols`` analogue: symbol
  information is always available from the Program's routine table)
* ``AddFiniFunction``

Predication semantics match Pin: a call inserted with
``InsertPredicatedCall`` is skipped when the instruction's guard register is
false; a plain ``InsertCall`` always runs.
"""

from __future__ import annotations

from typing import Callable

from ..isa.instruction import NO_PRED, Instr
from ..isa.registers import RA, SP
from ..obs import TELEMETRY as _TELEMETRY
from ..vm.errors import InstructionBudgetExceeded
from ..vm.filesystem import GuestFS
from ..vm.layout import DEFAULT_MEM_SIZE, index_to_pc
from ..vm.machine import Machine, StepFn
from ..vm.program import Program, Routine
from ..vm.superblock import FALLBACK, InsPlan
from .iargs import IARG, IPOINT, STATIC_IARGS


class _AnalysisCall:
    """One requested analysis-call insertion."""

    __slots__ = ("fn", "iargs", "predicated")

    def __init__(self, fn: Callable, iargs: tuple[IARG, ...],
                 predicated: bool):
        self.fn = fn
        self.iargs = iargs
        self.predicated = predicated


class INS:
    """Instrumentation-time view of one instruction."""

    __slots__ = ("index", "ins", "_engine", "_calls")

    def __init__(self, index: int, ins: Instr, engine: "PinEngine"):
        self.index = index
        self.ins = ins
        self._engine = engine
        self._calls: list[_AnalysisCall] = []

    # -- inspection (Pin's INS_* predicates) --------------------------------
    def Address(self) -> int:
        return index_to_pc(self.index)

    def IsMemoryRead(self) -> bool:
        return self.ins.is_memory_read()

    def IsMemoryWrite(self) -> bool:
        return self.ins.is_memory_write()

    def MemoryReadSize(self) -> int:
        return self.ins.memory_read_size()

    def MemoryWriteSize(self) -> int:
        return self.ins.memory_write_size()

    def IsRet(self) -> bool:
        return self.ins.is_ret()

    def IsCall(self) -> bool:
        return self.ins.is_call()

    def IsBranch(self) -> bool:
        return self.ins.is_branch()

    def IsPrefetch(self) -> bool:
        return self.ins.is_prefetch()

    def IsPredicated(self) -> bool:
        return self.ins.is_predicated()

    def Mnemonic(self) -> str:
        return self.ins.info.name

    def Routine(self) -> "RTN | None":
        rtn = self._engine.program.routine_at(self.index)
        return RTN(rtn, self._engine) if rtn is not None else None

    # -- insertion -----------------------------------------------------------
    def InsertCall(self, point: IPOINT, fn: Callable, *iargs: IARG) -> None:
        if point is not IPOINT.BEFORE:
            raise ValueError("only IPOINT.BEFORE is supported")
        self._calls.append(_AnalysisCall(fn, iargs, predicated=False))

    def InsertPredicatedCall(self, point: IPOINT, fn: Callable,
                             *iargs: IARG) -> None:
        if point is not IPOINT.BEFORE:
            raise ValueError("only IPOINT.BEFORE is supported")
        self._calls.append(_AnalysisCall(fn, iargs, predicated=True))


class RTN:
    """Instrumentation-time view of one routine (function)."""

    __slots__ = ("routine", "_engine", "_calls")

    def __init__(self, routine: Routine, engine: "PinEngine"):
        self.routine = routine
        self._engine = engine
        self._calls: list[_AnalysisCall] = []

    def Name(self) -> str:
        return self.routine.name

    def ImageName(self) -> str:
        return self.routine.image

    def IsMainImage(self) -> bool:
        return self.routine.image == "main"

    def Address(self) -> int:
        return self.routine.start_pc

    def Size(self) -> int:
        return self.routine.size

    def InsertCall(self, point: IPOINT, fn: Callable, *iargs: IARG) -> None:
        """Insert an analysis call at the routine's entry."""
        if point is not IPOINT.BEFORE:
            raise ValueError("only IPOINT.BEFORE is supported")
        self._calls.append(_AnalysisCall(fn, iargs, predicated=False))


_UNPLANNED = object()


class PinEngine:
    """Instruments and runs one guest program."""

    def __init__(self, program: Program, *, fs: GuestFS | None = None,
                 mem_size: int = DEFAULT_MEM_SIZE, jit: bool = True,
                 snapshot=None):
        self.program = program
        if snapshot is not None:
            mem_size = snapshot.mem_size
        self.machine = Machine(program, fs=fs, mem_size=mem_size, jit=jit)
        if snapshot is not None:
            self.machine.restore(snapshot)
        self.machine.instrument_hook = self._instrument
        self.machine.block_instrumenter = self
        self._ins_cbs: list[Callable[[INS], None]] = []
        self._rtn_cbs: list[Callable[[RTN], None]] = []
        self._fini_cbs: list[Callable[[int], None]] = []
        self.analysis_calls_inserted = 0
        # instrumentation results are memoized per static instruction so the
        # callbacks run exactly once even when the index is visited both by
        # the superblock builder (possibly via overlapping blocks) and by the
        # per-instruction tier (budget tail / jit=False)
        self._thunk_cache: dict[int, list[tuple[Callable[[], None],
                                                _AnalysisCall]]] = {}
        self._plan_cache: dict[int, object] = {}

    # ------------------------------------------------------------ Pin API
    def INS_AddInstrumentFunction(self, cb: Callable[[INS], None]) -> None:
        self._ins_cbs.append(cb)

    def RTN_AddInstrumentFunction(self, cb: Callable[[RTN], None]) -> None:
        self._rtn_cbs.append(cb)

    def AddFiniFunction(self, cb: Callable[[int], None]) -> None:
        self._fini_cbs.append(cb)

    def add_tool(self, tool: "object") -> "object":
        """Attach a tool object exposing ``attach(engine)`` (our pintools)."""
        tool.attach(self)
        return tool

    def run(self, max_instructions: int | None = None) -> int:
        """Execute the instrumented program; returns the guest exit code."""
        code = self.machine.run(max_instructions=max_instructions)
        for cb in self._fini_cbs:
            cb(code)
        return code

    def run_until(self, icount: int) -> int | None:
        """Run until the machine's ``icount`` reaches ``icount`` exactly, or
        the guest exits, whichever comes first.

        Returns the guest exit code if the program finished (fini callbacks
        run), else ``None`` — the machine is then *paused* at an instruction
        boundary with ``machine.icount == icount`` and can be snapshotted or
        resumed (``halted`` is reset so another ``run``/``run_until`` call
        continues).  Fini callbacks do **not** run on a pause.
        """
        m = self.machine
        budget = icount - m.icount
        if budget < 0:
            raise ValueError(f"target icount {icount} already passed "
                             f"(at {m.icount})")
        try:
            code = m.run(max_instructions=budget)
        except InstructionBudgetExceeded:
            m.halted = False
            return None
        for cb in self._fini_cbs:
            cb(code)
        return code

    # ------------------------------------------------------- thunk building
    def _resolve_static(self, arg: IARG, index: int, ins: Instr,
                        rtn: Routine | None):
        if arg is IARG.INST_PTR:
            return index_to_pc(index)
        if arg is IARG.MEMORY_SIZE:
            return ins.info.mem_read or ins.info.mem_write
        if arg is IARG.IS_PREFETCH:
            return ins.info.is_prefetch
        if arg is IARG.RTN_NAME:
            return rtn.name if rtn else "?"
        if arg is IARG.RTN_IMAGE:
            return rtn.image if rtn else "?"
        raise ValueError(f"{arg} is not static")

    def _build_thunk(self, call: _AnalysisCall, index: int,
                     ins: Instr) -> Callable[[], None]:
        """Compile one analysis call into a zero-argument thunk."""
        m = self.machine
        x = m.x
        fn = call.fn
        rtn = self.program.routine_at(index)
        iargs = call.iargs
        self.analysis_calls_inserted += 1
        # memoized per static instruction (see _thunk_cache), so this is
        # bounded by program size, not by execution length
        _TELEMETRY.count("pin/analysis_calls_inserted")

        if all(a in STATIC_IARGS for a in iargs):
            consts = tuple(self._resolve_static(a, index, ins, rtn)
                           for a in iargs)
            if not consts:
                return fn
            return lambda: fn(*consts)

        # Fast paths for the descriptor shapes the profilers actually use.
        rs1, imm = ins.rs1, ins.imm
        size = ins.info.mem_read or ins.info.mem_write
        if iargs == (IARG.MEMORY_EA, IARG.MEMORY_SIZE, IARG.REG_SP):
            return lambda: fn(x[rs1] + imm, size, x[SP])
        if iargs == (IARG.MEMORY_EA, IARG.MEMORY_SIZE):
            return lambda: fn(x[rs1] + imm, size)
        if iargs == (IARG.MEMORY_EA, IARG.MEMORY_SIZE, IARG.REG_SP,
                     IARG.IS_PREFETCH):
            pf = ins.info.is_prefetch
            return lambda: fn(x[rs1] + imm, size, x[SP], pf)

        # Generic: mix of static constants and dynamic extractors.
        extractors = []
        for a in iargs:
            if a in STATIC_IARGS:
                const = self._resolve_static(a, index, ins, rtn)
                extractors.append(lambda _c=const: _c)
            elif a is IARG.MEMORY_EA:
                extractors.append(lambda: x[rs1] + imm)
            elif a is IARG.REG_SP:
                extractors.append(lambda: x[SP])
            elif a is IARG.ICOUNT:
                extractors.append(lambda: m.icount)
            elif a is IARG.RETURN_PC:
                extractors.append(lambda: x[RA])
            else:  # pragma: no cover
                raise ValueError(f"unsupported IARG {a}")
        extractors = tuple(extractors)
        return lambda: fn(*[e() for e in extractors])

    # ------------------------------------------------------- the JIT hook
    def _thunks_for(self, index: int, ins: Instr
                    ) -> list[tuple[Callable[[], None], _AnalysisCall]]:
        """Run the instrumentation callbacks for ``index`` (once, memoized)
        and return the compiled analysis thunks in insertion order.

        Routine-entry instrumentation fires when the first instruction of a
        routine is compiled; its calls run before the instruction's own.
        """
        entry = self._thunk_cache.get(index)
        if entry is not None:
            return entry
        calls: list[_AnalysisCall] = []
        rtn = self.program.routine_at(index)
        if rtn is not None and index == rtn.start and self._rtn_cbs:
            robj = RTN(rtn, self)
            for cb in self._rtn_cbs:
                cb(robj)
            calls.extend(robj._calls)
        if self._ins_cbs:
            iobj = INS(index, ins, self)
            for cb in self._ins_cbs:
                cb(iobj)
            calls.extend(iobj._calls)
        entry = [(self._build_thunk(c, index, ins), c) for c in calls]
        self._thunk_cache[index] = entry
        return entry

    def _instrument(self, index: int, ins: Instr, base: StepFn) -> StepFn:
        """Machine compile hook: wrap ``base`` with analysis calls."""
        always: list[Callable[[], None]] = []
        predicated: list[Callable[[], None]] = []
        for thunk, call in self._thunks_for(index, ins):
            if call.predicated and ins.pred != NO_PRED:
                predicated.append(thunk)
            else:
                always.append(thunk)
        return self._compose(ins, base, always, predicated)

    # ------------------------------------------------- the superblock hook
    def plan(self, index: int, ins: Instr):
        """Block-plan provider for :mod:`repro.vm.superblock`.

        Returns ``None`` (no analysis on this instruction),
        :data:`~repro.vm.superblock.FALLBACK` (per-instruction visibility
        required — any analysis on a *predicated* instruction, where Pin's
        guard semantics gate the calls), or an
        :class:`~repro.vm.superblock.InsPlan` whose thunks/record sinks the
        block compiler inlines.  Analysis thunks run with ``machine.icount``
        restored to its exact per-instruction value, so arbitrary tools
        (gprof-sim, QUAD, imix, …) stay fused.
        """
        plan = self._plan_cache.get(index, _UNPLANNED)
        if plan is not _UNPLANNED:
            return plan
        thunks = self._thunks_for(index, ins)
        if not thunks:
            plan = None
        elif ins.pred != NO_PRED:
            plan = FALLBACK
        else:
            pre: list[Callable[[], None]] = []
            read_sinks: list = []
            write_sinks: list = []
            rec_shape = (IARG.MEMORY_EA, IARG.MEMORY_SIZE, IARG.REG_SP)
            for thunk, call in thunks:
                sink = getattr(call.fn, "record_sink", None)
                if sink is not None and call.iargs == rec_shape:
                    kind = call.fn.record_kind
                    if (kind == "read" and ins.info.mem_read
                            and not ins.info.is_prefetch):
                        read_sinks.append(sink)
                        continue
                    if kind == "write" and ins.info.mem_write:
                        write_sinks.append(sink)
                        continue
                pre.append(thunk)
            plan = InsPlan(tuple(pre), tuple(read_sinks),
                           tuple(write_sinks))
        self._plan_cache[index] = plan
        return plan

    def _compose(self, ins: Instr, base: StepFn,
                 always: list[Callable[[], None]],
                 predicated: list[Callable[[], None]]) -> StepFn:
        x = self.machine.x
        pred = ins.pred

        if pred == NO_PRED:
            if not always:
                return base
            if len(always) == 1:
                t0 = always[0]
                return lambda pc: (t0(), base(pc))[-1]
            if len(always) == 2:
                t0, t1 = always
                return lambda pc: (t0(), t1(), base(pc))[-1]
            thunks = tuple(always)

            def fn(pc):
                for t in thunks:
                    t()
                return base(pc)
            return fn

        a_thunks = tuple(always)
        p_thunks = tuple(predicated)

        def fn(pc):
            for t in a_thunks:
                t()
            if x[pred]:
                for t in p_thunks:
                    t()
                return base(pc)
            return pc + 1
        return fn
