"""Pin-workalike dynamic binary instrumentation framework.

Usage mirrors a Pin tool::

    engine = PinEngine(program)

    def instrument(ins: INS) -> None:
        if ins.IsMemoryRead():
            ins.InsertPredicatedCall(IPOINT.BEFORE, on_read,
                                     IARG.MEMORY_EA, IARG.MEMORY_SIZE,
                                     IARG.REG_SP)

    engine.INS_AddInstrumentFunction(instrument)
    engine.run()
"""

from .engine import INS, RTN, PinEngine
from .tracer import MemoryTrace, MemoryTraceTool
from .iargs import IARG, IPOINT, STATIC_IARGS

__all__ = ["PinEngine", "INS", "RTN", "IARG", "IPOINT", "STATIC_IARGS",
           "MemoryTraceTool", "MemoryTrace"]
