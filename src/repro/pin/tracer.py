"""MemoryTraceTool — a raw access-trace recorder built on the Pin API.

Records ``(icount, kernel, address, size, is_write)`` tuples into bounded
NumPy buffers.  This is the "everything" tool: tQUAD, QUAD and any offline
analysis can be recomputed from such a trace, at the cost of memory — which
is why the paper's tools aggregate online instead.  Useful for debugging the
profilers (the test suite cross-checks tQUAD's ledger against a trace) and
for exporting workloads to external cache/NoC simulators.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.callstack import CallStack
from .engine import INS, PinEngine, RTN
from .iargs import IARG, IPOINT


@dataclass
class MemoryTrace:
    """A finished trace (struct-of-arrays)."""

    icount: np.ndarray        #: retired-instruction stamp of each access
    kernel_id: np.ndarray     #: index into ``kernels``
    address: np.ndarray
    size: np.ndarray
    is_write: np.ndarray      #: bool
    kernels: list[str]
    truncated: bool           #: True if the buffer limit was hit

    def __len__(self) -> int:
        return len(self.icount)

    def for_kernel(self, name: str) -> "MemoryTrace":
        """Sub-trace of one kernel."""
        kid = self.kernels.index(name)
        mask = self.kernel_id == kid
        return MemoryTrace(self.icount[mask], self.kernel_id[mask],
                           self.address[mask], self.size[mask],
                           self.is_write[mask], self.kernels,
                           self.truncated)

    def bytes_moved(self, *, write: bool | None = None) -> int:
        if write is None:
            return int(self.size.sum())
        mask = self.is_write if write else ~self.is_write
        return int(self.size[mask].sum())

    def slice_totals(self, interval: int, *,
                     write: bool | None = None) -> np.ndarray:
        """Bytes per time slice — tQUAD's ledger recomputed offline."""
        if interval <= 0:
            raise ValueError("interval must be positive")
        if write is None:
            stamps, sizes = self.icount, self.size
        else:
            mask = self.is_write if write else ~self.is_write
            stamps, sizes = self.icount[mask], self.size[mask]
        if len(stamps) == 0:
            return np.zeros(0, dtype=np.int64)
        slices = (stamps - 1) // interval
        out = np.zeros(int(slices.max()) + 1, dtype=np.int64)
        np.add.at(out, slices, sizes)
        return out

    def save_npz(self, path) -> None:
        np.savez_compressed(path, icount=self.icount,
                            kernel_id=self.kernel_id, address=self.address,
                            size=self.size, is_write=self.is_write,
                            kernels=np.array(self.kernels),
                            truncated=np.array(self.truncated))

    @staticmethod
    def load_npz(path) -> "MemoryTrace":
        data = np.load(path, allow_pickle=False)
        return MemoryTrace(icount=data["icount"],
                           kernel_id=data["kernel_id"],
                           address=data["address"], size=data["size"],
                           is_write=data["is_write"],
                           kernels=[str(k) for k in data["kernels"]],
                           truncated=bool(data["truncated"]))


class MemoryTraceTool:
    """Pintool recording every (predicated-true, non-prefetch) access."""

    def __init__(self, *, limit: int = 1_000_000):
        if limit <= 0:
            raise ValueError("limit must be positive")
        self.limit = limit
        self.callstack = CallStack()
        self._rows: list[tuple[int, int, int, int, bool]] = []
        self._kernel_ids: dict[str, int] = {}
        self._machine = None
        self.truncated = False

    def attach(self, engine: PinEngine) -> "MemoryTraceTool":
        if self._machine is not None:
            raise RuntimeError("tool already attached")
        self._machine = engine.machine
        engine.INS_AddInstrumentFunction(self._instrument)
        engine.RTN_AddInstrumentFunction(self._instrument_rtn)
        return self

    def _instrument(self, ins: INS) -> None:
        if ins.IsPrefetch():
            return
        if ins.IsMemoryRead():
            ins.InsertPredicatedCall(IPOINT.BEFORE, self._on_read,
                                     IARG.MEMORY_EA, IARG.MEMORY_SIZE)
        if ins.IsMemoryWrite():
            ins.InsertPredicatedCall(IPOINT.BEFORE, self._on_write,
                                     IARG.MEMORY_EA, IARG.MEMORY_SIZE)
        if ins.IsRet():
            ins.InsertCall(IPOINT.BEFORE, self.callstack.on_ret)

    def _instrument_rtn(self, rtn: RTN) -> None:
        rtn.InsertCall(IPOINT.BEFORE, self.callstack.enter,
                       IARG.RTN_NAME, IARG.RTN_IMAGE)

    def _record(self, ea: int, size: int, is_write: bool) -> None:
        rows = self._rows
        if len(rows) >= self.limit:
            self.truncated = True
            return
        name = self.callstack.current_kernel or "?"
        kid = self._kernel_ids.get(name)
        if kid is None:
            kid = self._kernel_ids[name] = len(self._kernel_ids)
        rows.append((self._machine.icount, kid, ea, size, is_write))

    def _on_read(self, ea: int, size: int) -> None:
        self._record(ea, size, False)

    def _on_write(self, ea: int, size: int) -> None:
        self._record(ea, size, True)

    def trace(self) -> MemoryTrace:
        rows = self._rows
        if rows:
            arr = np.array(rows, dtype=np.int64)
            icount, kid, addr, size = (arr[:, 0], arr[:, 1], arr[:, 2],
                                       arr[:, 3])
            is_write = arr[:, 4].astype(bool)
        else:
            icount = kid = addr = size = np.zeros(0, dtype=np.int64)
            is_write = np.zeros(0, dtype=bool)
        kernels = [name for name, _ in sorted(self._kernel_ids.items(),
                                              key=lambda kv: kv[1])]
        return MemoryTrace(icount=icount, kernel_id=kid, address=addr,
                           size=size, is_write=is_write, kernels=kernels,
                           truncated=self.truncated)
