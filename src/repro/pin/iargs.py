"""Argument descriptors for analysis-call insertion (Pin's ``IARG_*``).

An analysis routine receives the values named by these descriptors at every
dynamic execution of the instrumented instruction.  Descriptors split into
*static* ones (resolvable when the instruction is compiled: sizes, names,
addresses) and *dynamic* ones (effective address, stack pointer, instruction
count), exactly like Pin distinguishes immediates from runtime operands.
"""

from __future__ import annotations

import enum


class IARG(enum.Enum):
    INST_PTR = "inst_ptr"              #: byte PC of the instruction (static)
    MEMORY_EA = "memory_ea"            #: effective address (dynamic)
    MEMORY_SIZE = "memory_size"        #: operand bytes (static)
    IS_PREFETCH = "is_prefetch"        #: prefetch flag (static)
    REG_SP = "reg_sp"                  #: stack pointer value (dynamic)
    ICOUNT = "icount"                  #: retired instruction count (dynamic)
    RTN_NAME = "rtn_name"              #: routine name (static)
    RTN_IMAGE = "rtn_image"            #: image the routine belongs to (static)
    RETURN_PC = "return_pc"            #: byte PC the ret will jump to (dynamic)


#: Descriptors whose value is fixed at instrumentation time.
STATIC_IARGS = frozenset({IARG.INST_PTR, IARG.MEMORY_SIZE, IARG.IS_PREFETCH,
                          IARG.RTN_NAME, IARG.RTN_IMAGE})


class IPOINT(enum.Enum):
    BEFORE = "before"
