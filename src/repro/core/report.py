"""tQUAD profiling results: queries and formatted tables."""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..vm.program import MAIN_IMAGE
from .ledger import BandwidthLedger, KernelSeries
from .machine_model import MachineModel, PAPER_MACHINE
from .options import TQuadOptions


@dataclass
class KernelSummary:
    """Table-IV-style per-kernel numbers."""

    name: str
    activity_span: int                 #: active slices (stack included)
    first_slice: int
    last_slice: int
    avg_read_incl: float               #: bytes/instruction
    avg_read_excl: float
    avg_write_incl: float
    avg_write_excl: float
    max_bw_incl: float                 #: peak (R+W) bytes/instruction
    max_bw_excl: float
    total_bytes_incl: int
    total_bytes_excl: int


@dataclass
class TQuadReport:
    """Results of one tQUAD run."""

    ledger: BandwidthLedger
    options: TQuadOptions
    total_instructions: int
    images: dict[str, str] = field(default_factory=dict)
    #: False when produced from a crashed/aborted run (partial data).
    complete: bool = True

    # ------------------------------------------------------------- basics
    @property
    def interval(self) -> int:
        return self.ledger.interval

    @property
    def n_slices(self) -> int:
        """Total slices covering the run (paper: "64 time slices were
        counted representing the execution of more than six billion
        instructions")."""
        if self.total_instructions == 0:
            return 0
        return (self.total_instructions - 1) // self.interval + 1

    def kernels(self, *, main_image_only: bool = True) -> list[str]:
        names = self.ledger.kernels()
        if self.options.kernels is not None:
            allowed = set(self.options.kernels)
            names = [n for n in names if n in allowed]
        if main_image_only:
            names = [n for n in names
                     if self.images.get(n, MAIN_IMAGE) == MAIN_IMAGE]
        return names

    def series(self, name: str) -> KernelSeries:
        return self.ledger.series(name)

    # ------------------------------------------------------------ summaries
    def summary(self, name: str) -> KernelSummary:
        s = self.series(name)
        first, last, span = s.activity_span(include_stack=True)
        return KernelSummary(
            name=name,
            activity_span=span, first_slice=first, last_slice=last,
            avg_read_incl=s.average_bandwidth(write=False, include_stack=True),
            avg_read_excl=s.average_bandwidth(write=False,
                                              include_stack=False),
            avg_write_incl=s.average_bandwidth(write=True,
                                               include_stack=True),
            avg_write_excl=s.average_bandwidth(write=True,
                                               include_stack=False),
            max_bw_incl=s.max_bandwidth(include_stack=True),
            max_bw_excl=s.max_bandwidth(include_stack=False),
            total_bytes_incl=(s.total(write=False, include_stack=True)
                              + s.total(write=True, include_stack=True)),
            total_bytes_excl=(s.total(write=False, include_stack=False)
                              + s.total(write=True, include_stack=False)),
        )

    def summaries(self, *, main_image_only: bool = True
                  ) -> list[KernelSummary]:
        return [self.summary(n)
                for n in self.kernels(main_image_only=main_image_only)]

    def top_kernels(self, k: int, *, include_stack: bool = True,
                    main_image_only: bool = True) -> list[str]:
        """Kernels ranked by total traffic."""
        def total(name: str) -> int:
            s = self.series(name)
            return (s.total(write=False, include_stack=include_stack)
                    + s.total(write=True, include_stack=include_stack))
        names = self.kernels(main_image_only=main_image_only)
        return sorted(names, key=total, reverse=True)[:k]

    # ------------------------------------------------------- matrix views
    def bandwidth_matrix(self, kernels: list[str] | None = None, *,
                         write: bool = False, include_stack: bool = True
                         ) -> tuple[list[str], np.ndarray]:
        """Dense (kernel × slice) byte matrix — the data behind the paper's
        Figures 6 and 7."""
        if kernels is None:
            kernels = self.kernels()
        n = self.n_slices
        mat = np.zeros((len(kernels), n), dtype=np.int64)
        for i, name in enumerate(kernels):
            mat[i] = self.series(name).dense(n, write=write,
                                             include_stack=include_stack)
        return kernels, mat

    def activity_matrix(self, kernels: list[str] | None = None, *,
                        include_stack: bool = True
                        ) -> tuple[list[str], np.ndarray]:
        """Boolean (kernel × slice) activity matrix for phase detection."""
        if kernels is None:
            kernels = self.kernels()
        n = self.n_slices
        mat = np.zeros((len(kernels), n), dtype=bool)
        for i, name in enumerate(kernels):
            s = self.series(name)
            dense = (s.dense(n, write=False, include_stack=include_stack)
                     + s.dense(n, write=True, include_stack=include_stack))
            mat[i] = dense > 0
        return kernels, mat

    # --------------------------------------------------------------- totals
    def total_bytes(self, *, write: bool, include_stack: bool) -> int:
        return sum(self.series(n).total(write=write,
                                        include_stack=include_stack)
                   for n in self.ledger.kernels())

    def seconds(self, model: MachineModel = PAPER_MACHINE) -> float:
        """Estimated native runtime under a machine model."""
        return model.seconds(self.total_instructions)

    # ------------------------------------------------------------ rendering
    def format_table(self, *, top: int | None = None) -> str:
        """Human-readable per-kernel table (bytes/instruction units)."""
        names = (self.top_kernels(top) if top is not None
                 else self.kernels())
        rows = [self.summary(n) for n in names]
        head = (f"{'kernel':<28}{'span':>6}{'first':>7}{'last':>7}"
                f"{'avgR(i)':>9}{'avgR(x)':>9}{'avgW(i)':>9}{'avgW(x)':>9}"
                f"{'maxBW(i)':>10}{'maxBW(x)':>10}")
        lines = [head, "-" * len(head)]
        for r in rows:
            lines.append(
                f"{r.name:<28}{r.activity_span:>6}{r.first_slice:>7}"
                f"{r.last_slice:>7}"
                f"{r.avg_read_incl:>9.4f}{r.avg_read_excl:>9.4f}"
                f"{r.avg_write_incl:>9.4f}{r.avg_write_excl:>9.4f}"
                f"{r.max_bw_incl:>10.4f}{r.max_bw_excl:>10.4f}")
        lines.append(f"slices={self.n_slices} interval={self.interval} "
                     f"instructions={self.total_instructions}")
        return "\n".join(lines)
