"""Phase identification (paper §V-B, "Phase identification", Table IV).

tQUAD "analyzes the data to identify the boundaries of potential phases":
kernels that are active in the same time interval are likely related, and the
execution span partitions into phases accordingly.  The algorithm here:

1. build the boolean kernel×slice activity matrix;
2. close small gaps (a kernel that pauses for a few slices is still "active");
3. segment the timeline into maximal runs of identical active-kernel sets;
4. agglomeratively merge adjacent segments whose kernel sets are similar
   (Jaccard similarity above a threshold), preferring the most similar pair —
   this absorbs jitter like the paper's "kernels activated in a short period
   of time outside the identified span";
5. merge segments shorter than a minimum length into their more similar
   neighbour.

The result is a :class:`PhaseAnalysis` that renders a Table-IV-style report.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .report import TQuadReport


@dataclass
class PhaseKernelStats:
    """Per-kernel numbers within one phase (a Table IV row)."""

    name: str
    activity_span: int             #: active slices inside the phase
    avg_read_incl: float           #: bytes/instruction, stack included
    avg_read_excl: float
    avg_write_incl: float
    avg_write_excl: float
    max_bw_incl: float             #: peak R+W bytes/instruction
    max_bw_excl: float


@dataclass
class Phase:
    """One detected execution phase."""

    index: int
    start_slice: int               #: inclusive
    end_slice: int                 #: inclusive
    kernels: list[PhaseKernelStats] = field(default_factory=list)
    label: str = ""

    @property
    def span(self) -> int:
        return self.end_slice - self.start_slice + 1

    @property
    def aggregate_mbw(self) -> float:
        """Sum of the kernels' maximum bandwidth usages, stack included
        ("aggregate MBW" column of Table IV)."""
        return sum(k.max_bw_incl for k in self.kernels)

    def kernel_names(self) -> list[str]:
        return [k.name for k in self.kernels]


def _close_gaps(mat: np.ndarray, window: int) -> np.ndarray:
    """Binary closing along time: bridge inactive gaps up to ``window``."""
    if window <= 0 or mat.size == 0:
        return mat
    out = mat.copy()
    k, n = mat.shape
    for i in range(k):
        row = mat[i]
        active = np.flatnonzero(row)
        if active.size < 2:
            continue
        gaps = np.diff(active)
        for j in np.flatnonzero((gaps > 1) & (gaps <= window + 1)):
            out[i, active[j]:active[j + 1] + 1] = True
    return out


def _jaccard(a: frozenset, b: frozenset) -> float:
    if not a and not b:
        return 1.0
    return len(a & b) / len(a | b)


@dataclass
class _Segment:
    start: int
    end: int
    kernels: frozenset


def _initial_segments(names: list[str], mat: np.ndarray) -> list[_Segment]:
    segments: list[_Segment] = []
    n = mat.shape[1]
    prev: frozenset | None = None
    for t in range(n):
        cur = frozenset(names[i] for i in np.flatnonzero(mat[:, t]))
        if prev is not None and cur == prev:
            segments[-1].end = t
        else:
            segments.append(_Segment(t, t, cur))
        prev = cur
    return segments


def _merge_pass(segments: list[_Segment], threshold: float) -> bool:
    """Merge the most similar adjacent pair above the threshold."""
    best = -1.0
    best_i = -1
    for i in range(len(segments) - 1):
        sim = _jaccard(segments[i].kernels, segments[i + 1].kernels)
        if sim > best:
            best = sim
            best_i = i
    if best_i < 0 or best < threshold:
        return False
    a, b = segments[best_i], segments[best_i + 1]
    segments[best_i] = _Segment(a.start, b.end, a.kernels | b.kernels)
    del segments[best_i + 1]
    return True


def _absorb_short(segments: list[_Segment], min_len: int) -> list[_Segment]:
    changed = True
    while changed and len(segments) > 1:
        changed = False
        for i, seg in enumerate(segments):
            if seg.end - seg.start + 1 >= min_len:
                continue
            left = segments[i - 1] if i > 0 else None
            right = segments[i + 1] if i + 1 < len(segments) else None
            sim_l = _jaccard(seg.kernels, left.kernels) if left else -1.0
            sim_r = _jaccard(seg.kernels, right.kernels) if right else -1.0
            if left is None and right is None:
                break
            if sim_l >= sim_r:
                segments[i - 1] = _Segment(left.start, seg.end,
                                           left.kernels | seg.kernels)
            else:
                segments[i + 1] = _Segment(seg.start, right.end,
                                           right.kernels | seg.kernels)
            del segments[i]
            changed = True
            break
    return segments


def detect_phases(report: TQuadReport, kernels: list[str] | None = None, *,
                  gap_window: int = 2, similarity_threshold: float = 0.6,
                  min_phase_slices: int = 2,
                  max_phases: int | None = None) -> "PhaseAnalysis":
    """Partition the execution span into phases of co-active kernels."""
    if kernels is None:
        kernels = report.kernels()
    names, mat = report.activity_matrix(kernels)
    mat = _close_gaps(mat, gap_window)
    segments = _initial_segments(names, mat)
    # Drop fully idle leading/trailing segments into their neighbours later;
    # idle middle segments merge naturally (empty-set Jaccard with anything
    # is 0, but the short-segment absorption handles them).
    while _merge_pass(segments, similarity_threshold):
        pass
    segments = _absorb_short(segments, min_phase_slices)
    if max_phases is not None:
        while len(segments) > max_phases:
            if not _merge_pass(segments, threshold=-1.0):
                break
    phases = [_build_phase(report, i, seg)
              for i, seg in enumerate(segments) if seg.kernels]
    for i, p in enumerate(phases):
        p.index = i
    return PhaseAnalysis(report=report, phases=phases)


def _build_phase(report: TQuadReport, index: int, seg: _Segment) -> Phase:
    phase = Phase(index=index, start_slice=seg.start, end_slice=seg.end)
    interval = report.interval
    for name in sorted(seg.kernels):
        s = report.series(name)
        mask = (s.slices >= seg.start) & (s.slices <= seg.end)
        combined_incl = (s.read_incl + s.write_incl)[mask]
        active = combined_incl > 0
        n_active = int(active.sum())
        if n_active == 0:
            continue

        def avg(arr: np.ndarray) -> float:
            return float(arr[mask][active].sum()) / (n_active * interval)

        combined_excl = (s.read_excl + s.write_excl)[mask]
        phase.kernels.append(PhaseKernelStats(
            name=name,
            activity_span=n_active,
            avg_read_incl=avg(s.read_incl),
            avg_read_excl=avg(s.read_excl),
            avg_write_incl=avg(s.write_incl),
            avg_write_excl=avg(s.write_excl),
            max_bw_incl=float(combined_incl.max()) / interval,
            max_bw_excl=float(combined_excl.max()) / interval,
        ))
    phase.kernels.sort(key=lambda k: k.activity_span, reverse=True)
    if phase.kernels:
        dominant = max(phase.kernels,
                       key=lambda k: k.avg_read_incl + k.avg_write_incl)
        phase.label = f"phase-{index}:{dominant.name}"
    return phase


@dataclass
class PhaseAnalysis:
    """All detected phases plus rendering helpers."""

    report: TQuadReport
    phases: list[Phase]

    def __len__(self) -> int:
        return len(self.phases)

    def __iter__(self):
        return iter(self.phases)

    def phase_of_slice(self, s: int) -> Phase | None:
        for p in self.phases:
            if p.start_slice <= s <= p.end_slice:
                return p
        return None

    def phase_containing(self, kernel: str) -> Phase | None:
        """The phase where ``kernel`` is most active."""
        best, best_span = None, 0
        for p in self.phases:
            for k in p.kernels:
                if k.name == kernel and k.activity_span > best_span:
                    best, best_span = p, k.activity_span
        return best

    def format_table(self) -> str:
        """Table-IV-style rendering."""
        n = self.report.n_slices
        lines = []
        head = (f"{'phase':<22}{'span':>13}{'%span':>8}  "
                f"{'kernel':<26}{'act':>6}"
                f"{'avgR(i)':>9}{'avgR(x)':>9}{'avgW(i)':>9}{'avgW(x)':>9}"
                f"{'maxBW(i)':>10}{'aggMBW':>9}")
        lines.append(head)
        lines.append("-" * len(head))
        for p in self.phases:
            span = f"{p.start_slice}-{p.end_slice}"
            pct = 100.0 * p.span / max(n, 1)
            first = True
            for k in p.kernels:
                lead = (f"{p.label:<22}{span:>13}{pct:>8.3f}  " if first
                        else " " * 45)
                agg = f"{p.aggregate_mbw:>9.3f}" if first else " " * 9
                lines.append(
                    f"{lead}{k.name:<26}{k.activity_span:>6}"
                    f"{k.avg_read_incl:>9.4f}{k.avg_read_excl:>9.4f}"
                    f"{k.avg_write_incl:>9.4f}{k.avg_write_excl:>9.4f}"
                    f"{k.max_bw_incl:>10.4f}{agg}")
                first = False
        return "\n".join(lines)
