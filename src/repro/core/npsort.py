"""Radix argsort for the replay hot paths.

NumPy's ``kind="stable"`` argsort is a radix sort only for dtypes of
one or two bytes; for wider integers it silently falls back to timsort,
which is 4-6x slower on the key arrays the replay engines sort (packed
(kernel, slice) keys, shadow word addresses).  All of those keys are
non-negative and comfortably below 2**32, so a stable sort decomposes
into two 16-bit radix passes over ``uint16`` views — each pass hits
NumPy's actual radix code path, and stability makes the composition
exact.
"""

from __future__ import annotations

import numpy as np

#: Below this, two passes plus the range check cost more than timsort.
_SMALL = 4096


def stable_argsort(keys: np.ndarray) -> np.ndarray:
    """Indices that stable-sort integer ``keys`` ascending.

    Byte-for-byte the same permutation as ``np.argsort(keys,
    kind="stable")`` — ties keep input order.  Keys in ``[0, 2**32)``
    take the two-pass radix route; anything else (including any
    negative key) falls back to NumPy so the helper is always safe to
    call.
    """
    if keys.size < _SMALL:
        return np.argsort(keys, kind="stable")
    lo, hi = int(keys.min()), int(keys.max())
    if lo < 0 or hi >> 32:
        return np.argsort(keys, kind="stable")
    order = (keys & 0xFFFF).astype(np.uint16).argsort(kind="stable")
    if hi >> 16:
        second = (keys >> 16).astype(np.uint16)[order]
        order = order[second.argsort(kind="stable")]
    return order
