"""tQUAD command-line options (paper §IV-C).

The paper's tool takes three options: the time-slice interval, whether to
include local-stack-area accesses, and whether to exclude memory traffic
caused by library/OS routines.  Our implementation records the
stack-included and stack-excluded byte counts side by side in a single run
(``StackPolicy.BOTH``), which subsumes the paper's either/or switch; the
single-sided policies remain available for overhead experiments.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass


class StackPolicy(enum.Enum):
    INCLUDE = "include"    #: count only the stack-included totals
    EXCLUDE = "exclude"    #: count only the stack-excluded totals
    BOTH = "both"          #: track both views in one pass


@dataclass(frozen=True)
class TQuadOptions:
    """Configuration of one tQUAD profiling run."""

    #: Instructions per time slice.  The paper sweeps 5 000 … 10⁸; our
    #: workloads are smaller, so so is the default.
    slice_interval: int = 5000

    #: How to treat accesses into the live stack region (address ≥ SP).
    stack: StackPolicy = StackPolicy.BOTH

    #: Drop accesses performed while inside library/OS routines.
    exclude_libraries: bool = False

    #: Only these kernels are reported (None = all main-image kernels).
    kernels: tuple[str, ...] | None = None

    def __post_init__(self) -> None:
        if self.slice_interval <= 0:
            raise ValueError("slice_interval must be positive")

    @property
    def track_included(self) -> bool:
        return self.stack in (StackPolicy.INCLUDE, StackPolicy.BOTH)

    @property
    def track_excluded(self) -> bool:
        return self.stack in (StackPolicy.EXCLUDE, StackPolicy.BOTH)
