"""Buffered access recording: the profiler hot path of the superblock tier.

The legacy tQUAD analysis routines do attribution work (call-stack lookup,
slice arithmetic, dict updates) on *every* memory access.  The recording
path splits that into two halves, the same shape low-overhead instrumenters
such as Examem use:

* **record** (hot): append one ``(icount, incl_bytes, excl_bytes,
  kernel_id)`` quad to a flat ``array('q')``.  The stack policy is applied
  *at emission time* — the byte columns already encode
  include/exclude-stack attribution, so the flush needs no ``ea``/``sp``
  replay.  Inside a superblock the appends are inlined into generated code
  and, on the common path, pre-aggregated to one quad per trace segment
  (:mod:`repro.vm.superblock`); on the per-instruction tier the same quads
  are produced by :func:`make_recorder` closures.  ``kernel_id`` is the
  call stack's pre-interned
  :attr:`~repro.core.callstack.CallStack.rec_id` — no strings, no dicts.
* **aggregate** (cold): when a buffer passes its soft capacity (checked at
  superblock entry / in the recorder closures) or at fini,
  :class:`RecordingSink` views the buffer as a NumPy matrix, groups by
  ``(kernel, slice)`` and lands the byte sums in
  :meth:`BandwidthLedger.accumulate`.

The produced ledger history is identical to the legacy per-event path —
the differential tests in ``tests/unit/test_superblock.py`` assert report
equality for every stack policy.
"""

from __future__ import annotations

from array import array

import numpy as np

from .callstack import CallStack
from .ledger import BandwidthLedger
from .options import StackPolicy

#: Soft buffer capacity in *elements* (4 per record): flushes trigger at the
#: first superblock entry (or recorder call) past this size.
DEFAULT_CAP = 1 << 16


class RecordingSink:
    """Flat access buffers plus their NumPy bulk aggregator.

    Implements the record-sink contract of :mod:`repro.vm.superblock`:
    ``read_buf``/``write_buf`` (``array('q')`` of flattened quads), a
    ``tag`` exposing ``rec_id``, ``track_incl``/``track_excl``/``interval``
    describing what the emission side must record, a soft ``cap``, and
    ``flush_read``/``flush_write``.
    """

    __slots__ = ("read_buf", "write_buf", "tag", "cap", "ledger", "policy",
                 "track_incl", "track_excl", "interval")

    def __init__(self, ledger: BandwidthLedger, callstack: CallStack,
                 policy: StackPolicy, *, cap: int = DEFAULT_CAP):
        self.read_buf = array("q")
        self.write_buf = array("q")
        self.tag = callstack
        self.cap = cap
        self.ledger = ledger
        self.policy = policy
        self.track_incl = policy is not StackPolicy.EXCLUDE
        self.track_excl = policy is not StackPolicy.INCLUDE
        self.interval = ledger.interval

    def reset(self) -> None:
        """Drop any unflushed records (for tool reuse across runs)."""
        del self.read_buf[:]
        del self.write_buf[:]

    def flush_read(self) -> None:
        self._flush(self.read_buf, write=False)

    def flush_write(self) -> None:
        self._flush(self.write_buf, write=True)

    def flush(self) -> None:
        self.flush_read()
        self.flush_write()

    def _flush(self, buf: array, *, write: bool) -> None:
        n = len(buf) // 4
        if n == 0:
            return
        arr = np.frombuffer(buf, dtype=np.int64).reshape(n, 4).copy()
        del buf[:]
        kid = arr[:, 3]
        if kid.min() < 0:
            # kid == -1 marks dropped accesses (no kernel yet / excluded
            # library frames); kid <= -2 marks library-frame accesses
            # attributed to kernel ``-2 - kid`` (see CallStack.mark_library)
            mask = kid != -1
            if not mask.all():
                arr = arr[mask]
                if arr.shape[0] == 0:
                    return
                kid = arr[:, 3]
            lib = kid < -1
            if lib.any():
                kid = np.where(lib, -2 - kid, kid)
        ic, incl, excl = arr[:, 0], arr[:, 1], arr[:, 2]
        sl = (ic - 1) // self.interval
        base = int(sl.max()) + 1
        uniq, inv = np.unique(kid * base + sl, return_inverse=True)
        incl_t = np.bincount(inv, weights=incl,
                             minlength=uniq.size).astype(np.int64)
        excl_t = np.bincount(inv, weights=excl,
                             minlength=uniq.size).astype(np.int64)
        names = self.tag.interned_names
        accumulate = self.ledger.accumulate
        for j in range(uniq.size):
            k_id, s = divmod(int(uniq[j]), base)
            if write:
                accumulate(names[k_id], s, 0, 0, int(incl_t[j]),
                           int(excl_t[j]))
            else:
                accumulate(names[k_id], s, int(incl_t[j]), int(excl_t[j]),
                           0, 0)


class CapturingRecordingSink(RecordingSink):
    """A :class:`RecordingSink` that also spills every sealed buffer to a
    capture sink (any object with ``add(stream, data)`` — see
    :mod:`repro.capture.writer`) before aggregating it.

    The hot path is untouched: emission still appends to the same flat
    buffers through the same bound methods, and the capture cost is one
    ``tobytes`` per *flush* (every ~64k elements), not per event.  The
    captured pages are therefore the exact quads the ledger aggregation
    consumed, which is what makes replay byte-identical.
    """

    __slots__ = ("capture",)

    #: stream names, kept in sync with repro.capture.format
    READ_STREAM = "tquad.read"
    WRITE_STREAM = "tquad.write"

    def __init__(self, ledger: BandwidthLedger, callstack: CallStack,
                 policy: StackPolicy, capture, *, cap: int = DEFAULT_CAP):
        super().__init__(ledger, callstack, policy, cap=cap)
        self.capture = capture

    def _flush(self, buf: array, *, write: bool) -> None:
        if buf:
            self.capture.add(self.WRITE_STREAM if write else
                             self.READ_STREAM, buf.tobytes())
        super()._flush(buf, write=write)


def make_recorder(sink: RecordingSink, machine, *, write: bool):
    """A per-instruction-tier analysis routine that records into ``sink``.

    Carries ``record_sink``/``record_kind`` attributes so the Pin engine's
    block planner recognizes it and inlines the equivalent append into
    generated superblocks; when called directly (unfused or budget-tail
    execution) it produces bit-identical quads, reading the exact
    ``machine.icount`` that the per-instruction run loop maintains.  One
    specialization per stack policy keeps the closure branch-free.
    """
    buf = sink.write_buf if write else sink.read_buf
    flush = sink.flush_write if write else sink.flush_read
    tag = sink.tag
    cap = sink.cap

    if sink.track_incl and sink.track_excl:
        def record(ea: int, size: int, sp: int,
                   _a=buf.extend, _buf=buf, _tag=tag, _m=machine) -> None:
            _a((_m.icount, size, size if ea < sp else 0, _tag.rec_id))
            if len(_buf) > cap:
                flush()
    elif sink.track_incl:
        def record(ea: int, size: int, sp: int,
                   _a=buf.extend, _buf=buf, _tag=tag, _m=machine) -> None:
            _a((_m.icount, size, 0, _tag.rec_id))
            if len(_buf) > cap:
                flush()
    else:
        def record(ea: int, size: int, sp: int,
                   _a=buf.extend, _buf=buf, _tag=tag, _m=machine) -> None:
            if ea < sp:
                _a((_m.icount, 0, size, _tag.rec_id))
                if len(_buf) > cap:
                    flush()

    record.record_sink = sink
    record.record_kind = "write" if write else "read"
    return record
