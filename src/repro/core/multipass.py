"""Multi-pass bandwidth estimation (paper §V-B, Table IV method).

"The average memory bandwidth usage is calculated over several passes with
different time slices" and "for some of the kernels … upper bounds are
specified [because] slight inconsistencies in the measurements of the
overall time slices were detected."

:func:`profile_passes` produces tQUAD reports for several slice intervals,
and :class:`MultiPassResult` reports per-kernel averages with the spread
across passes — when the spread is non-negligible, the rendered value
carries the paper's ``<`` upper-bound marker.

Since the capture backend (:mod:`repro.capture`) landed, the passes no
longer re-execute the VM per interval: one instrumented run captures the
access quads at the gcd of the requested intervals, and the whole ladder
comes out of one :func:`repro.sweep.sweep_tquad` pass that decodes each
captured page once (byte-identical to a direct run at each interval —
the property tests assert this).  ``reexecute=True`` keeps the legacy
one-VM-run-per-interval path for differential reference.
"""

from __future__ import annotations

import io
import math
from dataclasses import dataclass
from functools import reduce
from typing import Callable

from ..pin import PinEngine
from .options import TQuadOptions
from .profiler import TQuadTool
from .report import TQuadReport

#: Relative spread above which a measurement is flagged as an upper bound.
INCONSISTENCY_THRESHOLD = 0.05


@dataclass
class BandwidthEstimate:
    """One kernel × metric estimate aggregated over passes."""

    kernel: str
    mean: float               #: bytes/instruction, averaged over passes
    maximum: float
    minimum: float

    @property
    def spread(self) -> float:
        if self.maximum == 0:
            return 0.0
        return (self.maximum - self.minimum) / self.maximum

    @property
    def is_upper_bound(self) -> bool:
        """Paper: values with measurement inconsistencies are reported as
        upper bounds ('<x')."""
        return self.spread > INCONSISTENCY_THRESHOLD

    def render(self, precision: int = 4) -> str:
        text = f"{self.maximum:.{precision}f}"
        return f"<{text}" if self.is_upper_bound else text


@dataclass
class MultiPassResult:
    """tQUAD reports for several slice intervals plus aggregation."""

    reports: dict[int, TQuadReport]

    def __post_init__(self) -> None:
        if not self.reports:
            raise ValueError("at least one pass is required")

    @property
    def intervals(self) -> list[int]:
        return sorted(self.reports)

    @property
    def finest(self) -> TQuadReport:
        return self.reports[self.intervals[0]]

    def kernels(self) -> list[str]:
        return self.finest.kernels()

    def _collect(self, fn: Callable[[TQuadReport], float],
                 kernel: str) -> BandwidthEstimate:
        values = [fn(rep) for rep in self.reports.values()]
        return BandwidthEstimate(kernel=kernel,
                                 mean=sum(values) / len(values),
                                 maximum=max(values), minimum=min(values))

    def average_bandwidth(self, kernel: str, *, write: bool,
                          include_stack: bool) -> BandwidthEstimate:
        return self._collect(
            lambda rep: rep.series(kernel).average_bandwidth(
                write=write, include_stack=include_stack), kernel)

    def max_bandwidth(self, kernel: str, *,
                      include_stack: bool) -> BandwidthEstimate:
        return self._collect(
            lambda rep: rep.series(kernel).max_bandwidth(
                include_stack=include_stack), kernel)

    def total_bytes_consistent(self) -> bool:
        """The conservation check: totals must agree across every pass."""
        totals = {
            (rep.total_bytes(write=False, include_stack=True),
             rep.total_bytes(write=True, include_stack=True))
            for rep in self.reports.values()
        }
        return len(totals) == 1

    def format_table(self, kernels: list[str] | None = None) -> str:
        """Table-IV-style averages with '<' upper-bound markers."""
        if kernels is None:
            kernels = self.kernels()
        head = (f"{'kernel':<26}"
                f"{'avgR(i)':>10}{'avgR(x)':>10}"
                f"{'avgW(i)':>10}{'avgW(x)':>10}"
                f"{'maxBW(i)':>11}{'maxBW(x)':>11}")
        lines = [head, "-" * len(head)]
        for k in kernels:
            cells = [
                self.average_bandwidth(k, write=False, include_stack=True),
                self.average_bandwidth(k, write=False, include_stack=False),
                self.average_bandwidth(k, write=True, include_stack=True),
                self.average_bandwidth(k, write=True, include_stack=False),
            ]
            maxes = [self.max_bandwidth(k, include_stack=True),
                     self.max_bandwidth(k, include_stack=False)]
            lines.append(f"{k:<26}"
                         + "".join(f"{c.render():>10}" for c in cells)
                         + "".join(f"{m.render():>11}" for m in maxes))
        lines.append(f"passes: intervals {self.intervals}")
        return "\n".join(lines)


def profile_passes(build: Callable[[], tuple], intervals: list[int], *,
                   options: TQuadOptions | None = None,
                   max_instructions: int | None = None,
                   reexecute: bool = False) -> MultiPassResult:
    """Produce tQUAD reports for each of ``intervals``.

    ``build()`` must return a fresh ``(program, fs)`` pair per call (the
    machine is single-shot).  ``options`` provides the non-interval
    settings.  By default the guest executes *once*, capturing at the gcd
    of the intervals, and the whole ladder is one sweep-engine pass over
    the capture; ``reexecute=True`` forces the legacy
    one-run-per-interval path (also taken for a single interval, where a
    capture buys nothing).  An empty ``intervals`` list, or any
    non-positive interval, raises :class:`ValueError` before any run.
    """
    from ..sweep.grid import validate_intervals

    validate_intervals(intervals)
    base = options or TQuadOptions()
    reports: dict[int, TQuadReport] = {}
    if reexecute or len(set(intervals)) < 2:
        for interval in intervals:
            program, fs = build()
            opts = TQuadOptions(slice_interval=interval, stack=base.stack,
                                exclude_libraries=base.exclude_libraries,
                                kernels=base.kernels)
            engine = PinEngine(program, fs=fs)
            tool = TQuadTool(opts).attach(engine)
            engine.run(max_instructions=max_instructions)
            reports[interval] = tool.report()
        return MultiPassResult(reports=reports)

    from ..capture import CaptureReader, capture_run, replay_many
    from ..sweep import SweepGrid

    grain = reduce(math.gcd, intervals)
    program, fs = build()
    buf = io.BytesIO()
    capture_run(program, buf, fs=fs,
                options=TQuadOptions(slice_interval=grain,
                                     stack=base.stack,
                                     exclude_libraries=base.exclude_libraries),
                tools=("tquad",), label="multipass",
                max_instructions=max_instructions)
    buf.seek(0)
    grid = SweepGrid(intervals=tuple(intervals), stacks=(base.stack,),
                     library_modes=(base.exclude_libraries,),
                     kernels=base.kernels)
    with CaptureReader(buf) as reader:
        result = replay_many(reader, tools=(), grid=grid).sweep
    reports = result.by_interval(stack=base.stack,
                                 exclude_libraries=base.exclude_libraries)
    return MultiPassResult(reports=reports)
