"""Nominal machine model: instructions → wall-clock conversions.

tQUAD deliberately reports time in instructions, "a platform-independent
implementation of the tool" (paper §II).  Converting to seconds or
bytes/second needs exactly two target-architecture numbers: clock frequency
and sustained IPC.  The default models the paper's testbed, an Intel Core 2
Quad Q9550 at 2.83 GHz.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class MachineModel:
    """Parameters for converting instruction counts to time."""

    frequency_hz: float = 2.83e9
    ipc: float = 1.0
    name: str = "Intel Core 2 Quad Q9550 (nominal)"

    def __post_init__(self) -> None:
        if self.frequency_hz <= 0 or self.ipc <= 0:
            raise ValueError("frequency and IPC must be positive")

    @property
    def instructions_per_second(self) -> float:
        return self.frequency_hz * self.ipc

    def seconds(self, instructions: int | float) -> float:
        """Wall-clock seconds for a given instruction count."""
        return instructions / self.instructions_per_second

    def milliseconds(self, instructions: int | float) -> float:
        return 1e3 * self.seconds(instructions)

    def cycles(self, instructions: int | float) -> float:
        return instructions / self.ipc

    def bytes_per_second(self, bytes_per_instruction: float) -> float:
        """Convert the paper's bytes/instruction unit to bytes/second."""
        return bytes_per_instruction * self.instructions_per_second


#: The paper's experimental platform.
PAPER_MACHINE = MachineModel()
