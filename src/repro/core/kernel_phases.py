"""Kernel-clustering phase identification — the Table IV view.

The paper's five phases *overlap in time* (wave propagation spans slices
540–274868 while WFS main processing starts at 14663): a phase is a group of
kernels with similar activity profiles, and the phase span is the envelope of
its kernels' spans ("the earliest starting point and the latest ending point
in which a kernel in the phase is communicating with the memory").

This module clusters kernels agglomeratively by the Jaccard similarity of
their active-slice sets, then derives per-phase statistics exactly as
Table IV reports them.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .phases import PhaseKernelStats
from .report import TQuadReport


@dataclass
class KernelPhase:
    """One phase: a cluster of co-active kernels with an envelope span."""

    index: int
    start_slice: int
    end_slice: int
    kernels: list[PhaseKernelStats] = field(default_factory=list)
    label: str = ""

    @property
    def span(self) -> int:
        return self.end_slice - self.start_slice + 1

    @property
    def aggregate_mbw(self) -> float:
        """Sum of kernel maximum bandwidths, stack included (Table IV's
        "aggregate MBW")."""
        return sum(k.max_bw_incl for k in self.kernels)

    def kernel_names(self) -> list[str]:
        return [k.name for k in self.kernels]


def _jaccard_matrix(sets: list[frozenset]) -> np.ndarray:
    n = len(sets)
    sim = np.zeros((n, n))
    for i in range(n):
        for j in range(i, n):
            a, b = sets[i], sets[j]
            union = len(a | b)
            s = len(a & b) / union if union else 1.0
            sim[i, j] = sim[j, i] = s
    return sim


def cluster_kernel_phases(report: TQuadReport,
                          kernels: list[str] | None = None, *,
                          similarity_threshold: float = 0.35,
                          max_phases: int | None = None,
                          coarsen_blocks: int = 128
                          ) -> "KernelPhaseAnalysis":
    """Group kernels into phases by activity-profile similarity.

    Average-linkage agglomerative clustering on Jaccard similarity of the
    kernels' active-slice sets; merging stops when the best pair's linkage
    falls below ``similarity_threshold`` (or when ``max_phases`` is reached,
    if given).

    ``coarsen_blocks`` compares activity at a granularity of ~that many
    blocks over the whole run, so kernels that alternate *within* one
    processing iteration (FFT part vs delay part of a chunk) still cluster
    together.  This mirrors the paper's practice of examining "different
    graphs" at several slice intervals before fixing the phases.
    """
    if kernels is None:
        kernels = report.kernels()
    kernels = [k for k in kernels
               if report.series(k).activity_span()[2] > 0]
    if not kernels:
        return KernelPhaseAnalysis(report=report, phases=[])
    n = max(report.n_slices, 1)
    blocks = min(max(coarsen_blocks, 1), n)
    active_sets = []
    for name in kernels:
        s = report.series(name)
        mask = s.active_mask(include_stack=True)
        active_sets.append(frozenset(
            int(v) * blocks // n for v in s.slices[mask]))
    clusters: list[list[int]] = [[i] for i in range(len(kernels))]
    sim = _jaccard_matrix(active_sets)

    def linkage(a: list[int], b: list[int]) -> float:
        return float(np.mean([sim[i, j] for i in a for j in b]))

    while len(clusters) > 1:
        best, bi, bj = -1.0, -1, -1
        for i in range(len(clusters)):
            for j in range(i + 1, len(clusters)):
                s_ij = linkage(clusters[i], clusters[j])
                if s_ij > best:
                    best, bi, bj = s_ij, i, j
        stop_by_threshold = best < similarity_threshold
        if max_phases is None:
            if stop_by_threshold:
                break
        else:
            if len(clusters) <= max_phases and stop_by_threshold:
                break
            if len(clusters) <= max_phases:
                break
        clusters[bi] = clusters[bi] + clusters[bj]
        del clusters[bj]

    phases = []
    for members in clusters:
        names = [kernels[i] for i in members]
        phases.append(_build_kernel_phase(report, names))
    phases.sort(key=lambda p: (p.start_slice, p.end_slice))
    for i, p in enumerate(phases):
        p.index = i
        dominant = max(p.kernels, key=lambda k: k.activity_span)
        p.label = f"phase-{i}:{dominant.name}"
    return KernelPhaseAnalysis(report=report, phases=phases)


def _build_kernel_phase(report: TQuadReport, names: list[str]) -> KernelPhase:
    interval = report.interval
    stats = []
    start, end = None, None
    for name in names:
        s = report.series(name)
        first, last, span = s.activity_span(include_stack=True)
        if span == 0:
            continue
        start = first if start is None else min(start, first)
        end = last if end is None else max(end, last)
        stats.append(PhaseKernelStats(
            name=name,
            activity_span=span,
            avg_read_incl=s.average_bandwidth(write=False,
                                              include_stack=True),
            avg_read_excl=s.average_bandwidth(write=False,
                                              include_stack=False),
            avg_write_incl=s.average_bandwidth(write=True,
                                               include_stack=True),
            avg_write_excl=s.average_bandwidth(write=True,
                                               include_stack=False),
            max_bw_incl=s.max_bandwidth(include_stack=True),
            max_bw_excl=s.max_bandwidth(include_stack=False),
        ))
    stats.sort(key=lambda k: k.activity_span, reverse=True)
    return KernelPhase(index=-1, start_slice=start or 0, end_slice=end or 0,
                       kernels=stats)


@dataclass
class KernelPhaseAnalysis:
    """The Table IV result: possibly-overlapping kernel phases."""

    report: TQuadReport
    phases: list[KernelPhase]

    def __len__(self) -> int:
        return len(self.phases)

    def __iter__(self):
        return iter(self.phases)

    def phase_of_kernel(self, name: str) -> KernelPhase | None:
        for p in self.phases:
            if name in p.kernel_names():
                return p
        return None

    def format_table(self) -> str:
        """Table-IV-style rendering (phase span, %span, per-kernel rows)."""
        n = self.report.n_slices
        head = (f"{'phase':<30}{'span':>15}{'%span':>9}  "
                f"{'kernel':<26}{'act':>7}"
                f"{'avgR(i)':>9}{'avgR(x)':>9}{'avgW(i)':>9}{'avgW(x)':>9}"
                f"{'maxBW(i)':>10}{'maxBW(x)':>10}{'aggMBW':>9}")
        lines = [head, "-" * len(head)]
        for p in self.phases:
            span = f"{p.start_slice}-{p.end_slice}"
            pct = 100.0 * p.span / max(n, 1)
            first = True
            for k in p.kernels:
                lead = (f"{p.label:<30}{span:>15}{pct:>9.4f}  " if first
                        else " " * 56)
                agg = f"{p.aggregate_mbw:>9.4f}" if first else " " * 9
                lines.append(
                    f"{lead}{k.name:<26}{k.activity_span:>7}"
                    f"{k.avg_read_incl:>9.4f}{k.avg_read_excl:>9.4f}"
                    f"{k.avg_write_incl:>9.4f}{k.avg_write_excl:>9.4f}"
                    f"{k.max_bw_incl:>10.4f}{k.max_bw_excl:>10.4f}{agg}")
                first = False
        lines.append(f"{self.report.n_slices} time slices were measured "
                     f"in total.")
        return "\n".join(lines)
