"""Per-kernel, per-slice memory bandwidth accounting.

The ledger is the "memory bandwidth usage data list" plus the "mutual
kernel-to-bandwidth data map list" of the paper's pseudocode (Fig. 3).  Four
counters are kept for every (kernel, slice) pair::

    [read incl. stack, read excl. stack, write incl. stack, write excl. stack]

so one profiling pass yields both of the paper's stack-inclusion views.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

#: Counter indices.
R_INCL, R_EXCL, W_INCL, W_EXCL = 0, 1, 2, 3


class BandwidthLedger:
    """Accumulates byte counts into time slices of ``interval`` instructions.

    Slice ``s`` covers instructions ``s*interval+1 … (s+1)*interval``
    (instruction counts are 1-based at the time an analysis call runs).
    """

    __slots__ = ("interval", "cur_slice", "cur", "history", "flushed")

    def __init__(self, interval: int):
        if interval <= 0:
            raise ValueError("interval must be positive")
        self.interval = interval
        self.cur_slice = 0
        self.cur: dict[str, list[int]] = {}
        self.history: dict[str, dict[int, tuple[int, int, int, int]]] = {}
        self.flushed = False

    def reset(self) -> None:
        """Start a fresh accounting run on the same ledger object.

        ``history`` is *replaced*, not cleared — a previously extracted
        reference (e.g. a shard payload) stays valid and frozen.
        """
        self.cur_slice = 0
        self.cur.clear()
        self.history = {}
        self.flushed = False

    # -- hot path helpers ----------------------------------------------------
    def bucket(self, name: str, slice_index: int) -> list[int]:
        """Counter list for ``name`` in the current slice, advancing slices
        as needed.  The caller adds bytes in place."""
        if slice_index != self.cur_slice:
            self.advance(slice_index)
        c = self.cur.get(name)
        if c is None:
            c = self.cur[name] = [0, 0, 0, 0]
        return c

    def advance(self, new_slice: int) -> None:
        """Snapshot the finished slice (paper: "memory bandwidth snapshot
        management") and start a new one."""
        history = self.history
        s = self.cur_slice
        for name, c in self.cur.items():
            hk = history.get(name)
            if hk is None:
                hk = history[name] = {}
            hk[s] = (c[0], c[1], c[2], c[3])
        self.cur.clear()
        self.cur_slice = new_slice

    def flush(self) -> None:
        """Finalise the in-flight slice (call once, at program exit)."""
        if not self.flushed:
            self.advance(self.cur_slice + 1)
            self.flushed = True

    def accumulate(self, name: str, slice_index: int, r_incl: int,
                   r_excl: int, w_incl: int, w_excl: int) -> None:
        """Merge pre-aggregated counts straight into ``history``.

        Used by the buffered recording path (:mod:`repro.core.recording`),
        which aggregates whole buffers of accesses with NumPy and lands the
        per-(kernel, slice) sums here — bypassing ``cur``, so it composes
        with out-of-order flushes and with the final :meth:`flush`.
        """
        hk = self.history.get(name)
        if hk is None:
            hk = self.history[name] = {}
        c = hk.get(slice_index)
        if c is None:
            hk[slice_index] = (r_incl, r_excl, w_incl, w_excl)
        else:
            hk[slice_index] = (c[0] + r_incl, c[1] + r_excl,
                               c[2] + w_incl, c[3] + w_excl)

    # -- queries --------------------------------------------------------------
    def kernels(self) -> list[str]:
        return sorted(self.history)

    def slices_of(self, name: str) -> dict[int, tuple[int, int, int, int]]:
        return self.history.get(name, {})

    def series(self, name: str) -> "KernelSeries":
        """Dense per-slice arrays for one kernel."""
        data = self.history.get(name, {})
        if not data:
            empty = np.zeros(0, dtype=np.int64)
            return KernelSeries(name, self.interval, empty, empty.copy(),
                                empty.copy(), empty.copy(), empty.copy())
        slices = np.array(sorted(data), dtype=np.int64)
        counters = np.array([data[s] for s in slices], dtype=np.int64)
        return KernelSeries(name, self.interval, slices,
                            counters[:, R_INCL], counters[:, R_EXCL],
                            counters[:, W_INCL], counters[:, W_EXCL])


@dataclass
class KernelSeries:
    """Per-slice bandwidth data of one kernel (sparse: active slices only)."""

    name: str
    interval: int
    slices: np.ndarray       #: slice indices where any counter is non-zero
    read_incl: np.ndarray
    read_excl: np.ndarray
    write_incl: np.ndarray
    write_excl: np.ndarray

    def total(self, *, write: bool, include_stack: bool) -> int:
        arr = self._pick(write, include_stack)
        return int(arr.sum())

    def _pick(self, write: bool, include_stack: bool) -> np.ndarray:
        if write:
            return self.write_incl if include_stack else self.write_excl
        return self.read_incl if include_stack else self.read_excl

    def bandwidth(self, *, write: bool, include_stack: bool) -> np.ndarray:
        """Bytes per instruction for each active slice."""
        return self._pick(write, include_stack) / float(self.interval)

    def combined(self, *, include_stack: bool) -> np.ndarray:
        """Read+write bytes per active slice."""
        if include_stack:
            return self.read_incl + self.write_incl
        return self.read_excl + self.write_excl

    def active_mask(self, *, include_stack: bool) -> np.ndarray:
        return self.combined(include_stack=include_stack) > 0

    def activity_span(self, *, include_stack: bool = True
                      ) -> tuple[int, int, int]:
        """(first slice, last slice, number of active slices).

        "activity span represents the number of time slices in which the
        kernel is active (accesses memory)" — Table IV caption.
        """
        mask = self.active_mask(include_stack=include_stack)
        active = self.slices[mask]
        if active.size == 0:
            return (-1, -1, 0)
        return (int(active[0]), int(active[-1]), int(active.size))

    def average_bandwidth(self, *, write: bool, include_stack: bool) -> float:
        """Mean bytes/instruction over the kernel's *active* slices."""
        mask = self.active_mask(include_stack=True)
        n = int(mask.sum())
        if n == 0:
            return 0.0
        total = int(self._pick(write, include_stack)[mask].sum())
        return total / (n * self.interval)

    def max_bandwidth(self, *, include_stack: bool) -> float:
        """Peak combined (read+write) bytes/instruction over slices."""
        combined = self.combined(include_stack=include_stack)
        if combined.size == 0:
            return 0.0
        return float(combined.max()) / self.interval

    def peak(self, *, include_stack: bool = True) -> tuple[int, float]:
        """(slice index, bytes/instruction) of the bandwidth maximum.

        The paper withholds "the detailed information about the timings of
        the maximum bandwidth usage … here" (§V-B); this provides it.
        """
        combined = self.combined(include_stack=include_stack)
        if combined.size == 0:
            return (-1, 0.0)
        i = int(np.argmax(combined))
        return (int(self.slices[i]), float(combined[i]) / self.interval)

    def bursts(self, *, include_stack: bool = True,
               max_gap: int = 0) -> list[tuple[int, int]]:
        """Exact activity intervals: maximal runs of active slices.

        §V-B: "tQUAD is capable of providing the detailed information about
        the exact time intervals in which a kernel is communicating with
        the memory."  ``max_gap`` merges bursts separated by at most that
        many idle slices (the paper "merely ignores" stray activations
        outside a kernel's main span; callers can do the same by inspecting
        burst lengths).
        """
        mask = self.active_mask(include_stack=include_stack)
        active = self.slices[mask]
        if active.size == 0:
            return []
        out: list[tuple[int, int]] = []
        start = prev = int(active[0])
        for s in active[1:]:
            s = int(s)
            if s - prev > max_gap + 1:
                out.append((start, prev))
                start = s
            prev = s
        out.append((start, prev))
        return out

    def dense(self, n_slices: int, *, write: bool,
              include_stack: bool) -> np.ndarray:
        """Bytes per slice as a dense array of length ``n_slices``."""
        out = np.zeros(n_slices, dtype=np.int64)
        arr = self._pick(write, include_stack)
        valid = self.slices < n_slices
        out[self.slices[valid]] = arr[valid]
        return out
