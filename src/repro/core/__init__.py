"""tQUAD — the paper's primary contribution: a temporal memory-bandwidth
profiler with phase identification, built on the Pin-workalike DBI layer."""

from .callstack import CallStack
from .ledger import BandwidthLedger, KernelSeries
from .machine_model import MachineModel, PAPER_MACHINE
from .multipass import (BandwidthEstimate, MultiPassResult, profile_passes)
from .options import StackPolicy, TQuadOptions
from .kernel_phases import (KernelPhase, KernelPhaseAnalysis,
                            cluster_kernel_phases)
from .phases import (Phase, PhaseAnalysis, PhaseKernelStats, detect_phases)
from .profiler import TQuadTool, run_tquad
from .report import KernelSummary, TQuadReport

__all__ = [
    "TQuadTool", "run_tquad", "TQuadOptions", "StackPolicy",
    "TQuadReport", "KernelSummary", "KernelSeries", "BandwidthLedger",
    "CallStack", "MachineModel", "PAPER_MACHINE",
    "Phase", "PhaseAnalysis", "PhaseKernelStats", "detect_phases",
    "KernelPhase", "KernelPhaseAnalysis", "cluster_kernel_phases",
    "profile_passes", "MultiPassResult", "BandwidthEstimate",
]
