"""Internal call stack, rebuilt dynamically during execution.

Run-time instrumentation has no static call graph, so tQUAD maintains its own
call stack (paper §IV-A: "an internal call stack data structure is dynamically
created and maintained").  Frames are pushed by routine-entry analysis calls
and popped when a ``ret`` instruction is observed.

tQUAD "ignores the functions which are not in the main image file": a library
frame does not become a kernel of its own — its memory accesses are
attributed to the innermost main-image caller — but it still occupies a stack
slot so that call/return pairing stays intact.  The *exclude libraries*
option additionally drops accesses made while inside a library frame.
"""

from __future__ import annotations

from ..vm.program import MAIN_IMAGE


class CallStack:
    """Attribution call stack.

    Attributes kept O(1)-fresh for the per-access hot path:

    * ``current_kernel`` — the main-image function accesses attribute to
      (or the library routine's own name when nothing from the main image
      is below it, e.g. ``_start``);
    * ``in_library`` — whether the topmost frame is library code.
    """

    __slots__ = ("_frames", "current_kernel", "in_library",
                 "max_depth", "underflows", "exclude_library_accesses",
                 "mark_library", "rec_id", "_intern_ids", "interned_names")

    def __init__(self, *, exclude_library_accesses: bool = False,
                 mark_library: bool = False) -> None:
        # each frame: (attributed kernel name, frame-is-library, rec_id at
        # the time this frame is on top) — carrying rec_id in the frame lets
        # enter/ret restore it without re-interning the kernel name
        self._frames: list[tuple[str, bool, int]] = []
        self.current_kernel: str | None = None
        self.in_library = False
        self.max_depth = 0
        self.underflows = 0
        # Recording support: ``rec_id`` is the interned integer id of the
        # kernel that a memory access *right now* should attribute to, or -1
        # when it should be dropped (no kernel yet, or inside a library frame
        # with ``exclude_library_accesses`` set).  Recording profilers embed
        # ``rec_id`` into flat buffers instead of the name, keeping the hot
        # path string-free; ``interned_names[id]`` recovers the name at
        # flush time.
        #
        # With ``mark_library`` set, accesses made inside library frames
        # carry ``-2 - kernel_id`` instead of the bare kernel id: the flush
        # (and capture replay) folds them back into the caller's kernel, but
        # the marker survives in captured pages, so one capture can serve
        # both library-inclusion views by a column mask (see
        # :mod:`repro.capture.replay`).  -1 keeps meaning "drop".
        self.exclude_library_accesses = exclude_library_accesses
        self.mark_library = mark_library
        self.rec_id = -1
        self._intern_ids: dict[str, int] = {}
        self.interned_names: list[str] = []

    def reset(self) -> None:
        """Return to the pristine post-``__init__`` state.

        In-place (the object identity is captured by analysis closures and
        recording sinks), so an attached tool can be reused for another
        independent run without recompiling its instrumentation.
        """
        self._frames.clear()
        self.current_kernel = None
        self.in_library = False
        self.max_depth = 0
        self.underflows = 0
        self.rec_id = -1
        self._intern_ids.clear()
        self.interned_names.clear()

    def intern(self, name: str) -> int:
        """The stable integer id for ``name`` (allocating on first use)."""
        i = self._intern_ids.get(name)
        if i is None:
            i = self._intern_ids[name] = len(self.interned_names)
            self.interned_names.append(name)
        return i

    def enter(self, name: str, image: str) -> None:
        """Routine-entry event (the paper's ``EnterFC`` analysis routine)."""
        frames = self._frames
        is_lib = image != MAIN_IMAGE
        if is_lib and frames:
            # a library frame attributes to the caller's kernel, whose id
            # the caller's frame already carries (unless excluded)
            kernel = frames[-1][0]
            if self.exclude_library_accesses:
                rid = -1
            else:
                rid = frames[-1][2]
                if self.mark_library and rid >= 0:
                    rid = -2 - rid
        else:
            kernel = name
            if is_lib and self.exclude_library_accesses:
                rid = -1
            elif is_lib and self.mark_library:
                rid = -2 - self.intern(name)
            else:
                rid = self.intern(name)
        frames.append((kernel, is_lib, rid))
        self.current_kernel = kernel
        self.in_library = is_lib
        self.rec_id = rid
        depth = len(frames)
        if depth > self.max_depth:
            self.max_depth = depth

    def on_ret(self) -> None:
        """Return-instruction event: pop the top frame."""
        frames = self._frames
        if not frames:
            self.underflows += 1
            return
        frames.pop()
        if frames:
            self.current_kernel, self.in_library, self.rec_id = frames[-1]
        else:
            self.current_kernel = None
            self.in_library = False
            self.rec_id = -1

    @property
    def depth(self) -> int:
        return len(self._frames)

    def frames(self) -> list[tuple[str, bool]]:
        """Snapshot of (kernel, is_library) frames, bottom first."""
        return [(kernel, is_lib) for kernel, is_lib, _ in self._frames]
