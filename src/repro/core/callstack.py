"""Internal call stack, rebuilt dynamically during execution.

Run-time instrumentation has no static call graph, so tQUAD maintains its own
call stack (paper §IV-A: "an internal call stack data structure is dynamically
created and maintained").  Frames are pushed by routine-entry analysis calls
and popped when a ``ret`` instruction is observed.

tQUAD "ignores the functions which are not in the main image file": a library
frame does not become a kernel of its own — its memory accesses are
attributed to the innermost main-image caller — but it still occupies a stack
slot so that call/return pairing stays intact.  The *exclude libraries*
option additionally drops accesses made while inside a library frame.
"""

from __future__ import annotations

from ..vm.program import MAIN_IMAGE


class CallStack:
    """Attribution call stack.

    Attributes kept O(1)-fresh for the per-access hot path:

    * ``current_kernel`` — the main-image function accesses attribute to
      (or the library routine's own name when nothing from the main image
      is below it, e.g. ``_start``);
    * ``in_library`` — whether the topmost frame is library code.
    """

    __slots__ = ("_frames", "current_kernel", "in_library",
                 "max_depth", "underflows")

    def __init__(self) -> None:
        # each frame: (attributed kernel name, frame-is-library)
        self._frames: list[tuple[str, bool]] = []
        self.current_kernel: str | None = None
        self.in_library = False
        self.max_depth = 0
        self.underflows = 0

    def enter(self, name: str, image: str) -> None:
        """Routine-entry event (the paper's ``EnterFC`` analysis routine)."""
        is_lib = image != MAIN_IMAGE
        if is_lib and self._frames:
            kernel = self._frames[-1][0]
        else:
            kernel = name
        self._frames.append((kernel, is_lib))
        self.current_kernel = kernel
        self.in_library = is_lib
        depth = len(self._frames)
        if depth > self.max_depth:
            self.max_depth = depth

    def on_ret(self) -> None:
        """Return-instruction event: pop the top frame."""
        frames = self._frames
        if not frames:
            self.underflows += 1
            return
        frames.pop()
        if frames:
            self.current_kernel, self.in_library = frames[-1]
        else:
            self.current_kernel = None
            self.in_library = False

    @property
    def depth(self) -> int:
        return len(self._frames)

    def frames(self) -> list[tuple[str, bool]]:
        """Snapshot of (kernel, is_library) frames, bottom first."""
        return list(self._frames)
