"""The tQUAD profiler pintool.

This module mirrors the paper's implementation section (§IV-C, Figures 3–5):

* ``attach`` plays the role of the tQUAD ``main`` — it registers the
  ``Instruction`` and ``UpdateCallStack`` instrumentation routines;
* ``_instrument_instruction`` is ``Instruction()``: it inserts predicated
  analysis calls ``IncreaseRead``/``IncreaseWrite`` on memory instructions,
  watches for returns to keep the internal call stack intact, and initiates
  the time-slice snapshot management;
* ``_instrument_routine`` is ``UpdateCallStack()``: it inserts ``EnterFC``
  at routine entries, passing the routine name and an image flag;
* the analysis routines return immediately for prefetches.
"""

from __future__ import annotations

from ..pin import IARG, INS, IPOINT, PinEngine, RTN
from ..vm.program import MAIN_IMAGE
from .callstack import CallStack
from .ledger import BandwidthLedger
from .options import StackPolicy, TQuadOptions
from .report import TQuadReport


class TQuadTool:
    """Temporal memory-bandwidth profiler (the paper's primary artifact)."""

    def __init__(self, options: TQuadOptions | None = None):
        self.options = options or TQuadOptions()
        self.callstack = CallStack()
        self.ledger = BandwidthLedger(self.options.slice_interval)
        self._engine: PinEngine | None = None
        self._machine = None
        self._images: dict[str, str] = {}
        self.prefetches_skipped = 0
        self.finished = False

    # ------------------------------------------------------------- plumbing
    def attach(self, engine: PinEngine) -> "TQuadTool":
        """Register instrumentation with the engine (Pin ``main`` analogue)."""
        if self._engine is not None:
            raise RuntimeError("tool already attached")
        self._engine = engine
        self._machine = engine.machine
        self._images = {r.name: r.image for r in engine.program.routines}
        engine.INS_AddInstrumentFunction(self._instrument_instruction)
        engine.RTN_AddInstrumentFunction(self._instrument_routine)
        engine.AddFiniFunction(self._fini)
        return self

    def _instrument_instruction(self, ins: INS) -> None:
        """``Instruction()`` — see paper Fig. 4."""
        if ins.IsPrefetch():
            # keep the full argument shape so the analysis routine performs
            # the paper's "return immediately upon detection of a prefetch".
            ins.InsertPredicatedCall(
                IPOINT.BEFORE, self._increase_read,
                IARG.MEMORY_EA, IARG.MEMORY_SIZE, IARG.REG_SP,
                IARG.IS_PREFETCH)
            return
        # The paper's include/exclude-stack option selects the analysis
        # routine variant; BOTH records the two views side by side.
        policy = self.options.stack
        if policy is StackPolicy.BOTH:
            on_read, on_write = self._on_read, self._on_write
        elif policy is StackPolicy.INCLUDE:
            on_read, on_write = self._on_read_incl, self._on_write_incl
        else:
            on_read, on_write = self._on_read_excl, self._on_write_excl
        if ins.IsMemoryRead():
            ins.InsertPredicatedCall(
                IPOINT.BEFORE, on_read,
                IARG.MEMORY_EA, IARG.MEMORY_SIZE, IARG.REG_SP)
        if ins.IsMemoryWrite():
            ins.InsertPredicatedCall(
                IPOINT.BEFORE, on_write,
                IARG.MEMORY_EA, IARG.MEMORY_SIZE, IARG.REG_SP)
        if ins.IsRet():
            ins.InsertCall(IPOINT.BEFORE, self.callstack.on_ret)

    def _instrument_routine(self, rtn: RTN) -> None:
        """``UpdateCallStack()`` — see paper Fig. 5."""
        rtn.InsertCall(IPOINT.BEFORE, self.callstack.enter,
                       IARG.RTN_NAME, IARG.RTN_IMAGE)

    # ------------------------------------------------------ analysis routines
    def _increase_read(self, ea: int, size: int, sp: int,
                       is_prefetch: bool) -> None:
        """``IncreaseRead`` with the prefetch guard of the paper."""
        if is_prefetch:
            self.prefetches_skipped += 1
            return
        self._on_read(ea, size, sp)

    def _on_read(self, ea: int, size: int, sp: int) -> None:
        cs = self.callstack
        if cs.in_library and self.options.exclude_libraries:
            return
        name = cs.current_kernel
        if name is None:
            return
        ledger = self.ledger
        s = (self._machine.icount - 1) // ledger.interval
        if s != ledger.cur_slice:
            ledger.advance(s)
        c = ledger.cur.get(name)
        if c is None:
            c = ledger.cur[name] = [0, 0, 0, 0]
        c[0] += size
        if ea < sp:          # below the live stack: global/heap access
            c[1] += size

    def _on_write(self, ea: int, size: int, sp: int) -> None:
        cs = self.callstack
        if cs.in_library and self.options.exclude_libraries:
            return
        name = cs.current_kernel
        if name is None:
            return
        ledger = self.ledger
        s = (self._machine.icount - 1) // ledger.interval
        if s != ledger.cur_slice:
            ledger.advance(s)
        c = ledger.cur.get(name)
        if c is None:
            c = ledger.cur[name] = [0, 0, 0, 0]
        c[2] += size
        if ea < sp:
            c[3] += size

    # --- single-sided variants (the paper's either/or option) -------------
    def _on_read_incl(self, ea: int, size: int, sp: int) -> None:
        cs = self.callstack
        if cs.in_library and self.options.exclude_libraries:
            return
        name = cs.current_kernel
        if name is None:
            return
        ledger = self.ledger
        s = (self._machine.icount - 1) // ledger.interval
        if s != ledger.cur_slice:
            ledger.advance(s)
        c = ledger.cur.get(name)
        if c is None:
            c = ledger.cur[name] = [0, 0, 0, 0]
        c[0] += size

    def _on_write_incl(self, ea: int, size: int, sp: int) -> None:
        cs = self.callstack
        if cs.in_library and self.options.exclude_libraries:
            return
        name = cs.current_kernel
        if name is None:
            return
        ledger = self.ledger
        s = (self._machine.icount - 1) // ledger.interval
        if s != ledger.cur_slice:
            ledger.advance(s)
        c = ledger.cur.get(name)
        if c is None:
            c = ledger.cur[name] = [0, 0, 0, 0]
        c[2] += size

    def _on_read_excl(self, ea: int, size: int, sp: int) -> None:
        if ea >= sp:
            return  # local stack area: discarded before any tracing work
        cs = self.callstack
        if cs.in_library and self.options.exclude_libraries:
            return
        name = cs.current_kernel
        if name is None:
            return
        ledger = self.ledger
        s = (self._machine.icount - 1) // ledger.interval
        if s != ledger.cur_slice:
            ledger.advance(s)
        c = ledger.cur.get(name)
        if c is None:
            c = ledger.cur[name] = [0, 0, 0, 0]
        c[1] += size

    def _on_write_excl(self, ea: int, size: int, sp: int) -> None:
        if ea >= sp:
            return
        cs = self.callstack
        if cs.in_library and self.options.exclude_libraries:
            return
        name = cs.current_kernel
        if name is None:
            return
        ledger = self.ledger
        s = (self._machine.icount - 1) // ledger.interval
        if s != ledger.cur_slice:
            ledger.advance(s)
        c = ledger.cur.get(name)
        if c is None:
            c = ledger.cur[name] = [0, 0, 0, 0]
        c[3] += size

    def _fini(self, exit_code: int) -> None:
        self.ledger.flush()
        self.finished = True

    # ------------------------------------------------------------- results
    def report(self, *, allow_partial: bool = False) -> TQuadReport:
        """The profiling results (valid after the engine has run).

        With ``allow_partial=True`` a report can also be produced after the
        guest crashed (memory fault, budget exhaustion, …): the in-flight
        slice is flushed and the report is marked ``complete=False``.
        """
        if not self.finished:
            if not allow_partial:
                raise RuntimeError(
                    "run the engine before asking for the report "
                    "(or pass allow_partial=True after a guest crash)")
            self.ledger.flush()
        total = self._machine.icount
        return TQuadReport(ledger=self.ledger, options=self.options,
                           total_instructions=total,
                           images=dict(self._images),
                           complete=self.finished)


def run_tquad(program, *, options: TQuadOptions | None = None, fs=None,
              max_instructions: int | None = None,
              mem_size: int | None = None) -> TQuadReport:
    """Convenience: profile ``program`` with tQUAD and return the report."""
    kwargs = {"fs": fs}
    if mem_size is not None:
        kwargs["mem_size"] = mem_size
    engine = PinEngine(program, **kwargs)
    tool = TQuadTool(options).attach(engine)
    engine.run(max_instructions=max_instructions)
    return tool.report()
