"""The tQUAD profiler pintool.

This module mirrors the paper's implementation section (§IV-C, Figures 3–5):

* ``attach`` plays the role of the tQUAD ``main`` — it registers the
  ``Instruction`` and ``UpdateCallStack`` instrumentation routines;
* ``_instrument_instruction`` is ``Instruction()``: it inserts predicated
  analysis calls ``IncreaseRead``/``IncreaseWrite`` on memory instructions,
  watches for returns to keep the internal call stack intact, and initiates
  the time-slice snapshot management;
* ``_instrument_routine`` is ``UpdateCallStack()``: it inserts ``EnterFC``
  at routine entries, passing the routine name and an image flag;
* the analysis routines return immediately for prefetches.

Two analysis implementations coexist:

* the **buffered** path (default): memory accesses are recorded into flat
  buffers and bulk-aggregated with NumPy at flush time
  (:mod:`repro.core.recording`).  Inside superblocks the record append is
  inlined into generated code — this is the fast path.
* the **legacy** per-event path (``buffered=False``): one parameterized
  analysis routine per direction, built by :meth:`_make_on_access`, doing
  attribution work on every access exactly as the paper's pseudocode reads.
  It is retained as the independent reference implementation that the
  differential tests compare the buffered path against.
"""

from __future__ import annotations

from ..pin import IARG, INS, IPOINT, PinEngine, RTN
from ..vm.program import MAIN_IMAGE
from .callstack import CallStack
from .ledger import BandwidthLedger
from .options import StackPolicy, TQuadOptions
from .recording import CapturingRecordingSink, RecordingSink, make_recorder
from .report import TQuadReport


class TQuadTool:
    """Temporal memory-bandwidth profiler (the paper's primary artifact).

    With ``capture`` set (any page sink with ``add(stream, data)`` — a
    :class:`repro.capture.writer.CaptureWriter` or ``CaptureCollector``),
    the buffered recording path also persists every sealed quad buffer,
    enabling offline re-analysis via :mod:`repro.capture.replay`.
    """

    def __init__(self, options: TQuadOptions | None = None, *,
                 buffered: bool = True, capture=None):
        self.options = options or TQuadOptions()
        self.buffered = buffered
        self.capture = capture
        if capture is not None and not buffered:
            raise ValueError("capture requires the buffered recording path")
        # Library-frame accesses are recorded with marked kernel ids
        # (``-2 - id``) so captured pages can serve either library-inclusion
        # view by a column mask; the buffered flush folds them back, keeping
        # live reports unchanged.  The legacy per-event path never reads
        # ``rec_id``, so the flag is harmless there.
        self.callstack = CallStack(
            exclude_library_accesses=self.options.exclude_libraries,
            mark_library=not self.options.exclude_libraries)
        self.ledger = BandwidthLedger(self.options.slice_interval)
        self._engine: PinEngine | None = None
        self._machine = None
        self._images: dict[str, str] = {}
        self._sink: RecordingSink | None = None
        self._rec_read = None
        self._rec_write = None
        self._on_read = None
        self._on_write = None
        self.prefetches_skipped = 0
        self.finished = False

    # ------------------------------------------------------------- plumbing
    def attach(self, engine: PinEngine) -> "TQuadTool":
        """Register instrumentation with the engine (Pin ``main`` analogue)."""
        if self._engine is not None:
            raise RuntimeError("tool already attached")
        self._engine = engine
        self._machine = engine.machine
        self._images = {r.name: r.image for r in engine.program.routines}
        if self.buffered:
            if self.capture is not None:
                self._sink = CapturingRecordingSink(
                    self.ledger, self.callstack, self.options.stack,
                    self.capture)
            else:
                self._sink = RecordingSink(self.ledger, self.callstack,
                                           self.options.stack)
            self._rec_read = make_recorder(self._sink, engine.machine,
                                           write=False)
            self._rec_write = make_recorder(self._sink, engine.machine,
                                            write=True)
        else:
            self._on_read = self._make_on_access(write=False)
            self._on_write = self._make_on_access(write=True)
        engine.INS_AddInstrumentFunction(self._instrument_instruction)
        engine.RTN_AddInstrumentFunction(self._instrument_routine)
        engine.AddFiniFunction(self._fini)
        return self

    def reset(self) -> None:
        """Prepare the attached tool for another independent run.

        The engine's compiled code cache embeds this tool's analysis
        closures, which capture the call stack, ledger and sink *objects* —
        so those are reset in place (or container-swapped) rather than
        replaced, and the expensive instrumented compilation is reused.
        The previous run's ``ledger.history`` stays valid for callers that
        kept a reference.
        """
        self.callstack.reset()
        self.ledger.reset()
        if self._sink is not None:
            self._sink.reset()
        if self.capture is not None and hasattr(self.capture, "reset"):
            self.capture.reset()
        self.prefetches_skipped = 0
        self.finished = False

    def _instrument_instruction(self, ins: INS) -> None:
        """``Instruction()`` — see paper Fig. 4."""
        if ins.IsPrefetch():
            # the paper's "return immediately upon detection of a prefetch";
            # the legacy path keeps the full argument shape so the guard
            # lives in the analysis routine itself.
            if self.buffered:
                ins.InsertPredicatedCall(IPOINT.BEFORE, self._count_prefetch)
            else:
                ins.InsertPredicatedCall(
                    IPOINT.BEFORE, self._increase_read,
                    IARG.MEMORY_EA, IARG.MEMORY_SIZE, IARG.REG_SP,
                    IARG.IS_PREFETCH)
            return
        on_read = self._rec_read if self.buffered else self._on_read
        on_write = self._rec_write if self.buffered else self._on_write
        if ins.IsMemoryRead():
            ins.InsertPredicatedCall(
                IPOINT.BEFORE, on_read,
                IARG.MEMORY_EA, IARG.MEMORY_SIZE, IARG.REG_SP)
        if ins.IsMemoryWrite():
            ins.InsertPredicatedCall(
                IPOINT.BEFORE, on_write,
                IARG.MEMORY_EA, IARG.MEMORY_SIZE, IARG.REG_SP)
        if ins.IsRet():
            ins.InsertCall(IPOINT.BEFORE, self.callstack.on_ret)

    def _instrument_routine(self, rtn: RTN) -> None:
        """``UpdateCallStack()`` — see paper Fig. 5."""
        rtn.InsertCall(IPOINT.BEFORE, self.callstack.enter,
                       IARG.RTN_NAME, IARG.RTN_IMAGE)

    # ------------------------------------------------------ analysis routines
    def _count_prefetch(self) -> None:
        """Buffered-mode prefetch guard (static: the call is only inserted
        on prefetch instructions)."""
        self.prefetches_skipped += 1

    def _increase_read(self, ea: int, size: int, sp: int,
                       is_prefetch: bool) -> None:
        """``IncreaseRead`` with the prefetch guard of the paper."""
        if is_prefetch:
            self.prefetches_skipped += 1
            return
        self._on_read(ea, size, sp)

    def _make_on_access(self, *, write: bool):
        """Build the legacy per-event analysis routine for one direction.

        One parameterized closure replaces the paper's six near-identical
        ``Increase{Read,Write}[{Incl,Excl}]`` variants: the stack policy
        selects which of the four ledger counters get the bytes, and
        whether stack accesses are discarded up front.
        """
        policy = self.options.stack
        exclude_libs = self.options.exclude_libraries
        cs = self.callstack
        ledger = self.ledger
        machine = self._machine
        incl_col = 2 if write else 0
        excl_col = 3 if write else 1
        track_incl = policy is not StackPolicy.EXCLUDE
        track_excl = policy is not StackPolicy.INCLUDE

        def on_access(ea: int, size: int, sp: int) -> None:
            if not track_incl and ea >= sp:
                return  # local stack area: discarded before any tracing work
            if cs.in_library and exclude_libs:
                return
            name = cs.current_kernel
            if name is None:
                return
            s = (machine.icount - 1) // ledger.interval
            if s != ledger.cur_slice:
                ledger.advance(s)
            c = ledger.cur.get(name)
            if c is None:
                c = ledger.cur[name] = [0, 0, 0, 0]
            if track_incl:
                c[incl_col] += size
            if track_excl and ea < sp:
                c[excl_col] += size
        return on_access

    def _flush_buffers(self) -> None:
        if self._sink is not None:
            self._sink.flush()

    def _fini(self, exit_code: int) -> None:
        self._flush_buffers()
        self.ledger.flush()
        self.finished = True

    # ------------------------------------------------------------- results
    def report(self, *, allow_partial: bool = False) -> TQuadReport:
        """The profiling results (valid after the engine has run).

        With ``allow_partial=True`` a report can also be produced after the
        guest crashed (memory fault, budget exhaustion, …): the in-flight
        slice is flushed and the report is marked ``complete=False``.
        """
        if not self.finished:
            if not allow_partial:
                raise RuntimeError(
                    "run the engine before asking for the report "
                    "(or pass allow_partial=True after a guest crash)")
            self._flush_buffers()
            self.ledger.flush()
        total = self._machine.icount
        return TQuadReport(ledger=self.ledger, options=self.options,
                           total_instructions=total,
                           images=dict(self._images),
                           complete=self.finished)


def run_tquad(program, *, options: TQuadOptions | None = None, fs=None,
              max_instructions: int | None = None,
              mem_size: int | None = None, buffered: bool = True,
              jit: bool = True) -> TQuadReport:
    """Convenience: profile ``program`` with tQUAD and return the report."""
    kwargs = {"fs": fs, "jit": jit}
    if mem_size is not None:
        kwargs["mem_size"] = mem_size
    engine = PinEngine(program, **kwargs)
    tool = TQuadTool(options, buffered=buffered).attach(engine)
    engine.run(max_instructions=max_instructions)
    return tool.report()
