"""Compiler driver: MiniC source → assembly → loadable Program."""

from __future__ import annotations

from ..asmkit import assemble
from ..vm.program import Program
from . import ast
from .codegen import FuncCodegen, FuncSig, UnitContext
from .errors import MiniCError
from .parser import parse
from .runtime import RUNTIME_ASM, RUNTIME_SIGNATURES
from .types import ArrayType, CHAR, Type


def _inject_runtime_sigs(ctx: UnitContext) -> None:
    for name, (ret, params) in RUNTIME_SIGNATURES.items():
        ctx.sigs.setdefault(name, FuncSig(name, ret, tuple(params)))


def _global_data_lines(g: ast.GlobalVar, label: str) -> list[str]:
    """Emit the .data lines for one global variable."""
    lines = [f"    .align 8", f"{label}:"]
    ty: Type = g.type
    init = g.init
    if isinstance(ty, ArrayType):
        size = ty.sizeof()
        if init is None:
            lines.append(f"    .space {size}")
        elif isinstance(init, ast.StrLit) and ty.elem == CHAR:
            data = init.value
            if len(data) + 1 > ty.length:
                raise MiniCError(
                    f"string initializer too long for {g.name}", line=g.line)
            escaped = (data.replace("\\", "\\\\").replace('"', '\\"')
                       .replace("\n", "\\n").replace("\t", "\\t")
                       .replace("\r", "\\r").replace("\0", "\\0"))
            lines.append(f'    .asciz "{escaped}"')
            pad = ty.length - len(data) - 1
            if pad:
                lines.append(f"    .space {pad}")
        else:
            raise MiniCError(f"bad array initializer for {g.name}",
                             line=g.line)
        return lines
    if ty.is_float():
        if init is None:
            value = 0.0
        elif isinstance(init, (ast.FloatLit, ast.IntLit)):
            value = float(init.value)
        else:
            raise MiniCError(f"bad initializer for {g.name}", line=g.line)
        lines.append(f"    .f64 {value!r}")
        return lines
    # int / char / pointer scalars: one 8-byte slot for int/ptr, 1 for char
    if init is None:
        value = 0
    elif isinstance(init, (ast.IntLit, ast.CharLit)):
        value = init.value
    else:
        raise MiniCError(f"bad initializer for {g.name}", line=g.line)
    if ty == CHAR:
        lines.append(f"    .byte {value & 0xFF}")
    else:
        lines.append(f"    .i64 {value}")
    return lines


def compile_unit(source: str, *, prefix: str = "",
                 image: str = "main") -> str:
    """Compile one MiniC translation unit to assembly text."""
    unit = parse(source)
    ctx = UnitContext(unit, prefix=prefix)
    _inject_runtime_sigs(ctx)
    text_lines: list[str] = ["    .text", f"    .image {image}"]
    for f in unit.functions:
        if f.extern or f.body is None:
            continue
        text_lines.extend(FuncCodegen(ctx, f).generate())
    data_lines: list[str] = ["    .data"]
    for g in unit.globals:
        data_lines.extend(_global_data_lines(g, ctx.globals[g.name].label))
    for label, text in ctx.strings:
        escaped = (text.replace("\\", "\\\\").replace('"', '\\"')
                   .replace("\n", "\\n").replace("\t", "\\t")
                   .replace("\r", "\\r").replace("\0", "\\0"))
        data_lines.append(f"{label}:")
        data_lines.append(f'    .asciz "{escaped}"')
    return "\n".join(data_lines + text_lines) + "\n"


def build_program(sources: str | list[str], *, with_runtime: bool = True,
                  entry: str | None = None) -> Program:
    """Compile MiniC source(s) plus the runtime into a loadable Program.

    With the runtime, execution starts at ``_start`` (libc image), which
    calls ``main`` and exits with its return value.
    """
    if isinstance(sources, str):
        sources = [sources]
    parts: list[str] = []
    if entry is not None:
        parts.append(f"    .global {entry}")
    for n, source in enumerate(sources):
        prefix = f"u{n}_" if len(sources) > 1 else ""
        parts.append(compile_unit(source, prefix=prefix))
    if with_runtime:
        parts.append(RUNTIME_ASM)
    return assemble("\n".join(parts))
