"""Compiler diagnostics."""

from __future__ import annotations


class MiniCError(Exception):
    """A MiniC front-end or code-generation error with source location."""

    def __init__(self, message: str, *, line: int | None = None,
                 col: int | None = None):
        self.line = line
        self.col = col
        loc = ""
        if line is not None:
            loc = f"line {line}"
            if col is not None:
                loc += f":{col}"
            loc += ": "
        super().__init__(loc + message)
