"""MiniC type system.

Scalar types: ``int`` (i64), ``float`` (f64), ``char`` (i8, widened to i64 in
registers), ``void`` (function returns only).  Derived: pointers of any depth
and fixed-size arrays (which decay to pointers in expressions, as in C).
"""

from __future__ import annotations

from dataclasses import dataclass

from .errors import MiniCError


@dataclass(frozen=True)
class Type:
    """Base marker; use the singletons and constructors below."""

    def is_float(self) -> bool:
        return isinstance(self, FloatType)

    def is_int_like(self) -> bool:
        return isinstance(self, (IntType, CharType))

    def is_pointer(self) -> bool:
        return isinstance(self, PtrType)

    def is_array(self) -> bool:
        return isinstance(self, ArrayType)

    def is_void(self) -> bool:
        return isinstance(self, VoidType)

    def sizeof(self) -> int:
        raise MiniCError(f"sizeof on incomplete type {self}")

    def decay(self) -> "Type":
        """Array-to-pointer decay; identity for everything else."""
        if isinstance(self, ArrayType):
            return PtrType(self.elem)
        return self


@dataclass(frozen=True)
class IntType(Type):
    def sizeof(self) -> int:
        return 8

    def __str__(self) -> str:
        return "int"


@dataclass(frozen=True)
class FloatType(Type):
    def sizeof(self) -> int:
        return 8

    def __str__(self) -> str:
        return "float"


@dataclass(frozen=True)
class CharType(Type):
    def sizeof(self) -> int:
        return 1

    def __str__(self) -> str:
        return "char"


@dataclass(frozen=True)
class VoidType(Type):
    def __str__(self) -> str:
        return "void"


@dataclass(frozen=True)
class PtrType(Type):
    elem: Type

    def sizeof(self) -> int:
        return 8

    def __str__(self) -> str:
        return f"{self.elem}*"


@dataclass(frozen=True)
class ArrayType(Type):
    elem: Type
    length: int

    def sizeof(self) -> int:
        return self.elem.sizeof() * self.length

    def __str__(self) -> str:
        return f"{self.elem}[{self.length}]"


INT = IntType()
FLOAT = FloatType()
CHAR = CharType()
VOID = VoidType()


def binary_result(op: str, lhs: Type, rhs: Type, *, line: int = 0) -> Type:
    """Result type of ``lhs op rhs`` after the usual conversions."""
    lhs, rhs = lhs.decay(), rhs.decay()
    if op in ("==", "!=", "<", "<=", ">", ">=", "&&", "||"):
        return INT
    if op in ("%", "<<", ">>", "&", "|", "^"):
        if lhs.is_float() or rhs.is_float():
            raise MiniCError(f"operator {op} requires integer operands",
                             line=line)
        return INT
    if op in ("+", "-"):
        if lhs.is_pointer() and rhs.is_int_like():
            return lhs
        if lhs.is_int_like() and rhs.is_pointer() and op == "+":
            return rhs
        if lhs.is_pointer() and rhs.is_pointer() and op == "-":
            return INT
    if lhs.is_pointer() or rhs.is_pointer():
        raise MiniCError(f"invalid pointer arithmetic: {lhs} {op} {rhs}",
                         line=line)
    if lhs.is_float() or rhs.is_float():
        return FLOAT
    return INT


def assignable(dst: Type, src: Type) -> bool:
    """Can a value of type ``src`` be stored into an lvalue of type ``dst``?"""
    src = src.decay()
    if isinstance(dst, ArrayType):
        return False
    if dst.is_float():
        return src.is_float() or src.is_int_like()
    if dst.is_int_like():
        return src.is_int_like() or src.is_float() or src.is_pointer()
    if dst.is_pointer():
        if src.is_int_like():
            return True
        if not src.is_pointer():
            return False
        # exact element match, or raw-byte views via char*
        return (src.elem == dst.elem or dst.elem == CHAR
                or src.elem == CHAR)
    return False
