"""MiniC abstract syntax tree."""

from __future__ import annotations

from dataclasses import dataclass, field

from .types import Type

# --------------------------------------------------------------- expressions


@dataclass
class Expr:
    line: int = 0


@dataclass
class IntLit(Expr):
    value: int = 0


@dataclass
class FloatLit(Expr):
    value: float = 0.0


@dataclass
class CharLit(Expr):
    value: int = 0


@dataclass
class StrLit(Expr):
    value: str = ""


@dataclass
class Name(Expr):
    ident: str = ""


@dataclass
class Unary(Expr):
    op: str = ""              # '-', '!', '~', '*', '&'
    operand: Expr | None = None


@dataclass
class Binary(Expr):
    op: str = ""
    lhs: Expr | None = None
    rhs: Expr | None = None


@dataclass
class Call(Expr):
    func: str = ""
    args: list[Expr] = field(default_factory=list)


@dataclass
class Index(Expr):
    base: Expr | None = None
    index: Expr | None = None


@dataclass
class Cast(Expr):
    target: Type | None = None
    operand: Expr | None = None


# ----------------------------------------------------------------- statements


@dataclass
class Stmt:
    line: int = 0


@dataclass
class VarDecl(Stmt):
    name: str = ""
    type: Type | None = None
    init: Expr | None = None


@dataclass
class Assign(Stmt):
    target: Expr | None = None    # Name, Unary('*'), or Index
    value: Expr | None = None


@dataclass
class ExprStmt(Stmt):
    expr: Expr | None = None


@dataclass
class If(Stmt):
    cond: Expr | None = None
    then: "Block | None" = None
    orelse: "Block | None" = None


@dataclass
class While(Stmt):
    cond: Expr | None = None
    body: "Block | None" = None


@dataclass
class DoWhile(Stmt):
    body: "Block | None" = None
    cond: Expr | None = None


@dataclass
class For(Stmt):
    init: Stmt | None = None      # Assign/VarDecl/ExprStmt or None
    cond: Expr | None = None
    step: Stmt | None = None
    body: "Block | None" = None


@dataclass
class Return(Stmt):
    value: Expr | None = None


@dataclass
class Break(Stmt):
    pass


@dataclass
class Continue(Stmt):
    pass


@dataclass
class Block(Stmt):
    body: list[Stmt] = field(default_factory=list)


# ----------------------------------------------------------------- top level


@dataclass
class Param:
    name: str
    type: Type
    line: int = 0


@dataclass
class FuncDef:
    name: str
    ret: Type
    params: list[Param]
    body: Block | None            #: None for extern declarations
    line: int = 0
    extern: bool = False


@dataclass
class GlobalVar:
    name: str
    type: Type
    init: Expr | None = None      #: constant initializer (literal) or None
    line: int = 0


@dataclass
class Unit:
    """One translation unit."""

    globals: list[GlobalVar] = field(default_factory=list)
    functions: list[FuncDef] = field(default_factory=list)
