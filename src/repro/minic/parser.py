"""Recursive-descent parser for MiniC."""

from __future__ import annotations

from . import ast
from .errors import MiniCError
from .lexer import Token, tokenize, unescape_string
from .types import ArrayType, CHAR, FLOAT, INT, PtrType, Type, VOID

_TYPE_KWS = {"int": INT, "float": FLOAT, "char": CHAR, "void": VOID}

# binary operator precedence: higher binds tighter
_PRECEDENCE = [
    ("||",),
    ("&&",),
    ("|",),
    ("^",),
    ("&",),
    ("==", "!="),
    ("<", "<=", ">", ">="),
    ("<<", ">>"),
    ("+", "-"),
    ("*", "/", "%"),
]


class Parser:
    def __init__(self, source: str):
        self.tokens = tokenize(source)
        self.pos = 0

    # ------------------------------------------------------------- cursor
    @property
    def tok(self) -> Token:
        return self.tokens[self.pos]

    def peek(self, ahead: int = 1) -> Token:
        return self.tokens[min(self.pos + ahead, len(self.tokens) - 1)]

    def advance(self) -> Token:
        t = self.tokens[self.pos]
        if t.kind != "eof":
            self.pos += 1
        return t

    def accept(self, kind: str, text: str | None = None) -> Token | None:
        t = self.tok
        if t.kind == kind and (text is None or t.text == text):
            return self.advance()
        return None

    def expect(self, kind: str, text: str | None = None) -> Token:
        t = self.accept(kind, text)
        if t is None:
            want = text if text is not None else kind
            raise MiniCError(
                f"expected {want!r}, found {self.tok.text or 'end of input'!r}",
                line=self.tok.line, col=self.tok.col)
        return t

    def at_type(self) -> bool:
        return self.tok.kind == "kw" and self.tok.text in _TYPE_KWS

    # ------------------------------------------------------------ top level
    def parse_unit(self) -> ast.Unit:
        unit = ast.Unit()
        while self.tok.kind != "eof":
            if self.accept("kw", "extern"):
                unit.functions.append(self._func_decl(extern=True))
                continue
            if not self.at_type():
                raise MiniCError(
                    f"expected declaration, found {self.tok.text!r}",
                    line=self.tok.line, col=self.tok.col)
            save = self.pos
            base = self._parse_type()
            name = self.expect("ident")
            if self.tok.text == "(":
                self.pos = save
                unit.functions.append(self._func_decl(extern=False))
            else:
                self.pos = save
                unit.globals.append(self._global_var())
        return unit

    def _parse_type(self) -> Type:
        t = self.expect("kw")
        if t.text not in _TYPE_KWS:
            raise MiniCError(f"not a type: {t.text!r}", line=t.line)
        ty: Type = _TYPE_KWS[t.text]
        while self.accept("op", "*"):
            ty = PtrType(ty)
        return ty

    def _func_decl(self, *, extern: bool) -> ast.FuncDef:
        ret = self._parse_type()
        name_tok = self.expect("ident")
        self.expect("op", "(")
        params: list[ast.Param] = []
        if not self.accept("op", ")"):
            if self.tok.kind == "kw" and self.tok.text == "void" \
                    and self.peek().text == ")":
                self.advance()
            else:
                while True:
                    pty = self._parse_type()
                    pname = self.expect("ident")
                    if pty.is_void():
                        raise MiniCError("void parameter", line=pname.line)
                    params.append(ast.Param(pname.text, pty, pname.line))
                    if not self.accept("op", ","):
                        break
            self.expect("op", ")")
        if extern:
            self.expect("op", ";")
            body = None
        else:
            body = self._block()
        return ast.FuncDef(name=name_tok.text, ret=ret, params=params,
                           body=body, line=name_tok.line, extern=extern)

    def _global_var(self) -> ast.GlobalVar:
        ty = self._parse_type()
        name_tok = self.expect("ident")
        ty = self._maybe_array(ty, name_tok.line)
        init = None
        if self.accept("op", "="):
            init = self._const_initializer()
        self.expect("op", ";")
        if ty.is_void():
            raise MiniCError("void variable", line=name_tok.line)
        return ast.GlobalVar(name=name_tok.text, type=ty, init=init,
                             line=name_tok.line)

    def _maybe_array(self, ty: Type, line: int) -> Type:
        if self.accept("op", "["):
            length_tok = self.expect("int")
            self.expect("op", "]")
            length = int(length_tok.text, 0)
            if length <= 0:
                raise MiniCError("array length must be positive", line=line)
            return ArrayType(ty, length)
        return ty

    def _const_initializer(self) -> ast.Expr:
        # Literal, optionally negated; or a string literal for char arrays.
        t = self.tok
        if t.kind == "string":
            self.advance()
            return ast.StrLit(line=t.line,
                              value=unescape_string(t.text[1:-1], line=t.line))
        if t.kind == "char":
            self.advance()
            body = unescape_string(t.text[1:-1], line=t.line)
            return ast.CharLit(line=t.line, value=ord(body))
        neg = bool(self.accept("op", "-"))
        t = self.tok
        if t.kind == "int":
            self.advance()
            v = int(t.text, 0)
            return ast.IntLit(line=t.line, value=-v if neg else v)
        if t.kind == "float":
            self.advance()
            v = float(t.text)
            return ast.FloatLit(line=t.line, value=-v if neg else v)
        raise MiniCError("global initializers must be literal constants",
                         line=t.line, col=t.col)

    # ------------------------------------------------------------ statements
    def _block(self) -> ast.Block:
        open_tok = self.expect("op", "{")
        body: list[ast.Stmt] = []
        while not self.accept("op", "}"):
            if self.tok.kind == "eof":
                raise MiniCError("unterminated block", line=open_tok.line)
            body.append(self._statement())
        return ast.Block(line=open_tok.line, body=body)

    def _stmt_as_block(self) -> ast.Block:
        if self.tok.text == "{":
            return self._block()
        stmt = self._statement()
        return ast.Block(line=stmt.line, body=[stmt])

    def _statement(self) -> ast.Stmt:
        t = self.tok
        if t.kind == "kw":
            if t.text in _TYPE_KWS:
                return self._var_decl()
            if t.text == "if":
                return self._if()
            if t.text == "while":
                return self._while()
            if t.text == "do":
                return self._do_while()
            if t.text == "for":
                return self._for()
            if t.text == "return":
                self.advance()
                value = None
                if self.tok.text != ";":
                    value = self._expr()
                self.expect("op", ";")
                return ast.Return(line=t.line, value=value)
            if t.text == "break":
                self.advance()
                self.expect("op", ";")
                return ast.Break(line=t.line)
            if t.text == "continue":
                self.advance()
                self.expect("op", ";")
                return ast.Continue(line=t.line)
        if t.text == "{":
            return self._block()
        stmt = self._simple_stmt()
        self.expect("op", ";")
        return stmt

    def _var_decl(self) -> ast.VarDecl:
        ty = self._parse_type()
        name_tok = self.expect("ident")
        ty = self._maybe_array(ty, name_tok.line)
        if ty.is_void():
            raise MiniCError("void variable", line=name_tok.line)
        init = None
        if self.accept("op", "="):
            if ty.is_array():
                raise MiniCError("local arrays cannot have initializers",
                                 line=name_tok.line)
            init = self._expr()
        self.expect("op", ";")
        return ast.VarDecl(line=name_tok.line, name=name_tok.text,
                           type=ty, init=init)

    _COMPOUND_OPS = {"+=": "+", "-=": "-", "*=": "*", "/=": "/", "%=": "%",
                     "&=": "&", "|=": "|", "^=": "^", "<<=": "<<",
                     ">>=": ">>"}

    def _simple_stmt(self) -> ast.Stmt:
        """Assignment, compound assignment, ++/--, or expression statement
        (no trailing semicolon)."""
        line = self.tok.line
        expr = self._expr()
        if self.accept("op", "="):
            self._require_lvalue(expr, line)
            value = self._expr()
            return ast.Assign(line=line, target=expr, value=value)
        tok = self.tok
        if tok.kind == "op" and tok.text in self._COMPOUND_OPS:
            self.advance()
            self._require_lvalue(expr, line, simple=True)
            rhs = self._expr()
            # desugar: `lv op= e`  =>  `lv = lv op e`
            value = ast.Binary(line=line, op=self._COMPOUND_OPS[tok.text],
                               lhs=expr, rhs=rhs)
            return ast.Assign(line=line, target=expr, value=value)
        if tok.kind == "op" and tok.text in ("++", "--"):
            self.advance()
            self._require_lvalue(expr, line, simple=True)
            op = "+" if tok.text == "++" else "-"
            value = ast.Binary(line=line, op=op, lhs=expr,
                               rhs=ast.IntLit(line=line, value=1))
            return ast.Assign(line=line, target=expr, value=value)
        return ast.ExprStmt(line=line, expr=expr)

    def _require_lvalue(self, expr: ast.Expr, line: int, *,
                        simple: bool = False) -> None:
        if not isinstance(expr, (ast.Name, ast.Index)) and \
                not (isinstance(expr, ast.Unary) and expr.op == "*"):
            raise MiniCError("assignment target is not an lvalue", line=line)
        if simple and self._contains_call(expr):
            # desugared forms evaluate the target expression twice; a call
            # inside it would run twice, which C does not do
            raise MiniCError("compound assignment / ++ / -- target must "
                             "not contain function calls", line=line)

    def _contains_call(self, expr: ast.Expr | None) -> bool:
        if expr is None:
            return False
        if isinstance(expr, ast.Call):
            return True
        if isinstance(expr, ast.Unary):
            return self._contains_call(expr.operand)
        if isinstance(expr, ast.Binary):
            return (self._contains_call(expr.lhs)
                    or self._contains_call(expr.rhs))
        if isinstance(expr, ast.Index):
            return (self._contains_call(expr.base)
                    or self._contains_call(expr.index))
        if isinstance(expr, ast.Cast):
            return self._contains_call(expr.operand)
        return False

    def _if(self) -> ast.If:
        t = self.expect("kw", "if")
        self.expect("op", "(")
        cond = self._expr()
        self.expect("op", ")")
        then = self._stmt_as_block()
        orelse = None
        if self.accept("kw", "else"):
            orelse = self._stmt_as_block()
        return ast.If(line=t.line, cond=cond, then=then, orelse=orelse)

    def _while(self) -> ast.While:
        t = self.expect("kw", "while")
        self.expect("op", "(")
        cond = self._expr()
        self.expect("op", ")")
        body = self._stmt_as_block()
        return ast.While(line=t.line, cond=cond, body=body)

    def _do_while(self) -> ast.DoWhile:
        t = self.expect("kw", "do")
        body = self._stmt_as_block()
        self.expect("kw", "while")
        self.expect("op", "(")
        cond = self._expr()
        self.expect("op", ")")
        self.expect("op", ";")
        return ast.DoWhile(line=t.line, body=body, cond=cond)

    def _for(self) -> ast.For:
        t = self.expect("kw", "for")
        self.expect("op", "(")
        init = None
        if self.tok.text != ";":
            init = (self._var_decl_no_semi() if self.at_type()
                    else self._simple_stmt())
            self.expect("op", ";")
        else:
            self.expect("op", ";")
        cond = None
        if self.tok.text != ";":
            cond = self._expr()
        self.expect("op", ";")
        step = None
        if self.tok.text != ")":
            step = self._simple_stmt()
        self.expect("op", ")")
        body = self._stmt_as_block()
        return ast.For(line=t.line, init=init, cond=cond, step=step,
                       body=body)

    def _var_decl_no_semi(self) -> ast.VarDecl:
        ty = self._parse_type()
        name_tok = self.expect("ident")
        if ty.is_void():
            raise MiniCError("void variable", line=name_tok.line)
        init = None
        if self.accept("op", "="):
            init = self._expr()
        return ast.VarDecl(line=name_tok.line, name=name_tok.text,
                           type=ty, init=init)

    # ----------------------------------------------------------- expressions
    def _expr(self) -> ast.Expr:
        return self._binary(0)

    def _binary(self, level: int) -> ast.Expr:
        if level >= len(_PRECEDENCE):
            return self._unary()
        ops = _PRECEDENCE[level]
        lhs = self._binary(level + 1)
        while self.tok.kind == "op" and self.tok.text in ops:
            op = self.advance()
            rhs = self._binary(level + 1)
            lhs = ast.Binary(line=op.line, op=op.text, lhs=lhs, rhs=rhs)
        return lhs

    def _unary(self) -> ast.Expr:
        t = self.tok
        if t.kind == "op" and t.text in ("-", "!", "~", "*", "&"):
            self.advance()
            operand = self._unary()
            return ast.Unary(line=t.line, op=t.text, operand=operand)
        # cast: '(' type ')' unary
        if t.text == "(" and self.peek().kind == "kw" \
                and self.peek().text in _TYPE_KWS:
            self.advance()
            target = self._parse_type()
            self.expect("op", ")")
            operand = self._unary()
            return ast.Cast(line=t.line, target=target, operand=operand)
        return self._postfix()

    def _postfix(self) -> ast.Expr:
        expr = self._primary()
        while True:
            t = self.tok
            if t.text == "[":
                self.advance()
                index = self._expr()
                self.expect("op", "]")
                expr = ast.Index(line=t.line, base=expr, index=index)
            elif t.text == "(" and isinstance(expr, ast.Name):
                self.advance()
                args: list[ast.Expr] = []
                if not self.accept("op", ")"):
                    while True:
                        args.append(self._expr())
                        if not self.accept("op", ","):
                            break
                    self.expect("op", ")")
                expr = ast.Call(line=t.line, func=expr.ident, args=args)
            else:
                return expr

    def _primary(self) -> ast.Expr:
        t = self.tok
        if t.kind == "int":
            self.advance()
            return ast.IntLit(line=t.line, value=int(t.text, 0))
        if t.kind == "float":
            self.advance()
            return ast.FloatLit(line=t.line, value=float(t.text))
        if t.kind == "char":
            self.advance()
            body = unescape_string(t.text[1:-1], line=t.line)
            return ast.CharLit(line=t.line, value=ord(body))
        if t.kind == "string":
            self.advance()
            return ast.StrLit(line=t.line,
                              value=unescape_string(t.text[1:-1], line=t.line))
        if t.kind == "ident":
            self.advance()
            return ast.Name(line=t.line, ident=t.text)
        if t.text == "(":
            self.advance()
            expr = self._expr()
            self.expect("op", ")")
            return expr
        raise MiniCError(f"expected expression, found {t.text!r}",
                         line=t.line, col=t.col)


def parse(source: str) -> ast.Unit:
    """Parse MiniC source into a :class:`~repro.minic.ast.Unit`."""
    return Parser(source).parse_unit()
