"""Tokenizer for MiniC.

MiniC is the C-like source language the guest applications (including the
hArtes-wfs reconstruction) are written in.  The lexer produces a flat token
stream; ``//`` and ``/* */`` comments are stripped.
"""

from __future__ import annotations

import re
from dataclasses import dataclass

from .errors import MiniCError

KEYWORDS = {
    "int", "float", "char", "void", "if", "else", "while", "for", "return",
    "break", "continue", "extern", "do",
}

_TOKEN_RE = re.compile(r"""
    (?P<ws>\s+)
  | (?P<comment>//[^\n]*|/\*.*?\*/)
  | (?P<float>(\d+\.\d*([eE][-+]?\d+)?|\d+[eE][-+]?\d+|\.\d+([eE][-+]?\d+)?))
  | (?P<int>0[xX][0-9a-fA-F]+|\d+)
  | (?P<ident>[A-Za-z_][A-Za-z0-9_]*)
  | (?P<string>"(\\.|[^"\\])*")
  | (?P<char>'(\\.|[^'\\])')
  | (?P<op><<=|>>=|<<|>>|<=|>=|==|!=|&&|\|\||\+\+|--|[-+*/%&|^]=
          |[-+*/%<>=!&|^~(){}\[\],;])
""", re.VERBOSE | re.DOTALL)


@dataclass(frozen=True)
class Token:
    kind: str            #: 'int' | 'float' | 'ident' | 'kw' | 'string' | 'char' | 'op' | 'eof'
    text: str
    line: int
    col: int

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Token({self.kind}, {self.text!r}, {self.line}:{self.col})"


def tokenize(source: str) -> list[Token]:
    """Tokenize MiniC source; raises :class:`MiniCError` on bad input."""
    tokens: list[Token] = []
    pos = 0
    line = 1
    line_start = 0
    n = len(source)
    while pos < n:
        m = _TOKEN_RE.match(source, pos)
        if m is None:
            col = pos - line_start + 1
            raise MiniCError(f"unexpected character {source[pos]!r}",
                             line=line, col=col)
        kind = m.lastgroup
        text = m.group()
        col = pos - line_start + 1
        if kind in ("ws", "comment"):
            newlines = text.count("\n")
            if newlines:
                line += newlines
                line_start = pos + text.rindex("\n") + 1
        elif kind == "ident" and text in KEYWORDS:
            tokens.append(Token("kw", text, line, col))
        else:
            tokens.append(Token(kind, text, line, col))
        pos = m.end()
    tokens.append(Token("eof", "", line, n - line_start + 1))
    return tokens


_ESCAPES = {"n": "\n", "t": "\t", "r": "\r", "0": "\0", "\\": "\\",
            '"': '"', "'": "'"}


def unescape_string(text: str, *, line: int = 0) -> str:
    """Decode a quoted string/char literal body (without the quotes)."""
    out = []
    i = 0
    while i < len(text):
        c = text[i]
        if c == "\\":
            if i + 1 >= len(text):
                raise MiniCError("dangling escape in literal", line=line)
            esc = text[i + 1]
            if esc not in _ESCAPES:
                raise MiniCError(f"unknown escape \\{esc}", line=line)
            out.append(_ESCAPES[esc])
            i += 2
        else:
            out.append(c)
            i += 1
    return "".join(out)
