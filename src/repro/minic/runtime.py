"""The MiniC runtime library, written in assembly.

All routines live in the ``libc`` image, so they are exactly what the tQUAD
paper calls "library and OS routines" — the profilers can include or exclude
them (paper §IV-C: "the exclusion of memory bandwidth usage data caused by OS
and library routine calls").

Provided: process control (``_start``/``exit``), file I/O syscall wrappers,
console output, a bump allocator (``malloc``/``free``), ``memset``,
``memcpy`` and ``strlen``.
"""

from __future__ import annotations

from .types import CHAR, FLOAT, INT, PtrType, VOID

#: Signatures the compiler injects so MiniC code can call the runtime
#: without writing extern declarations.
RUNTIME_SIGNATURES: dict[str, tuple[object, tuple[object, ...]]] = {
    "exit": (VOID, (INT,)),
    "open": (INT, (PtrType(CHAR), INT)),
    "close": (INT, (INT,)),
    "read": (INT, (INT, PtrType(CHAR), INT)),
    "write": (INT, (INT, PtrType(CHAR), INT)),
    "seek": (INT, (INT, INT)),
    "fsize": (INT, (INT,)),
    "malloc": (PtrType(CHAR), (INT,)),
    "free": (VOID, (PtrType(CHAR),)),
    "memset": (VOID, (PtrType(CHAR), INT, INT)),
    "memcpy": (VOID, (PtrType(CHAR), PtrType(CHAR), INT)),
    "strlen": (INT, (PtrType(CHAR),)),
    "print_int": (VOID, (INT,)),
    "print_float": (VOID, (FLOAT,)),
    "print_str": (VOID, (PtrType(CHAR),)),
    "clock": (INT, ()),
}

RUNTIME_ASM = """
# ---------------------------------------------------------------- runtime
    .image libc
    .text

    .func _start
_start:
    call main
    mv   a1, a0          # exit code = main's return value
    li   a0, 0           # SYS_EXIT
    ecall
    halt                 # not reached
    .endfunc

    .func exit
exit:
    mv   a1, a0
    li   a0, 0
    ecall
    halt
    .endfunc

    .func open
open:
    mv   a2, a1
    mv   a1, a0
    li   a0, 1
    ecall
    ret
    .endfunc

    .func close
close:
    mv   a1, a0
    li   a0, 2
    ecall
    ret
    .endfunc

    .func read
read:
    mv   a3, a2
    mv   a2, a1
    mv   a1, a0
    li   a0, 3
    ecall
    ret
    .endfunc

    .func write
write:
    mv   a3, a2
    mv   a2, a1
    mv   a1, a0
    li   a0, 4
    ecall
    ret
    .endfunc

    .func seek
seek:
    mv   a2, a1
    mv   a1, a0
    li   a0, 10
    ecall
    ret
    .endfunc

    .func fsize
fsize:
    mv   a1, a0
    li   a0, 11
    ecall
    ret
    .endfunc

    # Bump allocator: malloc(n) rounds n up to 16 and sbrk's it.
    .func malloc
malloc:
    addi a0, a0, 15
    li   t0, -16
    and  a1, a0, t0
    li   a0, 5           # SYS_SBRK
    ecall
    ret
    .endfunc

    .func free
free:
    ret                  # bump allocator never frees
    .endfunc

    .func memset
memset:
    # a0 = dst, a1 = byte value, a2 = count
    add  t0, a0, a2      # end
ms_loop:
    bge  a0, t0, ms_done
    sb   a1, 0(a0)
    addi a0, a0, 1
    j    ms_loop
ms_done:
    ret
    .endfunc

    .func memcpy
memcpy:
    # a0 = dst, a1 = src, a2 = count; 8 bytes at a time, then tail
    add  t0, a0, a2      # end of dst
    addi t1, t0, -7      # last position where an 8-byte copy fits
mc_wide:
    bge  a0, t1, mc_tail
    ld   t2, 0(a1)
    sd   t2, 0(a0)
    addi a0, a0, 8
    addi a1, a1, 8
    j    mc_wide
mc_tail:
    bge  a0, t0, mc_done
    lbu  t2, 0(a1)
    sb   t2, 0(a0)
    addi a0, a0, 1
    addi a1, a1, 1
    j    mc_tail
mc_done:
    ret
    .endfunc

    .func strlen
strlen:
    mv   t0, a0
sl_loop:
    lbu  t1, 0(t0)
    beqz t1, sl_done
    addi t0, t0, 1
    j    sl_loop
sl_done:
    sub  a0, t0, a0
    ret
    .endfunc

    .func print_int
print_int:
    mv   a1, a0
    li   a0, 6
    ecall
    ret
    .endfunc

    .func print_float
print_float:
    li   a0, 7           # value already in fa0
    ecall
    ret
    .endfunc

    .func print_str
print_str:
    mv   a1, a0
    li   a0, 8
    ecall
    ret
    .endfunc

    .func clock
clock:
    li   a0, 9
    ecall
    ret
    .endfunc
"""
