"""MiniC code generator: typed AST walk emitting assembly text.

Conventions (matching the ABI in :mod:`repro.isa.registers`):

* integer/pointer/char arguments use ``a0``–``a7`` in order of the
  integer-typed parameters; float arguments use ``fa0``–``fa7`` likewise;
* results come back in ``a0``/``fa0``;
* every function keeps a frame pointer: ``fp`` = sp at entry, saved ``ra`` at
  ``fp-8``, saved caller ``fp`` at ``fp-16``, locals below;
* all locals (including parameters) live in memory slots — like ``-O0``
  compiled C.  This is deliberate: the stack-area memory traffic the tQUAD
  paper analyses (stack include/exclude ratios in Tables II and IV) only
  exists because real compiled code spills to its frame;
* expression evaluation uses the caller-saved ``t``/``ft`` register pools as
  an operand stack; live temporaries are saved around calls.

``char`` is unsigned (loads use ``lbu``).
"""

from __future__ import annotations

from dataclasses import dataclass

from . import ast
from .errors import MiniCError
from .types import (ArrayType, CHAR, FLOAT, INT, PtrType, Type, VOID,
                    assignable, binary_result)

_INT_TEMPS = tuple(f"t{i}" for i in range(10))
_FLOAT_TEMPS = tuple(f"ft{i}" for i in range(12))
_MAX_ARGS = 8

#: Intrinsics lowered to single instructions instead of calls.
_FLOAT_INTRINSICS = {"__sqrt": "fsqrt", "__sin": "fsin", "__cos": "fcos",
                     "__fabs": "fabs"}


@dataclass
class Value:
    """An evaluated expression: a type plus the register holding it."""

    type: Type
    reg: str          #: "tN" or "ftN"

    @property
    def is_float_reg(self) -> bool:
        return self.reg.startswith("ft")


@dataclass
class VarInfo:
    kind: str         #: 'local' | 'global'
    type: Type
    offset: int = 0   #: fp-relative offset for locals
    label: str = ""   #: data label for globals


@dataclass
class FuncSig:
    name: str
    ret: Type
    params: tuple[Type, ...]


class RegPool:
    """Stack-disciplined temporary register allocator."""

    def __init__(self, names: tuple[str, ...], what: str):
        self.names = names
        self.what = what
        self.in_use: list[str] = []

    def alloc(self, line: int = 0) -> str:
        for name in self.names:
            if name not in self.in_use:
                self.in_use.append(name)
                return name
        raise MiniCError(
            f"expression too complex: out of {self.what} temporaries",
            line=line)

    def free(self, reg: str) -> None:
        self.in_use.remove(reg)

    def live(self) -> list[str]:
        return list(self.in_use)


class UnitContext:
    """Shared state across the functions of one translation unit."""

    def __init__(self, unit: ast.Unit, *, prefix: str = ""):
        self.prefix = prefix
        self.sigs: dict[str, FuncSig] = {}
        self.globals: dict[str, VarInfo] = {}
        self.strings: list[tuple[str, str]] = []   # (label, text)
        self._label_n = 0
        self._str_n = 0
        for f in unit.functions:
            sig = FuncSig(f.name, f.ret,
                          tuple(p.type.decay() for p in f.params))
            if f.name in self.sigs and self.sigs[f.name] != sig:
                raise MiniCError(f"conflicting declarations of {f.name}",
                                 line=f.line)
            self.sigs[f.name] = sig
        for g in unit.globals:
            if g.name in self.globals:
                raise MiniCError(f"duplicate global {g.name}", line=g.line)
            self.globals[g.name] = VarInfo(kind="global", type=g.type,
                                           label=f"g_{prefix}{g.name}")

    def new_label(self, hint: str) -> str:
        self._label_n += 1
        return f".L{self.prefix}{hint}_{self._label_n}"

    def intern_string(self, text: str) -> str:
        label = f".Lstr_{self.prefix}{self._str_n}"
        self._str_n += 1
        self.strings.append((label, text))
        return label


def _load_op(ty: Type) -> str:
    if ty.is_float():
        return "fld"
    if ty == CHAR:
        return "lbu"
    return "ld"


def _store_op(ty: Type) -> str:
    if ty.is_float():
        return "fsd"
    if ty == CHAR:
        return "sb"
    return "sd"


class FuncCodegen:
    """Generates the body of a single function."""

    def __init__(self, ctx: UnitContext, func: ast.FuncDef):
        self.ctx = ctx
        self.func = func
        self.out: list[str] = []
        self.itemps = RegPool(_INT_TEMPS, "integer")
        self.ftemps = RegPool(_FLOAT_TEMPS, "float")
        self.vars: dict[str, VarInfo] = {}
        self.scopes: list[list[str]] = []
        self.next_offset = -24            # below saved ra (-8) and fp (-16)
        self.loop_stack: list[tuple[str, str]] = []  # (continue, break)
        self.ret_label = ctx.new_label(f"ret_{func.name}")
        self.seen_return = False

    # ----------------------------------------------------------- emission
    def emit(self, text: str) -> None:
        self.out.append("    " + text)

    def emit_label(self, label: str) -> None:
        self.out.append(f"{label}:")

    # ---------------------------------------------------------- generation
    def generate(self) -> list[str]:
        f = self.func
        if len([p for p in f.params if p.type.decay().is_float()]) > _MAX_ARGS \
                or len([p for p in f.params
                        if not p.type.decay().is_float()]) > _MAX_ARGS:
            raise MiniCError(f"too many parameters in {f.name}", line=f.line)
        self.scopes.append([])
        # Parameter slots + stores from argument registers.
        int_idx = 0
        float_idx = 0
        param_stores: list[str] = []
        for p in f.params:
            ty = p.type.decay()
            info = self._declare(p.name, ty, p.line)
            if ty.is_float():
                param_stores.append(f"fsd fa{float_idx}, {info.offset}(fp)")
                float_idx += 1
            else:
                op = _store_op(ty)
                param_stores.append(f"{op} a{int_idx}, {info.offset}(fp)")
                int_idx += 1
        for stmt in f.body.body:
            self.gen_stmt(stmt)
        self.scopes.pop()
        # Frame: 16 bytes saved regs + locals, rounded up to 16.
        frame = ((-self.next_offset) + 15) & ~15
        head = [
            f"    .func {f.name}",
            f"{f.name}:",
            f"    addi sp, sp, -{frame}",
            f"    sd ra, {frame - 8}(sp)",
            f"    sd fp, {frame - 16}(sp)",
            f"    addi fp, sp, {frame}",
        ] + ["    " + s for s in param_stores]
        # Epilogue keeps every read at or above SP so the profilers' stack
        # classification (address >= SP) stays exact.
        tail = [
            f"{self.ret_label}:",
            "    ld ra, -8(fp)",
            "    addi sp, fp, -16",
            "    ld fp, 0(sp)",
            "    addi sp, sp, 16",
            "    ret",
            "    .endfunc",
        ]
        if not f.ret.is_void() and not self.seen_return:
            raise MiniCError(f"function {f.name} returns {f.ret} but has no "
                             "return statement", line=f.line)
        # Fall through to the epilogue for void functions.
        return head + self.out + tail

    # ------------------------------------------------------------ scoping
    def _declare(self, name: str, ty: Type, line: int) -> VarInfo:
        if name in self.vars and name in self.scopes[-1]:
            raise MiniCError(f"redeclaration of {name}", line=line)
        size = (ty.sizeof() + 7) & ~7
        self.next_offset -= size
        info = VarInfo(kind="local", type=ty, offset=self.next_offset)
        self.scopes[-1].append(name)
        self._shadow_stack = getattr(self, "_shadow_stack", {})
        self._shadow_stack.setdefault(name, []).append(self.vars.get(name))
        self.vars[name] = info
        return info

    def _enter_scope(self) -> None:
        self.scopes.append([])

    def _leave_scope(self) -> None:
        for name in self.scopes.pop():
            prev = self._shadow_stack[name].pop()
            if prev is None:
                del self.vars[name]
            else:
                self.vars[name] = prev

    def _lookup(self, name: str, line: int) -> VarInfo:
        info = self.vars.get(name) or self.ctx.globals.get(name)
        if info is None:
            raise MiniCError(f"undeclared identifier {name!r}", line=line)
        return info

    # ---------------------------------------------------------- statements
    def gen_stmt(self, stmt: ast.Stmt) -> None:
        if isinstance(stmt, ast.VarDecl):
            self.gen_var_decl(stmt)
        elif isinstance(stmt, ast.Assign):
            self.gen_assign(stmt)
        elif isinstance(stmt, ast.ExprStmt):
            v = self.gen_expr(stmt.expr)
            if v is not None:
                self.free_value(v)
        elif isinstance(stmt, ast.If):
            self.gen_if(stmt)
        elif isinstance(stmt, ast.While):
            self.gen_while(stmt)
        elif isinstance(stmt, ast.DoWhile):
            self.gen_do_while(stmt)
        elif isinstance(stmt, ast.For):
            self.gen_for(stmt)
        elif isinstance(stmt, ast.Return):
            self.gen_return(stmt)
        elif isinstance(stmt, ast.Break):
            if not self.loop_stack:
                raise MiniCError("break outside loop", line=stmt.line)
            self.emit(f"j {self.loop_stack[-1][1]}")
        elif isinstance(stmt, ast.Continue):
            if not self.loop_stack:
                raise MiniCError("continue outside loop", line=stmt.line)
            self.emit(f"j {self.loop_stack[-1][0]}")
        elif isinstance(stmt, ast.Block):
            self._enter_scope()
            for s in stmt.body:
                self.gen_stmt(s)
            self._leave_scope()
        else:  # pragma: no cover - parser produces no other nodes
            raise MiniCError(f"unhandled statement {type(stmt).__name__}",
                             line=stmt.line)

    def gen_var_decl(self, stmt: ast.VarDecl) -> None:
        info = self._declare(stmt.name, stmt.type, stmt.line)
        if stmt.init is not None:
            v = self.gen_expr(stmt.init)
            v = self.convert(v, info.type, stmt.line)
            self.emit(f"{_store_op(info.type)} {v.reg}, {info.offset}(fp)")
            self.free_value(v)

    def gen_assign(self, stmt: ast.Assign) -> None:
        target = stmt.target
        # Fast path: scalar variable.
        if isinstance(target, ast.Name):
            info = self._lookup(target.ident, stmt.line)
            if info.type.is_array():
                raise MiniCError("cannot assign to an array", line=stmt.line)
            v = self.gen_expr(stmt.value)
            v = self.convert(v, info.type, stmt.line)
            if info.kind == "local":
                self.emit(f"{_store_op(info.type)} {v.reg}, "
                          f"{info.offset}(fp)")
            else:
                addr = self.itemps.alloc(stmt.line)
                self.emit(f"la {addr}, {info.label}")
                self.emit(f"{_store_op(info.type)} {v.reg}, 0({addr})")
                self.itemps.free(addr)
            self.free_value(v)
            return
        addr_reg, elem_ty = self.gen_lvalue_address(target)
        v = self.gen_expr(stmt.value)
        v = self.convert(v, elem_ty, stmt.line)
        self.emit(f"{_store_op(elem_ty)} {v.reg}, 0({addr_reg})")
        self.free_value(v)
        self.itemps.free(addr_reg)

    def gen_if(self, stmt: ast.If) -> None:
        else_label = self.ctx.new_label("else")
        end_label = self.ctx.new_label("endif")
        self.gen_branch_if_false(stmt.cond,
                                 else_label if stmt.orelse else end_label)
        self.gen_stmt(stmt.then)
        if stmt.orelse is not None:
            self.emit(f"j {end_label}")
            self.emit_label(else_label)
            self.gen_stmt(stmt.orelse)
        self.emit_label(end_label)

    def gen_while(self, stmt: ast.While) -> None:
        top = self.ctx.new_label("while")
        end = self.ctx.new_label("endwhile")
        self.emit_label(top)
        self.gen_branch_if_false(stmt.cond, end)
        self.loop_stack.append((top, end))
        self.gen_stmt(stmt.body)
        self.loop_stack.pop()
        self.emit(f"j {top}")
        self.emit_label(end)

    def gen_do_while(self, stmt: ast.DoWhile) -> None:
        top = self.ctx.new_label("do")
        cond_label = self.ctx.new_label("docond")
        end = self.ctx.new_label("enddo")
        self.emit_label(top)
        self.loop_stack.append((cond_label, end))
        self.gen_stmt(stmt.body)
        self.loop_stack.pop()
        self.emit_label(cond_label)
        self.gen_branch_if_false(stmt.cond, end)
        self.emit(f"j {top}")
        self.emit_label(end)

    def gen_for(self, stmt: ast.For) -> None:
        self._enter_scope()
        if stmt.init is not None:
            self.gen_stmt(stmt.init)
        top = self.ctx.new_label("for")
        step_label = self.ctx.new_label("forstep")
        end = self.ctx.new_label("endfor")
        self.emit_label(top)
        if stmt.cond is not None:
            self.gen_branch_if_false(stmt.cond, end)
        self.loop_stack.append((step_label, end))
        self.gen_stmt(stmt.body)
        self.loop_stack.pop()
        self.emit_label(step_label)
        if stmt.step is not None:
            self.gen_stmt(stmt.step)
        self.emit(f"j {top}")
        self.emit_label(end)
        self._leave_scope()

    def gen_return(self, stmt: ast.Return) -> None:
        self.seen_return = True
        ret = self.func.ret
        if stmt.value is None:
            if not ret.is_void():
                raise MiniCError("return without value in non-void function",
                                 line=stmt.line)
        else:
            if ret.is_void():
                raise MiniCError("return with value in void function",
                                 line=stmt.line)
            v = self.gen_expr(stmt.value)
            v = self.convert(v, ret, stmt.line)
            if ret.is_float():
                self.emit(f"fmv fa0, {v.reg}")
            else:
                self.emit(f"mv a0, {v.reg}")
            self.free_value(v)
        self.emit(f"j {self.ret_label}")

    # ---------------------------------------------------------- conditions
    def gen_branch_if_false(self, cond: ast.Expr, label: str) -> None:
        """Emit a test of ``cond`` that jumps to ``label`` when false."""
        # Comparison operators fold directly into branches.
        if isinstance(cond, ast.Binary) and cond.op in (
                "==", "!=", "<", "<=", ">", ">="):
            lhs = self.gen_expr(cond.lhs)
            rhs = self.gen_expr(cond.rhs)
            if lhs.type.decay().is_float() or rhs.type.decay().is_float():
                v = self._float_compare(cond.op, lhs, rhs, cond.line)
                self.emit(f"beqz {v.reg}, {label}")
                self.free_value(v)
                return
            inverse = {"==": "bne", "!=": "beq", "<": "bge", "<=": "bgt",
                       ">": "ble", ">=": "blt"}[cond.op]
            self.emit(f"{inverse} {lhs.reg}, {rhs.reg}, {label}")
            self.free_value(rhs)
            self.free_value(lhs)
            return
        v = self.gen_expr(cond)
        v = self._truth_value(v, cond.line)
        self.emit(f"beqz {v.reg}, {label}")
        self.free_value(v)

    def _truth_value(self, v: Value, line: int) -> Value:
        """Convert any scalar value to an int 0/1-ish register."""
        if not v.is_float_reg:
            return v
        zero = self.ftemps.alloc(line)
        out = self.itemps.alloc(line)
        self.emit(f"fli {zero}, 0.0")
        self.emit(f"feq {out}, {v.reg}, {zero}")
        self.emit(f"xori {out}, {out}, 1")
        self.ftemps.free(zero)
        self.free_value(v)
        return Value(INT, out)

    # ---------------------------------------------------------- expressions
    def gen_expr(self, expr: ast.Expr) -> Value | None:
        """Evaluate ``expr``; returns None only for void calls."""
        if isinstance(expr, ast.IntLit):
            reg = self.itemps.alloc(expr.line)
            self.emit(f"li {reg}, {expr.value}")
            return Value(INT, reg)
        if isinstance(expr, ast.CharLit):
            reg = self.itemps.alloc(expr.line)
            self.emit(f"li {reg}, {expr.value}")
            return Value(CHAR, reg)
        if isinstance(expr, ast.FloatLit):
            reg = self.ftemps.alloc(expr.line)
            self.emit(f"fli {reg}, {expr.value!r}")
            return Value(FLOAT, reg)
        if isinstance(expr, ast.StrLit):
            label = self.ctx.intern_string(expr.value)
            reg = self.itemps.alloc(expr.line)
            self.emit(f"la {reg}, {label}")
            return Value(PtrType(CHAR), reg)
        if isinstance(expr, ast.Name):
            return self.gen_name(expr)
        if isinstance(expr, ast.Unary):
            return self.gen_unary(expr)
        if isinstance(expr, ast.Binary):
            return self.gen_binary(expr)
        if isinstance(expr, ast.Call):
            return self.gen_call(expr)
        if isinstance(expr, ast.Index):
            addr, elem_ty = self.gen_lvalue_address(expr)
            return self._load_from(addr, elem_ty, expr.line)
        if isinstance(expr, ast.Cast):
            return self.gen_cast(expr)
        raise MiniCError(f"unhandled expression {type(expr).__name__}",
                         line=expr.line)  # pragma: no cover

    def gen_name(self, expr: ast.Name) -> Value:
        info = self._lookup(expr.ident, expr.line)
        ty = info.type
        if ty.is_array():
            # decay to pointer: the value is the address
            reg = self.itemps.alloc(expr.line)
            if info.kind == "local":
                self.emit(f"addi {reg}, fp, {info.offset}")
            else:
                self.emit(f"la {reg}, {info.label}")
            return Value(PtrType(ty.elem), reg)
        if info.kind == "local":
            if ty.is_float():
                reg = self.ftemps.alloc(expr.line)
            else:
                reg = self.itemps.alloc(expr.line)
            self.emit(f"{_load_op(ty)} {reg}, {info.offset}(fp)")
            return Value(ty, reg)
        addr = self.itemps.alloc(expr.line)
        self.emit(f"la {addr}, {info.label}")
        v = self._load_from(addr, ty, expr.line)
        return v

    def _load_from(self, addr_reg: str, ty: Type, line: int) -> Value:
        """Load a scalar through ``addr_reg`` and free the address temp."""
        if ty.is_float():
            reg = self.ftemps.alloc(line)
            self.emit(f"fld {reg}, 0({addr_reg})")
            self.itemps.free(addr_reg)
            return Value(ty, reg)
        self.emit(f"{_load_op(ty)} {addr_reg}, 0({addr_reg})")
        return Value(ty, addr_reg)

    def gen_lvalue_address(self, expr: ast.Expr) -> tuple[str, Type]:
        """Evaluate an lvalue to (address register, element type)."""
        if isinstance(expr, ast.Name):
            info = self._lookup(expr.ident, expr.line)
            if info.type.is_array():
                raise MiniCError("array is not a scalar lvalue",
                                 line=expr.line)
            reg = self.itemps.alloc(expr.line)
            if info.kind == "local":
                self.emit(f"addi {reg}, fp, {info.offset}")
            else:
                self.emit(f"la {reg}, {info.label}")
            return reg, info.type
        if isinstance(expr, ast.Unary) and expr.op == "*":
            v = self.gen_expr(expr.operand)
            ty = v.type.decay()
            if not ty.is_pointer():
                raise MiniCError(f"cannot dereference {v.type}",
                                 line=expr.line)
            return v.reg, ty.elem
        if isinstance(expr, ast.Index):
            base = self.gen_expr(expr.base)
            bty = base.type.decay()
            if not bty.is_pointer():
                raise MiniCError(f"cannot index {base.type}", line=expr.line)
            idx = self.gen_expr(expr.index)
            if idx.is_float_reg:
                raise MiniCError("array index must be an integer",
                                 line=expr.line)
            elem = bty.elem
            size = elem.sizeof()
            if size == 8:
                self.emit(f"slli {idx.reg}, {idx.reg}, 3")
            elif size != 1:  # pragma: no cover - no such element types
                self.emit(f"muli {idx.reg}, {idx.reg}, {size}")
            self.emit(f"add {base.reg}, {base.reg}, {idx.reg}")
            self.itemps.free(idx.reg)
            return base.reg, elem
        raise MiniCError("expression is not an lvalue", line=expr.line)

    def gen_unary(self, expr: ast.Unary) -> Value:
        op = expr.op
        if op == "&":
            reg, ty = self.gen_lvalue_address(expr.operand)
            return Value(PtrType(ty), reg)
        if op == "*":
            addr, ty = self.gen_lvalue_address(expr)
            return self._load_from(addr, ty, expr.line)
        v = self.gen_expr(expr.operand)
        if op == "-":
            if v.is_float_reg:
                self.emit(f"fneg {v.reg}, {v.reg}")
            else:
                self.emit(f"neg {v.reg}, {v.reg}")
            return v
        if op == "~":
            if v.is_float_reg:
                raise MiniCError("~ requires an integer", line=expr.line)
            self.emit(f"not {v.reg}, {v.reg}")
            return v
        if op == "!":
            v = self._truth_value(v, expr.line)
            self.emit(f"xori {v.reg}, {v.reg}, 1")
            # normalise to exactly 0/1
            self.emit(f"andi {v.reg}, {v.reg}, 1")
            return Value(INT, v.reg)
        raise MiniCError(f"unhandled unary {op}", line=expr.line)

    def gen_binary(self, expr: ast.Binary) -> Value:
        op = expr.op
        if op in ("&&", "||"):
            return self.gen_logical(expr)
        lhs = self.gen_expr(expr.lhs)
        rhs = self.gen_expr(expr.rhs)
        result_ty = binary_result(op, lhs.type, rhs.type, line=expr.line)
        if op in ("==", "!=", "<", "<=", ">", ">="):
            if lhs.type.decay().is_float() or rhs.type.decay().is_float():
                return self._float_compare(op, lhs, rhs, expr.line)
            return self._int_compare(op, lhs, rhs, expr.line)
        if result_ty.is_float():
            lhs = self.convert(lhs, FLOAT, expr.line)
            rhs = self.convert(rhs, FLOAT, expr.line)
            mnem = {"+": "fadd", "-": "fsub", "*": "fmul", "/": "fdiv"}[op]
            self.emit(f"{mnem} {lhs.reg}, {lhs.reg}, {rhs.reg}")
            self.free_value(rhs)
            return Value(FLOAT, lhs.reg)
        # pointer arithmetic
        lty, rty = lhs.type.decay(), rhs.type.decay()
        if lty.is_pointer() or rty.is_pointer():
            return self._pointer_arith(op, lhs, rhs, result_ty, expr.line)
        mnem = {"+": "add", "-": "sub", "*": "mul", "/": "div", "%": "rem",
                "&": "and", "|": "or", "^": "xor", "<<": "sll",
                ">>": "sra"}[op]
        self.emit(f"{mnem} {lhs.reg}, {lhs.reg}, {rhs.reg}")
        self.free_value(rhs)
        return Value(INT, lhs.reg)

    def _pointer_arith(self, op: str, lhs: Value, rhs: Value,
                       result_ty: Type, line: int) -> Value:
        lty, rty = lhs.type.decay(), rhs.type.decay()
        if lty.is_pointer() and rty.is_pointer():
            # pointer difference, in elements
            self.emit(f"sub {lhs.reg}, {lhs.reg}, {rhs.reg}")
            shift = 3 if lty.elem.sizeof() == 8 else 0
            if shift:
                self.emit(f"srai {lhs.reg}, {lhs.reg}, {shift}")
            self.free_value(rhs)
            return Value(INT, lhs.reg)
        if rty.is_pointer():  # int + ptr
            lhs, rhs = rhs, lhs
            lty, rty = rty, lty
        size = lty.elem.sizeof()
        if size == 8:
            self.emit(f"slli {rhs.reg}, {rhs.reg}, 3")
        elif size != 1:  # pragma: no cover
            self.emit(f"muli {rhs.reg}, {rhs.reg}, {size}")
        mnem = "add" if op == "+" else "sub"
        self.emit(f"{mnem} {lhs.reg}, {lhs.reg}, {rhs.reg}")
        self.free_value(rhs)
        return Value(result_ty, lhs.reg)

    def _int_compare(self, op: str, lhs: Value, rhs: Value,
                     line: int) -> Value:
        a, b = lhs.reg, rhs.reg
        if op == ">":
            op, a, b = "<", b, a
        elif op == ">=":
            op, a, b = "<=", b, a
        mnem = {"==": "seq", "!=": "sne", "<": "slt", "<=": "sle"}[op]
        self.emit(f"{mnem} {lhs.reg}, {a}, {b}")
        self.free_value(rhs)
        return Value(INT, lhs.reg)

    def _float_compare(self, op: str, lhs: Value, rhs: Value,
                       line: int) -> Value:
        lhs = self.convert(lhs, FLOAT, line)
        rhs = self.convert(rhs, FLOAT, line)
        out = self.itemps.alloc(line)
        a, b = lhs.reg, rhs.reg
        negate = False
        if op == ">":
            a, b = b, a
            op = "<"
        elif op == ">=":
            a, b = b, a
            op = "<="
        elif op == "!=":
            op = "=="
            negate = True
        mnem = {"==": "feq", "<": "flt", "<=": "fle"}[op]
        self.emit(f"{mnem} {out}, {a}, {b}")
        if negate:
            self.emit(f"xori {out}, {out}, 1")
        self.free_value(lhs)
        self.free_value(rhs)
        return Value(INT, out)

    def gen_logical(self, expr: ast.Binary) -> Value:
        out = self.itemps.alloc(expr.line)
        end = self.ctx.new_label("sc_end")
        lhs = self.gen_expr(expr.lhs)
        lhs = self._truth_value(lhs, expr.line)
        self.emit(f"sne {out}, {lhs.reg}, zero")
        self.free_value(lhs)
        if expr.op == "&&":
            self.emit(f"beqz {out}, {end}")
        else:
            self.emit(f"bnez {out}, {end}")
        rhs = self.gen_expr(expr.rhs)
        rhs = self._truth_value(rhs, expr.line)
        self.emit(f"sne {out}, {rhs.reg}, zero")
        self.free_value(rhs)
        self.emit_label(end)
        return Value(INT, out)

    def gen_cast(self, expr: ast.Cast) -> Value:
        v = self.gen_expr(expr.operand)
        target = expr.target
        if target.is_void():
            raise MiniCError("cannot cast to void", line=expr.line)
        return self.convert(v, target, expr.line, explicit=True)

    def gen_call(self, expr: ast.Call) -> Value | None:
        name = expr.func
        line = expr.line
        if name in _FLOAT_INTRINSICS:
            if len(expr.args) != 1:
                raise MiniCError(f"{name} takes one argument", line=line)
            v = self.gen_expr(expr.args[0])
            v = self.convert(v, FLOAT, line)
            self.emit(f"{_FLOAT_INTRINSICS[name]} {v.reg}, {v.reg}")
            return v
        if name == "__prefetch":
            if len(expr.args) != 1:
                raise MiniCError("__prefetch takes one argument", line=line)
            v = self.gen_expr(expr.args[0])
            if v.is_float_reg or not v.type.decay().is_pointer():
                raise MiniCError("__prefetch needs a pointer", line=line)
            self.emit(f"prefetch zero, 0({v.reg})")
            self.free_value(v)
            zero = self.itemps.alloc(line)
            self.emit(f"li {zero}, 0")
            return Value(INT, zero)
        sig = self.ctx.sigs.get(name)
        if sig is None:
            raise MiniCError(f"call to undeclared function {name!r}",
                             line=line)
        if len(expr.args) != len(sig.params):
            raise MiniCError(
                f"{name} expects {len(sig.params)} arguments, got "
                f"{len(expr.args)}", line=line)
        # Evaluate arguments left to right into temporaries.
        arg_values: list[Value] = []
        for arg, pty in zip(expr.args, sig.params):
            v = self.gen_expr(arg)
            if v is None:
                raise MiniCError("void value used as argument", line=line)
            v = self.convert(v, pty, line)
            arg_values.append(v)
        # Move into the argument registers, then release the temps.
        int_idx = 0
        float_idx = 0
        for v in arg_values:
            if v.is_float_reg:
                self.emit(f"fmv fa{float_idx}, {v.reg}")
                float_idx += 1
            else:
                self.emit(f"mv a{int_idx}, {v.reg}")
                int_idx += 1
            self.free_value(v)
        # Save every live caller-saved temp across the call.
        live_i = self.itemps.live()
        live_f = self.ftemps.live()
        total = len(live_i) + len(live_f)
        if total:
            self.emit(f"addi sp, sp, -{8 * total}")
            slot = 0
            for r in live_i:
                self.emit(f"sd {r}, {8 * slot}(sp)")
                slot += 1
            for r in live_f:
                self.emit(f"fsd {r}, {8 * slot}(sp)")
                slot += 1
        self.emit(f"call {name}")
        if total:
            slot = 0
            for r in live_i:
                self.emit(f"ld {r}, {8 * slot}(sp)")
                slot += 1
            for r in live_f:
                self.emit(f"fld {r}, {8 * slot}(sp)")
                slot += 1
            self.emit(f"addi sp, sp, {8 * total}")
        if sig.ret.is_void():
            return None
        if sig.ret.is_float():
            reg = self.ftemps.alloc(line)
            self.emit(f"fmv {reg}, fa0")
            return Value(FLOAT, reg)
        reg = self.itemps.alloc(line)
        self.emit(f"mv {reg}, a0")
        return Value(sig.ret, reg)

    # ---------------------------------------------------------- conversions
    def convert(self, v: Value | None, target: Type, line: int,
                *, explicit: bool = False) -> Value:
        if v is None:
            raise MiniCError("void value used in expression", line=line)
        src = v.type.decay()
        target = target.decay()
        if not explicit and not assignable(target, src):
            raise MiniCError(f"cannot convert {src} to {target}", line=line)
        if target.is_float():
            if v.is_float_reg:
                return Value(FLOAT, v.reg)
            reg = self.ftemps.alloc(line)
            self.emit(f"fcvt.f.i {reg}, {v.reg}")
            self.itemps.free(v.reg)
            return Value(FLOAT, reg)
        # integer-ish / pointer target
        if v.is_float_reg:
            reg = self.itemps.alloc(line)
            self.emit(f"fcvt.i.f {reg}, {v.reg}")
            self.ftemps.free(v.reg)
            v = Value(INT, reg)
        if target == CHAR and v.type != CHAR:
            self.emit(f"andi {v.reg}, {v.reg}, 255")
        return Value(target, v.reg)

    def free_value(self, v: Value | None) -> None:
        if v is None:
            return
        if v.is_float_reg:
            self.ftemps.free(v.reg)
        else:
            self.itemps.free(v.reg)
