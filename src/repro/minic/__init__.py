"""MiniC: the C-like language the guest applications are written in.

Public API: :func:`compile_unit` (MiniC → assembly text),
:func:`build_program` (MiniC + runtime → loadable Program) and
:func:`run_minic` (compile, run, return the Machine)."""

from __future__ import annotations

from ..vm import GuestFS, Machine
from .driver import build_program, compile_unit
from .errors import MiniCError
from .parser import parse

__all__ = ["compile_unit", "build_program", "run_minic", "parse",
           "MiniCError"]


def run_minic(source: str | list[str], *, fs: GuestFS | None = None,
              max_instructions: int | None = 50_000_000,
              mem_size: int | None = None) -> Machine:
    """Compile and execute MiniC source; returns the finished Machine."""
    program = build_program(source)
    kwargs = {}
    if mem_size is not None:
        kwargs["mem_size"] = mem_size
    m = Machine(program, fs=fs, **kwargs)
    m.run(max_instructions=max_instructions)
    return m
