"""Static program analysis over compiled guests: CFG construction and WCET
bound estimation — the static-analysis counterpart the paper's §II
contrasts tQUAD's dynamic approach against."""

from .cfg import (BasicBlock, CallSite, CFGError, Loop, RoutineCFG,
                  build_cfg)
from .wcet import (InstructionCosts, LoopInfo, WCETAnalyzer, WCETError,
                   WCETResult, estimate_wcet)

__all__ = [
    "build_cfg", "RoutineCFG", "BasicBlock", "Loop", "CallSite", "CFGError",
    "estimate_wcet", "WCETAnalyzer", "WCETResult", "WCETError",
    "InstructionCosts", "LoopInfo",
]
