"""Control-flow graph construction over compiled programs.

WCET tools "first construct the Control-Flow Graph … used to determine the
possible program paths" (paper §II).  This module rebuilds per-routine CFGs
from the binary: basic blocks, intra-routine edges, call sites, dominators
and natural loops — everything the static-bound calculator in
:mod:`repro.static.wcet` consumes.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..isa import opcodes as oc
from ..vm.layout import pc_to_index
from ..vm.program import Program, Routine


@dataclass
class CallSite:
    """A call instruction inside a block."""

    index: int               #: instruction index of the jal/jalr
    callee: str | None       #: routine name, or None for indirect calls


@dataclass
class BasicBlock:
    id: int
    start: int               #: first instruction index (inclusive)
    end: int                 #: one past the last instruction
    succs: list[int] = field(default_factory=list)
    preds: list[int] = field(default_factory=list)
    calls: list[CallSite] = field(default_factory=list)

    @property
    def size(self) -> int:
        return self.end - self.start

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"BB{self.id}[{self.start}:{self.end}] "
                f"-> {self.succs}")


@dataclass
class Loop:
    """A natural loop: header block + body block ids (header included)."""

    header: int
    body: frozenset[int]
    back_edges: tuple[tuple[int, int], ...]

    @property
    def depth_key(self) -> int:
        return len(self.body)

    def contains(self, other: "Loop") -> bool:
        return other.body < self.body


class CFGError(Exception):
    """Raised on irreducible or malformed control flow."""


class RoutineCFG:
    """The CFG of one routine."""

    def __init__(self, program: Program, routine: Routine):
        self.program = program
        self.routine = routine
        self.blocks: list[BasicBlock] = []
        self._block_of: dict[int, int] = {}  # leader index -> block id
        self._build()

    # ------------------------------------------------------------- building
    def _target_index(self, imm: int) -> int:
        return pc_to_index(imm)

    def _build(self) -> None:
        r = self.routine
        instrs = self.program.instrs
        leaders: set[int] = {r.start}
        for i in range(r.start, r.end):
            info = instrs[i].info
            if info.is_branch or instrs[i].op == oc.J:
                t = self._target_index(instrs[i].imm)
                if r.start <= t < r.end:
                    leaders.add(t)
                if i + 1 < r.end:
                    leaders.add(i + 1)
            elif info.is_call or info.is_ret or instrs[i].op == oc.HALT:
                if i + 1 < r.end:
                    leaders.add(i + 1)
        ordered = sorted(leaders)
        for bid, start in enumerate(ordered):
            end = ordered[bid + 1] if bid + 1 < len(ordered) else r.end
            block = BasicBlock(id=bid, start=start, end=end)
            self.blocks.append(block)
            self._block_of[start] = bid
        for block in self.blocks:
            self._link(block)
        for block in self.blocks:
            for s in block.succs:
                self.blocks[s].preds.append(block.id)

    def _link(self, block: BasicBlock) -> None:
        instrs = self.program.instrs
        r = self.routine
        last = block.end - 1
        ins = instrs[last]
        info = ins.info

        def block_at(index: int) -> int:
            bid = self._block_of.get(index)
            if bid is None:
                raise CFGError(
                    f"jump into the middle of a block at index {index} "
                    f"in {r.name}")
            return bid

        # calls inside the block (only the terminator can be one, since a
        # call ends a block)
        for i in range(block.start, block.end):
            cins = instrs[i]
            if cins.info.is_call:
                callee = None
                if cins.op == oc.JAL:
                    t = self._target_index(cins.imm)
                    target_rtn = self.program.routine_at(t)
                    if target_rtn is not None and t == target_rtn.start:
                        callee = target_rtn.name
                block.calls.append(CallSite(index=i, callee=callee))

        if info.is_branch:
            t = self._target_index(ins.imm)
            if r.start <= t < r.end:
                block.succs.append(block_at(t))
            if last + 1 < r.end:
                block.succs.append(block_at(last + 1))
        elif ins.op == oc.J:
            t = self._target_index(ins.imm)
            if r.start <= t < r.end:
                block.succs.append(block_at(t))
            # a j out of the routine is a tail jump: treated as an exit
        elif info.is_ret or ins.op == oc.HALT:
            pass
        else:  # falls through (including calls and ecall)
            if last + 1 < r.end:
                block.succs.append(block_at(last + 1))

    # -------------------------------------------------------------- queries
    @property
    def entry(self) -> BasicBlock:
        return self.blocks[0]

    def exit_blocks(self) -> list[BasicBlock]:
        return [b for b in self.blocks if not b.succs]

    def block_of_index(self, index: int) -> BasicBlock | None:
        for b in self.blocks:
            if b.start <= index < b.end:
                return b
        return None

    # ----------------------------------------------------------- dominators
    def dominators(self) -> list[set[int]]:
        """dom[b] = set of blocks dominating b (including b)."""
        n = len(self.blocks)
        full = set(range(n))
        dom: list[set[int]] = [full.copy() for _ in range(n)]
        dom[0] = {0}
        changed = True
        # reverse post-order would converge faster; n is small
        while changed:
            changed = False
            for b in range(1, n):
                preds = self.blocks[b].preds
                if preds:
                    new = set.intersection(*(dom[p] for p in preds))
                else:
                    new = set()  # unreachable block dominates nothing real
                new = new | {b}
                if new != dom[b]:
                    dom[b] = new
                    changed = True
        return dom

    # ---------------------------------------------------------------- loops
    def natural_loops(self) -> list[Loop]:
        """Loops from back edges (u -> v with v dominating u), merged per
        header, ordered innermost first."""
        dom = self.dominators()
        per_header: dict[int, tuple[set[int], list[tuple[int, int]]]] = {}
        for u, block in enumerate(self.blocks):
            for v in block.succs:
                if v in dom[u]:
                    body, edges = per_header.setdefault(v, (set(), []))
                    edges.append((u, v))
                    body |= self._loop_body(u, v)
        loops = [Loop(header=h, body=frozenset(body),
                      back_edges=tuple(edges))
                 for h, (body, edges) in per_header.items()]
        loops.sort(key=lambda lp: lp.depth_key)
        return loops

    def _loop_body(self, latch: int, header: int) -> set[int]:
        body = {header, latch}
        stack = [latch]
        while stack:
            b = stack.pop()
            if b == header:
                continue
            for p in self.blocks[b].preds:
                if p not in body:
                    body.add(p)
                    stack.append(p)
        return body


def build_cfg(program: Program, routine_name: str) -> RoutineCFG:
    """Build the CFG of a named routine."""
    return RoutineCFG(program, program.routine(routine_name))
