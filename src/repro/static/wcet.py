"""Static worst-case execution time (WCET) bound calculation.

The paper's related work (§II) is dominated by static WCET tools (aiT,
Bound-T, Chronos, …): construct the CFG, model per-instruction costs, bound
the loops, and compute the longest path.  This module implements that
pipeline over our ISA so the dynamic measurements tQUAD produces can be
compared against static bounds — including reproducing the paper's central
criticism that "static WCET analysis can deliver an over-pessimistic timing
estimation".

Method: per-routine CFGs with natural-loop detection; loops are collapsed
innermost-first into super-nodes costing ``bound × longest-acyclic-body
path``; the remaining DAG's longest entry→exit path is the bound.  Call
sites add the callee's (recursively computed) bound.  The result is sound:
``WCET ≥ executed instructions`` whenever the provided loop bounds are true
upper bounds (a property the test suite checks against gprof-sim).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..isa.opcodes import OpInfo
from ..vm.program import Program
from .cfg import CFGError, RoutineCFG, build_cfg


class WCETError(Exception):
    """Unbounded or unanalysable control flow."""


@dataclass(frozen=True)
class InstructionCosts:
    """Cycles charged per instruction category.

    Defaults of 1 everywhere make the WCET unit *instructions*, directly
    comparable with the VM's retired-instruction counts (and convertible to
    seconds with a :class:`~repro.core.machine_model.MachineModel`, like
    every other number in this reproduction).
    """

    base: float = 1.0
    memory: float = 1.0
    float_op: float = 1.0
    branch: float = 1.0
    call: float = 1.0

    def of(self, info: OpInfo) -> float:
        if info.mem_read or info.mem_write:
            return self.memory
        if info.is_branch:
            return self.branch
        if info.is_call or info.is_ret:
            return self.call
        if info.is_float:
            return self.float_op
        return self.base


@dataclass
class LoopInfo:
    """One analysed loop (reported in source order)."""

    ordinal: int
    header_index: int       #: first instruction index of the header block
    bound: int
    body_cost: float        #: per-iteration worst-case cost


@dataclass
class WCETResult:
    routine: str
    bound: float                       #: worst-case cost (instruction units)
    loops: list[LoopInfo] = field(default_factory=list)
    callees: dict[str, float] = field(default_factory=dict)

    def seconds(self, machine) -> float:
        return machine.seconds(self.bound)


class WCETAnalyzer:
    """Whole-program analyser with memoised per-routine bounds."""

    def __init__(self, program: Program, *,
                 loop_bounds: dict[str, list[int]] | None = None,
                 costs: InstructionCosts | None = None):
        self.program = program
        self.loop_bounds = loop_bounds or {}
        self.costs = costs or InstructionCosts()
        self._memo: dict[str, WCETResult] = {}
        self._in_progress: list[str] = []

    # ------------------------------------------------------------- public
    def analyze(self, routine_name: str) -> WCETResult:
        if routine_name in self._memo:
            return self._memo[routine_name]
        if routine_name in self._in_progress:
            cycle = " -> ".join(self._in_progress + [routine_name])
            raise WCETError(f"recursion is unbounded: {cycle}")
        self._in_progress.append(routine_name)
        try:
            result = self._analyze_one(routine_name)
        finally:
            self._in_progress.pop()
        self._memo[routine_name] = result
        return result

    def loops_of(self, routine_name: str) -> list[int]:
        """Header instruction indices in source order — what the per-routine
        ``loop_bounds`` list must cover."""
        cfg = build_cfg(self.program, routine_name)
        loops = sorted(cfg.natural_loops(),
                       key=lambda lp: cfg.blocks[lp.header].start)
        return [cfg.blocks[lp.header].start for lp in loops]

    # ------------------------------------------------------------ internals
    def _analyze_one(self, name: str) -> WCETResult:
        if not self.program.has_routine(name):
            raise WCETError(f"unknown routine {name!r}")
        cfg = build_cfg(self.program, name)
        result = WCETResult(routine=name, bound=0.0)

        # base block costs, including resolved call targets
        cost: dict[int, float] = {}
        for block in cfg.blocks:
            c = sum(self.costs.of(self.program.instrs[i].info)
                    for i in range(block.start, block.end))
            for call in block.calls:
                if call.callee is None:
                    raise WCETError(
                        f"{name}: indirect call at instruction "
                        f"{call.index} cannot be bounded")
                callee = self.analyze(call.callee)
                result.callees[call.callee] = callee.bound
                c += callee.bound
            cost[block.id] = c

        succs: dict[int, set[int]] = {b.id: set(b.succs)
                                      for b in cfg.blocks}
        alive: set[int] = set(succs)

        # collapse loops innermost-first
        loops = cfg.natural_loops()
        bounds_list = self.loop_bounds.get(name, [])
        source_order = sorted(loops, key=lambda lp: cfg.blocks[lp.header].start)
        ordinal_of = {id(lp): i for i, lp in enumerate(source_order)}
        for loop in loops:  # innermost first (by body size)
            ordinal = ordinal_of[id(loop)]
            if ordinal >= len(bounds_list):
                raise WCETError(
                    f"{name}: no bound for loop #{ordinal} (header at "
                    f"instruction {cfg.blocks[loop.header].start}); "
                    f"pass loop_bounds={{{name!r}: [...]}} covering "
                    f"{len(source_order)} loop(s)")
            bound = bounds_list[ordinal]
            if bound < 0:
                raise WCETError(f"{name}: negative loop bound")
            body = {b for b in loop.body if b in alive}
            back = {(u, v) for (u, v) in loop.back_edges}
            body_cost = self._longest_path_within(
                loop.header, body, succs, cost, exclude_edges=back)
            result.loops.append(LoopInfo(
                ordinal=ordinal,
                header_index=cfg.blocks[loop.header].start,
                bound=bound, body_cost=body_cost))
            # collapse: header absorbs the whole loop.  The header runs
            # bound+1 times (the final, failing condition check), hence the
            # extra header-cost term.
            exits: set[int] = set()
            for b in body:
                exits |= {s for s in succs[b] if s not in body}
            cost[loop.header] = bound * body_cost + cost[loop.header]
            succs[loop.header] = exits
            for b in body - {loop.header}:
                alive.discard(b)
                succs.pop(b, None)
            # redirect edges that entered collapsed nodes (shouldn't exist
            # for natural loops, which are single-entry) and self edges
            for b in alive:
                succs[b] = {loop.header if s in body else s
                            for s in succs[b] if s in alive or s in body}
            succs[loop.header].discard(loop.header)

        result.loops.sort(key=lambda li: li.ordinal)
        result.bound = self._longest_path_within(
            cfg.entry.id if cfg.entry.id in alive else
            next(iter(alive)), alive, succs, cost, exclude_edges=set())
        return result

    @staticmethod
    def _longest_path_within(start: int, nodes: set[int],
                             succs: dict[int, set[int]],
                             cost: dict[int, float],
                             exclude_edges: set[tuple[int, int]]) -> float:
        """Longest node-weighted path from ``start`` inside ``nodes``."""
        # Kahn's topological sort restricted to the node set
        indeg = {n: 0 for n in nodes}
        for u in nodes:
            for v in succs.get(u, ()):
                if v in nodes and (u, v) not in exclude_edges:
                    indeg[v] += 1
        order = [n for n in nodes if indeg[n] == 0]
        i = 0
        while i < len(order):
            u = order[i]
            i += 1
            for v in succs.get(u, ()):
                if v in nodes and (u, v) not in exclude_edges:
                    indeg[v] -= 1
                    if indeg[v] == 0:
                        order.append(v)
        if len(order) != len(nodes):
            raise CFGError("irreducible control flow (cycle after loop "
                           "collapsing)")
        best = {n: float("-inf") for n in nodes}
        best[start] = cost.get(start, 0.0)
        for u in order:
            if best[u] == float("-inf"):
                continue
            for v in succs.get(u, ()):
                if v in nodes and (u, v) not in exclude_edges:
                    candidate = best[u] + cost.get(v, 0.0)
                    if candidate > best[v]:
                        best[v] = candidate
        return max(v for v in best.values() if v != float("-inf"))


def estimate_wcet(program: Program, routine: str, *,
                  loop_bounds: dict[str, list[int]] | None = None,
                  costs: InstructionCosts | None = None) -> WCETResult:
    """One-call WCET bound for ``routine``."""
    return WCETAnalyzer(program, loop_bounds=loop_bounds,
                        costs=costs).analyze(routine)
