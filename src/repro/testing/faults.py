"""Deterministic fault injection for the parallel pipeline.

This module is the seam both the runtime and the failure tests drive: the
supervised executor (:mod:`repro.parallel.supervise`) calls
:meth:`FaultInjector.fire` at each pipeline stage and
:meth:`FaultInjector.mangle` on every wire payload, and a
:class:`FaultPlan` decides — deterministically, keyed on the stage, shard
index, worker id and attempt number — whether anything bad happens there.

Fault kinds
-----------

``exit``
    The worker process dies immediately (``os._exit``), modelling a hard
    crash (OOM kill, segfault).  Fired in the parent (stages the parent
    owns: ``checkpoint``, ``merge``) it raises :class:`SystemExit`
    instead, so tests can observe it without killing the test runner.
``exception``
    Raises :class:`InjectedFault` — an ordinary Python error escaping the
    stage.
``stall``
    Sleeps for ``stall_seconds`` without making progress, modelling a
    hang; the supervisor's heartbeat deadline is what should catch it.
``truncate``
    Applied by :meth:`FaultInjector.mangle`: the pickled wire payload is
    cut to ``truncate_to`` bytes, modelling a torn write on the result
    channel.

Selection
---------

A :class:`FaultSpec` matches on ``stage`` (``checkpoint`` / ``replay`` /
``payload`` / ``merge``), and optionally on ``shard``, ``worker`` and
``attempt`` (``None`` = any).  ``attempt`` defaults to 0 — fire on the
first try only, so the retry path is what gets exercised; ``attempt=None``
makes the fault persistent, which is how the degradation-to-serial path
is driven.

Plans come from parameters (``parallel_profile(..., faults=plan)``) or
from the environment: ``TQUAD_FAULTS="exit@replay:shard=1;stall@replay"``
— ``;``-separated specs, each ``kind@stage[:key=value,...]``.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass, field

#: Environment variable the runtime reads when no plan is passed in.
ENV_VAR = "TQUAD_FAULTS"

FAULT_KINDS = ("exit", "exception", "stall", "truncate")
STAGES = ("checkpoint", "replay", "payload", "merge")


class InjectedFault(RuntimeError):
    """The error raised by an ``exception`` fault."""


class WorkerExit(SystemExit):
    """Raised instead of ``os._exit`` when an ``exit`` fault fires in the
    parent process (parent stages must stay observable in tests)."""


def _parse_int(value: str) -> int | None:
    return None if value in ("any", "*") else int(value)


@dataclass(frozen=True)
class FaultSpec:
    """One planned fault."""

    kind: str
    stage: str = "replay"
    #: Shard index to hit (``None`` = any shard).
    shard: int | None = None
    #: Worker id to hit (``None`` = any worker).
    worker: int | None = None
    #: Attempt number to hit (``None`` = every attempt — persistent).
    attempt: int | None = 0
    exit_code: int = 17
    stall_seconds: float = 3600.0
    truncate_to: int = 8

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ValueError(f"unknown fault kind {self.kind!r} "
                             f"(expected one of {FAULT_KINDS})")
        if self.stage not in STAGES:
            raise ValueError(f"unknown pipeline stage {self.stage!r} "
                             f"(expected one of {STAGES})")

    def matches(self, stage: str, shard: int | None, worker: int | None,
                attempt: int | None) -> bool:
        if stage != self.stage:
            return False
        if self.shard is not None and shard != self.shard:
            return False
        if self.worker is not None and worker != self.worker:
            return False
        if self.attempt is not None and attempt != self.attempt:
            return False
        return True

    @classmethod
    def parse(cls, text: str) -> "FaultSpec":
        """Parse ``kind@stage[:key=value,...]`` (see module docstring)."""
        head, _, params = text.strip().partition(":")
        kind, _, stage = head.partition("@")
        kwargs: dict[str, object] = {}
        if stage:
            kwargs["stage"] = stage.strip()
        for item in filter(None, (p.strip() for p in params.split(","))):
            key, sep, value = item.partition("=")
            if not sep:
                raise ValueError(f"malformed fault parameter {item!r} "
                                 f"in {text!r}")
            key = key.strip()
            value = value.strip()
            if key in ("shard", "worker", "attempt"):
                kwargs[key] = _parse_int(value)
            elif key in ("exit_code", "truncate_to"):
                kwargs[key] = int(value)
            elif key == "stall_seconds":
                kwargs[key] = float(value)
            else:
                raise ValueError(f"unknown fault parameter {key!r} "
                                 f"in {text!r}")
        return cls(kind=kind.strip(), **kwargs)


@dataclass(frozen=True)
class FaultPlan:
    """An immutable, picklable set of planned faults (empty = healthy)."""

    specs: tuple[FaultSpec, ...] = ()

    def __bool__(self) -> bool:
        return bool(self.specs)

    @classmethod
    def parse(cls, text: str) -> "FaultPlan":
        specs = tuple(FaultSpec.parse(part)
                      for part in filter(None, (p.strip()
                                                for p in text.split(";"))))
        return cls(specs=specs)

    @classmethod
    def from_env(cls, environ=None) -> "FaultPlan":
        text = (environ if environ is not None else os.environ).get(
            ENV_VAR, "")
        return cls.parse(text) if text.strip() else cls()


class FaultInjector:
    """Evaluates a plan at runtime hooks.

    ``role`` selects crash semantics: ``"worker"`` (default) makes
    ``exit`` faults call ``os._exit`` — the real thing, no cleanup, no
    exception propagation; ``"parent"`` raises :class:`WorkerExit`
    so the orchestrator process survives its own test harness.

    Every fault that fires is appended to :attr:`fired` as
    ``(kind, stage, shard, worker, attempt)`` — worker-side injectors run
    in other processes, so tests observe firing through the runtime's
    retry counters instead.
    """

    def __init__(self, plan: FaultPlan | None, *, role: str = "worker",
                 sleep=time.sleep):
        self.plan = plan if plan is not None else FaultPlan()
        self.role = role
        self.fired: list[tuple] = []
        self._sleep = sleep

    def fire(self, stage: str, *, shard: int | None = None,
             worker: int | None = None, attempt: int | None = 0) -> None:
        """Trigger any planned ``exit``/``exception``/``stall`` fault."""
        for spec in self.plan.specs:
            if spec.kind == "truncate":
                continue            # payload faults go through mangle()
            if not spec.matches(stage, shard, worker, attempt):
                continue
            self.fired.append((spec.kind, stage, shard, worker, attempt))
            if spec.kind == "stall":
                self._sleep(spec.stall_seconds)
            elif spec.kind == "exception":
                raise InjectedFault(
                    f"injected exception at {stage} "
                    f"(shard={shard}, worker={worker}, attempt={attempt})")
            elif spec.kind == "exit":
                if self.role == "worker":
                    os._exit(spec.exit_code)
                else:
                    raise WorkerExit(spec.exit_code)

    def mangle(self, stage: str, blob: bytes, *, shard: int | None = None,
               worker: int | None = None,
               attempt: int | None = 0) -> bytes:
        """Apply any planned ``truncate`` fault to a wire payload."""
        for spec in self.plan.specs:
            if spec.kind != "truncate":
                continue
            if not spec.matches(stage, shard, worker, attempt):
                continue
            self.fired.append((spec.kind, stage, shard, worker, attempt))
            return blob[:spec.truncate_to]
        return blob
