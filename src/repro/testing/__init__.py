"""Test infrastructure that ships with the package.

:mod:`repro.testing.faults` is the deterministic fault-injection seam the
fault-tolerant parallel runtime exposes; the crash-recovery and fuzz
suites drive it, and operators can switch it on from the environment
(``TQUAD_FAULTS``) to rehearse failure handling on real workloads.
"""

from .faults import (FaultInjector, FaultPlan, FaultSpec, InjectedFault,
                     WorkerExit)

__all__ = ["FaultSpec", "FaultPlan", "FaultInjector", "InjectedFault",
           "WorkerExit"]
