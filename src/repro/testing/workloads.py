"""Deterministic MiniC workload generation from seed + shape specs.

The guest corpus needs more access-pattern diversity than hand-written
applications alone provide (ROADMAP item 5; Examem's argument that
instrumentation must stay honest across patterns).  This module emits
complete ``.mc`` programs from a :class:`WorkloadSpec` — same spec, same
bytes, always — in three bandwidth shapes:

``pointer``
    Sattolo-shuffled permutation rings chased by dependent loads — the
    irregular extreme (every access depends on the previous one).
``bursty``
    alternating phases: tight read-modify-write bursts over a small hot
    buffer, then sparse strided walks over a cold array — bandwidth
    arrives in spikes.
``streaming``
    unit-stride fill/copy/scale/reduce chains — the regular extreme.

Uses: the checked-in fuzz seed corpus (``tests/fuzz/corpus/gen_*.mc``,
regenerable via ``python -m repro.testing.workloads``), hypothesis
strategies in the nightly differential fuzzer, and the generator-shape
entries of the capture-corpus regression fleet (:mod:`repro.corpus`).
"""

from __future__ import annotations

import sys
from dataclasses import dataclass
from pathlib import Path


class Lcg:
    """A 31-bit LCG (glibc ``rand`` constants): the one PRNG every
    deterministic workload in the repo draws from, host- and guest-side
    (the MiniC mirror is emitted by :func:`generate_workload`)."""

    MUL = 1103515245
    INC = 12345
    MASK = 0x7FFFFFFF

    def __init__(self, seed: int) -> None:
        self.state = (seed & self.MASK) or 1

    def next(self) -> int:
        self.state = (self.state * self.MUL + self.INC) & self.MASK
        return self.state


#: The generator's shape vocabulary.
SHAPES = ("pointer", "bursty", "streaming")


@dataclass(frozen=True)
class WorkloadSpec:
    """One deterministic workload: a shape, a seed, and scale knobs."""

    shape: str = "streaming"
    seed: int = 1
    size: int = 64        #: elements of the primary working array
    kernels: int = 3      #: distinct kernel routines to emit
    steps: int = 4        #: outer repetitions in ``main``

    def __post_init__(self) -> None:
        if self.shape not in SHAPES:
            raise ValueError(f"shape must be one of {SHAPES}, "
                             f"got {self.shape!r}")
        if self.size < 8:
            raise ValueError("size must be >= 8")
        if not 1 <= self.kernels <= 8:
            raise ValueError("kernels must be within [1, 8]")
        if not 1 <= self.steps <= 32:
            raise ValueError("steps must be within [1, 32]")

    @property
    def slug(self) -> str:
        return f"{self.shape}_{self.seed:04x}"


def _guest_rng() -> str:
    """The MiniC mirror of :class:`Lcg` (seeded by the generated main)."""
    return (f"int g_rng;\n"
            f"int rnd() {{\n"
            f"    g_rng = (g_rng * {Lcg.MUL} + {Lcg.INC}) & {Lcg.MASK};\n"
            f"    return g_rng;\n"
            f"}}\n")


def _pointer_body(spec, rng):
    n = spec.size
    decls = [f"int ring[{n}];", f"int vals[{n}];"]
    funcs = [
        # Sattolo's shuffle: one cycle, so every chase visits all slots
        f"void build_ring() {{\n"
        f"    int i;\n"
        f"    for (i = 0; i < {n}; i++) {{\n"
        f"        ring[i] = i;\n"
        f"        vals[i] = rnd() & 65535;\n"
        f"    }}\n"
        f"    for (i = {n} - 1; i > 0; i--) {{\n"
        f"        int j = rnd() % i;\n"
        f"        int t = ring[i];\n"
        f"        ring[i] = ring[j];\n"
        f"        ring[j] = t;\n"
        f"    }}\n"
        f"}}",
    ]
    calls = ["build_ring();"]
    for k in range(spec.kernels):
        hops = n * (1 + rng.next() % 3)
        mix = 1 + rng.next() % 255
        funcs.append(
            f"int chase{k}(int start) {{\n"
            f"    int p = start % {n};\n"
            f"    int acc = 0;\n"
            f"    int s;\n"
            f"    for (s = 0; s < {hops}; s++) {{\n"
            f"        p = ring[p];\n"
            f"        acc = (acc + vals[p] * {mix}) & 1073741823;\n"
            f"    }}\n"
            f"    return acc;\n"
            f"}}")
        calls.append(f"r = (r + chase{k}(step + {k})) & 1073741823;")
    return decls, funcs, calls


def _bursty_body(spec, rng):
    hot = max(8, spec.size // 4)
    cold = spec.size * 4
    decls = [f"int hot[{hot}];", f"int cold[{cold}];"]
    funcs = []
    calls = []
    for k in range(spec.kernels):
        reps = 2 + rng.next() % 4
        add = 1 + rng.next() % 99
        stride = 3 + 2 * (rng.next() % 4)          # odd-ish, never 0
        funcs.append(
            f"void burst{k}(int phase) {{\n"
            f"    int r;\n"
            f"    for (r = 0; r < {reps}; r++) {{\n"
            f"        int i;\n"
            f"        for (i = 0; i < {hot}; i++) {{\n"
            f"            hot[i] = (hot[i] + phase * {add} + r) "
            f"& 16777215;\n"
            f"        }}\n"
            f"    }}\n"
            f"}}")
        funcs.append(
            f"int quiet{k}() {{\n"
            f"    int acc = 0;\n"
            f"    int i;\n"
            f"    for (i = 0; i < {cold}; i += {stride}) {{\n"
            f"        cold[i] = (cold[i] ^ acc) & 16777215;\n"
            f"        acc = (acc + cold[i] + hot[i % {hot}]) "
            f"& 1073741823;\n"
            f"    }}\n"
            f"    return acc;\n"
            f"}}")
        calls.append(f"burst{k}(step);")
        calls.append(f"r = (r + quiet{k}()) & 1073741823;")
    return decls, funcs, calls


def _streaming_body(spec, rng):
    n = spec.size * 4
    decls = [f"int src[{n}];", f"int dst[{n}];"]
    funcs = [
        f"void fill(int phase) {{\n"
        f"    int i;\n"
        f"    for (i = 0; i < {n}; i++) {{\n"
        f"        src[i] = (i * 7 + phase) & 65535;\n"
        f"    }}\n"
        f"}}",
    ]
    calls = ["fill(step);"]
    for k in range(spec.kernels):
        scale = 1 + rng.next() % 9
        bias = rng.next() % 1024
        funcs.append(
            f"void scale{k}() {{\n"
            f"    int i;\n"
            f"    for (i = 0; i < {n}; i++) {{\n"
            f"        dst[i] = (src[i] * {scale} + {bias}) & 16777215;\n"
            f"    }}\n"
            f"}}")
        funcs.append(
            f"int reduce{k}() {{\n"
            f"    int acc = 0;\n"
            f"    int i;\n"
            f"    for (i = 0; i < {n}; i++) {{\n"
            f"        acc = (acc + dst[i]) & 1073741823;\n"
            f"    }}\n"
            f"    return acc;\n"
            f"}}")
        calls.append(f"scale{k}();")
        calls.append(f"r = (r ^ reduce{k}()) & 1073741823;")
    return decls, funcs, calls


_BODIES = {"pointer": _pointer_body, "bursty": _bursty_body,
           "streaming": _streaming_body}


def generate_workload(spec: WorkloadSpec) -> str:
    """Emit a complete, deterministic MiniC program for ``spec``."""
    rng = Lcg(spec.seed)
    decls, funcs, calls = _BODIES[spec.shape](spec, rng)
    body = "\n        ".join(calls)
    header = (f"// generated workload: shape={spec.shape} "
              f"seed={spec.seed:#x} size={spec.size} "
              f"kernels={spec.kernels} steps={spec.steps}\n"
              f"// regenerate: python -m repro.testing.workloads\n")
    main = (f"int main() {{\n"
            f"    g_rng = {Lcg(spec.seed).state};\n"
            f"    int r = 0;\n"
            f"    int step;\n"
            f"    for (step = 0; step < {spec.steps}; step++) {{\n"
            f"        {body}\n"
            f"    }}\n"
            f"    print_int(r);\n"
            f"    return 0;\n"
            f"}}\n")
    return (header + "\n".join(decls) + "\n\n" + _guest_rng() + "\n"
            + "\n\n".join(funcs) + "\n\n" + main)


def workload_program(spec: WorkloadSpec):
    """Build the generated source into a loadable :class:`Program`."""
    from ..minic import build_program

    return build_program(generate_workload(spec))


# --------------------------------------------------------- the seed corpus
#: The checked-in fuzz seed corpus: two specs per shape, small enough for
#: the real-process differential test.
CORPUS_SPECS: tuple[WorkloadSpec, ...] = (
    WorkloadSpec(shape="pointer", seed=0x11, size=48, kernels=2, steps=3),
    WorkloadSpec(shape="pointer", seed=0x22, size=64, kernels=3, steps=2),
    WorkloadSpec(shape="bursty", seed=0x33, size=40, kernels=2, steps=3),
    WorkloadSpec(shape="bursty", seed=0x44, size=56, kernels=1, steps=4),
    WorkloadSpec(shape="streaming", seed=0x55, size=32, kernels=2,
                 steps=3),
    WorkloadSpec(shape="streaming", seed=0x66, size=48, kernels=3,
                 steps=2),
)


def corpus_file_name(spec: WorkloadSpec) -> str:
    return f"gen_{spec.slug}.mc"


def write_corpus(directory: str | Path,
                 specs: tuple[WorkloadSpec, ...] = CORPUS_SPECS
                 ) -> list[Path]:
    """Write (or refresh) the generated seed-corpus files."""
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    paths = []
    for spec in specs:
        path = directory / corpus_file_name(spec)
        path.write_text(generate_workload(spec), encoding="utf-8")
        paths.append(path)
    return paths


def _default_corpus_dir() -> Path:
    return (Path(__file__).resolve().parents[3] / "tests" / "fuzz"
            / "corpus")


def main(argv: list[str] | None = None) -> int:
    """``python -m repro.testing.workloads [dir]`` — regenerate the seed
    corpus (defaults to ``tests/fuzz/corpus/``)."""
    args = sys.argv[1:] if argv is None else argv
    directory = Path(args[0]) if args else _default_corpus_dir()
    for path in write_corpus(directory):
        print(f"wrote {path}")
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
