"""Minimal RIFF/WAVE PCM16 codec and test-signal synthesis (host side).

The hArtes wfs application runs off-line: "the input audio source is read
from files instead of audio devices" (paper §V-A).  This module creates
those input files and decodes the guest's output for validation.
"""

from .riff import WavData, read_wav, write_wav, WAV_HEADER_BYTES
from .synth import sine, sine_sweep, white_noise

__all__ = ["read_wav", "write_wav", "WavData", "WAV_HEADER_BYTES",
           "sine", "sine_sweep", "white_noise"]
