"""RIFF/WAVE PCM16 reader/writer.

Only the canonical 44-byte-header PCM16 layout is supported — the same
layout the guest-side ``wav_load``/``wav_store`` kernels produce and consume.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass

import numpy as np

WAV_HEADER_BYTES = 44


@dataclass
class WavData:
    sample_rate: int
    channels: int
    samples: np.ndarray        #: int16 array, shape (frames, channels)

    @property
    def frames(self) -> int:
        return self.samples.shape[0]


def write_wav(sample_rate: int, samples: np.ndarray) -> bytes:
    """Encode int16 samples (frames,) or (frames, channels) to WAV bytes."""
    arr = np.asarray(samples)
    if arr.ndim == 1:
        arr = arr[:, None]
    if arr.ndim != 2:
        raise ValueError("samples must be 1-D or 2-D")
    if arr.dtype != np.int16:
        if np.issubdtype(arr.dtype, np.floating):
            arr = np.clip(np.rint(arr * 32767.0), -32768, 32767)
        arr = arr.astype(np.int16)
    frames, channels = arr.shape
    data = arr.astype("<i2").tobytes()
    byte_rate = sample_rate * channels * 2
    block_align = channels * 2
    header = b"RIFF" + struct.pack("<I", 36 + len(data)) + b"WAVE"
    header += b"fmt " + struct.pack("<IHHIIHH", 16, 1, channels,
                                    sample_rate, byte_rate, block_align, 16)
    header += b"data" + struct.pack("<I", len(data))
    assert len(header) == WAV_HEADER_BYTES
    return header + data


def read_wav(raw: bytes) -> WavData:
    """Decode canonical PCM16 WAV bytes."""
    if len(raw) < WAV_HEADER_BYTES or raw[0:4] != b"RIFF" \
            or raw[8:12] != b"WAVE":
        raise ValueError("not a RIFF/WAVE file")
    if raw[12:16] != b"fmt ":
        raise ValueError("missing fmt chunk at canonical offset")
    (fmt_size, audio_fmt, channels, sample_rate, _byte_rate, _block_align,
     bits) = struct.unpack_from("<IHHIIHH", raw, 16)
    if fmt_size != 16 or audio_fmt != 1 or bits != 16:
        raise ValueError("only canonical PCM16 is supported")
    if raw[36:40] != b"data":
        raise ValueError("missing data chunk at canonical offset")
    (data_size,) = struct.unpack_from("<I", raw, 40)
    body = raw[WAV_HEADER_BYTES:WAV_HEADER_BYTES + data_size]
    arr = np.frombuffer(body, dtype="<i2").astype(np.int16)
    frames = len(arr) // channels
    return WavData(sample_rate=sample_rate, channels=channels,
                   samples=arr[:frames * channels].reshape(frames, channels))
