"""Deterministic test-signal synthesis for the off-line audio inputs."""

from __future__ import annotations

import numpy as np


def sine(frames: int, *, freq_hz: float = 440.0,
         sample_rate: int = 48000, amplitude: float = 0.5) -> np.ndarray:
    """A pure tone as float64 in [-1, 1]."""
    t = np.arange(frames) / sample_rate
    return amplitude * np.sin(2.0 * np.pi * freq_hz * t)


def sine_sweep(frames: int, *, f0: float = 100.0, f1: float = 4000.0,
               sample_rate: int = 48000,
               amplitude: float = 0.5) -> np.ndarray:
    """A linear chirp — broadband, so every filter bin sees energy."""
    t = np.arange(frames) / sample_rate
    duration = frames / sample_rate
    k = (f1 - f0) / max(duration, 1e-12)
    phase = 2.0 * np.pi * (f0 * t + 0.5 * k * t * t)
    return amplitude * np.sin(phase)


def white_noise(frames: int, *, seed: int = 12345,
                amplitude: float = 0.5) -> np.ndarray:
    """Reproducible uniform noise."""
    rng = np.random.default_rng(seed)
    return amplitude * (2.0 * rng.random(frames) - 1.0)
