"""The repro ISA: a 64-bit RISC-style instruction set.

This package defines the instruction set that every guest program in the
reproduction runs on: register files (:mod:`~repro.isa.registers`), opcode
table (:mod:`~repro.isa.opcodes`), the decoded-instruction container
(:mod:`~repro.isa.instruction`), the 16-byte binary encoding
(:mod:`~repro.isa.encoding`) and a disassembler (:mod:`~repro.isa.disasm`).
"""

from . import opcodes
from .disasm import disassemble, format_instr
from .encoding import (EncodingError, decode, decode_program, encode,
                       encode_program)
from .instruction import INSTR_BYTES, NO_PRED, Instr, validate
from .opcodes import BY_NAME, NUM_OPCODES, OPCODES, Fmt, OpInfo
from .registers import (FREG_DISPLAY, FREG_NAMES, XREG_DISPLAY, XREG_NAMES,
                        freg, xreg)

__all__ = [
    "opcodes", "Instr", "validate", "INSTR_BYTES", "NO_PRED",
    "OpInfo", "Fmt", "OPCODES", "BY_NAME", "NUM_OPCODES",
    "encode", "decode", "encode_program", "decode_program", "EncodingError",
    "disassemble", "format_instr",
    "xreg", "freg", "XREG_NAMES", "FREG_NAMES", "XREG_DISPLAY", "FREG_DISPLAY",
]
