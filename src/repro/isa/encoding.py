"""Binary wire format: 16 bytes per instruction.

Layout (little endian)::

    offset  size  field
    0       2     opcode
    2       1     rd
    3       1     rs1
    4       1     rs2
    5       1     pred register (0xFF = not predicated)
    6       2     flags (bit0: imm is a float)
    8       8     immediate (i64 two's complement, or f64 bits)

The format is deliberately uniform — decoding never needs the opcode to know
where fields live, which keeps :func:`decode` trivially total on any opcode
the table knows about.
"""

from __future__ import annotations

import struct

from . import opcodes
from .instruction import INSTR_BYTES, NO_PRED, Instr

_PACK_I = struct.Struct("<HBBBBHq")
_PACK_F = struct.Struct("<HBBBBHd")

_FLAG_FLOAT_IMM = 0x0001
_PRED_NONE_BYTE = 0xFF


class EncodingError(ValueError):
    """Raised on malformed instruction bytes."""


def encode(ins: Instr) -> bytes:
    """Encode one instruction into its 16-byte representation."""
    pred_byte = _PRED_NONE_BYTE if ins.pred == NO_PRED else ins.pred
    if isinstance(ins.imm, float):
        return _PACK_F.pack(ins.op, ins.rd, ins.rs1, ins.rs2, pred_byte,
                            _FLAG_FLOAT_IMM, ins.imm)
    return _PACK_I.pack(ins.op, ins.rd, ins.rs1, ins.rs2, pred_byte,
                        0, ins.imm)


def decode(raw: bytes | memoryview, offset: int = 0) -> Instr:
    """Decode one instruction from ``raw`` starting at ``offset``."""
    if len(raw) - offset < INSTR_BYTES:
        raise EncodingError("truncated instruction")
    op, rd, rs1, rs2, pred_byte, flags = struct.unpack_from(
        "<HBBBBH", raw, offset)
    if op >= opcodes.NUM_OPCODES:
        raise EncodingError(f"unknown opcode {op}")
    if flags & _FLAG_FLOAT_IMM:
        (imm,) = struct.unpack_from("<d", raw, offset + 8)
    else:
        (imm,) = struct.unpack_from("<q", raw, offset + 8)
    pred = NO_PRED if pred_byte == _PRED_NONE_BYTE else pred_byte
    return Instr(op=op, rd=rd, rs1=rs1, rs2=rs2, imm=imm, pred=pred)


def encode_program(instrs: list[Instr]) -> bytes:
    """Encode a code segment (a list of instructions) into bytes."""
    return b"".join(encode(i) for i in instrs)


def decode_program(raw: bytes) -> list[Instr]:
    """Decode an entire code segment."""
    if len(raw) % INSTR_BYTES:
        raise EncodingError("code segment length is not a multiple of 16")
    return [decode(raw, off) for off in range(0, len(raw), INSTR_BYTES)]
