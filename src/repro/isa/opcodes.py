"""Opcode definitions and static instruction properties.

Each opcode carries a small amount of static metadata that the toolchain and
the Pin-workalike instrumentation layer query:

* operand *format* — how the ``rd/rs1/rs2/imm`` fields are interpreted,
* whether the instruction **reads** or **writes** memory and how many bytes,
* whether it is a **call**, **return**, **branch** or **prefetch**.

These properties are exactly the ones the tQUAD paper's instrumentation
routines interrogate through Pin (``INS_IsMemoryRead``, ``INS_IsRet``, …).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass


class Fmt(enum.Enum):
    """Operand field interpretation for an opcode."""

    RRR = "rrr"          # rd, rs1, rs2            (integer ALU)
    RRI = "rri"          # rd, rs1, imm            (integer ALU w/ immediate)
    RI = "ri"            # rd, imm                 (li / la)
    FRI = "fri"          # fd, imm(float)          (fli)
    FFF = "fff"          # fd, fs1, fs2            (float ALU)
    FF = "ff"            # fd, fs1                 (float unary)
    RFF = "rff"          # rd, fs1, fs2            (float compare -> int)
    FR = "fr"            # fd, rs1                 (int -> float convert)
    RF = "rf"            # rd, fs1                 (float -> int convert)
    MEM = "mem"          # rd/fd, imm(rs1)         (loads/stores/prefetch)
    BRANCH = "br"        # rs1, rs2, imm(target)
    JUMP = "j"           # rd, imm(target)         (jal)
    JUMPR = "jr"         # rd, rs1, imm            (jalr)
    NONE = "none"        # no operands             (ret/halt/nop/ecall)


@dataclass(frozen=True)
class OpInfo:
    """Static description of one opcode."""

    name: str
    code: int
    fmt: Fmt
    mem_read: int = 0     #: bytes read from memory per execution (0 = none)
    mem_write: int = 0    #: bytes written to memory per execution
    is_call: bool = False
    is_ret: bool = False
    is_branch: bool = False
    is_prefetch: bool = False
    is_float: bool = False  #: data operands live in the float register file


_TABLE: list[OpInfo] = []
_BY_NAME: dict[str, OpInfo] = {}


def _op(name: str, fmt: Fmt, **kw) -> int:
    code = len(_TABLE)
    info = OpInfo(name=name, code=code, fmt=fmt, **kw)
    _TABLE.append(info)
    _BY_NAME[name] = info
    return code


# --- integer ALU, register-register ----------------------------------------
ADD = _op("add", Fmt.RRR)
SUB = _op("sub", Fmt.RRR)
MUL = _op("mul", Fmt.RRR)
DIV = _op("div", Fmt.RRR)
REM = _op("rem", Fmt.RRR)
AND = _op("and", Fmt.RRR)
OR = _op("or", Fmt.RRR)
XOR = _op("xor", Fmt.RRR)
SLL = _op("sll", Fmt.RRR)
SRL = _op("srl", Fmt.RRR)
SRA = _op("sra", Fmt.RRR)
SLT = _op("slt", Fmt.RRR)
SLE = _op("sle", Fmt.RRR)
SEQ = _op("seq", Fmt.RRR)
SNE = _op("sne", Fmt.RRR)

# --- integer ALU, register-immediate ---------------------------------------
ADDI = _op("addi", Fmt.RRI)
MULI = _op("muli", Fmt.RRI)
ANDI = _op("andi", Fmt.RRI)
ORI = _op("ori", Fmt.RRI)
XORI = _op("xori", Fmt.RRI)
SLLI = _op("slli", Fmt.RRI)
SRLI = _op("srli", Fmt.RRI)
SRAI = _op("srai", Fmt.RRI)
SLTI = _op("slti", Fmt.RRI)

LI = _op("li", Fmt.RI)      # rd <- imm64 (also used for addresses, via `la`)

# --- floating point ---------------------------------------------------------
FADD = _op("fadd", Fmt.FFF, is_float=True)
FSUB = _op("fsub", Fmt.FFF, is_float=True)
FMUL = _op("fmul", Fmt.FFF, is_float=True)
FDIV = _op("fdiv", Fmt.FFF, is_float=True)
FMIN = _op("fmin", Fmt.FFF, is_float=True)
FMAX = _op("fmax", Fmt.FFF, is_float=True)
FNEG = _op("fneg", Fmt.FF, is_float=True)
FABS = _op("fabs", Fmt.FF, is_float=True)
FSQRT = _op("fsqrt", Fmt.FF, is_float=True)
FSIN = _op("fsin", Fmt.FF, is_float=True)
FCOS = _op("fcos", Fmt.FF, is_float=True)
FMV = _op("fmv", Fmt.FF, is_float=True)
FLI = _op("fli", Fmt.FRI, is_float=True)   # fd <- float immediate
FEQ = _op("feq", Fmt.RFF, is_float=True)   # rd <- fs1 == fs2
FLT = _op("flt", Fmt.RFF, is_float=True)
FLE = _op("fle", Fmt.RFF, is_float=True)
FCVTFI = _op("fcvt.f.i", Fmt.FR, is_float=True)  # fd <- float(rs1)
FCVTIF = _op("fcvt.i.f", Fmt.RF, is_float=True)  # rd <- trunc(fs1)

# --- memory -----------------------------------------------------------------
LD = _op("ld", Fmt.MEM, mem_read=8)
LW = _op("lw", Fmt.MEM, mem_read=4)
LWU = _op("lwu", Fmt.MEM, mem_read=4)
LH = _op("lh", Fmt.MEM, mem_read=2)
LHU = _op("lhu", Fmt.MEM, mem_read=2)
LB = _op("lb", Fmt.MEM, mem_read=1)
LBU = _op("lbu", Fmt.MEM, mem_read=1)
SD = _op("sd", Fmt.MEM, mem_write=8)
SW = _op("sw", Fmt.MEM, mem_write=4)
SH = _op("sh", Fmt.MEM, mem_write=2)
SB = _op("sb", Fmt.MEM, mem_write=1)
FLD = _op("fld", Fmt.MEM, mem_read=8, is_float=True)
FSD = _op("fsd", Fmt.MEM, mem_write=8, is_float=True)
PREFETCH = _op("prefetch", Fmt.MEM, mem_read=8, is_prefetch=True)

# --- control flow ------------------------------------------------------------
BEQ = _op("beq", Fmt.BRANCH, is_branch=True)
BNE = _op("bne", Fmt.BRANCH, is_branch=True)
BLT = _op("blt", Fmt.BRANCH, is_branch=True)
BGE = _op("bge", Fmt.BRANCH, is_branch=True)
BLE = _op("ble", Fmt.BRANCH, is_branch=True)
BGT = _op("bgt", Fmt.BRANCH, is_branch=True)
JAL = _op("jal", Fmt.JUMP, is_call=True)     # rd <- return addr; jump imm
J = _op("j", Fmt.JUMP)                       # unconditional jump, no link
JALR = _op("jalr", Fmt.JUMPR, is_call=True)  # indirect call
RET = _op("ret", Fmt.NONE, is_ret=True)

# --- system -------------------------------------------------------------------
ECALL = _op("ecall", Fmt.NONE)
HALT = _op("halt", Fmt.NONE)
NOP = _op("nop", Fmt.NONE)


#: All opcodes, indexed by numeric code.
OPCODES: tuple[OpInfo, ...] = tuple(_TABLE)

#: Opcode lookup by mnemonic.
BY_NAME: dict[str, OpInfo] = dict(_BY_NAME)

NUM_OPCODES = len(OPCODES)


def info(code: int) -> OpInfo:
    """Return the :class:`OpInfo` for a numeric opcode."""
    return OPCODES[code]
