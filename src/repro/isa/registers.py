"""Register file definition for the repro ISA.

The ISA has 32 integer registers (``x0``–``x31``) and 32 floating point
registers (``f0``–``f31``).  ``x0`` is hard-wired to zero, exactly like the
RISC-V convention that this ISA loosely follows.  The assembler accepts both
the raw names and the ABI aliases defined here.

ABI summary (used by the MiniC code generator and hand-written assembly):

====================  =========================  ==========================
registers             alias                      role
====================  =========================  ==========================
``x0``                ``zero``                   constant 0
``x1``                ``ra``                     return address
``x2``                ``sp``                     stack pointer
``x3``                ``fp``                     frame pointer (callee saved)
``x4``                ``gp``                     global pointer (unused)
``x5``–``x12``        ``a0``–``a7``              integer args / return value
``x13``–``x22``       ``t0``–``t9``              caller-saved temporaries
``x23``–``x30``       ``s0``–``s7``              callee-saved
``x31``               ``tp``                     reserved (thread pointer)
``f0``–``f7``         ``fa0``–``fa7``            float args / return value
``f8``–``f19``        ``ft0``–``ft11``           caller-saved float temps
``f20``–``f31``       ``fs0``–``fs11``           callee-saved float
====================  =========================  ==========================
"""

from __future__ import annotations

NUM_XREGS = 32
NUM_FREGS = 32

# --- canonical integer register numbers -----------------------------------
ZERO = 0
RA = 1
SP = 2
FP = 3
GP = 4

A_REGS = tuple(range(5, 13))       # a0..a7
T_REGS = tuple(range(13, 23))      # t0..t9
S_REGS = tuple(range(23, 31))      # s0..s7
TP = 31

# --- canonical float register numbers -------------------------------------
FA_REGS = tuple(range(0, 8))       # fa0..fa7
FT_REGS = tuple(range(8, 20))      # ft0..ft11
FS_REGS = tuple(range(20, 32))     # fs0..fs11


def _build_name_tables() -> tuple[dict[str, int], dict[str, int]]:
    xnames: dict[str, int] = {}
    fnames: dict[str, int] = {}
    for i in range(NUM_XREGS):
        xnames[f"x{i}"] = i
    for i in range(NUM_FREGS):
        fnames[f"f{i}"] = i
    xnames.update(zero=ZERO, ra=RA, sp=SP, fp=FP, gp=GP, tp=TP)
    for k, r in enumerate(A_REGS):
        xnames[f"a{k}"] = r
    for k, r in enumerate(T_REGS):
        xnames[f"t{k}"] = r
    for k, r in enumerate(S_REGS):
        xnames[f"s{k}"] = r
    for k, r in enumerate(FA_REGS):
        fnames[f"fa{k}"] = r
    for k, r in enumerate(FT_REGS):
        fnames[f"ft{k}"] = r
    for k, r in enumerate(FS_REGS):
        fnames[f"fs{k}"] = r
    return xnames, fnames


#: Mapping of accepted integer register spellings to register numbers.
XREG_NAMES, FREG_NAMES = _build_name_tables()

#: Preferred (ABI) display name for each integer register number.
XREG_DISPLAY: tuple[str, ...] = tuple(
    next(name for name, num in XREG_NAMES.items()
         if num == i and not name.startswith("x"))
    for i in range(NUM_XREGS)
)

#: Preferred (ABI) display name for each float register number.
FREG_DISPLAY: tuple[str, ...] = tuple(
    next(name for name, num in FREG_NAMES.items()
         if num == i and name[1] in "ats")
    for i in range(NUM_FREGS)
)


def xreg(name: str) -> int:
    """Resolve an integer register name (``"a0"``, ``"x7"``, …) to its number."""
    try:
        return XREG_NAMES[name]
    except KeyError:
        raise ValueError(f"unknown integer register {name!r}") from None


def freg(name: str) -> int:
    """Resolve a float register name (``"fa0"``, ``"f7"``, …) to its number."""
    try:
        return FREG_NAMES[name]
    except KeyError:
        raise ValueError(f"unknown float register {name!r}") from None
