"""Textual disassembly of decoded instructions.

The output is accepted back by :mod:`repro.asmkit`, so
``assemble(disassemble(p)) == p`` holds for label-free code (branch and jump
targets are printed as absolute immediates, which the assembler accepts).
"""

from __future__ import annotations

from .instruction import NO_PRED, Instr
from .opcodes import Fmt
from .registers import FREG_DISPLAY, XREG_DISPLAY


def format_instr(ins: Instr) -> str:
    """Render one instruction as assembly text."""
    inf = ins.info
    x = XREG_DISPLAY
    f = FREG_DISPLAY
    fmt = inf.fmt
    if fmt is Fmt.RRR:
        body = f"{inf.name} {x[ins.rd]}, {x[ins.rs1]}, {x[ins.rs2]}"
    elif fmt is Fmt.RRI:
        body = f"{inf.name} {x[ins.rd]}, {x[ins.rs1]}, {ins.imm}"
    elif fmt is Fmt.RI:
        body = f"{inf.name} {x[ins.rd]}, {ins.imm}"
    elif fmt is Fmt.FRI:
        body = f"{inf.name} {f[ins.rd]}, {ins.imm!r}"
    elif fmt is Fmt.FFF:
        body = f"{inf.name} {f[ins.rd]}, {f[ins.rs1]}, {f[ins.rs2]}"
    elif fmt is Fmt.FF:
        body = f"{inf.name} {f[ins.rd]}, {f[ins.rs1]}"
    elif fmt is Fmt.RFF:
        body = f"{inf.name} {x[ins.rd]}, {f[ins.rs1]}, {f[ins.rs2]}"
    elif fmt is Fmt.FR:
        body = f"{inf.name} {f[ins.rd]}, {x[ins.rs1]}"
    elif fmt is Fmt.RF:
        body = f"{inf.name} {x[ins.rd]}, {f[ins.rs1]}"
    elif fmt is Fmt.MEM:
        data = f[ins.rd] if inf.is_float else x[ins.rd]
        body = f"{inf.name} {data}, {ins.imm}({x[ins.rs1]})"
    elif fmt is Fmt.BRANCH:
        body = f"{inf.name} {x[ins.rs1]}, {x[ins.rs2]}, {ins.imm}"
    elif fmt is Fmt.JUMP:
        body = f"{inf.name} {x[ins.rd]}, {ins.imm}"
    elif fmt is Fmt.JUMPR:
        body = f"{inf.name} {x[ins.rd]}, {x[ins.rs1]}, {ins.imm}"
    else:  # Fmt.NONE
        body = inf.name
    if ins.pred != NO_PRED:
        body += f" ?{x[ins.pred]}"
    return body


def disassemble(instrs: list[Instr], *, pc_base: int = 0) -> str:
    """Disassemble a code segment, one instruction per line with addresses."""
    lines = []
    for i, ins in enumerate(instrs):
        lines.append(f"{pc_base + 16 * i:#010x}:  {format_instr(ins)}")
    return "\n".join(lines)
