"""The :class:`Instr` container — one decoded machine instruction.

Instructions are fixed-size records.  The VM executes decoded ``Instr``
objects directly (after closure compilation); :mod:`repro.isa.encoding`
provides the 16-byte binary wire format used for code-size accounting,
round-trip testing and disassembly.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from . import opcodes
from .opcodes import Fmt, OpInfo

#: Sentinel predicate register value meaning "not predicated".
NO_PRED = -1

#: Size of one encoded instruction in bytes.
INSTR_BYTES = 16


@dataclass(frozen=True)
class Instr:
    """A single decoded instruction.

    ``rd``/``rs1``/``rs2`` index either the integer or the float register
    file depending on the opcode's format.  ``imm`` is an ``int`` for every
    opcode except ``fli``, where it is a ``float``.  ``pred`` names an
    integer register guarding execution (the instruction retires but has no
    architectural or memory effect when ``x[pred] == 0``), or :data:`NO_PRED`.
    """

    op: int
    rd: int = 0
    rs1: int = 0
    rs2: int = 0
    imm: int | float = 0
    pred: int = NO_PRED
    # Source-level annotation (assembler line), not part of the encoding.
    src: str = field(default="", compare=False)

    @property
    def info(self) -> OpInfo:
        return opcodes.OPCODES[self.op]

    # -- predicates used by the instrumentation API ------------------------
    def is_memory_read(self) -> bool:
        return self.info.mem_read > 0 and not self.info.is_prefetch

    def is_memory_write(self) -> bool:
        return self.info.mem_write > 0

    def memory_read_size(self) -> int:
        return self.info.mem_read

    def memory_write_size(self) -> int:
        return self.info.mem_write

    def is_call(self) -> bool:
        return self.info.is_call

    def is_ret(self) -> bool:
        return self.info.is_ret

    def is_branch(self) -> bool:
        return self.info.is_branch

    def is_prefetch(self) -> bool:
        return self.info.is_prefetch

    def is_predicated(self) -> bool:
        return self.pred != NO_PRED

    def __str__(self) -> str:  # pragma: no cover - debugging aid
        from .disasm import format_instr

        return format_instr(self)


def validate(ins: Instr) -> None:
    """Raise ``ValueError`` if the instruction is malformed."""
    if not 0 <= ins.op < opcodes.NUM_OPCODES:
        raise ValueError(f"opcode {ins.op} out of range")
    for fieldname in ("rd", "rs1", "rs2"):
        v = getattr(ins, fieldname)
        if not 0 <= v < 32:
            raise ValueError(f"{fieldname}={v} out of range for {ins.info.name}")
    if ins.pred != NO_PRED and not 0 <= ins.pred < 32:
        raise ValueError(f"pred={ins.pred} out of range")
    fmt = ins.info.fmt
    if fmt is Fmt.FRI:
        if not isinstance(ins.imm, float):
            raise ValueError("fli requires a float immediate")
    else:
        if not isinstance(ins.imm, int):
            raise ValueError(f"{ins.info.name} requires an integer immediate")
        if not -(2**63) <= ins.imm < 2**63:
            raise ValueError("immediate does not fit in 64 bits")
