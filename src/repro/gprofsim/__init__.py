"""gprof-sim: exact flat-profile baseline (with optional sampling emulation)."""

from .report import FlatProfile, FlatRow
from .tool import GprofTool, run_gprof

__all__ = ["GprofTool", "run_gprof", "FlatProfile", "FlatRow"]
