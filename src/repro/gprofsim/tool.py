"""gprof-sim: a flat-profile baseline profiler (paper Tables I and III).

GNU gprof attributes time to functions by sampling the program counter every
10 ms and counts calls with compiled-in ``mcount`` stubs.  Running on the VM
we can do strictly better: call/return events give *exact* per-function self
and cumulative instruction counts (no statistical inaccuracy — the paper had
to run gprof "fifty times to gain more accuracy").  A sampling view with
gprof's noise characteristics can be derived from the exact profile
(:meth:`~repro.gprofsim.report.FlatProfile.sampled`).
"""

from __future__ import annotations

from ..pin import IARG, INS, IPOINT, PinEngine, RTN
from .report import FlatProfile, FlatRow


class _Frame:
    __slots__ = ("name", "entry_icount", "child_instructions")

    def __init__(self, name: str, entry_icount: int):
        self.name = name
        self.entry_icount = entry_icount
        self.child_instructions = 0


class GprofTool:
    """Exact flat + call-graph profiler."""

    def __init__(self):
        self.self_instructions: dict[str, int] = {}
        self.cumulative_instructions: dict[str, int] = {}
        self.calls: dict[str, int] = {}
        #: (caller, callee) -> call count (the call-graph half of gprof)
        self.edges: dict[tuple[str, str], int] = {}
        self._stack: list[_Frame] = []
        self._on_stack: dict[str, int] = {}       # name -> depth (recursion)
        self._last_event = 0
        self._machine = None
        self._images: dict[str, str] = {}
        self.finished = False

    def attach(self, engine: PinEngine) -> "GprofTool":
        if self._machine is not None:
            raise RuntimeError("tool already attached")
        self._machine = engine.machine
        self._images = {r.name: r.image for r in engine.program.routines}
        engine.INS_AddInstrumentFunction(self._instrument_instruction)
        engine.RTN_AddInstrumentFunction(self._instrument_routine)
        engine.AddFiniFunction(self._fini)
        return self

    def reset(self) -> None:
        """Prepare the attached tool for another independent run.

        The four result dicts are *replaced* (a previously extracted
        reference stays valid and frozen); stack state is cleared in
        place.  Compiled instrumentation capturing the bound analysis
        methods keeps working — they look the containers up per event.
        """
        self.self_instructions = {}
        self.cumulative_instructions = {}
        self.calls = {}
        self.edges = {}
        self._stack.clear()
        self._on_stack.clear()
        self._last_event = 0
        self.finished = False

    def _instrument_instruction(self, ins: INS) -> None:
        if ins.IsRet():
            ins.InsertCall(IPOINT.BEFORE, self._on_ret)

    def _instrument_routine(self, rtn: RTN) -> None:
        rtn.InsertCall(IPOINT.BEFORE, self._on_enter, IARG.RTN_NAME)

    # ------------------------------------------------------------- analysis
    def _on_enter(self, name: str) -> None:
        # The analysis call runs *before* the routine's first instruction
        # executes (icount already includes it), so the caller is charged up
        # to ic-1 and the callee's span starts at its own first instruction.
        ic = self._machine.icount - 1
        stack = self._stack
        if stack:
            top = stack[-1]
            self.self_instructions[top.name] = (
                self.self_instructions.get(top.name, 0)
                + ic - self._last_event)
            key = (top.name, name)
            self.edges[key] = self.edges.get(key, 0) + 1
        self._last_event = ic
        stack.append(_Frame(name, ic))
        self._on_stack[name] = self._on_stack.get(name, 0) + 1
        self.calls[name] = self.calls.get(name, 0) + 1

    def _on_ret(self) -> None:
        stack = self._stack
        if not stack:
            return
        ic = self._machine.icount
        frame = stack.pop()
        name = frame.name
        self.self_instructions[name] = (
            self.self_instructions.get(name, 0) + ic - self._last_event)
        self._last_event = ic
        depth = self._on_stack[name] - 1
        self._on_stack[name] = depth
        elapsed = ic - frame.entry_icount
        if depth == 0:
            # only outermost activations add cumulative time (gprof's
            # recursion rule)
            self.cumulative_instructions[name] = (
                self.cumulative_instructions.get(name, 0) + elapsed)

    # ------------------------------------------------- sharded replay hooks
    def seed_frames(self, frames, start_icount: int) -> None:
        """Adopt a live call stack for a mid-execution (shard) replay.

        ``frames`` are ``(name, image, entry_icount)`` tuples with
        *absolute* entry icounts (from
        :class:`~repro.parallel.checkpoint.CheckpointTracer`); the machine
        must be restored to ``start_icount``.  Calls and edges for these
        frames were already counted by the shard that entered them, so
        only stack/recursion state is recreated here.
        """
        for name, _image, entry_ic in frames:
            self._stack.append(_Frame(name, entry_ic))
            self._on_stack[name] = self._on_stack.get(name, 0) + 1
        self._last_event = start_icount

    def flush_shard(self) -> None:
        """Charge self time up to the current icount at a shard boundary.

        The serial run attributes the span since the last call/return event
        lazily, at the *next* event; a shard must instead settle it at its
        end.  The next shard seeds ``_last_event`` to this boundary, so the
        two charges add up to exactly the serial attribution (the top frame
        cannot change between the boundary and the next event).  Unlike
        ``_fini`` this touches no cumulative counts — open frames are
        completed by the shard that observes their return.
        """
        ic = self._machine.icount
        if self._stack:
            top = self._stack[-1]
            self.self_instructions[top.name] = (
                self.self_instructions.get(top.name, 0)
                + ic - self._last_event)
        self._last_event = ic

    def _fini(self, exit_code: int) -> None:
        # Attribute the tail (between the last event and exit) to whatever
        # is still on the stack, innermost first.
        ic = self._machine.icount
        if self._stack:
            top = self._stack[-1]
            self.self_instructions[top.name] = (
                self.self_instructions.get(top.name, 0)
                + ic - self._last_event)
            self._last_event = ic
            for frame in self._stack:
                if self._on_stack.get(frame.name, 0) == 1:
                    self.cumulative_instructions[frame.name] = (
                        self.cumulative_instructions.get(frame.name, 0)
                        + ic - frame.entry_icount)
        self.finished = True

    # ------------------------------------------------------------- results
    def report(self, *, main_image_only: bool = True) -> FlatProfile:
        if not self.finished:
            raise RuntimeError("run the engine before asking for the report")
        rows = []
        for name, self_instr in self.self_instructions.items():
            if main_image_only and self._images.get(name, "main") != "main":
                continue
            rows.append(FlatRow(
                name=name,
                self_instructions=self_instr,
                cumulative_instructions=self.cumulative_instructions.get(
                    name, self_instr),
                calls=self.calls.get(name, 0)))
        rows.sort(key=lambda r: r.self_instructions, reverse=True)
        return FlatProfile(rows=rows,
                           total_instructions=self._machine.icount,
                           edges=dict(self.edges))


def run_gprof(program, *, fs=None, max_instructions: int | None = None,
              mem_size: int | None = None,
              main_image_only: bool = True) -> FlatProfile:
    """Convenience: profile ``program`` and return the flat profile."""
    kwargs = {"fs": fs}
    if mem_size is not None:
        kwargs["mem_size"] = mem_size
    engine = PinEngine(program, **kwargs)
    tool = GprofTool().attach(engine)
    engine.run(max_instructions=max_instructions)
    return tool.report(main_image_only=main_image_only)
