"""Flat-profile report (the gprof output format of Tables I and III)."""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..core.machine_model import MachineModel, PAPER_MACHINE


@dataclass
class FlatRow:
    """One function's flat-profile entry."""

    name: str
    self_instructions: int
    cumulative_instructions: int
    calls: int


@dataclass
class FlatProfile:
    """A gprof-style flat profile, in instruction units.

    Seconds/milliseconds columns are derived views under a
    :class:`~repro.core.machine_model.MachineModel`.
    """

    rows: list[FlatRow]
    total_instructions: int
    machine: MachineModel = PAPER_MACHINE
    edges: dict[tuple[str, str], int] = field(default_factory=dict)

    def __post_init__(self) -> None:
        self._by_name = {r.name: r for r in self.rows}

    # ------------------------------------------------------------- queries
    def __contains__(self, name: str) -> bool:
        return name in self._by_name

    def row(self, name: str) -> FlatRow:
        return self._by_name[name]

    @property
    def profiled_instructions(self) -> int:
        return sum(r.self_instructions for r in self.rows)

    def percent(self, name: str) -> float:
        """%time — percentage of the total run spent in the function."""
        row = self._by_name.get(name)
        if row is None:
            return 0.0
        total = self.profiled_instructions
        return 100.0 * row.self_instructions / total if total else 0.0

    def self_seconds(self, name: str) -> float:
        return self.machine.seconds(self._by_name[name].self_instructions)

    def self_ms_per_call(self, name: str) -> float:
        row = self._by_name[name]
        if row.calls == 0:
            return 0.0
        return self.machine.milliseconds(row.self_instructions) / row.calls

    def total_ms_per_call(self, name: str) -> float:
        row = self._by_name[name]
        if row.calls == 0:
            return 0.0
        return (self.machine.milliseconds(row.cumulative_instructions)
                / row.calls)

    def rank(self, name: str) -> int:
        """1-based position in the self-time ordering."""
        for i, r in enumerate(self.rows):
            if r.name == name:
                return i + 1
        raise KeyError(name)

    def top(self, k: int) -> list[str]:
        return [r.name for r in self.rows[:k]]

    def callers_of(self, name: str) -> dict[str, int]:
        return {caller: n for (caller, callee), n in self.edges.items()
                if callee == name}

    def callees_of(self, name: str) -> dict[str, int]:
        return {callee: n for (caller, callee), n in self.edges.items()
                if caller == name}

    # ------------------------------------------------------------- sampling
    def sampled(self, period_instructions: int,
                rng: np.random.Generator | None = None) -> "FlatProfile":
        """Emulate gprof's statistical sampling.

        gprof samples the PC every ``period`` (10 ms on the paper's testbed);
        a function's measured time is (number of samples that landed in it) ×
        period.  With an rng, each function's sample count is drawn from a
        binomial, reproducing the "statistical inaccuracy, particularly if a
        function runs only for a small amount of time" the paper warns about.
        """
        if period_instructions <= 0:
            raise ValueError("period must be positive")
        total = self.profiled_instructions
        n_samples = total // period_instructions
        rows = []
        for r in self.rows:
            p = r.self_instructions / total if total else 0.0
            if rng is None:
                hits = round(p * n_samples)
            else:
                hits = int(rng.binomial(n_samples, p)) if n_samples else 0
            rows.append(FlatRow(
                name=r.name,
                self_instructions=hits * period_instructions,
                cumulative_instructions=r.cumulative_instructions,
                calls=r.calls))
        rows.sort(key=lambda r: r.self_instructions, reverse=True)
        return FlatProfile(rows=rows, total_instructions=self.total_instructions,
                           machine=self.machine, edges=dict(self.edges))

    # ------------------------------------------------------------ rendering
    def format_call_graph(self, *, top: int | None = None) -> str:
        """gprof's second section: per-function caller/callee entries."""
        order = sorted(self.rows, key=lambda r: r.cumulative_instructions,
                       reverse=True)
        if top is not None:
            order = order[:top]
        index = {r.name: i + 1 for i, r in enumerate(order)}
        total = self.profiled_instructions or 1
        lines = [f"{'index':>6} {'%time':>7} {'self s':>9} {'total s':>9} "
                 f"{'calls':>9}  name"]
        lines.append("-" * len(lines[0]))
        for r in order:
            for caller, n in sorted(self.callers_of(r.name).items()):
                lines.append(f"{'':>6} {'':>7} {'':>9} {'':>9} {n:>9}      "
                             f"<- {caller}")
            pct = 100.0 * r.cumulative_instructions / total
            lines.append(
                f"[{index[r.name]:>4}] {min(pct, 100.0):>7.1f} "
                f"{self.machine.seconds(r.self_instructions):>9.4f} "
                f"{self.machine.seconds(r.cumulative_instructions):>9.4f} "
                f"{r.calls:>9}  {r.name}")
            for callee, n in sorted(self.callees_of(r.name).items()):
                lines.append(f"{'':>6} {'':>7} {'':>9} {'':>9} {n:>9}      "
                             f"-> {callee}")
            lines.append("")
        return "\n".join(lines)

    def format_table(self, *, top: int | None = None) -> str:
        """Table-I-style rendering."""
        head = (f"{'kernel':<28}{'%time':>8}{'self s':>10}{'calls':>10}"
                f"{'self ms/call':>14}{'total ms/call':>15}")
        lines = [head, "-" * len(head)]
        rows = self.rows[:top] if top is not None else self.rows
        for r in rows:
            lines.append(
                f"{r.name:<28}{self.percent(r.name):>8.2f}"
                f"{self.self_seconds(r.name):>10.4f}{r.calls:>10}"
                f"{self.self_ms_per_call(r.name):>14.4f}"
                f"{self.total_ms_per_call(r.name):>15.4f}")
        return "\n".join(lines)
