"""Command-line interface.

Mirrors how the paper's tool is driven: a binary (here: a MiniC program or
the built-in WFS case study) plus the three tQUAD options — time slice
interval, stack-area inclusion, and library exclusion.

Examples::

    tquad profile app.mc --tool tquad --interval 5000
    tquad profile app.mc --tool gprof
    tquad wfs --preset tiny --phases
    tquad disasm app.mc

Capture once, analyze many (see ``docs/capture.md``)::

    tquad capture run app.mc --out app.capture --interval 500
    tquad profile app.mc --from-capture app.capture --interval 4000
    tquad profile app.mc --tool gprof --from-capture app.capture
    tquad capture info app.capture

Batched sweeps — one capture pass, a whole config grid::

    tquad sweep app.mc --intervals 500,1000,4000 \\
        --stacks both,exclude --libs include,exclude --json grid.json
    tquad sweep app.mc --intervals 1000,2000 --from-capture app.capture
"""

from __future__ import annotations

import argparse
import sys

from .analysis import bandwidth_strips, cluster_kernels
from .apps.wfs import PRESETS, build_wfs_program, make_workspace
from .core import (TQuadOptions, cluster_kernel_phases, detect_phases,
                   run_tquad)
from .gprofsim import run_gprof
from .isa import disassemble
from .minic import build_program
from .pin import PinEngine
from .quad import QuadTool, run_quad
from .vm import run_program


def _load_program(path: str):
    with open(path, "r", encoding="utf-8") as fh:
        source = fh.read()
    if path.endswith(".s"):
        from .asmkit import assemble

        return assemble(source)
    return build_program(source)


def _bad_usage(message: str) -> int:
    """Uniform operand-validation failure: message on stderr, exit code 2
    (matching argparse's own usage-error convention)."""
    print(f"error: {message}", file=sys.stderr)
    return 2


def _validate_profile_args(args: argparse.Namespace) -> int | None:
    if getattr(args, "interval", 1) <= 0:
        return _bad_usage("--interval must be a positive instruction count")
    if getattr(args, "jobs", 1) < 1:
        return _bad_usage("--jobs must be >= 1")
    if getattr(args, "deadline", 1.0) <= 0:
        return _bad_usage("--deadline must be a positive number of seconds")
    if getattr(args, "shadow", "paged") not in ("paged", "legacy"):
        return _bad_usage("--shadow must be 'paged' or 'legacy'")
    if (getattr(args, "stats", False)
            and getattr(args, "tool", "") != "quad"
            and not getattr(args, "from_capture", None)):
        return _bad_usage("--stats requires --tool quad or --from-capture")
    from_capture = getattr(args, "from_capture", None)
    capture_out = getattr(args, "capture_out", None)
    if from_capture and capture_out:
        return _bad_usage("--from-capture and --capture-out are mutually "
                          "exclusive (one reads a capture, one records it)")
    if from_capture:
        if getattr(args, "jobs", 1) > 1:
            return _bad_usage("--from-capture replays without executing; "
                              "it cannot be combined with --jobs")
        if getattr(args, "cache", False) or getattr(args, "imix", False):
            return _bad_usage("--cache/--imix re-execute the guest and "
                              "cannot be combined with --from-capture")
        if getattr(args, "shadow", "paged") == "legacy":
            return _bad_usage("--from-capture replays the paged shadow; "
                              "--shadow legacy is not available")
        if getattr(args, "report", None):
            return _bad_usage("--report re-executes the guest and cannot "
                              "be combined with --from-capture")
    if capture_out:
        if getattr(args, "jobs", 1) > 1 and getattr(args, "tool",
                                                    "tquad") != "tquad":
            return _bad_usage("--capture-out with --jobs requires "
                              "--tool tquad (only tQUAD shards emit "
                              "capture segments)")
        if getattr(args, "shadow", "paged") == "legacy":
            return _bad_usage("--capture-out requires the paged shadow; "
                              "drop --shadow legacy")
        if getattr(args, "report", None):
            return _bad_usage("--report cannot be combined with "
                              "--capture-out")
    err = _parse_mem_limit_arg(args)
    if err is not None:
        return err
    if args.mem_limit_bytes is not None and not (from_capture
                                                 or capture_out):
        return _bad_usage("--mem-limit bounds capture replay; combine it "
                          "with --from-capture or --capture-out")
    approx = getattr(args, "approx", None)
    if approx is not None:
        if not (0.0 < approx < 1.0):
            return _bad_usage("--approx takes a sampling rate strictly "
                              "between 0 and 1 (e.g. 0.05)")
        if getattr(args, "tool", "tquad") != "tquad":
            return _bad_usage("--approx is a sampled tQUAD replay; it "
                              "requires --tool tquad")
        if not (from_capture or capture_out):
            return _bad_usage("--approx replays from a capture; combine "
                              "it with --from-capture or --capture-out")
    return None


def _parse_mem_limit_arg(args: argparse.Namespace) -> int | None:
    """Resolve ``--mem-limit`` into ``args.mem_limit_bytes`` (exit-2 on a
    malformed value); a no-op for commands without the flag."""
    text = getattr(args, "mem_limit", None)
    if text is None:
        args.mem_limit_bytes = None
        return None
    from .capture.streaming import parse_mem_limit

    try:
        args.mem_limit_bytes = parse_mem_limit(text)
    except ValueError as exc:
        return _bad_usage(f"--mem-limit: {exc}")
    return None


def _open_capture(path: str, program, label: str = "",
                  page_cache: bool = True):
    """Open + validate a capture for replaying ``program``; raises
    :class:`repro.capture.CaptureError` with an operator-facing message.

    ``label`` is the expected workload identity (``"<app>-<preset>"``):
    presets differing only in workspace data share a binary, so the
    digest check alone would replay the wrong preset's capture silently.
    """
    from .capture import CaptureReader, check_label, check_program

    reader = CaptureReader(path, page_cache=page_cache)
    check_program(reader.manifest, program)
    check_label(reader.manifest, label)
    return reader


def _parallel_capture(args: argparse.Namespace, program, options, *,
                      fs=None, label: str = ""):
    """``--capture-out`` with ``--jobs N``: shards record capture segments
    that merge into one exact capture file; returns the tQUAD report (or
    an ``int`` exit code)."""
    from .capture import CaptureWriter, make_manifest, program_digest
    from .parallel import TQuadSpec, parallel_profile

    writer = CaptureWriter(args.capture_out)
    try:
        run = parallel_profile(program,
                               TQuadSpec(options=options, capture=True),
                               jobs=args.jobs, fs=fs,
                               deadline=args.deadline,
                               capture_writer=writer)
        writer.finalize(make_manifest(
            program_sha=program_digest(program), label=label,
            grain=options.slice_interval, stack=options.stack.value,
            exclude_libraries=options.exclude_libraries,
            total_instructions=run.total_instructions,
            exit_code=run.exit_code, images=run.images,
            kernels=run.capture_kernels or [], mem_size=run.mem_size,
            tools=("tquad",),
            prefetches_skipped=run.prefetches_skipped))
    finally:
        writer.close()
    print(f"wrote {args.capture_out}", file=sys.stderr)
    return run.reports["tquad"]


def _captured_report(args: argparse.Namespace, program, options, *,
                     fs=None, label: str = ""):
    """Resolve the report when ``--from-capture``/``--capture-out`` is in
    play.  Returns the tool's report object, or an ``int`` exit code.

    ``--capture-out`` records the run and then *replays the freshly
    written file* for printing — one execution, and the printed output
    exercises the same path a later ``--from-capture`` will take.
    """
    from .capture import (CaptureError, CaptureReader, capture_run,
                          replay_gprof, replay_quad, replay_tquad)

    tool = getattr(args, "tool", "tquad")
    if getattr(args, "capture_out", None):
        if getattr(args, "jobs", 1) > 1:
            return _parallel_capture(args, program, options, fs=fs,
                                     label=label)
        capture_run(program, args.capture_out, fs=fs, options=options,
                    tools=(tool,), label=label,
                    max_instructions=getattr(args, "budget", None))
        print(f"wrote {args.capture_out}", file=sys.stderr)
        source = args.capture_out
    else:
        source = args.from_capture
    page_cache = not getattr(args, "no_page_cache", False)
    try:
        if getattr(args, "capture_out", None):
            # fresh file: digest matches
            reader = CaptureReader(source, page_cache=page_cache)
        else:
            reader = _open_capture(source, program, label,
                                   page_cache=page_cache)
        mem_limit = getattr(args, "mem_limit_bytes", None)
        approx = getattr(args, "approx", None)
        with reader:
            if tool == "tquad" and approx is not None:
                from .capture import approx_replay_tquad

                result = approx_replay_tquad(
                    reader, options, rate=approx,
                    seed=getattr(args, "approx_seed", 0),
                    mem_limit=mem_limit)
            elif tool == "tquad":
                result = replay_tquad(reader, options,
                                      mem_limit=mem_limit)
            elif tool == "quad":
                result = replay_quad(reader, mem_limit=mem_limit)
            else:
                result = replay_gprof(reader, mem_limit=mem_limit)
            if getattr(args, "stats", False) and getattr(
                    args, "from_capture", None):
                print(reader.format_stats(), file=sys.stderr)
            return result
    except CaptureError as err:
        return _bad_usage(str(err))


def _start_trace(args: argparse.Namespace):
    """If ``--trace-out`` was given, switch span tracing on and open a
    top-level span covering the whole command; returns it (or ``None``)."""
    if not getattr(args, "trace_out", None):
        return None
    from . import obs

    obs.reset()
    obs.enable()
    span = obs.TELEMETRY.span(args.command, cat="cli")
    span.__enter__()
    return span


def _finish_trace(args: argparse.Namespace, span) -> None:
    """Close the command span, write the Chrome trace JSON and print the
    timing summary to stderr (stdout stays byte-identical to an untraced
    run — reports only)."""
    if span is None:
        return
    from . import obs

    span.__exit__(None, None, None)
    obs.disable()
    obs.write_chrome_trace(obs.TELEMETRY, args.trace_out)
    print(f"wrote {args.trace_out}", file=sys.stderr)
    print(obs.summary_table(obs.TELEMETRY), file=sys.stderr)


def _cmd_profile(args: argparse.Namespace) -> int:
    err = _validate_profile_args(args)
    if err is not None:
        return err
    program = _load_program(args.file)
    trace = _start_trace(args)
    try:
        return _profile_body(args, program)
    finally:
        _finish_trace(args, trace)


def _profile_body(args: argparse.Namespace, program) -> int:
    options = TQuadOptions(slice_interval=args.interval,
                           exclude_libraries=args.exclude_libs)
    captured = None
    if args.from_capture or args.capture_out:
        captured = _captured_report(args, program, options)
        if isinstance(captured, int):
            return captured
    elif args.jobs > 1:
        from .parallel import (GprofSpec, QuadSpec, TQuadSpec,
                               parallel_profile)

        spec = {"tquad": lambda: TQuadSpec(options=options),
                "quad": lambda: QuadSpec(shadow=args.shadow),
                "gprof": GprofSpec}[args.tool]()
        run = parallel_profile(program, spec, jobs=args.jobs,
                               deadline=args.deadline)
    if args.tool == "tquad":
        report = (captured if captured is not None else
                  run.reports["tquad"] if args.jobs > 1 else
                  run_tquad(program, options=options,
                            max_instructions=args.budget))
        approx_result = None
        if captured is not None:
            from .capture.approx import ApproxTQuadReplay

            if isinstance(captured, ApproxTQuadReplay):
                approx_result = captured
                report = captured.report
        if args.json:
            if approx_result is not None:
                from .serialize import approx_to_json as _to_json

                payload = _to_json(approx_result)
            else:
                from .serialize import tquad_to_json

                payload = tquad_to_json(report)
            with open(args.json, "w", encoding="utf-8") as fh:
                fh.write(payload)
            print(f"wrote {args.json}", file=sys.stderr)
        print(report.format_table(top=args.top))
        if approx_result is not None:
            print()
            print("\n".join(approx_result.summary_lines()))
        if args.figure:
            kernels = report.top_kernels(args.top or 10)
            names, mat = report.bandwidth_matrix(
                kernels, write=args.writes,
                include_stack=not args.exclude_stack)
            print()
            print(bandwidth_strips(names, mat, interval=report.interval))
        if args.phases:
            print()
            print(cluster_kernel_phases(report).format_table())
        if args.cache:
            from .tools import run_dcache

            tool = run_dcache(_load_program(args.file),
                              max_instructions=args.budget)
            print()
            print(tool.format_table(top=args.top))
        if args.imix:
            from .tools import run_imix

            tool = run_imix(_load_program(args.file),
                            max_instructions=args.budget)
            print()
            print(tool.format_table(top=args.top))
    elif args.tool == "quad":
        report = (captured if captured is not None else
                  run.reports["quad"] if args.jobs > 1 else
                  run_quad(program, max_instructions=args.budget,
                           shadow=args.shadow))
        if args.json:
            from .serialize import quad_to_json

            with open(args.json, "w", encoding="utf-8") as fh:
                fh.write(quad_to_json(report))
            print(f"wrote {args.json}", file=sys.stderr)
        print(report.format_table())
        if args.stats:
            print()
            print(report.format_stats())
    elif args.tool == "gprof":
        flat = (captured if captured is not None else
                run.reports["gprof"] if args.jobs > 1 else
                run_gprof(program, max_instructions=args.budget))
        if args.json:
            from .serialize import flat_to_json

            with open(args.json, "w", encoding="utf-8") as fh:
                fh.write(flat_to_json(flat))
            print(f"wrote {args.json}", file=sys.stderr)
        print(flat.format_table(top=args.top))
        if args.callgraph:
            print()
            print(flat.format_call_graph(top=args.top))
    else:  # pragma: no cover
        raise AssertionError(args.tool)
    return 0


def _cmd_wfs(args: argparse.Namespace) -> int:
    err = _validate_profile_args(args)
    if err is not None:
        return err
    cfg = PRESETS[args.preset]
    if cfg.name == "paper":
        print("the 'paper' preset documents the published scale and is not "
              "runnable on the Python VM; use tiny/small/demo",
              file=sys.stderr)
        return 2
    program = build_wfs_program(cfg)
    trace = _start_trace(args)
    try:
        return _wfs_body(args, cfg, program)
    finally:
        _finish_trace(args, trace)


def _wfs_body(args: argparse.Namespace, cfg, program) -> int:
    if args.report:
        from .analysis import case_study_report

        result = case_study_report(
            program, fs_factory=lambda: make_workspace(cfg),
            title=f"hArtes-wfs case study ({cfg.name} preset)",
            slice_interval=args.interval)
        with open(args.report, "w", encoding="utf-8") as fh:
            fh.write(result.markdown)
        print(f"wrote {args.report}")
        return 0
    options = TQuadOptions(slice_interval=args.interval)
    if args.from_capture or args.capture_out:
        outcome = _captured_report(
            args, program, options,
            fs=None if args.from_capture else make_workspace(cfg),
            label=f"wfs-{cfg.name}")
        if isinstance(outcome, int):
            return outcome
        report = outcome
    elif args.jobs > 1:
        from .parallel import TQuadSpec, parallel_profile

        report = parallel_profile(program, TQuadSpec(options=options),
                                  jobs=args.jobs, fs=make_workspace(cfg),
                                  deadline=args.deadline).reports["tquad"]
    else:
        report = run_tquad(program, fs=make_workspace(cfg),
                           options=options)
    print(f"# WFS case study, preset {cfg.name!r}: "
          f"{report.total_instructions} instructions, "
          f"{report.n_slices} slices of {report.interval}")
    print(report.format_table(top=args.top))
    if args.figure:
        kernels = report.top_kernels(args.top or 10)
        names, mat = report.bandwidth_matrix(kernels, write=args.writes,
                                             include_stack=not
                                             args.exclude_stack)
        print()
        print(bandwidth_strips(names, mat, interval=report.interval))
    if args.phases:
        print()
        print(cluster_kernel_phases(report, max_phases=5).format_table())
    return 0


def _cmd_guest(args: argparse.Namespace) -> int:
    from .apps.registry import GUEST_APPS, guest_label

    app = GUEST_APPS[args.app]
    if args.interval is None:
        args.interval = app.default_interval
    err = _validate_profile_args(args)
    if err is not None:
        return err
    try:
        cfg = app.config(args.preset)
    except KeyError as exc:
        return _bad_usage(exc.args[0])
    if cfg.name in app.unrunnable:
        return _bad_usage(
            f"preset {cfg.name!r} of guest {app.name!r} documents the "
            f"published scale and is not runnable on the Python VM")
    program = app.build_program(cfg)
    trace = _start_trace(args)
    try:
        return _guest_body(args, app, cfg, program,
                           guest_label(app.name, cfg))
    finally:
        _finish_trace(args, trace)


def _guest_body(args: argparse.Namespace, app, cfg, program,
                label: str) -> int:
    options = TQuadOptions(slice_interval=args.interval)
    if args.from_capture or args.capture_out:
        outcome = _captured_report(
            args, program, options,
            fs=None if args.from_capture else app.make_workspace(cfg),
            label=label)
        if isinstance(outcome, int):
            return outcome
        report = outcome
    elif args.jobs > 1:
        from .parallel import TQuadSpec, parallel_profile

        report = parallel_profile(
            program, TQuadSpec(options=options), jobs=args.jobs,
            fs=app.make_workspace(cfg),
            deadline=args.deadline).reports["tquad"]
    else:
        report = run_tquad(program, fs=app.make_workspace(cfg),
                           options=options)
    print(f"# guest {app.name!r} ({app.description}), preset "
          f"{cfg.name!r}: {report.total_instructions} instructions, "
          f"{report.n_slices} slices of {report.interval}")
    print(report.format_table(top=args.top))
    if args.figure:
        kernels = report.top_kernels(args.top or 10)
        names, mat = report.bandwidth_matrix(kernels, write=args.writes,
                                             include_stack=not
                                             args.exclude_stack)
        print()
        print(bandwidth_strips(names, mat, interval=report.interval))
    if args.phases:
        print()
        print(cluster_kernel_phases(report, max_phases=5).format_table())
    return 0


def _cmd_corpus(args: argparse.Namespace) -> int:
    from .corpus import (CaptureStore, run_fleet, update_fleet,
                         verify_fleet)

    if args.jobs < 1:
        return _bad_usage("--jobs must be >= 1")
    if args.deadline <= 0:
        return _bad_usage("--deadline must be a positive number of seconds")
    err = _parse_mem_limit_arg(args)
    if err is not None:
        return err
    approx = getattr(args, "approx", None)
    if approx is not None and not (0.0 < approx < 1.0):
        return _bad_usage("--approx takes a sampling rate strictly "
                          "between 0 and 1 (e.g. 0.05)")
    try:
        store = CaptureStore(args.store,
                             page_cache=not args.no_page_cache)
        kwargs = dict(store=store, nightly=args.nightly or None,
                      only=args.only, jobs=args.jobs,
                      deadline=args.deadline,
                      mem_limit=args.mem_limit_bytes)
        trace = _start_trace(args)
        try:
            if args.corpus_command == "run":
                sample = ((approx, args.approx_seed)
                          if approx is not None else None)
                report = run_fleet(out_dir=args.out_dir, approx=sample,
                                   **kwargs)
            elif args.corpus_command == "verify":
                report = verify_fleet(golden_root=args.golden, **kwargs)
            else:
                report = update_fleet(golden_root=args.golden, **kwargs)
        finally:
            _finish_trace(args, trace)
    except KeyError as exc:
        return _bad_usage(exc.args[0])
    if args.report:
        with open(args.report, "w", encoding="utf-8") as fh:
            fh.write(report.to_json())
        print(f"wrote {args.report}", file=sys.stderr)
    print(report.summary())
    for entry in report.entries:
        if entry.status == "ok":
            continue
        detail = (", ".join(entry.drifted + entry.missing)
                  or entry.error)
        print(f"  {entry.status}: {entry.name} ({detail})",
              file=sys.stderr)
    return report.exit_code


def _cmd_disasm(args: argparse.Namespace) -> int:
    program = _load_program(args.file)
    print(disassemble(program.instrs, pc_base=0x1000))
    return 0


def _cmd_run(args: argparse.Namespace) -> int:
    program = _load_program(args.file)
    machine = run_program(program, max_instructions=args.budget)
    sys.stdout.write(machine.stdout_text())
    print(f"[exit {machine.exit_code}, {machine.icount} instructions]",
          file=sys.stderr)
    return machine.exit_code or 0


def _cmd_cluster(args: argparse.Namespace) -> int:
    program = _load_program(args.file)
    quad = run_quad(program, max_instructions=args.budget)
    result = cluster_kernels(quad, n_clusters=args.clusters)
    print(f"intra-cluster communication: {100 * result.intra_fraction:.1f}% "
          f"({result.total_bytes - result.cut_bytes}/{result.total_bytes} "
          f"bytes)")
    for i, c in enumerate(result.clusters):
        members = ", ".join(sorted(c.members))
        print(f"  cluster {i}: [{members}] internal={c.internal_bytes}B")
    return 0


def _cmd_wcet(args: argparse.Namespace) -> int:
    from .static import WCETAnalyzer, WCETError

    program = _load_program(args.file)
    bounds: dict[str, list[int]] = {}
    for spec in args.bounds:
        routine, _, values = spec.partition(":")
        bounds[routine] = [int(v) for v in values.split(",") if v]
    analyzer = WCETAnalyzer(program, loop_bounds=bounds)
    try:
        result = analyzer.analyze(args.routine)
    except WCETError as err:
        headers = []
        try:
            headers = analyzer.loops_of(args.routine)
        except Exception:
            pass
        print(f"error: {err}", file=sys.stderr)
        if headers:
            print(f"loops of {args.routine} (source order, header "
                  f"instruction indices): {headers}", file=sys.stderr)
        return 1
    print(f"WCET({args.routine}) = {result.bound:.0f} instructions")
    for li in result.loops:
        print(f"  loop #{li.ordinal} @ {li.header_index}: bound {li.bound}, "
              f"body {li.body_cost:.0f} instructions/iter")
    for callee, bound in sorted(result.callees.items()):
        print(f"  callee {callee}: {bound:.0f}")
    return 0


def _cmd_sweep(args: argparse.Namespace) -> int:
    from .core.options import StackPolicy
    from .sweep import SweepGrid

    if args.from_capture and args.capture_out:
        return _bad_usage("--from-capture and --capture-out are mutually "
                          "exclusive (one reads a capture, one records it)")
    try:
        intervals = tuple(int(t) for t in args.intervals.split(",")
                          if t.strip())
    except ValueError:
        return _bad_usage("--intervals takes a comma-separated list of "
                          "positive instruction counts")
    stacks = [t.strip() for t in args.stacks.split(",") if t.strip()]
    if not stacks or any(s not in ("both", "include", "exclude")
                         for s in stacks):
        return _bad_usage("--stacks takes a comma-separated subset of "
                          "both,include,exclude")
    libs = [t.strip() for t in args.libs.split(",") if t.strip()]
    if not libs or any(m not in ("include", "exclude") for m in libs):
        return _bad_usage("--libs takes a comma-separated subset of "
                          "include,exclude")
    try:
        grid = SweepGrid(intervals=intervals,
                         stacks=tuple(StackPolicy(s) for s in stacks),
                         library_modes=tuple(m == "exclude" for m in libs))
    except ValueError as err:
        return _bad_usage(str(err))
    err = _parse_mem_limit_arg(args)
    if err is not None:
        return err
    if args.approx is not None and not (0.0 < args.approx < 1.0):
        return _bad_usage("--approx takes a sampling rate strictly "
                          "between 0 and 1 (e.g. 0.05)")
    program = _load_program(args.file)
    trace = _start_trace(args)
    try:
        return _sweep_body(args, program, grid)
    finally:
        _finish_trace(args, trace)


def _sweep_body(args: argparse.Namespace, program, grid) -> int:
    import io
    import math
    from functools import reduce

    from .capture import CaptureError, CaptureReader, capture_run
    from .sweep import sweep_tquad

    page_cache = not getattr(args, "no_page_cache", False)
    try:
        if args.from_capture:
            reader = _open_capture(args.from_capture, program,
                                   page_cache=page_cache)
        else:
            # one instrumented run at the gcd grain, recorded both-sided
            # with library markers — serves the entire grid
            grain = reduce(math.gcd, grid.intervals)
            options = TQuadOptions(slice_interval=grain)
            target = args.capture_out or io.BytesIO()
            capture_run(program, target, options=options, tools=("tquad",),
                        label=args.label, max_instructions=args.budget)
            if args.capture_out:
                print(f"wrote {args.capture_out}", file=sys.stderr)
                reader = CaptureReader(args.capture_out,
                                       page_cache=page_cache)
            else:
                target.seek(0)
                reader = CaptureReader(target)
        sample = ((args.approx, getattr(args, "approx_seed", 0))
                  if args.approx is not None else None)
        with reader:
            result = sweep_tquad(reader, grid,
                                 mem_limit=args.mem_limit_bytes,
                                 sample=sample)
            if args.stats:
                print(reader.format_stats(), file=sys.stderr)
    except CaptureError as err:
        return _bad_usage(str(err))
    if args.json:
        from .serialize import sweep_to_json

        with open(args.json, "w", encoding="utf-8") as fh:
            fh.write(sweep_to_json(result))
        print(f"wrote {args.json}", file=sys.stderr)
    print(f"sweep: {len(result)} cells from one capture pass "
          f"(grain {result.grain}, "
          f"{result.stats['pages_walked']} pages walked)")
    if args.mem_limit_bytes is not None:
        print(f"  streaming: peak resident "
              f"{result.stats['peak_resident_bytes']:,} B under "
              f"{args.mem_limit_bytes:,} B ceiling, spilled "
              f"{result.stats['spilled_bytes']:,} B in "
              f"{result.stats['spill_runs']} runs")
    if sample is not None:
        print(f"  sampled: rate={result.stats['sample_rate']:g} "
              f"seed={result.stats['sample_seed']} kept "
              f"{result.stats['sampled_rows']:,} of "
              f"{result.stats['rows_walked']:,} rows "
              f"(±{100 * result.stats['rel_err_95']:.2f}% @95% on "
              f"sampled bytes)")
    for cell, report in result:
        lib_mode = "exclude" if cell.exclude_libraries else "include"
        print(f"  interval={cell.interval} stack={cell.stack.value} "
              f"libs={lib_mode}: {len(report.kernels())} kernels, "
              f"{report.n_slices} slices")
    return 0


def _cmd_capture_run(args: argparse.Namespace) -> int:
    from .capture import capture_run
    from .capture.record import CAPTURE_TOOLS

    if args.interval <= 0:
        return _bad_usage("--interval must be a positive instruction count")
    tools = tuple(t.strip() for t in args.tools.split(",") if t.strip())
    if not tools or any(t not in CAPTURE_TOOLS for t in tools):
        return _bad_usage("--tools takes a comma-separated subset of "
                          + ",".join(CAPTURE_TOOLS))
    program = _load_program(args.file)
    options = TQuadOptions(slice_interval=args.interval,
                           exclude_libraries=args.exclude_libs)
    trace = _start_trace(args)
    try:
        manifest = capture_run(program, args.out, options=options,
                               tools=tools, label=args.label,
                               max_instructions=args.budget)
    finally:
        _finish_trace(args, trace)
    streams = manifest["streams"]
    rows = sum(s["rows"] for s in streams.values())
    print(f"wrote {args.out}: {manifest['total_instructions']} "
          f"instructions, {rows} rows in {len(streams)} streams "
          f"(grain {manifest['options']['grain']}, "
          f"tools {','.join(manifest['tools'])})")
    return 0


def _cmd_capture_info(args: argparse.Namespace) -> int:
    from .capture import CaptureError, CaptureReader

    stats = getattr(args, "stats", False)
    page_cache = stats and not getattr(args, "no_page_cache", False)
    try:
        reader = CaptureReader(args.file, page_cache=page_cache)
    except CaptureError as err:
        return _bad_usage(str(err))
    with reader:
        man = reader.manifest
        opt = man["options"]
        print(f"capture v{man['format']}  "
              f"program {man['program_sha256'][:12]}")
        if man.get("label"):
            print(f"label: {man['label']}")
        print(f"tools: {', '.join(man['tools']) or 'none'}")
        print(f"options: grain={opt['grain']} stack={opt['stack']} "
              f"exclude_libraries={opt['exclude_libraries']}")
        print(f"run: {man['total_instructions']} instructions, "
              f"exit {man['exit_code']}, {len(man['kernels'])} kernels, "
              f"{len(man['routines'])} routines")
        for name, s in sorted(man["streams"].items()):
            print(f"stream {name}: {s['rows']} rows in {s['pages']} pages")
        if getattr(args, "estimate", False):
            print(_estimate_lines(man))
        if stats:
            # touch every page so the counters reflect a full replay pass
            for name, s in sorted(man["streams"].items()):
                for index in range(s["pages"]):
                    reader.page(name, index, s["stride"])
            print(reader.format_stats())
    return 0


def _fmt_bytes(n: int) -> str:
    for unit, scale in (("G", 1 << 30), ("M", 1 << 20), ("K", 1 << 10)):
        if n >= scale:
            return f"{n / scale:.1f}{unit}"
    return f"{n}B"


def _estimate_lines(man: dict) -> str:
    """The ``capture info --estimate`` block: decoded footprint and the
    projected peak replay memory of both replay tiers.

    Pages decode to int64 columns, so a stream's uncompressed size is
    ``rows * stride * 8``; the in-memory replay peak is the sum over all
    streams (the unbounded page cache retains every decoded page), while
    the streaming tier only ever holds a handful of pages plus carry
    state, so its floor is a small multiple of the largest single page.
    """
    total = 0
    largest_page = 0
    lines = []
    for name, s in sorted(man["streams"].items()):
        rows, pages, stride = s["rows"], s["pages"], s["stride"]
        nbytes = rows * stride * 8
        total += nbytes
        if pages:
            largest_page = max(largest_page,
                               -(-rows // pages) * stride * 8)
        lines.append(f"  stream {name}: {nbytes:,} B decoded")
    floor = 4 * largest_page
    suggested = max(floor, 1 << 20)
    lines.insert(0, "estimate:")
    lines.append(f"  uncompressed pages: {total:,} B total, largest "
                 f"page ≈ {largest_page:,} B")
    lines.append(f"  projected peak replay memory: in-memory ≈ "
                 f"{total:,} B ({_fmt_bytes(total)}); streaming ≥ "
                 f"{floor:,} B ({_fmt_bytes(floor)})")
    lines.append(f"  suggested: --mem-limit {_fmt_bytes(suggested)}")
    return "\n".join(lines)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="tquad",
        description="tQUAD reproduction: temporal memory bandwidth analysis")
    sub = parser.add_subparsers(dest="command", required=True)

    def common(p: argparse.ArgumentParser) -> None:
        p.add_argument("--budget", type=int, default=200_000_000,
                       help="instruction budget (runaway guard)")

    def observability(p: argparse.ArgumentParser) -> None:
        p.add_argument("--trace-out", metavar="PATH",
                       help="write a Chrome trace-event JSON of the run "
                            "(checkpoint/replay/drain/merge spans; open in "
                            "Perfetto or chrome://tracing) and print a "
                            "timing summary to stderr")
        p.add_argument("--deadline", type=float, default=30.0,
                       metavar="SECONDS",
                       help="with --jobs N: seconds a worker may go without "
                            "progress before it is declared hung and its "
                            "shard is retried elsewhere (default: 30)")

    p = sub.add_parser("profile", help="profile a MiniC (.mc) or asm (.s) "
                                       "program")
    p.add_argument("file")
    p.add_argument("--tool", choices=("tquad", "quad", "gprof"),
                   default="tquad")
    p.add_argument("--interval", type=int, default=5000,
                   help="time slice interval in instructions")
    p.add_argument("--top", type=int, default=None)
    p.add_argument("--exclude-stack", action="store_true",
                   help="show the stack-excluded view in figures")
    p.add_argument("--exclude-libs", action="store_true",
                   help="drop accesses made inside library routines")
    p.add_argument("--writes", action="store_true",
                   help="figures show writes instead of reads")
    p.add_argument("--figure", action="store_true",
                   help="render temporal bandwidth strips")
    p.add_argument("--phases", action="store_true")
    p.add_argument("--callgraph", action="store_true",
                   help="with --tool gprof: print the call-graph section")
    p.add_argument("--json", metavar="PATH",
                   help="also write the report as JSON")
    p.add_argument("--shadow", default="paged", metavar="{paged,legacy}",
                   help="with --tool quad: shadow memory implementation "
                        "(default: paged)")
    p.add_argument("--stats", action="store_true",
                   help="with --tool quad: print shadow footprint stats")
    p.add_argument("--jobs", type=int, default=1,
                   help="profile with N worker processes via checkpointed "
                        "sharded replay; results are byte-identical to the "
                        "serial run (--budget is not applied when N > 1)")
    p.add_argument("--cache", action="store_true",
                   help="with --tool tquad: also simulate the data cache")
    p.add_argument("--imix", action="store_true",
                   help="with --tool tquad: also print the instruction mix")
    p.add_argument("--capture-out", metavar="PATH",
                   help="record a replayable capture of this run (the "
                        "printed report is itself replayed from it)")
    p.add_argument("--from-capture", metavar="PATH",
                   help="replay the report from a capture file instead "
                        "of executing the program")
    p.add_argument("--no-page-cache", action="store_true",
                   help="skip the capture's decoded-page sidecar")
    p.add_argument("--mem-limit", metavar="BYTES", default=None,
                   help="hard ceiling on replay working memory (accepts "
                        "K/M/G suffixes); carry state spills to disk — "
                        "requires --from-capture or --capture-out")
    p.add_argument("--approx", type=float, default=None, metavar="RATE",
                   help="sampled approximate tQUAD replay keeping RATE of "
                        "records (0 < RATE < 1), with reported 95%% error "
                        "bounds and a count-min heavy-hitter table")
    p.add_argument("--approx-seed", type=int, default=0, metavar="N",
                   help="deterministic sampling seed for --approx "
                        "(default: 0)")
    common(p)
    observability(p)
    p.set_defaults(fn=_cmd_profile)

    p = sub.add_parser("wcet", help="static WCET bound of a routine")
    p.add_argument("file")
    p.add_argument("routine")
    p.add_argument("--bounds", metavar="R:N,N,...", action="append",
                   default=[],
                   help="loop bounds per routine, source order "
                        "(repeatable), e.g. --bounds main:10,20")
    p.set_defaults(fn=_cmd_wcet)

    p = sub.add_parser("wfs", help="run the hArtes-wfs case study")
    p.add_argument("--preset", choices=sorted(PRESETS), default="tiny")
    p.add_argument("--interval", type=int, default=5000)
    p.add_argument("--top", type=int, default=12)
    p.add_argument("--exclude-stack", action="store_true")
    p.add_argument("--writes", action="store_true")
    p.add_argument("--figure", action="store_true")
    p.add_argument("--phases", action="store_true")
    p.add_argument("--report", metavar="PATH",
                   help="write the full case-study report as markdown")
    p.add_argument("--jobs", type=int, default=1,
                   help="profile with N worker processes (exact results)")
    p.add_argument("--capture-out", metavar="PATH",
                   help="record a replayable capture of the case study")
    p.add_argument("--from-capture", metavar="PATH",
                   help="replay the case study from a capture file")
    p.add_argument("--no-page-cache", action="store_true",
                   help="skip the capture's decoded-page sidecar")
    observability(p)
    p.set_defaults(fn=_cmd_wfs)

    from .apps.registry import GUEST_APPS

    p = sub.add_parser("guest",
                       help="profile a registered guest workload "
                            "(hash join, BFS, stencil, codec, wfs)")
    p.add_argument("app", choices=sorted(GUEST_APPS),
                   help="which registered guest to run")
    p.add_argument("--preset", default="tiny",
                   help="guest preset name (default: tiny)")
    p.add_argument("--interval", type=int, default=None,
                   help="time slice interval in instructions "
                        "(default: the guest's registered interval)")
    p.add_argument("--top", type=int, default=12)
    p.add_argument("--exclude-stack", action="store_true")
    p.add_argument("--writes", action="store_true")
    p.add_argument("--figure", action="store_true")
    p.add_argument("--phases", action="store_true")
    p.add_argument("--jobs", type=int, default=1,
                   help="profile with N worker processes (exact results)")
    p.add_argument("--capture-out", metavar="PATH",
                   help="record a replayable capture of this guest run")
    p.add_argument("--from-capture", metavar="PATH",
                   help="replay the guest from a capture file (the "
                        "manifest label must match this app and preset)")
    p.add_argument("--no-page-cache", action="store_true",
                   help="skip the capture's decoded-page sidecar")
    observability(p)
    p.set_defaults(fn=_cmd_guest)

    p = sub.add_parser("sweep",
                       help="batched re-analysis: one capture pass fills "
                            "an interval × stack × library config grid")
    p.add_argument("file")
    p.add_argument("--intervals", required=True, metavar="N,N,...",
                   help="comma-separated slice intervals (the grid's first "
                        "axis); the capture grain is their gcd")
    p.add_argument("--stacks", default="both",
                   metavar="{both,include,exclude},...",
                   help="stack policies to sweep (default: both)")
    p.add_argument("--libs", default="include",
                   metavar="{include,exclude},...",
                   help="library-accounting modes to sweep "
                        "(default: include)")
    p.add_argument("--json", metavar="PATH",
                   help="write the whole grid as one JSON artifact")
    p.add_argument("--capture-out", metavar="PATH",
                   help="also persist the capture the sweep ran from")
    p.add_argument("--from-capture", metavar="PATH",
                   help="sweep an existing capture instead of executing "
                        "the program")
    p.add_argument("--label", default="sweep",
                   help="free-form label stored in the capture manifest")
    p.add_argument("--stats", action="store_true",
                   help="print capture-reader decode/cache counters to "
                        "stderr")
    p.add_argument("--no-page-cache", action="store_true",
                   help="skip the capture's decoded-page sidecar")
    p.add_argument("--mem-limit", metavar="BYTES", default=None,
                   help="hard ceiling on sweep working memory (accepts "
                        "K/M/G suffixes); carry tables spill to disk and "
                        "merge back exactly")
    p.add_argument("--approx", type=float, default=None, metavar="RATE",
                   help="Bernoulli-sample the record streams at RATE "
                        "(0 < RATE < 1); every cell's counters are "
                        "1/RATE-scaled estimates with a reported bound")
    p.add_argument("--approx-seed", type=int, default=0, metavar="N",
                   help="deterministic sampling seed for --approx "
                        "(default: 0)")
    common(p)
    observability(p)
    p.set_defaults(fn=_cmd_sweep)

    p = sub.add_parser("capture",
                       help="record or inspect execution captures "
                            "(capture once, analyze many)")
    csub = p.add_subparsers(dest="capture_command", required=True)
    cp = csub.add_parser("run", help="execute a program once, recording "
                                     "replayable capture streams")
    cp.add_argument("file")
    cp.add_argument("--out", required=True, metavar="PATH",
                    help="capture file to write")
    cp.add_argument("--interval", type=int, default=5000,
                    help="capture grain in instructions; tQUAD replays "
                         "accept any multiple of it")
    cp.add_argument("--tools", default="tquad,gprof,quad",
                    help="comma-separated streams to record "
                         "(default: tquad,gprof,quad)")
    cp.add_argument("--exclude-libs", action="store_true",
                    help="drop accesses made inside library routines")
    cp.add_argument("--label", default="",
                    help="free-form label stored in the manifest")
    common(cp)
    observability(cp)
    cp.set_defaults(fn=_cmd_capture_run)
    cp = csub.add_parser("info", help="print a capture's manifest summary")
    cp.add_argument("file")
    cp.add_argument("--estimate", action="store_true",
                    help="also print uncompressed page bytes and the "
                         "projected peak replay memory of the in-memory "
                         "and streaming (--mem-limit) tiers")
    cp.add_argument("--stats", action="store_true",
                    help="decode every page and print the reader's "
                         "decode/cache counters (builds or reuses the "
                         "page-cache sidecar)")
    cp.add_argument("--no-page-cache", action="store_true",
                    help="with --stats: skip the decoded-page sidecar")
    cp.set_defaults(fn=_cmd_capture_info)

    p = sub.add_parser("corpus",
                       help="the capture-corpus regression fleet: capture "
                            "every roster guest once, replay all tools, "
                            "diff against golden fixtures")
    csub = p.add_subparsers(dest="corpus_command", required=True)

    def corpus_common(cp: argparse.ArgumentParser) -> None:
        cp.add_argument("--store", default=".tquad-corpus", metavar="DIR",
                        help="content-addressed capture store (safe to "
                             "delete; default: .tquad-corpus)")
        cp.add_argument("--nightly", action="store_true",
                        help="include the nightly tier (also enabled by "
                             "TQUAD_NIGHTLY=1)")
        cp.add_argument("--only", metavar="ENTRY", default=None,
                        help="restrict to one roster entry by name")
        cp.add_argument("--report", metavar="PATH", default=None,
                        help="write the machine-readable fleet report "
                             "JSON")
        cp.add_argument("--jobs", type=int, default=1,
                        help="fan roster entries onto N supervised worker "
                             "processes (crash/hang recovery included); "
                             "artifacts and the canonical report are "
                             "byte-identical to --jobs 1")
        cp.add_argument("--no-page-cache", action="store_true",
                        help="skip the decoded-page sidecars (replays "
                             "re-inflate every page)")
        cp.add_argument("--mem-limit", metavar="BYTES", default=None,
                        help="replay every entry under a hard working-"
                             "memory ceiling (K/M/G suffixes); artifacts "
                             "stay byte-identical")
        observability(cp)

    cp = csub.add_parser("run", help="capture + replay the fleet, no "
                                     "golden comparison")
    cp.add_argument("--out-dir", metavar="DIR", default=None,
                    help="also write each entry's artifact tree here")
    cp.add_argument("--approx", type=float, default=None, metavar="RATE",
                    help="also render sampled tquad_approx.* artifacts "
                         "at RATE (run mode only; never golden-diffed)")
    cp.add_argument("--approx-seed", type=int, default=0, metavar="N",
                    help="deterministic sampling seed for --approx")
    corpus_common(cp)
    cp.set_defaults(fn=_cmd_corpus)
    cp = csub.add_parser("verify", help="byte-diff fleet artifacts "
                                        "against the golden tree "
                                        "(exit 1 on any drift)")
    cp.add_argument("--golden", default="tests/golden/corpus",
                    metavar="DIR", help="golden fixture tree")
    corpus_common(cp)
    cp.set_defaults(fn=_cmd_corpus)
    cp = csub.add_parser("update", help="rewrite the golden tree and "
                                        "prune stale fixtures")
    cp.add_argument("--golden", default="tests/golden/corpus",
                    metavar="DIR", help="golden fixture tree")
    corpus_common(cp)
    cp.set_defaults(fn=_cmd_corpus)

    p = sub.add_parser("disasm", help="disassemble a program")
    p.add_argument("file")
    p.set_defaults(fn=_cmd_disasm)

    p = sub.add_parser("run", help="run a program uninstrumented")
    p.add_argument("file")
    common(p)
    p.set_defaults(fn=_cmd_run)

    p = sub.add_parser("cluster", help="QDU-based task clustering")
    p.add_argument("file")
    p.add_argument("--clusters", type=int, default=4)
    common(p)
    p.set_defaults(fn=_cmd_cluster)
    return parser


def main(argv: list[str] | None = None) -> int:
    # argparse exits via SystemExit (code 2 on usage errors); normalize to a
    # returned int so every failure mode reaches callers the same way.
    try:
        args = build_parser().parse_args(argv)
    except SystemExit as exc:
        code = exc.code
        return code if isinstance(code, int) else (0 if code is None else 1)
    return args.fn(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
