"""In-memory guest filesystem.

The hArtes wfs application runs "off-line": audio comes from files rather
than devices (paper §V).  The guest therefore needs open/read/write/seek.
``GuestFS`` is a flat, in-memory namespace of byte files shared between the
host (which seeds inputs and inspects outputs) and the guest (which accesses
it through syscalls).
"""

from __future__ import annotations

from dataclasses import dataclass, field

O_RDONLY = 0
O_WRONLY = 1  #: create/truncate for writing

#: Reserved descriptors.
FD_STDIN = 0
FD_STDOUT = 1
FD_STDERR = 2
_FIRST_FILE_FD = 3


@dataclass
class _OpenFile:
    name: str
    pos: int = 0
    writable: bool = False


@dataclass
class GuestFS:
    """A tiny in-memory filesystem: path -> bytearray."""

    files: dict[str, bytearray] = field(default_factory=dict)

    def __post_init__(self) -> None:
        self._fds: dict[int, _OpenFile] = {}
        self._next_fd = _FIRST_FILE_FD

    # -- host-side API --------------------------------------------------------
    def put(self, name: str, data: bytes) -> None:
        """Create or replace a file from the host side."""
        self.files[name] = bytearray(data)

    def get(self, name: str) -> bytes:
        """Read a file's full contents from the host side."""
        return bytes(self.files[name])

    def exists(self, name: str) -> bool:
        return name in self.files

    # -- guest-side API (driven by syscalls) -----------------------------------
    def open(self, name: str, flags: int) -> int:
        """Open ``name``; returns a descriptor, or -1 on failure."""
        if flags == O_RDONLY:
            if name not in self.files:
                return -1
        elif flags == O_WRONLY:
            self.files[name] = bytearray()
        else:
            return -1
        fd = self._next_fd
        self._next_fd += 1
        self._fds[fd] = _OpenFile(name=name, writable=(flags == O_WRONLY))
        return fd

    def close(self, fd: int) -> int:
        return 0 if self._fds.pop(fd, None) is not None else -1

    def read(self, fd: int, n: int) -> bytes | None:
        """Read up to ``n`` bytes; ``None`` signals a bad descriptor."""
        of = self._fds.get(fd)
        if of is None or n < 0:
            return None
        data = self.files[of.name]
        chunk = bytes(data[of.pos:of.pos + n])
        of.pos += len(chunk)
        return chunk

    def write(self, fd: int, data: bytes) -> int:
        """Write at the current position (extending the file); -1 on error."""
        of = self._fds.get(fd)
        if of is None or not of.writable:
            return -1
        buf = self.files[of.name]
        end = of.pos + len(data)
        if end > len(buf):
            buf.extend(b"\0" * (end - len(buf)))
        buf[of.pos:end] = data
        of.pos = end
        return len(data)

    def seek(self, fd: int, pos: int) -> int:
        of = self._fds.get(fd)
        if of is None or pos < 0:
            return -1
        of.pos = pos
        return pos

    def size(self, fd: int) -> int:
        of = self._fds.get(fd)
        if of is None:
            return -1
        return len(self.files[of.name])

    def open_count(self) -> int:
        """Number of currently open descriptors (leak checking in tests)."""
        return len(self._fds)
