"""VM error types."""

from __future__ import annotations


class VMError(Exception):
    """Base class for guest execution faults."""

    def __init__(self, message: str, *, pc: int | None = None,
                 icount: int | None = None):
        self.pc = pc
        self.icount = icount
        ctx = ""
        if pc is not None:
            ctx += f" at pc={pc:#x}"
        if icount is not None:
            ctx += f" icount={icount}"
        super().__init__(message + ctx)


class MemoryFault(VMError):
    """Out-of-range or null-page data access."""


class IllegalInstruction(VMError):
    """Jump outside the code segment or malformed instruction."""


class ArithmeticFault(VMError):
    """Division by zero and friends."""


class SyscallError(VMError):
    """Malformed syscall (bad number or arguments)."""


class InstructionBudgetExceeded(VMError):
    """The run exceeded ``max_instructions`` (runaway-guest backstop)."""
