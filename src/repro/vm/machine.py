"""The virtual machine: a closure-compiling interpreter for the repro ISA.

Executing guest code goes through a *code cache*: the first time a program
counter is reached, the instruction is compiled to a Python closure and the
closure is stored in ``self.code``.  Subsequent executions dispatch straight
to the closure.  This mirrors Pin's JIT + code-cache organisation (paper
§IV-B) and is also what makes instrumentation cheap to express: a registered
``instrument_hook`` gets to wrap the freshly compiled closure with analysis
calls exactly once per *static* instruction.

Contract for ``instrument_hook(index, ins, base_fn) -> fn``:

* ``base_fn`` implements the bare instruction, **without** the predication
  guard; the hook (the Pin engine) is responsible for honouring
  ``ins.pred`` — this is what lets it implement Pin's
  ``INS_InsertPredicatedCall`` semantics (analysis skipped when the guard is
  false).  When no hook is installed the machine applies the guard itself.
* closures take the current instruction index and return the next one;
  returning ``-1`` halts the machine.

On top of the per-instruction tier sits the **superblock** tier
(:mod:`repro.vm.superblock`, enabled by default via ``jit=True``):
straight-line runs are fused into one generated function per block, with one
dispatch and one ``icount`` update per block.  In fused mode the cached
functions *advance ``icount`` themselves*; the run loop only dispatches.
The per-instruction tier remains in use (a) when ``jit=False``, (b) when a
raw ``instrument_hook`` is installed without a ``block_instrumenter`` that
can describe its analysis needs for inlining, and (c) for the exact-budget
tail, where the remaining allowance is smaller than the next block.
"""

from __future__ import annotations

import math
import struct
from typing import Callable

from ..isa import opcodes as oc
from ..isa.instruction import NO_PRED, Instr
from ..isa.registers import RA, SP
from .errors import (ArithmeticFault, IllegalInstruction,
                     InstructionBudgetExceeded, MemoryFault, VMError)
from .filesystem import GuestFS
from .layout import (CODE_BASE, DATA_BASE, DEFAULT_MEM_SIZE, HEAP_BASE,
                     HEAP_STACK_GUARD, NULL_GUARD, index_to_pc)
from .program import Program
from .syscalls import SyscallHandler

_I64_MIN = -(1 << 63)
_I64_MAX = (1 << 63) - 1
_MASK64 = (1 << 64) - 1

StepFn = Callable[[int], int]

_unpack_f64 = struct.Struct("<d").unpack_from
_pack_f64 = struct.Struct("<d").pack_into


def _wrap(v: int) -> int:
    """Wrap a Python int to signed 64-bit two's complement."""
    if _I64_MIN <= v <= _I64_MAX:
        return v
    return ((v - _I64_MIN) & _MASK64) + _I64_MIN


class Machine:
    """One guest machine instance executing a :class:`Program`."""

    __slots__ = (
        "program", "instrs", "x", "f", "mem", "mem_size", "fs", "stdout",
        "code", "pc_index", "icount", "halted", "exit_code", "brk",
        "syscall", "instrument_hook", "compile_count", "jit",
        "block_instrumenter", "code_len", "_compiled", "_tail_cache",
    )

    def __init__(self, program: Program, *, mem_size: int = DEFAULT_MEM_SIZE,
                 fs: GuestFS | None = None, jit: bool = True):
        if mem_size < HEAP_BASE + (1 << 20):
            raise ValueError("mem_size too small for the standard layout")
        self.program = program
        self.instrs = program.instrs
        self.x = [0] * 32
        self.f = [0.0] * 32
        self.mem = bytearray(mem_size)
        self.mem_size = mem_size
        data_end = DATA_BASE + len(program.data)
        if data_end > HEAP_BASE:
            raise ValueError("data segment overflows into the heap")
        self.mem[DATA_BASE:data_end] = program.data
        self.fs = fs if fs is not None else GuestFS()
        self.stdout = bytearray()
        self.code: list[StepFn | None] = [None] * len(program.instrs)
        self.pc_index = program.entry
        self.icount = 0
        self.halted = False
        self.exit_code: int | None = None
        self.brk = HEAP_BASE
        self.syscall = SyscallHandler(self)
        self.instrument_hook: Callable[[int, Instr, StepFn], StepFn] | None = None
        self.compile_count = 0
        self.jit = jit
        #: Optional block-plan provider (the Pin engine) consulted by the
        #: superblock compiler; see :mod:`repro.vm.superblock`.
        self.block_instrumenter = None
        #: Per-head-index fused-block lengths (0 = not a materialized head).
        self.code_len = [0] * len(program.instrs)
        # compile_count counts *distinct static instructions* compiled,
        # regardless of tier (and of block overlap), so it stays comparable
        # between fused and unfused runs.
        self._compiled = bytearray(len(program.instrs))
        self._tail_cache: dict[int, StepFn] = {}
        # ABI entry state: sp 16-byte aligned just below the stack top.
        self.x[SP] = mem_size - 64

    # ------------------------------------------------------------------ run
    def run(self, max_instructions: int | None = None) -> int:
        """Execute until the guest exits.  Returns the guest exit code.

        ``max_instructions`` bounds the run *exactly*: at most that many
        instructions retire, and :class:`InstructionBudgetExceeded` is raised
        before the first instruction past the bound would execute.  A budget
        of 0 therefore raises immediately; a negative budget is a
        ``ValueError``.
        """
        if self.halted:
            raise VMError("machine already halted")
        if max_instructions is not None and max_instructions < 0:
            raise ValueError("max_instructions must be >= 0")
        # Fused (superblock) execution is used whenever it can preserve
        # semantics: always for bare runs, and for instrumented runs when the
        # instrumenter exposes a block plan.  A raw instrument_hook without a
        # plan provider needs per-instruction dispatch.
        fused = self.jit and (self.instrument_hook is None
                              or self.block_instrumenter is not None)
        code = self.code
        pc = self.pc_index
        icount = self.icount
        limit = (icount + max_instructions
                 if max_instructions is not None else None)
        try:
            if fused and limit is None:
                while pc >= 0:
                    fn = code[pc]
                    if fn is None:
                        fn = self._materialize_block(pc)
                    pc = fn(pc)
            elif fused:
                code_len = self.code_len
                while pc >= 0:
                    fn = code[pc]
                    if fn is None:
                        fn = self._materialize_block(pc)
                    if self.icount + code_len[pc] > limit:
                        pc = self._run_tail(pc, limit)
                        if pc >= 0:
                            raise InstructionBudgetExceeded(
                                f"exceeded budget of {max_instructions} "
                                "instructions",
                                pc=index_to_pc(pc), icount=self.icount)
                        continue
                    pc = fn(pc)
            elif limit is None:
                while pc >= 0:
                    fn = code[pc]
                    if fn is None:
                        fn = self._materialize(pc)
                    self.icount = icount = icount + 1
                    pc = fn(pc)
            else:
                while pc >= 0:
                    if icount >= limit:
                        raise InstructionBudgetExceeded(
                            f"exceeded budget of {max_instructions} "
                            "instructions",
                            pc=index_to_pc(pc), icount=icount)
                    fn = code[pc]
                    if fn is None:
                        fn = self._materialize(pc)
                    self.icount = icount = icount + 1
                    pc = fn(pc)
        except VMError as err:
            self.halted = True
            self.pc_index = pc
            if err.icount is None:
                err.icount = self.icount
            raise
        except IndexError as err:
            self.halted = True
            raise IllegalInstruction(
                f"jump outside code segment ({err})",
                pc=index_to_pc(pc), icount=self.icount) from err
        self.halted = True
        self.pc_index = pc
        return self.exit_code if self.exit_code is not None else 0

    def _run_tail(self, pc: int, limit: int) -> int:
        """Per-instruction execution for the end of a budgeted fused run.

        Entered when the next superblock could overrun the budget; steps
        single instructions (through the classic tier, so instrumentation
        still applies) until the guest halts or the budget is spent.
        Returns the next pc — negative if the guest halted in time.
        """
        cache = self._tail_cache
        while pc >= 0 and self.icount < limit:
            fn = cache.get(pc)
            if fn is None:
                fn = self._compose_step(pc)
                cache[pc] = fn
                self._mark_compiled(pc, pc + 1)
            self.icount += 1
            pc = fn(pc)
        return pc

    # ------------------------------------------------------- checkpointing
    def snapshot(self):
        """Capture guest-visible state as a picklable snapshot.

        See :mod:`repro.vm.snapshot`.  Valid at any instruction boundary:
        before the first instruction, at an exact-budget pause, or after
        the guest exits.
        """
        from .snapshot import capture
        return capture(self)

    def restore(self, snap) -> None:
        """Replace guest-visible state with ``snap`` (in place).

        Code caches survive — they depend only on the program.  A machine
        restored from a mid-run snapshot can continue with ``run()`` after
        this call (``halted`` is taken from the snapshot).
        """
        from .snapshot import restore
        restore(self, snap)

    # ----------------------------------------------------------- utilities
    def pc_byte(self) -> int:
        """The current program counter as a byte address."""
        return index_to_pc(self.pc_index)

    def stdout_text(self) -> str:
        return self.stdout.decode("latin-1")

    def check_range(self, addr: int, size: int) -> None:
        """Fault unless ``[addr, addr+size)`` is a valid data range."""
        if addr < NULL_GUARD or addr + size > self.mem_size or size < 0:
            raise MemoryFault(f"bad access [{addr:#x}, +{size})",
                              pc=self.pc_byte(), icount=self.icount)

    def sbrk(self, n: int) -> int:
        """Grow (or query, n=0) the heap break.  Returns old break or -1."""
        old = self.brk
        new = old + n
        if new < HEAP_BASE or new > self.x[SP] - HEAP_STACK_GUARD:
            return -1
        self.brk = new
        return old

    def read_i64(self, addr: int) -> int:
        """Host-side typed read (testing/inspection)."""
        self.check_range(addr, 8)
        return int.from_bytes(self.mem[addr:addr + 8], "little", signed=True)

    def write_i64(self, addr: int, value: int) -> None:
        self.check_range(addr, 8)
        self.mem[addr:addr + 8] = (value & _MASK64).to_bytes(8, "little")

    def read_f64(self, addr: int) -> float:
        self.check_range(addr, 8)
        return _unpack_f64(self.mem, addr)[0]

    def write_f64(self, addr: int, value: float) -> None:
        self.check_range(addr, 8)
        _pack_f64(self.mem, addr, value)

    def read_bytes(self, addr: int, size: int) -> bytes:
        self.check_range(addr, size)
        return bytes(self.mem[addr:addr + size])

    def write_bytes(self, addr: int, data: bytes) -> None:
        self.check_range(addr, len(data))
        self.mem[addr:addr + len(data)] = data

    # ------------------------------------------------------- compilation
    def _materialize(self, index: int) -> StepFn:
        fn = self._compose_step(index)
        self.code[index] = fn
        self._mark_compiled(index, index + 1)
        return fn

    def _materialize_block(self, index: int) -> StepFn:
        from .superblock import build_block
        fn, indices = build_block(self, index)
        self.code[index] = fn
        # traces follow jumps, so their instructions need not be contiguous;
        # code_len is the worst-case retire count used by the budget check
        self.code_len[index] = len(indices)
        comp = self._compiled
        fresh = 0
        for j in indices:
            if not comp[j]:
                comp[j] = 1
                fresh += 1
        self.compile_count += fresh
        return fn

    def _mark_compiled(self, lo: int, hi: int) -> None:
        comp = self._compiled
        fresh = 0
        for j in range(lo, hi):
            if not comp[j]:
                comp[j] = 1
                fresh += 1
        self.compile_count += fresh

    def _compose_step(self, index: int) -> StepFn:
        """Per-instruction tier: bare closure + hook or predication guard."""
        ins = self.instrs[index]
        base = self._compile_instr(index, ins)
        hook = self.instrument_hook
        if hook is not None:
            return hook(index, ins, base)
        if ins.pred != NO_PRED:
            x = self.x
            pred = ins.pred
            nxt = index + 1

            def fn(pc, _base=base, _x=x, _pred=pred, _nxt=nxt):
                return _base(pc) if _x[_pred] else _nxt
            return fn
        return base

    def _compile_instr(self, i: int, ins: Instr) -> StepFn:
        """Compile one instruction to a closure (no predication guard)."""
        op = ins.op
        x, f, mem = self.x, self.f, self.mem
        rd, rs1, rs2, imm = ins.rd, ins.rs1, ins.rs2, ins.imm
        nxt = i + 1
        memsz = self.mem_size
        W = _wrap

        def fault(addr: int, size: int) -> MemoryFault:
            return MemoryFault(f"bad access [{addr:#x}, +{size})",
                               pc=index_to_pc(i))

        # --- integer register-register ALU -------------------------------
        if op == oc.ADD:
            if rd == 0:
                return lambda pc: nxt
            return lambda pc: (x.__setitem__(rd, W(x[rs1] + x[rs2])), nxt)[1]
        if op == oc.SUB:
            if rd == 0:
                return lambda pc: nxt
            return lambda pc: (x.__setitem__(rd, W(x[rs1] - x[rs2])), nxt)[1]
        if op == oc.MUL:
            if rd == 0:
                return lambda pc: nxt
            return lambda pc: (x.__setitem__(rd, W(x[rs1] * x[rs2])), nxt)[1]
        if op in (oc.DIV, oc.REM):
            is_div = op == oc.DIV

            def step(pc):
                a, b = x[rs1], x[rs2]
                if b == 0:
                    raise ArithmeticFault("division by zero",
                                          pc=index_to_pc(i))
                q = abs(a) // abs(b)
                if (a < 0) != (b < 0):
                    q = -q
                if rd:
                    x[rd] = W(q) if is_div else W(a - b * q)
                return nxt
            return step
        if op == oc.AND:
            if rd == 0:
                return lambda pc: nxt
            return lambda pc: (x.__setitem__(rd, x[rs1] & x[rs2]), nxt)[1]
        if op == oc.OR:
            if rd == 0:
                return lambda pc: nxt
            return lambda pc: (x.__setitem__(rd, x[rs1] | x[rs2]), nxt)[1]
        if op == oc.XOR:
            if rd == 0:
                return lambda pc: nxt
            return lambda pc: (x.__setitem__(rd, x[rs1] ^ x[rs2]), nxt)[1]
        if op == oc.SLL:
            if rd == 0:
                return lambda pc: nxt
            return lambda pc: (
                x.__setitem__(rd, W(x[rs1] << (x[rs2] & 63))), nxt)[1]
        if op == oc.SRL:
            if rd == 0:
                return lambda pc: nxt
            return lambda pc: (
                x.__setitem__(rd, W((x[rs1] & _MASK64) >> (x[rs2] & 63))),
                nxt)[1]
        if op == oc.SRA:
            if rd == 0:
                return lambda pc: nxt
            return lambda pc: (
                x.__setitem__(rd, x[rs1] >> (x[rs2] & 63)), nxt)[1]
        if op == oc.SLT:
            if rd == 0:
                return lambda pc: nxt
            return lambda pc: (
                x.__setitem__(rd, 1 if x[rs1] < x[rs2] else 0), nxt)[1]
        if op == oc.SLE:
            if rd == 0:
                return lambda pc: nxt
            return lambda pc: (
                x.__setitem__(rd, 1 if x[rs1] <= x[rs2] else 0), nxt)[1]
        if op == oc.SEQ:
            if rd == 0:
                return lambda pc: nxt
            return lambda pc: (
                x.__setitem__(rd, 1 if x[rs1] == x[rs2] else 0), nxt)[1]
        if op == oc.SNE:
            if rd == 0:
                return lambda pc: nxt
            return lambda pc: (
                x.__setitem__(rd, 1 if x[rs1] != x[rs2] else 0), nxt)[1]

        # --- integer register-immediate ALU -------------------------------
        if op == oc.ADDI:
            if rd == 0:
                return lambda pc: nxt
            return lambda pc: (x.__setitem__(rd, W(x[rs1] + imm)), nxt)[1]
        if op == oc.MULI:
            if rd == 0:
                return lambda pc: nxt
            return lambda pc: (x.__setitem__(rd, W(x[rs1] * imm)), nxt)[1]
        if op == oc.ANDI:
            if rd == 0:
                return lambda pc: nxt
            return lambda pc: (x.__setitem__(rd, x[rs1] & imm), nxt)[1]
        if op == oc.ORI:
            if rd == 0:
                return lambda pc: nxt
            return lambda pc: (x.__setitem__(rd, x[rs1] | imm), nxt)[1]
        if op == oc.XORI:
            if rd == 0:
                return lambda pc: nxt
            return lambda pc: (x.__setitem__(rd, x[rs1] ^ imm), nxt)[1]
        if op == oc.SLLI:
            if rd == 0:
                return lambda pc: nxt
            sh = imm & 63
            return lambda pc: (x.__setitem__(rd, W(x[rs1] << sh)), nxt)[1]
        if op == oc.SRLI:
            if rd == 0:
                return lambda pc: nxt
            sh = imm & 63
            return lambda pc: (
                x.__setitem__(rd, W((x[rs1] & _MASK64) >> sh)), nxt)[1]
        if op == oc.SRAI:
            if rd == 0:
                return lambda pc: nxt
            sh = imm & 63
            return lambda pc: (x.__setitem__(rd, x[rs1] >> sh), nxt)[1]
        if op == oc.SLTI:
            if rd == 0:
                return lambda pc: nxt
            return lambda pc: (
                x.__setitem__(rd, 1 if x[rs1] < imm else 0), nxt)[1]
        if op == oc.LI:
            if rd == 0:
                return lambda pc: nxt
            return lambda pc: (x.__setitem__(rd, imm), nxt)[1]

        # --- floating point ------------------------------------------------
        if op == oc.FADD:
            return lambda pc: (f.__setitem__(rd, f[rs1] + f[rs2]), nxt)[1]
        if op == oc.FSUB:
            return lambda pc: (f.__setitem__(rd, f[rs1] - f[rs2]), nxt)[1]
        if op == oc.FMUL:
            return lambda pc: (f.__setitem__(rd, f[rs1] * f[rs2]), nxt)[1]
        if op == oc.FDIV:
            def step(pc):
                b = f[rs2]
                if b == 0.0:
                    f[rd] = math.inf if f[rs1] > 0 else (
                        -math.inf if f[rs1] < 0 else math.nan)
                else:
                    f[rd] = f[rs1] / b
                return nxt
            return step
        if op == oc.FMIN:
            return lambda pc: (f.__setitem__(rd, min(f[rs1], f[rs2])), nxt)[1]
        if op == oc.FMAX:
            return lambda pc: (f.__setitem__(rd, max(f[rs1], f[rs2])), nxt)[1]
        if op == oc.FNEG:
            return lambda pc: (f.__setitem__(rd, -f[rs1]), nxt)[1]
        if op == oc.FABS:
            return lambda pc: (f.__setitem__(rd, abs(f[rs1])), nxt)[1]
        if op == oc.FSQRT:
            def step(pc):
                v = f[rs1]
                f[rd] = math.sqrt(v) if v >= 0.0 else math.nan
                return nxt
            return step
        if op == oc.FSIN:
            sin = math.sin
            return lambda pc: (f.__setitem__(rd, sin(f[rs1])), nxt)[1]
        if op == oc.FCOS:
            cos = math.cos
            return lambda pc: (f.__setitem__(rd, cos(f[rs1])), nxt)[1]
        if op == oc.FMV:
            return lambda pc: (f.__setitem__(rd, f[rs1]), nxt)[1]
        if op == oc.FLI:
            fimm = float(imm)
            return lambda pc: (f.__setitem__(rd, fimm), nxt)[1]
        if op == oc.FEQ:
            if rd == 0:
                return lambda pc: nxt
            return lambda pc: (
                x.__setitem__(rd, 1 if f[rs1] == f[rs2] else 0), nxt)[1]
        if op == oc.FLT:
            if rd == 0:
                return lambda pc: nxt
            return lambda pc: (
                x.__setitem__(rd, 1 if f[rs1] < f[rs2] else 0), nxt)[1]
        if op == oc.FLE:
            if rd == 0:
                return lambda pc: nxt
            return lambda pc: (
                x.__setitem__(rd, 1 if f[rs1] <= f[rs2] else 0), nxt)[1]
        if op == oc.FCVTFI:
            return lambda pc: (f.__setitem__(rd, float(x[rs1])), nxt)[1]
        if op == oc.FCVTIF:
            def step(pc):
                v = f[rs1]
                if not math.isfinite(v):
                    raise ArithmeticFault("float->int of non-finite value",
                                          pc=index_to_pc(i))
                if rd:
                    x[rd] = W(int(v))
                return nxt
            return step

        # --- memory ----------------------------------------------------------
        if op in (oc.LD, oc.LW, oc.LWU, oc.LH, oc.LHU, oc.LB, oc.LBU):
            size = ins.info.mem_read
            signed = op in (oc.LD, oc.LW, oc.LH, oc.LB)
            from_bytes = int.from_bytes

            def step(pc):
                a = x[rs1] + imm
                if a < NULL_GUARD or a + size > memsz:
                    raise fault(a, size)
                if rd:
                    x[rd] = from_bytes(mem[a:a + size], "little",
                                       signed=signed)
                return nxt
            return step
        if op == oc.SD:
            def step(pc):
                a = x[rs1] + imm
                if a < NULL_GUARD or a + 8 > memsz:
                    raise fault(a, 8)
                mem[a:a + 8] = (x[rd] & _MASK64).to_bytes(8, "little")
                return nxt
            return step
        if op in (oc.SW, oc.SH, oc.SB):
            size = ins.info.mem_write
            mask = (1 << (8 * size)) - 1

            def step(pc):
                a = x[rs1] + imm
                if a < NULL_GUARD or a + size > memsz:
                    raise fault(a, size)
                mem[a:a + size] = (x[rd] & mask).to_bytes(size, "little")
                return nxt
            return step
        if op == oc.FLD:
            unpack = _unpack_f64

            def step(pc):
                a = x[rs1] + imm
                if a < NULL_GUARD or a + 8 > memsz:
                    raise fault(a, 8)
                f[rd] = unpack(mem, a)[0]
                return nxt
            return step
        if op == oc.FSD:
            pack = _pack_f64

            def step(pc):
                a = x[rs1] + imm
                if a < NULL_GUARD or a + 8 > memsz:
                    raise fault(a, 8)
                pack(mem, a, f[rd])
                return nxt
            return step
        if op == oc.PREFETCH:
            # A hint: touches no architectural state, but the profilers see it.
            return lambda pc: nxt

        # --- control flow -------------------------------------------------------
        if op in (oc.BEQ, oc.BNE, oc.BLT, oc.BGE, oc.BLE, oc.BGT):
            tgt = self._target_index(imm, i)
            if op == oc.BEQ:
                return lambda pc: tgt if x[rs1] == x[rs2] else nxt
            if op == oc.BNE:
                return lambda pc: tgt if x[rs1] != x[rs2] else nxt
            if op == oc.BLT:
                return lambda pc: tgt if x[rs1] < x[rs2] else nxt
            if op == oc.BGE:
                return lambda pc: tgt if x[rs1] >= x[rs2] else nxt
            if op == oc.BLE:
                return lambda pc: tgt if x[rs1] <= x[rs2] else nxt
            return lambda pc: tgt if x[rs1] > x[rs2] else nxt
        if op == oc.JAL:
            tgt = self._target_index(imm, i)
            retaddr = index_to_pc(i + 1)
            if rd == 0:
                return lambda pc: tgt
            return lambda pc: (x.__setitem__(rd, retaddr), tgt)[1]
        if op == oc.J:
            tgt = self._target_index(imm, i)
            return lambda pc: tgt
        if op == oc.JALR:
            retaddr = index_to_pc(i + 1)
            ninstr = len(self.instrs)

            def step(pc):
                t = (x[rs1] + imm - CODE_BASE) >> 4
                if not 0 <= t < ninstr:
                    raise IllegalInstruction(
                        f"jalr to invalid target {x[rs1] + imm:#x}",
                        pc=index_to_pc(i))
                if rd:
                    x[rd] = retaddr
                return t
            return step
        if op == oc.RET:
            ninstr = len(self.instrs)

            def step(pc):
                t = (x[RA] - CODE_BASE) >> 4
                if not 0 <= t < ninstr:
                    raise IllegalInstruction(
                        f"ret to invalid address {x[RA]:#x}",
                        pc=index_to_pc(i))
                return t
            return step

        # --- system -------------------------------------------------------------
        if op == oc.ECALL:
            syscall = self.syscall
            return lambda pc: nxt if syscall.call() else -1
        if op == oc.HALT:
            def step(pc):
                if self.exit_code is None:
                    self.exit_code = 0
                return -1
            return step
        if op == oc.NOP:
            return lambda pc: nxt

        raise IllegalInstruction(f"unimplemented opcode {ins.info.name}",
                                 pc=index_to_pc(i))

    def _target_index(self, imm: int, at: int) -> int:
        tgt = (imm - CODE_BASE) >> 4
        if not 0 <= tgt < len(self.instrs) or (imm - CODE_BASE) & 15:
            raise IllegalInstruction(
                f"branch target {imm:#x} outside code segment",
                pc=index_to_pc(at))
        return tgt


def run_program(program: Program, *, fs: GuestFS | None = None,
                mem_size: int = DEFAULT_MEM_SIZE,
                max_instructions: int | None = None,
                jit: bool = True) -> Machine:
    """Convenience: build a machine, run it to completion, return it."""
    m = Machine(program, fs=fs, mem_size=mem_size, jit=jit)
    m.run(max_instructions=max_instructions)
    return m
