"""Syscall layer (the "emulator" of the Pin architecture diagram).

System calls are requested with ``ecall``: the syscall number goes in ``a0``
and arguments in ``a1``–``a3`` (float arguments in ``fa0``).  Results come
back in ``a0``.  The set is deliberately minimal — just enough to run the
off-line WFS application and assorted test guests.
"""

from __future__ import annotations

import math
import struct
from typing import TYPE_CHECKING

from ..isa.registers import A_REGS
from .errors import SyscallError
from .filesystem import FD_STDERR, FD_STDOUT

if TYPE_CHECKING:  # pragma: no cover
    from .machine import Machine

A0, A1, A2, A3 = A_REGS[0], A_REGS[1], A_REGS[2], A_REGS[3]

SYS_EXIT = 0
SYS_OPEN = 1
SYS_CLOSE = 2
SYS_READ = 3
SYS_WRITE = 4
SYS_SBRK = 5
SYS_PRINT_INT = 6
SYS_PRINT_FLOAT = 7
SYS_PRINT_STR = 8
SYS_CLOCK = 9
SYS_SEEK = 10
SYS_FSIZE = 11

_MAX_CSTR = 4096


def read_cstring(machine: "Machine", addr: int) -> str:
    """Read a NUL-terminated string from guest memory."""
    mem = machine.mem
    end = mem.find(b"\0", addr, addr + _MAX_CSTR)
    if end < 0:
        raise SyscallError("unterminated guest string", pc=machine.pc_byte())
    return bytes(mem[addr:end]).decode("latin-1")


class SyscallHandler:
    """Dispatches guest ``ecall`` instructions."""

    def __init__(self, machine: "Machine"):
        self.machine = machine
        self.count = 0  #: total syscalls serviced

    def call(self) -> bool:
        """Service one syscall.  Returns False when the guest exited."""
        m = self.machine
        x = m.x
        num = x[A0]
        self.count += 1
        if num == SYS_EXIT:
            m.exit_code = x[A1]
            return False
        if num == SYS_WRITE:
            fd, buf, n = x[A1], x[A2], x[A3]
            m.check_range(buf, n)
            data = bytes(m.mem[buf:buf + n])
            if fd in (FD_STDOUT, FD_STDERR):
                m.stdout.extend(data)
                x[A0] = n
            else:
                x[A0] = m.fs.write(fd, data)
            return True
        if num == SYS_READ:
            fd, buf, n = x[A1], x[A2], x[A3]
            m.check_range(buf, n)
            chunk = m.fs.read(fd, n)
            if chunk is None:
                x[A0] = -1
            else:
                m.mem[buf:buf + len(chunk)] = chunk
                x[A0] = len(chunk)
            return True
        if num == SYS_OPEN:
            path = read_cstring(m, x[A1])
            x[A0] = m.fs.open(path, x[A2])
            return True
        if num == SYS_CLOSE:
            x[A0] = m.fs.close(x[A1])
            return True
        if num == SYS_SBRK:
            x[A0] = m.sbrk(x[A1])
            return True
        if num == SYS_PRINT_INT:
            m.stdout.extend(str(x[A1]).encode())
            return True
        if num == SYS_PRINT_FLOAT:
            v = m.f[0]
            text = f"{v:.6f}" if math.isfinite(v) else str(v)
            m.stdout.extend(text.encode())
            return True
        if num == SYS_PRINT_STR:
            m.stdout.extend(read_cstring(m, x[A1]).encode("latin-1"))
            return True
        if num == SYS_CLOCK:
            x[A0] = m.icount
            return True
        if num == SYS_SEEK:
            x[A0] = m.fs.seek(x[A1], x[A2])
            return True
        if num == SYS_FSIZE:
            x[A0] = m.fs.size(x[A1])
            return True
        raise SyscallError(f"unknown syscall {num}", pc=m.pc_byte())


def pack_f64(value: float) -> bytes:
    """Host helper: encode a float the way the guest stores it."""
    return struct.pack("<d", value)
