"""Checkpointable VM state: compact, picklable snapshots of a ``Machine``.

A :class:`MachineSnapshot` captures everything the *guest* can observe —
registers, data memory, heap break, open files, buffered stdout, icount —
and nothing the host derives from the program (code caches, superblock
traces, compile counters).  Because the VM is RNG-free and has no
wall-clock inputs (``SYS_CLOCK`` returns ``icount``), re-running a restored
machine retraces the original execution exactly, instruction for
instruction.  That is the foundation of the parallel sharded-replay
pipeline in :mod:`repro.parallel`.

Memory is stored page-sparse: the 32 MiB guest address space is chunked
into 64 KiB pages and all-zero pages are dropped, so a typical WFS
snapshot is a few hundred KiB.  Snapshots contain only builtin types
(ints, bytes, tuples) and pickle cheaply across ``multiprocessing``
workers regardless of start method.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from .errors import VMError
from .filesystem import _OpenFile

if TYPE_CHECKING:  # pragma: no cover
    from .machine import Machine

#: Snapshot memory page granularity.
PAGE_SIZE = 1 << 16


@dataclass(frozen=True)
class MachineSnapshot:
    """Picklable image of one machine's guest-visible state."""

    icount: int
    pc_index: int
    halted: bool
    exit_code: int | None
    x: tuple[int, ...]
    f: tuple[float, ...]
    brk: int
    mem_size: int
    #: Non-zero 64 KiB pages of data memory, keyed by base address.
    pages: dict[int, bytes]
    stdout: bytes
    #: Filesystem image: (name, contents) pairs.
    fs_files: tuple[tuple[str, bytes], ...]
    #: Open descriptors: (fd, name, pos, writable).
    fs_fds: tuple[tuple[int, str, int, bool], ...]
    fs_next_fd: int
    syscall_count: int

    def memory_bytes(self) -> int:
        """Total bytes of retained (non-zero) memory pages."""
        return sum(len(p) for p in self.pages.values())


def capture(m: "Machine") -> MachineSnapshot:
    """Snapshot ``m``'s guest-visible state.

    The machine may be mid-run (paused at an instruction boundary via an
    exact budget) or finished; the snapshot records its state as-is.
    """
    mem = m.mem
    pages: dict[int, bytes] = {}
    for base in range(0, m.mem_size, PAGE_SIZE):
        end = min(base + PAGE_SIZE, m.mem_size)
        if mem.count(0, base, end) != end - base:
            pages[base] = bytes(mem[base:end])
    fs = m.fs
    return MachineSnapshot(
        icount=m.icount,
        pc_index=m.pc_index,
        halted=m.halted,
        exit_code=m.exit_code,
        x=tuple(m.x),
        f=tuple(m.f),
        brk=m.brk,
        mem_size=m.mem_size,
        pages=pages,
        stdout=bytes(m.stdout),
        fs_files=tuple((name, bytes(data))
                       for name, data in fs.files.items()),
        fs_fds=tuple((fd, of.name, of.pos, of.writable)
                     for fd, of in fs._fds.items()),
        fs_next_fd=fs._next_fd,
        syscall_count=m.syscall.count,
    )


def restore(m: "Machine", snap: MachineSnapshot) -> None:
    """Load ``snap`` into ``m``, replacing its guest-visible state.

    ``m`` must run the same program geometry the snapshot came from (same
    ``mem_size``); code caches are left alone — they are derived purely
    from the program, which a snapshot never changes.  Mutation happens
    *in place* (``mem``, ``x``, ``f``, ``stdout``, ``fs``) because compiled
    closures capture those objects by identity.
    """
    if snap.mem_size != m.mem_size:
        raise VMError(f"snapshot mem_size {snap.mem_size:#x} != machine "
                      f"mem_size {m.mem_size:#x}")
    mem = m.mem
    mem[:] = bytes(m.mem_size)
    for base, blob in snap.pages.items():
        mem[base:base + len(blob)] = blob
    m.x[:] = snap.x
    m.f[:] = snap.f
    m.stdout[:] = snap.stdout
    fs = m.fs
    fs.files.clear()
    for name, data in snap.fs_files:
        fs.files[name] = bytearray(data)
    fs._fds.clear()
    for fd, name, pos, writable in snap.fs_fds:
        fs._fds[fd] = _OpenFile(name=name, pos=pos, writable=writable)
    fs._next_fd = snap.fs_next_fd
    m.syscall.count = snap.syscall_count
    m.icount = snap.icount
    m.pc_index = snap.pc_index
    m.halted = snap.halted
    m.exit_code = snap.exit_code
    m.brk = snap.brk
