"""The :class:`Program` container — the output of the assembler.

A ``Program`` is the analogue of a linked binary: decoded instructions, an
initialised data segment, a symbol table and a routine table.  The routine
table carries the *image* each routine belongs to (``"main"`` for application
code, any other name for library images), which is what lets the Pin
workalike and tQUAD distinguish application kernels from library routines.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass, field

from ..isa import INSTR_BYTES, Instr, encode_program
from .layout import CODE_BASE, DATA_BASE, index_to_pc

MAIN_IMAGE = "main"


@dataclass(frozen=True)
class Routine:
    """One function in the binary: a contiguous range of instructions."""

    name: str
    start: int           #: first instruction index (inclusive)
    end: int             #: one past the last instruction index
    image: str = MAIN_IMAGE

    @property
    def start_pc(self) -> int:
        return index_to_pc(self.start)

    @property
    def end_pc(self) -> int:
        return index_to_pc(self.end)

    @property
    def size(self) -> int:
        return self.end - self.start

    def contains(self, index: int) -> bool:
        return self.start <= index < self.end


@dataclass
class Program:
    """A loadable guest binary."""

    instrs: list[Instr]
    data: bytes = b""                       #: image of the data segment
    symbols: dict[str, int] = field(default_factory=dict)  #: name -> address
    routines: list[Routine] = field(default_factory=list)
    entry: int = 0                          #: entry instruction index
    source: str = ""                        #: assembly source, if available

    def __post_init__(self) -> None:
        self.routines = sorted(self.routines, key=lambda r: r.start)
        self._starts = [r.start for r in self.routines]
        self._by_name = {r.name: r for r in self.routines}

    # -- queries ------------------------------------------------------------
    def routine_at(self, index: int) -> Routine | None:
        """Return the routine containing instruction ``index``, if any."""
        pos = bisect.bisect_right(self._starts, index) - 1
        if pos >= 0 and self.routines[pos].contains(index):
            return self.routines[pos]
        return None

    def routine(self, name: str) -> Routine:
        """Return the routine named ``name`` (KeyError if absent)."""
        return self._by_name[name]

    def has_routine(self, name: str) -> bool:
        return name in self._by_name

    @property
    def code_bytes(self) -> bytes:
        """The encoded code segment (for size accounting / round trips)."""
        return encode_program(self.instrs)

    @property
    def code_size(self) -> int:
        return len(self.instrs) * INSTR_BYTES

    @property
    def entry_pc(self) -> int:
        return index_to_pc(self.entry)

    def data_end(self) -> int:
        """First address past the initialised data segment."""
        return DATA_BASE + len(self.data)

    def describe(self) -> str:
        """Human-readable one-paragraph summary."""
        return (f"Program: {len(self.instrs)} instructions "
                f"({self.code_size} bytes @ {CODE_BASE:#x}), "
                f"{len(self.data)} data bytes @ {DATA_BASE:#x}, "
                f"{len(self.routines)} routines, entry "
                f"{self.routine_at(self.entry).name if self.routine_at(self.entry) else self.entry}")
