"""The guest virtual machine: memory layout, program container, syscalls,
in-memory filesystem and the closure-compiling interpreter."""

from .errors import (ArithmeticFault, IllegalInstruction,
                     InstructionBudgetExceeded, MemoryFault, SyscallError,
                     VMError)
from .filesystem import (FD_STDERR, FD_STDIN, FD_STDOUT, O_RDONLY, O_WRONLY,
                         GuestFS)
from .layout import (CODE_BASE, DATA_BASE, DEFAULT_MEM_SIZE, HEAP_BASE,
                     NULL_GUARD, index_to_pc, pc_to_index)
from .machine import Machine, run_program
from .program import MAIN_IMAGE, Program, Routine
from .snapshot import PAGE_SIZE, MachineSnapshot

__all__ = [
    "Machine", "run_program", "Program", "Routine", "MAIN_IMAGE",
    "MachineSnapshot", "PAGE_SIZE",
    "GuestFS", "O_RDONLY", "O_WRONLY", "FD_STDIN", "FD_STDOUT", "FD_STDERR",
    "VMError", "MemoryFault", "IllegalInstruction", "ArithmeticFault",
    "SyscallError", "InstructionBudgetExceeded",
    "CODE_BASE", "DATA_BASE", "HEAP_BASE", "NULL_GUARD", "DEFAULT_MEM_SIZE",
    "index_to_pc", "pc_to_index",
]
