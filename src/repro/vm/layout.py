"""Guest address-space layout.

The machine is Harvard-style: instructions live in their own segment and are
addressed by *byte* program counters (``CODE_BASE + 16 * index``) so that the
profilers see realistic instruction pointers, while loads and stores address a
single flat data memory::

    0x0000_0000 .. 0x0000_0FFF   null guard page (any access faults)
    0x0000_1000 ..               code addresses (not readable as data)
    0x0010_0000 ..               globals / static data
    0x0080_0000 ..               heap (grows up via the sbrk syscall)
    mem_size    ..               stack top (stack grows down)
"""

from __future__ import annotations

NULL_GUARD = 0x1000
CODE_BASE = 0x1000
DATA_BASE = 0x0010_0000
HEAP_BASE = 0x0080_0000

#: Default size of the flat data memory (also the initial stack top).
DEFAULT_MEM_SIZE = 1 << 25  # 32 MiB

#: Gap kept between the heap break and the lowest expected stack extent.
HEAP_STACK_GUARD = 1 << 16


def pc_to_index(pc: int) -> int:
    """Convert a byte program counter to an instruction index."""
    return (pc - CODE_BASE) >> 4


def index_to_pc(index: int) -> int:
    """Convert an instruction index to a byte program counter."""
    return CODE_BASE + (index << 4)
