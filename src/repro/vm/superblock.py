"""Superblock (trace) compiler — the VM's second JIT tier.

The baseline tier compiles every instruction to one Python closure and pays
one dispatch, one ``icount`` bump and one call per retired instruction
(:mod:`repro.vm.machine`).  This module adds a *superblock* tier on top,
mirroring the trace granularity of Pin's code cache (paper §IV-B): at
materialization time a straight-line *trace* of instructions is fused into a
single Python function whose source is generated and ``exec``-compiled.
Executing a superblock costs one dispatch and one ``icount`` update for the
whole trace.

Superblock formation rules
--------------------------

Walking forward from the entry index, the trace grows until one of:

* a **runtime-target** terminator — ``jalr``, ``ret``, ``ecall``, ``halt``;
* a **predicated** instruction — it becomes a one-instruction guarded block
  of its own (bare VM) or falls back to the per-instruction closure path
  (instrumented run), keeping ``INS_InsertPredicatedCall`` semantics exact;
* an attached block instrumenter answering :data:`FALLBACK` for it — the
  engine demands per-instruction visibility, so the instruction is
  materialized through the classic ``instrument_hook`` path;
* a **conditional branch** — both successor indices are returned from the
  generated function, so the branch is always the trace's last instruction
  (following one direction speculatively would also compile instructions
  the per-instruction tier never reaches, breaking ``compile_count``
  equivalence — and measured slower: hot loop backedges become mid-trace
  side exits that re-enter overlapping traces);
* a **cycle** — the target of a ``j``/``jal``, or the fall-through index,
  is already part of the trace;
* the trace holds :data:`MAX_BLOCK` instructions.

Unconditional jumps and calls (``j``, ``jal``) do *not* end a trace: the
walk continues at their static target (for ``jal``, the return-address
write is fused inline), so a call fuses straight into its callee.
Traces are cached at their entry index only;
a jump into the middle of an existing trace simply materializes a new
(overlapping) trace starting there, and ``Machine.compile_count`` counts
*distinct* static instructions, so overlap does not inflate it.

Architectural-state equivalence
-------------------------------

Fused execution is observationally identical to the per-instruction tier:

* ``icount`` is published in one update per trace exit, but every point
  where guest-visible code can observe it mid-trace — a fault, a syscall,
  or an inlined analysis thunk — first rewrites
  ``machine.icount`` to the exact per-instruction value (``entry + k + 1``
  for the trace's k-th instruction);
* faults raise the same exception types with the same ``pc``/``icount``
  attribution, and instructions before the faulting one have fully retired;
* instrumentation inlined from a block plan runs in the same order and with
  the same argument values as the per-instruction thunks would.

Instrumentation inlining and record sinks
-----------------------------------------

A machine may carry a ``block_instrumenter`` (the Pin engine).  For every
instruction the compiler asks ``plan(index, ins)`` which returns ``None``
(plain fusion), :data:`FALLBACK`, or an :class:`InsPlan` holding zero-arg
thunks to run before the instruction (``pre``, with ``machine.icount``
restored first) plus *record sinks* for memory instructions.

A record sink (see :class:`repro.core.recording.RecordingSink`) exposes:

* ``read_buf`` / ``write_buf`` — flat ``array('q')`` buffers receiving
  ``(icount, incl_bytes, excl_bytes, kernel_id)`` quads;
* ``tag`` — an object with a ``rec_id`` attribute (the interned id of the
  kernel accesses currently attribute to, -1 to drop, or ``-2 - id`` for
  library-marked attribution — see
  :class:`repro.core.callstack.CallStack`);
* ``track_incl`` / ``track_excl`` — which byte columns the sink wants
  (``excl`` only counts accesses below the stack pointer);
* ``interval`` — the slice width in instructions;
* ``cap`` — soft buffer capacity in *elements*, checked at trace entry;
* ``flush_read`` / ``flush_write`` — aggregation callables.

A sink may instead declare ``raw = True`` (see
:class:`repro.quad.shadow.PagedQuadSink`): its single ``buf`` receives one
*packed* ``int64`` per access — ``(rec_id + 1) << kid_shift |
(size << 1 | is_write) << tail_shift | ea`` — plus negative
``-1 - sp`` markers whenever the stack pointer changes (tracked through
``sink.last_sp``; SP changes orders of magnitude less often than memory is
touched).  The ``(rec_id + 1) << kid_shift`` head is hoisted into a local
per trace segment, so the steady-state cost is one ``append`` per access.
Raw sinks carry ``interval = 0``, which keeps their traces in exact event
mode.

When every instruction of the trace provably lands in one time slice
(checked with a single division at entry — true unless the trace straddles
a slice boundary, i.e. almost always), the generated code accumulates byte
counts in local variables and appends **one** quad per trace segment; the
per-access quad emission is kept as the ``else`` branch for the straddling
case, so aggregation is exact, not approximate.  Segments close before any
analysis thunk runs (thunks may switch the attributed kernel) and before
every exit.
"""

from __future__ import annotations

import math
import struct
from typing import Callable

from ..isa import opcodes as oc
from ..isa.instruction import NO_PRED, Instr
from ..obs import TELEMETRY as _TELEMETRY
from .errors import ArithmeticFault, IllegalInstruction, MemoryFault
from .layout import CODE_BASE, NULL_GUARD, index_to_pc

#: Hard cap on fused instructions per superblock.
MAX_BLOCK = 128

#: Sentinel returned by a block instrumenter's ``plan`` when the instruction
#: must go through the per-instruction ``instrument_hook`` path.
FALLBACK = "per-instruction-fallback"

_I64_MIN = -(1 << 63)
_I64_MAX = (1 << 63) - 1
_MASK64 = (1 << 64) - 1

#: Opcodes whose target is only known at run time (or that leave the guest):
#: these always end a trace.
_HARD_ENDS = frozenset({oc.JALR, oc.RET, oc.ECALL, oc.HALT})

#: Opcodes that emit a block-exit ``return`` when they are the trace's last
#: instruction.
_TERMINATORS = frozenset({
    oc.BEQ, oc.BNE, oc.BLT, oc.BGE, oc.BLE, oc.BGT,
    oc.JAL, oc.J, oc.JALR, oc.RET, oc.ECALL, oc.HALT,
})

_BRANCHES = {oc.BEQ: "==", oc.BNE: "!=", oc.BLT: "<", oc.BGE: ">=",
             oc.BLE: "<=", oc.BGT: ">"}

_UNPACK = {
    oc.LD: struct.Struct("<q").unpack_from,
    oc.LW: struct.Struct("<i").unpack_from,
    oc.LWU: struct.Struct("<I").unpack_from,
    oc.LH: struct.Struct("<h").unpack_from,
    oc.LHU: struct.Struct("<H").unpack_from,
    oc.LB: struct.Struct("<b").unpack_from,
    oc.LBU: struct.Struct("<B").unpack_from,
    oc.FLD: struct.Struct("<d").unpack_from,
}

_PACK = {
    oc.SD: (struct.Struct("<q").pack_into, None),
    oc.SW: (struct.Struct("<I").pack_into, 0xFFFFFFFF),
    oc.SH: (struct.Struct("<H").pack_into, 0xFFFF),
    oc.SB: (struct.Struct("<B").pack_into, 0xFF),
    oc.FSD: (struct.Struct("<d").pack_into, None),
}


class InsPlan:
    """Inline instrumentation for one instruction inside a superblock."""

    __slots__ = ("pre", "read_sinks", "write_sinks")

    def __init__(self, pre: tuple[Callable[[], None], ...] = (),
                 read_sinks: tuple = (), write_sinks: tuple = ()):
        self.pre = pre
        self.read_sinks = read_sinks
        self.write_sinks = write_sinks


class _Emitter:
    """Accumulates generated source lines plus the value environment that is
    bound into the function via default arguments (locals are faster than
    globals in CPython)."""

    def __init__(self) -> None:
        self.lines: list[str] = []
        self.env: dict[str, object] = {}
        self._by_id: dict[int, str] = {}
        self._n = 0
        self.indent = 1

    def add(self, line: str) -> None:
        self.lines.append("    " * self.indent + line)

    def push(self) -> None:
        self.indent += 1

    def pop(self) -> None:
        self.indent -= 1

    def bind(self, prefix: str, value: object) -> str:
        """Bind ``value`` under a fresh (or shared, if identical) name."""
        key = id(value)
        name = self._by_id.get(key)
        if name is None:
            name = f"_{prefix}{self._n}"
            self._n += 1
            self._by_id[key] = name
            self.env[name] = value
        return name


def _wrap_assign(E: _Emitter, target: str, expr: str) -> None:
    """Assign ``expr`` to ``target`` with inline 64-bit signed wrapping.

    The in-range test is inlined so the common case costs no call; the
    rare out-of-range result goes through the shared ``_wrap`` helper.
    """
    W = E.bind("W", _wrap)
    E.add(f"v = {expr}")
    E.add(f"{target} = v if {_I64_MIN} <= v <= {_I64_MAX} else {W}(v)")


def _wrap(v: int) -> int:
    if _I64_MIN <= v <= _I64_MAX:
        return v
    return ((v - _I64_MIN) & _MASK64) + _I64_MIN


class _Records:
    """Record-emission state for one generated body.

    ``mode`` is ``"event"`` (one quad per access, exact icounts — always
    correct) or ``"agg"`` (byte sums in locals, one quad per segment —
    valid only when the whole trace shares one slice, which the caller
    guards at run time).
    """

    def __init__(self, E: _Emitter, mode: str, x: str):
        self.E = E
        self.mode = mode
        self.x = x
        self._vars: dict[tuple[int, str], tuple[str, str, object]] = {}
        self._dirty: list[tuple[int, str]] = []
        #: raw sinks: sink id -> hoisted kernel-head local, valid for the
        #: current segment (rec_id is stable between analysis thunks)
        self._kh: dict[int, str] = {}
        self._kh_names: dict[int, str] = {}
        #: (sink id, record tail bits) -> local holding ``Kh | tail``, so a
        #: steady-state record costs two int ops + a tuple slot
        self._kq: dict[tuple[int, int], str] = {}
        #: raw sinks whose ``last_sp`` is provably current at this point in
        #: the emitted code (invalidated when an instruction may write SP)
        self._sp_ok: set[int] = set()
        #: pending packed-record expressions per raw sink, flushed as one
        #: ``buf.extend((...))`` at segment close / SP-write boundaries
        self._pend: dict[int, list[str]] = {}
        self._pend_sinks: dict[int, object] = {}
        #: sink id -> bound (buf.append, buf.extend) binding names; the
        #: bound methods are hoisted once so the hot path skips the
        #: attribute lookup (buffers are reset in place, never replaced)
        self._buffns: dict[int, tuple[str, str]] = {}
        self._na = 0

    def _buf_fns(self, sink) -> tuple[str, str]:
        sid = id(sink)
        fns = self._buffns.get(sid)
        if fns is None:
            fns = self._buffns[sid] = (self.E.bind("ba", sink.buf.append),
                                       self.E.bind("bx", sink.buf.extend))
        return fns

    def declare(self, pairs: list) -> None:
        """Zero-init accumulator locals for every (sink, kind) in the body
        (agg mode only)."""
        E = self.E
        for si, (sink, kind) in enumerate(pairs):
            vI, vE = f"aI{si}", f"aE{si}"
            self._vars[(id(sink), kind)] = (vI, vE, sink)
            names = []
            if sink.track_incl:
                names.append(vI)
            if sink.track_excl:
                names.append(vE)
            E.add(f"{' = '.join(names)} = 0")

    def access(self, sink, kind: str, size: int, k: int) -> None:
        """Emit the record for one memory access (``a`` holds the EA)."""
        E, x = self.E, self.x
        if getattr(sink, "raw", False):
            sid = id(sink)
            if sid not in self._sp_ok:
                self._sp_ok.add(sid)
                S = E.bind("s", sink)
                if self._pend.get(sid):
                    # mid-segment SP write: capture SP now and thread the
                    # marker through the pending stream, which keeps it
                    # ordered without flushing the records gathered so far
                    v = f"a{self._na}"
                    self._na += 1
                    E.add(f"{v} = {x}[2]")
                    E.add(f"{S}.last_sp = {v}")
                    self._pend[sid].append(f"-1 - {v}")
                else:
                    ap = self._buf_fns(sink)[0]
                    E.add(f"if {S}.last_sp != {x}[2]:")
                    E.add(f"    {S}.last_sp = {x}[2]")
                    E.add(f"    {ap}(-1 - {x}[2])")
            kh = self._kh.get(sid)
            if kh is None:
                name = self._kh_names.get(sid)
                if name is None:
                    name = self._kh_names[sid] = f"Kh{len(self._kh_names)}"
                kh = self._kh[sid] = name
                tag = E.bind("tag", sink.tag)
                E.add(f"{kh} = ({tag}.rec_id + 1) << {sink.kid_shift}")
            tail = (size << 1) | (1 if kind == "write" else 0)
            kq = self._kq.get((sid, tail))
            if kq is None:
                kq = self._kq[(sid, tail)] = f"{kh}t{tail}"
                E.add(f"{kq} = {kh} | {tail << sink.tail_shift}")
            # the EA is *not* masked here: a wild address faults at this
            # instruction's bounds check, before the pending extend runs
            v = f"a{self._na}"
            self._na += 1
            E.add(f"{v} = a")
            self._pend.setdefault(sid, []).append(f"{kq} | {v}")
            self._pend_sinks[sid] = sink
            return
        if self.mode == "agg":
            vI, vE, _ = self._vars[(id(sink), kind)]
            if sink.track_incl:
                E.add(f"{vI} += {size}")
            if sink.track_excl:
                E.add(f"if a < {x}[2]: {vE} += {size}")
            key = (id(sink), kind)
            if key not in self._dirty:
                self._dirty.append(key)
            return
        buf = E.bind("b", sink.read_buf if kind == "read"
                     else sink.write_buf)
        tag = E.bind("tag", sink.tag)
        if sink.track_incl and sink.track_excl:
            E.add(f"{buf}.extend((ic + {k + 1}, {size}, "
                  f"{size} if a < {x}[2] else 0, {tag}.rec_id))")
        elif sink.track_incl:
            E.add(f"{buf}.extend((ic + {k + 1}, {size}, 0, {tag}.rec_id))")
        else:
            E.add(f"if a < {x}[2]: "
                  f"{buf}.extend((ic + {k + 1}, 0, {size}, {tag}.rec_id))")

    def _emit_close(self, key) -> None:
        E = self.E
        vI, vE, sink = self._vars[key]
        kind = key[1]
        buf = E.bind("b", sink.read_buf if kind == "read"
                     else sink.write_buf)
        tag = E.bind("tag", sink.tag)
        primary = vI if sink.track_incl else vE
        incl = vI if sink.track_incl else "0"
        excl = vE if sink.track_excl else "0"
        E.add(f"if {primary}:")
        E.add(f"    K = {tag}.rec_id")
        # K == -1 drops; K <= -2 is a library-marked kernel id and must be
        # recorded (the flush / capture replay folds it back)
        E.add(f"    if K != -1: {buf}.extend((ic + 1, {incl}, {excl}, K))")
        names = []
        if sink.track_incl:
            names.append(vI)
        if sink.track_excl:
            names.append(vE)
        E.add(f"    {' = '.join(names)} = 0")

    def _flush_raw(self, sid: int) -> None:
        """Emit the pending packed records of one raw sink as a single
        ``extend`` (or ``append`` for a lone record)."""
        exprs = self._pend.get(sid)
        if not exprs:
            return
        ap, ex = self._buf_fns(self._pend_sinks[sid])
        if len(exprs) == 1:
            self.E.add(f"{ap}({exprs[0]})")
        else:
            self.E.add(f"{ex}(({', '.join(exprs)}))")
        exprs.clear()

    def close_segment(self) -> None:
        """Flush dirty accumulators to the buffers and reset them.  Emitted
        before analysis thunks (which may change ``tag.rec_id``) and before
        the trace's final exit."""
        for key in self._dirty:
            self._emit_close(key)
        self._dirty.clear()
        for sid in self._pend:
            self._flush_raw(sid)
        self._kh.clear()
        self._kq.clear()

    def sp_unsync(self) -> None:
        """The just-emitted instruction may have written SP: raw sinks must
        re-establish the SP marker before their next record.  Pending
        records stay pending — ``access`` threads the marker through the
        pending stream itself, so order is preserved without a flush."""
        self._sp_ok.clear()



def build_block(machine, start: int):
    """Materialize the superblock (trace) starting at instruction ``start``.

    Returns ``(step_fn, indices)``.  ``step_fn`` follows the fused contract:
    it updates ``machine.icount`` itself and returns the next instruction
    index (or -1 to halt).  ``indices`` lists the static instructions fused
    into the trace, in order (not necessarily contiguous).
    """
    instrs = machine.instrs
    n_instr = len(instrs)
    instrumenter = machine.block_instrumenter
    items: list[tuple[int, Instr, InsPlan | None]] = []
    trace: set[int] = set()
    guarded = False
    i = start
    while i < n_instr:
        ins = instrs[i]
        if ins.pred != NO_PRED:
            if instrumenter is not None:
                if not items:
                    return _fallback_singleton(machine, i), [i]
                break
            if not items:
                items.append((i, ins, None))
                guarded = True
            break
        plan = instrumenter.plan(i, ins) if instrumenter is not None else None
        if plan is FALLBACK:
            if not items:
                return _fallback_singleton(machine, i), [i]
            break
        items.append((i, ins, plan))
        trace.add(i)
        op = ins.op
        if len(items) >= MAX_BLOCK or op in _HARD_ENDS or op in _BRANCHES:
            break
        if op in (oc.J, oc.JAL):
            tgt = machine._target_index(ins.imm, i)
            if tgt in trace:
                break
            i = tgt
            continue
        if i + 1 in trace:
            break
        i += 1
    fn = _compile_block(machine, items, guarded)
    # block materializations are cached by the machine, so these land once
    # per static block, not per execution
    _TELEMETRY.count("vm/superblocks")
    _TELEMETRY.count("vm/fused_instructions", len(items))
    return fn, [idx for idx, _, _ in items]


def _fallback_singleton(machine, index: int):
    """One instruction through the classic closure path, wrapped to honour
    the fused loop's self-bumping ``icount`` contract."""
    inner = machine._compose_step(index)

    def step(pc, _m=machine, _inner=inner):
        _m.icount += 1
        return _inner(pc)
    return step


def _record_pairs(items) -> list:
    """All (sink, kind) pairs used anywhere in the trace, in first-use
    order, deduplicated by sink identity."""
    pairs: list = []
    seen: set[tuple[int, str]] = set()
    for _, _, plan in items:
        if plan is None:
            continue
        for sink in plan.read_sinks:
            if (id(sink), "read") not in seen:
                seen.add((id(sink), "read"))
                pairs.append((sink, "read"))
        for sink in plan.write_sinks:
            if (id(sink), "write") not in seen:
                seen.add((id(sink), "write"))
                pairs.append((sink, "write"))
    return pairs


def _compile_block(machine, items, guarded: bool):
    n = len(items)
    E = _Emitter()
    m = E.bind("m", machine)
    x = E.bind("x", machine.x)

    pairs = _record_pairs(items)
    # soft capacity check once, at trace entry: covers loops whose only
    # exits are side exits (the buffers the trace appends to are bounded by
    # cap + a few quads per execution)
    checked: set[int] = set()
    for sink, kind in pairs:
        b = sink.read_buf if kind == "read" else sink.write_buf
        if id(b) in checked:        # raw sinks share one buf for both kinds
            continue
        checked.add(id(b))
        buf = E.bind("b", b)
        fl = E.bind("fl", sink.flush_read if kind == "read"
                    else sink.flush_write)
        E.add(f"if len({buf}) > {int(sink.cap)}: {fl}()")

    E.add(f"ic = {m}.icount")
    if guarded:
        # a predicated instruction retires whether or not its guard is set,
        # so the bump happens before the guard test
        E.add(f"{m}.icount = ic + 1")
        E.add(f"if not {x}[{items[0][1].pred}]: return {items[0][0] + 1}")

    intervals = {sink.interval for sink, _ in pairs}
    if pairs and len(intervals) == 1 and min(intervals) >= n:
        # The whole trace spans one slice unless a boundary falls inside it
        # (possible only every `interval` instructions): aggregate in locals
        # on the fast path, fall back to exact per-access quads on the rare
        # straddling execution.
        I = intervals.pop()
        E.add(f"if ic // {I} == (ic + {n - 1}) // {I}:")
        E.push()
        _emit_body(E, machine, items, "agg", m, x)
        E.pop()
        E.add("else:")
        E.push()
        _emit_body(E, machine, items, "event", m, x)
        E.pop()
    else:
        _emit_body(E, machine, items, "event" if pairs else "none", m, x)

    src = "def step(pc, {args}):\n{body}\n".format(
        args=", ".join(f"{k}={k}" for k in E.env),
        body="\n".join(E.lines))
    ns = dict(E.env)
    exec(compile(src, f"<superblock@{items[0][0]}>", "exec"), ns)  # noqa: S102
    return ns["step"]


def _emit_body(E: _Emitter, machine, items, mode: str, m: str,
               x: str) -> None:
    n = len(items)
    rec = _Records(E, mode, x)
    if mode == "agg":
        rec.declare(_record_pairs(items))
    terminated = False
    for k, (index, ins, plan) in enumerate(items):
        if plan is not None and plan.pre:
            rec.close_segment()
            # restore the exact per-instruction count for analysis thunks
            # (they may read machine.icount, e.g. gprof-sim and IARG.ICOUNT)
            E.add(f"{m}.icount = ic + {k + 1}")
            for thunk in plan.pre:
                E.add(f"{E.bind('t', thunk)}()")
        if k == n - 1 and ins.op in _TERMINATORS:
            rec.close_segment()
        terminated = _emit_instr(E, machine, index, ins, plan, k, n, rec,
                                 m, x)
        if ins.rd == 2:
            # conservatively treat any rd==2 as a possible SP write (for
            # stores rd is the source register — re-checking is a no-op)
            rec.sp_unsync()
    if not terminated:
        rec.close_segment()
        E.add(f"{m}.icount = ic + {n}")
        E.add(f"return {items[-1][0] + 1}")


def _emit_instr(E: _Emitter, machine, index: int, ins: Instr,
                plan, k: int, n: int, rec: _Records, m: str,
                x: str) -> bool:
    """Emit one instruction's body.  Returns True when it emitted the
    trace's final ``return``."""
    op = ins.op
    rd, rs1, rs2, imm = ins.rd, ins.rs1, ins.rs2, ins.imm
    pc_byte = index_to_pc(index)
    last = k == n - 1

    if op == oc.NOP:
        return False

    def fault_fix() -> str:
        return f"{m}.icount = ic + {k + 1}"

    # --- memory (loads/stores share the address + bounds preamble) --------
    if op in _UNPACK or op in _PACK or op == oc.PREFETCH:
        size = ins.info.mem_read or ins.info.mem_write
        if rs1 == 0:
            E.add(f"a = {imm}")
        elif imm:
            E.add(f"a = {x}[{rs1}] + {imm}")
        else:
            E.add(f"a = {x}[{rs1}]")
        if plan is not None:
            if ins.info.mem_read and not ins.info.is_prefetch:
                for sink in plan.read_sinks:
                    rec.access(sink, "read", size, k)
            if ins.info.mem_write:
                for sink in plan.write_sinks:
                    rec.access(sink, "write", size, k)
        if op == oc.PREFETCH:
            # a hint: no architectural effect, no bounds check (the baseline
            # tier never dereferences it either)
            return False
        MF = E.bind("MF", MemoryFault)
        E.add(f"if not {NULL_GUARD} <= a <= {machine.mem_size - size}:")
        E.add(f"    {fault_fix()}")
        E.add(f"    raise {MF}('bad access [%#x, +{size})' % a, "
              f"pc={pc_byte})")
        mem = E.bind("mem", machine.mem)
        if op in _UNPACK:
            up = E.bind("u", _UNPACK[op])
            if op == oc.FLD:
                fr = E.bind("f", machine.f)
                E.add(f"{fr}[{rd}] = {up}({mem}, a)[0]")
            elif rd:
                E.add(f"{x}[{rd}] = {up}({mem}, a)[0]")
        else:
            pk, mask = _PACK[op]
            pk_n = E.bind("p", pk)
            if op == oc.FSD:
                fr = E.bind("f", machine.f)
                E.add(f"{pk_n}({mem}, a, {fr}[{rd}])")
            elif mask is None:
                E.add(f"{pk_n}({mem}, a, {x}[{rd}])")
            else:
                E.add(f"{pk_n}({mem}, a, {x}[{rd}] & {mask})")
        return False

    # --- integer ALU -------------------------------------------------------
    _RR = {oc.ADD: "+", oc.SUB: "-", oc.MUL: "*"}
    if op in _RR:
        if rd:
            _wrap_assign(E, f"{x}[{rd}]",
                         f"{x}[{rs1}] {_RR[op]} {x}[{rs2}]")
        return False
    if op in (oc.DIV, oc.REM):
        AF = E.bind("AF", ArithmeticFault)
        E.add(f"va = {x}[{rs1}]; vb = {x}[{rs2}]")
        E.add("if vb == 0:")
        E.add(f"    {fault_fix()}")
        E.add(f"    raise {AF}('division by zero', pc={pc_byte})")
        if rd:
            E.add("q = abs(va) // abs(vb)")
            E.add("if (va < 0) != (vb < 0): q = -q")
            _wrap_assign(E, f"{x}[{rd}]",
                         "q" if op == oc.DIV else "va - vb * q")
        return False
    _BITS = {oc.AND: "&", oc.OR: "|", oc.XOR: "^"}
    if op in _BITS:
        if rd:
            E.add(f"{x}[{rd}] = {x}[{rs1}] {_BITS[op]} {x}[{rs2}]")
        return False
    if op == oc.SLL:
        if rd:
            _wrap_assign(E, f"{x}[{rd}]",
                         f"{x}[{rs1}] << ({x}[{rs2}] & 63)")
        return False
    if op == oc.SRL:
        if rd:
            _wrap_assign(E, f"{x}[{rd}]",
                         f"({x}[{rs1}] & {_MASK64}) >> ({x}[{rs2}] & 63)")
        return False
    if op == oc.SRA:
        if rd:
            E.add(f"{x}[{rd}] = {x}[{rs1}] >> ({x}[{rs2}] & 63)")
        return False
    _CMP = {oc.SLT: "<", oc.SLE: "<=", oc.SEQ: "==", oc.SNE: "!="}
    if op in _CMP:
        if rd:
            E.add(f"{x}[{rd}] = 1 if {x}[{rs1}] {_CMP[op]} {x}[{rs2}] "
                  "else 0")
        return False
    if op in (oc.ADDI, oc.MULI):
        if rd:
            _wrap_assign(E, f"{x}[{rd}]",
                         f"{x}[{rs1}] {'+' if op == oc.ADDI else '*'} "
                         f"({imm})")
        return False
    _BITI = {oc.ANDI: "&", oc.ORI: "|", oc.XORI: "^"}
    if op in _BITI:
        if rd:
            E.add(f"{x}[{rd}] = {x}[{rs1}] {_BITI[op]} ({imm})")
        return False
    if op == oc.SLLI:
        if rd:
            _wrap_assign(E, f"{x}[{rd}]", f"{x}[{rs1}] << {imm & 63}")
        return False
    if op == oc.SRLI:
        if rd:
            _wrap_assign(E, f"{x}[{rd}]",
                         f"({x}[{rs1}] & {_MASK64}) >> {imm & 63}")
        return False
    if op == oc.SRAI:
        if rd:
            E.add(f"{x}[{rd}] = {x}[{rs1}] >> {imm & 63}")
        return False
    if op == oc.SLTI:
        if rd:
            E.add(f"{x}[{rd}] = 1 if {x}[{rs1}] < ({imm}) else 0")
        return False
    if op == oc.LI:
        if rd:
            E.add(f"{x}[{rd}] = {imm}")
        return False

    # --- floating point ----------------------------------------------------
    f = E.bind("f", machine.f)
    _FRR = {oc.FADD: "+", oc.FSUB: "-", oc.FMUL: "*"}
    if op in _FRR:
        E.add(f"{f}[{rd}] = {f}[{rs1}] {_FRR[op]} {f}[{rs2}]")
        return False
    if op == oc.FDIV:
        inf = E.bind("inf", math.inf)
        nan = E.bind("nan", math.nan)
        E.add(f"vb = {f}[{rs2}]")
        E.add("if vb == 0.0:")
        E.add(f"    va = {f}[{rs1}]")
        E.add(f"    {f}[{rd}] = {inf} if va > 0 else "
              f"(-{inf} if va < 0 else {nan})")
        E.add("else:")
        E.add(f"    {f}[{rd}] = {f}[{rs1}] / vb")
        return False
    if op in (oc.FMIN, oc.FMAX):
        fn = E.bind("mm", min if op == oc.FMIN else max)
        E.add(f"{f}[{rd}] = {fn}({f}[{rs1}], {f}[{rs2}])")
        return False
    if op == oc.FNEG:
        E.add(f"{f}[{rd}] = -{f}[{rs1}]")
        return False
    if op == oc.FABS:
        ab = E.bind("abs", abs)
        E.add(f"{f}[{rd}] = {ab}({f}[{rs1}])")
        return False
    if op == oc.FSQRT:
        sq = E.bind("sqrt", math.sqrt)
        nan = E.bind("nan", math.nan)
        E.add(f"va = {f}[{rs1}]")
        E.add(f"{f}[{rd}] = {sq}(va) if va >= 0.0 else {nan}")
        return False
    if op in (oc.FSIN, oc.FCOS):
        fn = E.bind("trig", math.sin if op == oc.FSIN else math.cos)
        E.add(f"{f}[{rd}] = {fn}({f}[{rs1}])")
        return False
    if op == oc.FMV:
        E.add(f"{f}[{rd}] = {f}[{rs1}]")
        return False
    if op == oc.FLI:
        c = E.bind("c", float(imm))
        E.add(f"{f}[{rd}] = {c}")
        return False
    _FCMP = {oc.FEQ: "==", oc.FLT: "<", oc.FLE: "<="}
    if op in _FCMP:
        if rd:
            E.add(f"{x}[{rd}] = 1 if {f}[{rs1}] {_FCMP[op]} {f}[{rs2}] "
                  "else 0")
        return False
    if op == oc.FCVTFI:
        E.add(f"{f}[{rd}] = float({x}[{rs1}])")
        return False
    if op == oc.FCVTIF:
        AF = E.bind("AF", ArithmeticFault)
        isfin = E.bind("fin", math.isfinite)
        E.add(f"va = {f}[{rs1}]")
        E.add(f"if not {isfin}(va):")
        E.add(f"    {fault_fix()}")
        E.add(f"    raise {AF}('float->int of non-finite value', "
              f"pc={pc_byte})")
        if rd:
            _wrap_assign(E, f"{x}[{rd}]", "int(va)")
        return False

    # --- control flow ------------------------------------------------------
    nxt = index + 1
    if op in _BRANCHES:
        assert last, "conditional branches always end a trace"
        tgt = machine._target_index(imm, index)
        E.add(f"{m}.icount = ic + {n}")
        E.add(f"return {tgt} if {x}[{rs1}] {_BRANCHES[op]} {x}[{rs2}] "
              f"else {nxt}")
        return True
    if op in (oc.J, oc.JAL):
        if op == oc.JAL and rd:
            E.add(f"{x}[{rd}] = {index_to_pc(nxt)}")
        if last:
            E.add(f"{m}.icount = ic + {n}")
            E.add(f"return {machine._target_index(imm, index)}")
            return True
        # mid-trace: the walk already continued at the static target
        return False
    if op in (oc.JALR, oc.RET):
        E.add(f"{m}.icount = ic + {n}")
        II = E.bind("II", IllegalInstruction)
        ninstr = len(machine.instrs)
        if op == oc.JALR:
            base = f"{x}[{rs1}] + {imm}" if imm else f"{x}[{rs1}]"
            what = "jalr to invalid target"
        else:
            base = f"{x}[1]"
            what = "ret to invalid address"
        E.add(f"t = (({base}) - {CODE_BASE}) >> 4")
        E.add(f"if not 0 <= t < {ninstr}:")
        E.add(f"    raise {II}('{what} %#x' % ({base}), pc={pc_byte})")
        if op == oc.JALR and rd:
            E.add(f"{x}[{rd}] = {index_to_pc(nxt)}")
        E.add("return t")
        return True
    if op == oc.ECALL:
        E.add(f"{m}.icount = ic + {n}")
        sc = E.bind("sc", machine.syscall.call)
        E.add(f"return {nxt} if {sc}() else -1")
        return True
    if op == oc.HALT:
        E.add(f"{m}.icount = ic + {n}")
        E.add(f"if {m}.exit_code is None: {m}.exit_code = 0")
        E.add("return -1")
        return True
    raise IllegalInstruction(f"unimplemented opcode {ins.info.name}",
                             pc=pc_byte)
