"""Extra pintools built on the Pin-workalike API.

The paper positions tQUAD inside a *dynamic profiling framework* of
cooperating tools (QUAD, tQUAD, gprof).  This package adds the classic
companion every DBI framework ships: a data-cache simulator
(:mod:`~repro.tools.dcache`), which turns tQUAD's platform-independent
bandwidth numbers into architecture-specific locality estimates — the
vTune/CodeAnalyst capability §II contrasts tQUAD against."""

from .dcache import (CacheConfig, CacheModel, CacheStats, DCacheTool,
                     run_dcache)
from .imix import CATEGORIES, ImixTool, Mix, categorize, run_imix

__all__ = ["CacheConfig", "CacheModel", "CacheStats", "DCacheTool",
           "run_dcache", "ImixTool", "Mix", "run_imix", "categorize",
           "CATEGORIES"]
