"""Instruction-mix profiler (the canonical second Pin example tool).

Counts dynamically executed instructions per category and per kernel.  The
mix explains *why* a kernel's bytes/instruction number is what it is: a
kernel at 0.5 B/ins could be doing 8-byte accesses every 16th instruction
or 1-byte accesses every other one — with opposite implications for the
hardware mapping decisions the Delft WorkBench makes.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..core.callstack import CallStack
from ..isa.opcodes import OpInfo
from ..pin import INS, IPOINT, IARG, PinEngine, RTN

CATEGORIES = ("load", "store", "branch", "call", "ret", "float", "alu",
              "system", "prefetch")


def categorize(info: OpInfo) -> str:
    if info.is_prefetch:
        return "prefetch"
    if info.mem_read:
        return "load"
    if info.mem_write:
        return "store"
    if info.is_branch:
        return "branch"
    if info.is_call:
        return "call"
    if info.is_ret:
        return "ret"
    if info.name in ("ecall", "halt", "nop"):
        return "system"
    if info.is_float:
        return "float"
    return "alu"


@dataclass
class Mix:
    """Per-kernel dynamic instruction counts by category."""

    counts: dict[str, int] = field(
        default_factory=lambda: {c: 0 for c in CATEGORIES})

    @property
    def total(self) -> int:
        return sum(self.counts.values())

    def fraction(self, category: str) -> float:
        t = self.total
        return self.counts[category] / t if t else 0.0

    @property
    def memory_fraction(self) -> float:
        """Share of instructions touching memory — the denominator insight
        behind bytes/instruction."""
        return self.fraction("load") + self.fraction("store")


class ImixTool:
    """Counts executed instructions per category, attributed per kernel."""

    def __init__(self):
        self.callstack = CallStack()
        self.per_kernel: dict[str, Mix] = {}
        self.finished = False

    def attach(self, engine: PinEngine) -> "ImixTool":
        engine.INS_AddInstrumentFunction(self._instrument)
        engine.RTN_AddInstrumentFunction(self._instrument_rtn)
        engine.AddFiniFunction(self._fini)
        return self

    def _instrument(self, ins: INS) -> None:
        category = categorize(ins.ins.info)
        # one closure per static instruction; category resolved statically
        ins.InsertCall(IPOINT.BEFORE, self._make_counter(category))
        if ins.IsRet():
            ins.InsertCall(IPOINT.BEFORE, self.callstack.on_ret)

    def _make_counter(self, category: str):
        per_kernel = self.per_kernel
        callstack = self.callstack

        def count() -> None:
            name = callstack.current_kernel or "?"
            mix = per_kernel.get(name)
            if mix is None:
                mix = per_kernel[name] = Mix()
            mix.counts[category] += 1
        return count

    def _instrument_rtn(self, rtn: RTN) -> None:
        rtn.InsertCall(IPOINT.BEFORE, self.callstack.enter,
                       IARG.RTN_NAME, IARG.RTN_IMAGE)

    def _fini(self, exit_code: int) -> None:
        self.finished = True

    # ------------------------------------------------------------- results
    def mix(self, kernel: str) -> Mix:
        return self.per_kernel.get(kernel, Mix())

    def total(self) -> Mix:
        out = Mix()
        for mix in self.per_kernel.values():
            for c, n in mix.counts.items():
                out.counts[c] += n
        return out

    def format_table(self, *, top: int | None = None) -> str:
        cols = (f"{'kernel':<26}{'instr':>10}" +
                "".join(f"{c:>9}" for c in CATEGORIES) + f"{'mem%':>7}")
        lines = [cols, "-" * len(cols)]
        items = sorted(self.per_kernel.items(),
                       key=lambda kv: kv[1].total, reverse=True)
        if top is not None:
            items = items[:top]
        for name, mix in items:
            lines.append(
                f"{name:<26}{mix.total:>10}"
                + "".join(f"{mix.counts[c]:>9}" for c in CATEGORIES)
                + f"{100 * mix.memory_fraction:>6.1f}%")
        return "\n".join(lines)


def run_imix(program, *, fs=None,
             max_instructions: int | None = None) -> ImixTool:
    engine = PinEngine(program, fs=fs)
    tool = ImixTool().attach(engine)
    engine.run(max_instructions=max_instructions)
    return tool
