"""Set-associative data-cache simulation as a pintool.

tQUAD deliberately reports architecture-independent bytes/instruction; tools
like vTune report cache behaviour instead (paper §II).  ``DCacheTool``
bridges the two: it replays every data access through a configurable
set-associative LRU cache and attributes hits/misses to kernels via the same
internal call stack tQUAD uses, so locality and bandwidth can be compared
side by side for the same run.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..core.callstack import CallStack
from ..pin import IARG, INS, IPOINT, PinEngine, RTN


@dataclass(frozen=True)
class CacheConfig:
    """Geometry of one cache level."""

    size_bytes: int = 32 * 1024
    line_bytes: int = 64
    ways: int = 8
    name: str = "L1D"

    def __post_init__(self) -> None:
        if self.line_bytes & (self.line_bytes - 1) or self.line_bytes < 4:
            raise ValueError("line size must be a power of two >= 4")
        if self.size_bytes % (self.line_bytes * self.ways):
            raise ValueError("size must divide evenly into sets")
        if self.n_sets & (self.n_sets - 1):
            raise ValueError("number of sets must be a power of two")

    @property
    def n_sets(self) -> int:
        return self.size_bytes // (self.line_bytes * self.ways)

    @property
    def line_shift(self) -> int:
        return self.line_bytes.bit_length() - 1


class CacheModel:
    """A set-associative LRU cache over line addresses."""

    __slots__ = ("config", "_sets", "_set_mask", "_shift", "hits", "misses",
                 "evictions")

    def __init__(self, config: CacheConfig):
        self.config = config
        # each set: dict line_tag -> stamp; dict preserves insertion order,
        # and move-to-end on hit gives O(1) amortised LRU
        self._sets: list[dict[int, None]] = [dict()
                                             for _ in range(config.n_sets)]
        self._set_mask = config.n_sets - 1
        self._shift = config.line_shift
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def access(self, addr: int) -> bool:
        """Touch one address; returns True on hit."""
        line = addr >> self._shift
        s = self._sets[line & self._set_mask]
        if line in s:
            # LRU update: move to the back
            del s[line]
            s[line] = None
            self.hits += 1
            return True
        self.misses += 1
        if len(s) >= self.config.ways:
            s.pop(next(iter(s)))
            self.evictions += 1
        s[line] = None
        return False

    def access_range(self, addr: int, size: int) -> int:
        """Touch ``[addr, addr+size)``; returns the number of misses."""
        first = addr >> self._shift
        last = (addr + size - 1) >> self._shift
        misses = 0
        for line in range(first, last + 1):
            if not self.access(line << self._shift):
                misses += 1
        return misses

    def resident_lines(self) -> int:
        return sum(len(s) for s in self._sets)


@dataclass
class CacheStats:
    """Per-kernel cache behaviour."""

    accesses: int = 0
    hits: int = 0
    misses: int = 0

    @property
    def miss_rate(self) -> float:
        return self.misses / self.accesses if self.accesses else 0.0


class DCacheTool:
    """Pintool: replay data accesses through a cache, attribute per kernel."""

    def __init__(self, config: CacheConfig | None = None):
        self.config = config or CacheConfig()
        self.cache = CacheModel(self.config)
        self.callstack = CallStack()
        self.per_kernel: dict[str, CacheStats] = {}
        self._machine = None
        self._instructions_at_fini = 0
        self.finished = False

    def attach(self, engine: PinEngine) -> "DCacheTool":
        if self._machine is not None:
            raise RuntimeError("tool already attached")
        self._machine = engine.machine
        engine.INS_AddInstrumentFunction(self._instrument)
        engine.RTN_AddInstrumentFunction(self._instrument_rtn)
        engine.AddFiniFunction(self._fini)
        return self

    def _instrument(self, ins: INS) -> None:
        if ins.IsPrefetch():
            # prefetches *do* warm the cache, but are not demand accesses
            ins.InsertPredicatedCall(IPOINT.BEFORE, self._on_prefetch,
                                     IARG.MEMORY_EA, IARG.MEMORY_SIZE)
            return
        if ins.IsMemoryRead() or ins.IsMemoryWrite():
            ins.InsertPredicatedCall(IPOINT.BEFORE, self._on_access,
                                     IARG.MEMORY_EA, IARG.MEMORY_SIZE)
        if ins.IsRet():
            ins.InsertCall(IPOINT.BEFORE, self.callstack.on_ret)

    def _instrument_rtn(self, rtn: RTN) -> None:
        rtn.InsertCall(IPOINT.BEFORE, self.callstack.enter,
                       IARG.RTN_NAME, IARG.RTN_IMAGE)

    def _on_access(self, ea: int, size: int) -> None:
        misses = self.cache.access_range(ea, size)
        lines = ((ea + size - 1) >> self.config.line_shift) \
            - (ea >> self.config.line_shift) + 1
        name = self.callstack.current_kernel or "?"
        stats = self.per_kernel.get(name)
        if stats is None:
            stats = self.per_kernel[name] = CacheStats()
        stats.accesses += lines
        stats.misses += misses
        stats.hits += lines - misses

    def _on_prefetch(self, ea: int, size: int) -> None:
        self.cache.access_range(ea, size)

    def _fini(self, exit_code: int) -> None:
        self._instructions_at_fini = self._machine.icount
        self.finished = True

    # ------------------------------------------------------------- results
    def stats(self, kernel: str) -> CacheStats:
        return self.per_kernel.get(kernel, CacheStats())

    def total(self) -> CacheStats:
        out = CacheStats()
        for s in self.per_kernel.values():
            out.accesses += s.accesses
            out.hits += s.hits
            out.misses += s.misses
        return out

    def mpki(self, kernel: str | None = None) -> float:
        """Misses per thousand instructions (whole run denominator)."""
        if not self._instructions_at_fini:
            return 0.0
        misses = (self.total().misses if kernel is None
                  else self.stats(kernel).misses)
        return 1000.0 * misses / self._instructions_at_fini

    def format_table(self, *, top: int | None = None) -> str:
        head = (f"{self.config.name}: {self.config.size_bytes // 1024} KiB, "
                f"{self.config.ways}-way, {self.config.line_bytes} B lines")
        cols = (f"{'kernel':<26}{'accesses':>11}{'misses':>10}"
                f"{'miss rate':>11}{'MPKI':>8}")
        lines = [head, cols, "-" * len(cols)]
        items = sorted(self.per_kernel.items(),
                       key=lambda kv: kv[1].misses, reverse=True)
        if top is not None:
            items = items[:top]
        for name, s in items:
            lines.append(f"{name:<26}{s.accesses:>11}{s.misses:>10}"
                         f"{s.miss_rate:>11.4f}{self.mpki(name):>8.2f}")
        t = self.total()
        lines.append(f"{'TOTAL':<26}{t.accesses:>11}{t.misses:>10}"
                     f"{t.miss_rate:>11.4f}{self.mpki():>8.2f}")
        return "\n".join(lines)


def run_dcache(program, *, config: CacheConfig | None = None, fs=None,
               max_instructions: int | None = None) -> DCacheTool:
    """Convenience: simulate the cache over a full run."""
    engine = PinEngine(program, fs=fs)
    tool = DCacheTool(config).attach(engine)
    engine.run(max_instructions=max_instructions)
    return tool
