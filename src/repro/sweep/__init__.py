"""Batched "multiverse" sweeps: one capture pass, a whole config grid.

The analyses in the paper (Table IV's multipass ladder, the slice-interval
ablation, stack-policy comparisons) all re-read the same execution under
different configs.  A :class:`SweepGrid` names the configs;
:func:`sweep_tquad` decodes each captured page *once* and produces every
grid cell as a normal :class:`~repro.core.report.TQuadReport`,
byte-identical to the standalone replay with the same options.

Typical use::

    from repro.capture import CaptureReader
    from repro.sweep import SweepGrid, sweep_tquad

    grid = SweepGrid(intervals=(500, 1000, 4000),
                     stacks=(StackPolicy.BOTH, StackPolicy.EXCLUDE),
                     library_modes=(False, True))
    with CaptureReader("run.capture") as reader:
        result = sweep_tquad(reader, grid)
    report = result.report(1000, StackPolicy.EXCLUDE, exclude_libraries=True)
"""

from .engine import SweepResult, grid_stats, restrict_sweep, sweep_tquad
from .grid import SweepCell, SweepGrid, validate_intervals

__all__ = ["SweepCell", "SweepGrid", "SweepResult", "grid_stats",
           "restrict_sweep", "sweep_tquad", "validate_intervals"]
