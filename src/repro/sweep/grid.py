"""Sweep grids: the analysis-config cross product one capture serves.

A :class:`SweepGrid` names the axes of a batched re-analysis — slice
intervals × stack policies × library-inclusion modes — and expands them
into :class:`SweepCell` coordinates.  Construction validates the axes
eagerly (empty or non-positive intervals are a :class:`ValueError`, the
same contract :func:`repro.core.multipass.profile_passes` enforces), so a
bad grid fails before any capture work starts; compatibility with a
*specific* capture (grain multiples, derivable policies) is checked by
the engine against the manifest.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.options import StackPolicy, TQuadOptions


def validate_intervals(intervals) -> tuple[int, ...]:
    """Normalise a slice-interval axis: sorted, deduplicated, all positive.

    Raises :class:`ValueError` for an empty list or any non-positive
    entry — the shared contract of sweep grids and multipass ladders.
    """
    items = list(intervals)
    if not items:
        raise ValueError("at least one slice interval is required")
    for iv in items:
        if int(iv) != iv or iv <= 0:
            raise ValueError(
                f"slice intervals must be positive integers (got {iv!r})")
    return tuple(sorted({int(iv) for iv in items}))


@dataclass(frozen=True)
class SweepCell:
    """One grid coordinate — exactly the options of a standalone replay."""

    interval: int
    stack: StackPolicy
    exclude_libraries: bool
    kernels: tuple[str, ...] | None = None

    def options(self) -> TQuadOptions:
        return TQuadOptions(slice_interval=self.interval, stack=self.stack,
                            exclude_libraries=self.exclude_libraries,
                            kernels=self.kernels)

    @property
    def key(self) -> tuple[int, str, bool]:
        """Canonical sortable identity (used for serialisation order)."""
        return (self.interval, self.stack.value, self.exclude_libraries)


@dataclass(frozen=True)
class SweepGrid:
    """The full config grid served by one decode pass over a capture."""

    intervals: tuple[int, ...]
    stacks: tuple[StackPolicy, ...] = (StackPolicy.BOTH,)
    library_modes: tuple[bool, ...] = (False,)
    kernels: tuple[str, ...] | None = None

    def __post_init__(self) -> None:
        object.__setattr__(self, "intervals",
                           validate_intervals(self.intervals))
        stacks = []
        for s in self.stacks:
            p = StackPolicy(s)
            if p not in stacks:
                stacks.append(p)
        if not stacks:
            raise ValueError("at least one stack policy is required")
        object.__setattr__(self, "stacks", tuple(stacks))
        modes = []
        for m in self.library_modes:
            b = bool(m)
            if b not in modes:
                modes.append(b)
        if not modes:
            raise ValueError("at least one library mode is required")
        object.__setattr__(self, "library_modes", tuple(modes))
        if self.kernels is not None:
            object.__setattr__(self, "kernels", tuple(self.kernels))

    def cells(self) -> list[SweepCell]:
        """All grid coordinates in canonical (sorted-key) order."""
        out = [SweepCell(interval=iv, stack=st, exclude_libraries=xl,
                         kernels=self.kernels)
               for iv in self.intervals
               for st in self.stacks
               for xl in self.library_modes]
        out.sort(key=lambda c: c.key)
        return out

    def __len__(self) -> int:
        return (len(self.intervals) * len(self.stacks)
                * len(self.library_modes))
