"""The batched sweep engine: decode each capture page once, fill a grid.

A sweep answers "what does this run look like under *every* analysis
config" without paying the per-config replay cost.  Where N calls to
:func:`repro.capture.replay.replay_tquad` decode and un-delta every page
N times, :func:`sweep_tquad` walks each tQUAD stream exactly once
(through a :class:`~repro.capture.reader.PageCursor`) and serves the
whole interval × stack-policy × library-mode grid from that single pass:

* **decode** — each page is decoded once; the library markers
  (``kernel_id <= -2``) and dropped-row sentinels (``-1``) become column
  masks, and every row is bucketed at the *gcd grain* of the requested
  intervals.  Only the distinct row-filter combinations the grid actually
  needs (library rows kept/dropped × exclusive-only) are accumulated.
* **bucket** — the per-page partial sums merge into one sparse
  ``(kernel, fine-slice) -> (incl, excl)`` table per stream and combo.
* **fold** — each coarser interval ``m * grain`` is an exact segment-sum
  of the fine table (``slice // m``); no re-read, no re-decode.
* **report** — every cell materialises as a normal
  :class:`~repro.core.report.TQuadReport`, byte-identical (at the
  ``tquad_to_json`` level) to the standalone replay with the same
  options — the property suite in ``tests/property/test_prop_sweep.py``
  asserts this cell by cell.

Each phase runs under an :mod:`repro.obs` span (``cat="sweep"``) so
traces show where sweep time goes.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from functools import reduce
from typing import Iterator

import numpy as np

from ..capture.format import (STREAM_TQUAD_READ, STREAM_TQUAD_WRITE,
                              require_tool)
from ..capture.reader import CaptureReader, PageCursor, StreamingCursor
from ..capture.replay import _resolve_tquad_options
from ..capture.streaming import (MemBudget, SortedTableAcc, SpillPool,
                                 sample_mask)
from ..core.ledger import BandwidthLedger
from ..core.npsort import stable_argsort
from ..core.options import StackPolicy
from ..core.report import TQuadReport
from ..obs import TELEMETRY
from .grid import SweepCell, SweepGrid

_STREAMS = ((STREAM_TQUAD_READ, False), (STREAM_TQUAD_WRITE, True))

_EMPTY = np.empty(0, dtype=np.int64)


class ColumnarLedger(BandwidthLedger):
    """A sweep-cell ledger whose ``history`` materialises on first read.

    The bucket/fold phases leave each cell's table as columnar arrays;
    expanding those into the nested per-kernel slice dicts is pure
    Python-object work that consumers which never read the cell (grid
    restriction, cell selection, cache reuse) should not pay for.  The
    first ``history`` access builds exactly the dict the eager path
    built — same keys, same tuples, same kernel merge order — so
    serialization and table rendering stay byte-identical.
    """

    __slots__ = ("_names", "_n_fine", "_keys", "_mat", "_hist")

    def __init__(self, interval: int, names: list[str], n_fine: int,
                 keys: np.ndarray, mat: np.ndarray):
        super().__init__(interval)
        self._names = names
        self._n_fine = n_fine
        self._keys = keys
        self._mat = mat
        self.flushed = True

    @property
    def history(self) -> dict[str, dict[int, tuple[int, int, int, int]]]:
        if self._keys is not None:
            self._hist = self._materialise()
            self._keys = self._mat = None
        return self._hist

    @history.setter
    def history(self, value) -> None:
        # an explicit assignment (base ``__init__``/``reset``, json
        # deserialization) replaces the columnar source outright
        self._hist = value
        self._keys = self._mat = None

    def _materialise(self) -> dict:
        names, n_fine = self._names, self._n_fine
        keys, mat = self._keys, self._mat
        history: dict[str, dict[int, tuple]] = {}
        if keys.size:
            # keys are sorted kernel-major, so each kernel is one
            # contiguous segment: build every inner dict with one
            # C-speed dict(zip(...)) instead of a per-row loop
            kid_a = keys // n_fine
            sl_l = (keys % n_fine).tolist()
            rows = list(zip(*(col.tolist() for col in mat.T)))
            seg = np.flatnonzero(
                np.concatenate(([True], kid_a[1:] != kid_a[:-1])))
            bounds = np.append(seg, keys.size).tolist()
            for k_id, i, j in zip(kid_a[seg].tolist(),
                                  bounds[:-1], bounds[1:]):
                prev = history.get(names[k_id])
                if prev is None:
                    history[names[k_id]] = dict(zip(sl_l[i:j],
                                                    rows[i:j]))
                else:
                    prev.update(zip(sl_l[i:j], rows[i:j]))
        return history

#: Largest (kernel, slice) key span the bucket phase groups by direct
#: bincount; beyond this the dense accumulators would outweigh the
#: sort they replace (three transient float64/int64 arrays of this size).
_DENSE_SPAN = 1 << 23


@dataclass
class SweepResult:
    """The filled grid: one :class:`TQuadReport` per cell."""

    grid: SweepGrid
    reports: dict[SweepCell, TQuadReport]
    total_instructions: int
    grain: int
    stats: dict[str, int] = field(default_factory=dict)

    def report(self, interval: int,
               stack: StackPolicy = StackPolicy.BOTH,
               exclude_libraries: bool = False) -> TQuadReport:
        cell = SweepCell(interval=interval, stack=StackPolicy(stack),
                         exclude_libraries=bool(exclude_libraries),
                         kernels=self.grid.kernels)
        try:
            return self.reports[cell]
        except KeyError:
            raise KeyError(
                f"cell (interval={interval}, stack={StackPolicy(stack).value}, "
                f"exclude_libraries={exclude_libraries}) is not in this "
                f"sweep's grid") from None

    def by_interval(self, *, stack: StackPolicy = StackPolicy.BOTH,
                    exclude_libraries: bool = False
                    ) -> dict[int, TQuadReport]:
        """One row of the grid, keyed by interval (the multipass shape)."""
        return {iv: self.report(iv, stack, exclude_libraries)
                for iv in self.grid.intervals}

    def __iter__(self) -> Iterator[tuple[SweepCell, TQuadReport]]:
        for cell in sorted(self.reports, key=lambda c: c.key):
            yield cell, self.reports[cell]

    def __len__(self) -> int:
        return len(self.reports)


def _cell_combo(cell: SweepCell, captured: StackPolicy,
                captured_excl_libs: bool) -> tuple[bool, bool]:
    """The row-filter combination a cell reads from: (drop library rows,
    keep only rows with exclusive bytes)."""
    drop_lib = cell.exclude_libraries and not captured_excl_libs
    excl_only = (captured is StackPolicy.BOTH
                 and cell.stack is StackPolicy.EXCLUDE)
    return (drop_lib, excl_only)


def grid_stats(grid: SweepGrid, manifest: dict, pages_walked: int,
               reader_stats: dict) -> dict[str, int]:
    """The ``SweepResult.stats`` block for ``grid`` — shared between
    :func:`sweep_tquad` and the fused-replay restriction so a sweep
    served out of a wider combined pass reports the same stats a
    standalone sweep of the same grid would."""
    mo = manifest["options"]
    captured = StackPolicy(mo["stack"])
    captured_excl_libs = bool(mo["exclude_libraries"])
    cells = grid.cells()
    combos = {_cell_combo(c, captured, captured_excl_libs) for c in cells}
    return {"cells": len(cells), "pages_walked": pages_walked,
            "grain": reduce(math.gcd, grid.intervals),
            "combos": len(combos), **reader_stats}


#: Stats keys the streaming/sampled paths add — present only when the
#: corresponding mode ran, so default sweeps serialise unchanged (the
#: corpus golden tree byte-diffs ``stats`` verbatim).
_STREAM_STATS = ("peak_resident_bytes", "spilled_bytes", "spill_runs",
                 "sample_rate", "sample_seed", "rows_walked",
                 "sampled_rows", "rel_err_95")


def restrict_sweep(result: SweepResult, grid: SweepGrid, manifest: dict,
                   reader: CaptureReader) -> SweepResult:
    """Project a wider sweep down to ``grid`` (every cell of ``grid``
    must be in ``result``) — grain and stats are recomputed as if the
    narrower grid had been swept directly."""
    reports = {cell: result.reports[cell] for cell in grid.cells()}
    stats = grid_stats(grid, manifest, result.stats["pages_walked"],
                       reader.stats)
    stats.update({k: result.stats[k] for k in _STREAM_STATS
                  if k in result.stats})
    return SweepResult(
        grid=grid, reports=reports,
        total_instructions=result.total_instructions,
        grain=reduce(math.gcd, grid.intervals),
        stats=stats)


def sweep_tquad(reader: CaptureReader, grid: SweepGrid,
                telemetry=TELEMETRY, *,
                mem_limit: int | None = None,
                sample: tuple[float, int] | None = None) -> SweepResult:
    """Fill ``grid`` from one decode pass over ``reader``'s tQUAD streams.

    Raises :class:`~repro.capture.format.CaptureMismatchError` if any
    grid cell is not derivable from the capture (non-multiple interval,
    underivable stack policy or library mode) — validation runs for the
    whole grid before any page is read.

    ``mem_limit`` switches the bucket pass to bounded accumulation:
    pages stream (mmap views when the sidecar is warm, bounded decode
    otherwise), per-combo partials compact incrementally at the shared
    :data:`~repro.capture.PAGE_BATCH_ROWS` cadence, and carry tables
    that push past the ceiling spill to disk as sorted runs merged back
    blockwise — integer segment sums are associative, so every cell is
    byte-identical to the unbounded sweep (the streaming property suite
    pins this).  ``sample=(rate, seed)`` Bernoulli-samples rows before
    bucketing and Horvitz-Thompson rescales each cell's counters by
    ``1/rate``; the stats block then reports the sampled row counts and
    a 95%-confidence relative error bound on the total inclusive bytes.
    Both add their stats keys only when active, keeping default sweeps
    serialisation-identical.
    """
    if sample is not None:
        rate, sample_seed = float(sample[0]), int(sample[1])
        if not (0.0 < rate < 1.0):
            raise ValueError(
                f"sampling rate must be in (0, 1), got {rate!r}")
    else:
        rate = sample_seed = None
    manifest = reader.manifest
    require_tool(manifest, "tquad")
    mo = manifest["options"]
    captured = StackPolicy(mo["stack"])
    captured_excl_libs = bool(mo["exclude_libraries"])
    cells = grid.cells()
    for cell in cells:
        _resolve_tquad_options(manifest, cell.options())

    fine = reduce(math.gcd, grid.intervals)
    total = int(manifest["total_instructions"])
    n_fine = (max(total, 1) - 1) // fine + 1
    names = manifest["kernels"]
    images = dict(manifest["images"])
    combos = {_cell_combo(c, captured, captured_excl_libs) for c in cells}

    reports: dict[SweepCell, TQuadReport] = {}
    pages_walked = 0
    budget = MemBudget(mem_limit) if mem_limit else None
    samp = ({"rows_walked": 0, "sampled_rows": 0, "sum": 0.0,
             "sumsq": 0.0} if rate is not None else None)
    with telemetry.span("sweep", cat="sweep", tool="tquad",
                        cells=len(cells), grain=fine,
                        intervals=",".join(map(str, grid.intervals))), \
            SpillPool(budget) as pool:
        # ------------------------------------------------ decode (one pass)
        # per (stream, combo): lists of per-page (keys, incl, excl)
        # partials — or, under a memory ceiling, bounded accumulators
        # that compact and spill instead of buffering every page
        locs = [(stream, combo) for stream, _ in _STREAMS
                for combo in combos]
        parts: dict[tuple[str, tuple[bool, bool]], list] = {
            loc: [] for loc in locs}
        accs = None
        if budget is not None:
            from ..capture import PAGE_BATCH_ROWS
            accs = {loc: SortedTableAcc(budget, PAGE_BATCH_ROWS)
                    for loc in locs}

        def emit(loc, chunk):
            if accs is not None:
                accs[loc].add(*chunk)
            else:
                parts[loc].append(chunk)

        with telemetry.span("sweep.decode", cat="sweep"):
            for si, (stream, _) in enumerate(_STREAMS):
                src = (StreamingCursor(reader, stream, budget=budget)
                       if budget is not None
                       else PageCursor(reader, stream))
                for pi, page in enumerate(src):
                    pages_walked += 1
                    if rate is not None:
                        n = page.shape[0]
                        samp["rows_walked"] += n
                        keep = sample_mask(sample_seed, si, pi, n, rate)
                        kept = int(keep.sum())
                        samp["sampled_rows"] += kept
                        if kept == 0:
                            continue
                        if kept < n:
                            page = page[keep]
                        vals = page[:, 1].astype(float)
                        samp["sum"] += float(vals.sum())
                        samp["sumsq"] += float((vals * vals).sum())
                    kid_raw = page[:, 3]
                    if kid_raw.size and int(kid_raw.min()) >= 0:
                        # fast path: no library rows, no dropped rows —
                        # the common page needs no masks at all
                        lib = valid = None
                        has_lib = False
                        kid = kid_raw
                    else:
                        lib = kid_raw < -1
                        valid = kid_raw != -1
                        has_lib = bool(lib.any())
                        kid = np.where(lib, -2 - kid_raw, kid_raw)
                    sl = (page[:, 0] - 1) // fine
                    key = kid * n_fine + sl
                    incl, excl = page[:, 1], page[:, 2]
                    # rows are already per-(slice, kernel) aggregates, so
                    # no per-page grouping happens here: each combo's row
                    # filter just selects rows, and one global sort in the
                    # bucket phase groups everything at once.  Combos whose
                    # filters coincide on this page (no library rows, no
                    # exclusive-free rows) share one selection
                    excl_pos = None
                    done: dict[tuple[bool, bool], tuple] = {}
                    for combo in combos:
                        drop_lib, excl_only = combo
                        if excl_only and excl_pos is None:
                            excl_pos = excl > 0
                            excl_all = bool(excl_pos.all())
                        eff = (drop_lib and has_lib,
                               excl_only and not excl_all)
                        chunk = done.get(eff)
                        if chunk is not None:
                            if chunk:
                                emit((stream, combo), chunk)
                            continue
                        mask = valid
                        if eff[0]:
                            mask = mask & ~lib
                        if eff[1]:
                            mask = excl_pos if mask is None \
                                else mask & excl_pos
                        if mask is None or mask.all():
                            chunk = (key, incl.copy(), excl.copy())
                        elif mask.any():
                            chunk = (key[mask], incl[mask], excl[mask])
                        else:
                            done[eff] = ()
                            continue
                        done[eff] = chunk
                        emit((stream, combo), chunk)
                    if budget is not None and budget.over:
                        # fold pending chunks first — usually enough;
                        # carry that still busts the ceiling goes to disk
                        for acc in accs.values():
                            acc.compact()
                        if budget.over:
                            for acc in accs.values():
                                acc.spill(pool)
        # ------------------------------- bucket (merge partials, fine grain)
        fine_tables: dict[tuple[str, tuple[bool, bool]],
                          tuple[np.ndarray, np.ndarray, np.ndarray]] = {}
        key_span = len(names) * n_fine
        with telemetry.span("sweep.bucket", cat="sweep"):
            if accs is not None:
                # streaming: each accumulator already carries its sorted
                # unique-key table (merged back from spill runs if any);
                # identical to the unbounded grouping below because
                # integer segment sums are associative
                for loc in locs:
                    keys_f, incl_f, excl_f = accs[loc].finalize()
                    fine_tables[loc] = ((_EMPTY, _EMPTY, _EMPTY)
                                        if keys_f.size == 0
                                        else (keys_f, incl_f, excl_f))
                parts = {}
            for loc, chunks in parts.items():
                if not chunks:
                    fine_tables[loc] = (_EMPTY, _EMPTY, _EMPTY)
                    continue
                keys = np.concatenate([c[0] for c in chunks])
                if key_span <= _DENSE_SPAN:
                    # the (kernel, slice) key space is dense enough to
                    # group by direct bincount — no sort, no gathers; a
                    # presence count keeps zero-byte rows in the table.
                    # float64 weight sums stay exact (byte totals are
                    # far below 2**53)
                    pres = np.bincount(keys, minlength=key_span)
                    sup = np.flatnonzero(pres)
                    fine_tables[loc] = tuple([sup] + [
                        np.bincount(
                            keys,
                            weights=np.concatenate(
                                [c[j] for c in chunks]),
                            minlength=key_span)[sup].astype(np.int64)
                        for j in (1, 2)])
                    continue
                # one stable radix sort groups every row; the integer
                # segment sums stay exact (no float bincount accumulator)
                order = stable_argsort(keys)
                sk = keys[order]
                gs = np.empty(sk.size, bool)
                gs[0] = True
                gs[1:] = sk[1:] != sk[:-1]
                starts = np.flatnonzero(gs)
                incl_s = np.add.reduceat(
                    np.concatenate([c[1] for c in chunks])[order], starts)
                excl_s = np.add.reduceat(
                    np.concatenate([c[2] for c in chunks])[order], starts)
                fine_tables[loc] = (sk[starts], incl_s, excl_s)
        # -------------------------------- fold (exact coarse segment sums)
        folded: dict[tuple[str, tuple[bool, bool], int],
                     tuple[np.ndarray, ...]] = {}
        with telemetry.span("sweep.fold", cat="sweep"):
            for cell in cells:
                combo = _cell_combo(cell, captured, captured_excl_libs)
                m = cell.interval // fine
                for stream, _ in _STREAMS:
                    loc = (stream, combo, cell.interval)
                    if loc in folded:
                        continue
                    keys, incl_s, excl_s = fine_tables[stream, combo]
                    if keys.size == 0:
                        folded[loc] = (_EMPTY, _EMPTY, _EMPTY, _EMPTY)
                        continue
                    kid = keys // n_fine
                    csl = (keys % n_fine) // m
                    if m == 1:
                        folded[loc] = (kid, csl, incl_s, excl_s)
                        continue
                    # fine keys are sorted kid-major, so the coarse keys
                    # are nondecreasing: segment-sum with reduceat instead
                    # of a sort-based regroup
                    ckey = kid * n_fine + csl
                    starts = np.flatnonzero(
                        np.concatenate(([True], ckey[1:] != ckey[:-1])))
                    uniq = ckey[starts]
                    folded[loc] = (
                        uniq // n_fine, uniq % n_fine,
                        np.add.reduceat(incl_s, starts),
                        np.add.reduceat(excl_s, starts))
        # ----------------------------------- report (one ledger per cell)
        with telemetry.span("sweep.report", cat="sweep"):
            for cell in cells:
                combo = _cell_combo(cell, captured, captured_excl_libs)
                excl_only = combo[1]
                zero_excl = (captured is StackPolicy.BOTH
                             and cell.stack is StackPolicy.INCLUDE)
                # merge the read/write tables into one (group × 4-counter)
                # matrix; the ledger dict itself materialises lazily on
                # first read (:class:`ColumnarLedger`)
                stream_keys = []
                for stream, _ in _STREAMS:
                    kid_a, sl_a, _, _ = folded[stream, combo, cell.interval]
                    stream_keys.append(kid_a * n_fine + sl_a)
                # both per-stream key arrays are sorted, so timsort's
                # galloping merge + adjacent dedup beats hash unique
                keys = np.concatenate(stream_keys)
                if keys.size:
                    keys.sort(kind="stable")
                    keep = np.empty(keys.size, bool)
                    keep[0] = True
                    keep[1:] = keys[1:] != keys[:-1]
                    keys = keys[keep]
                mat = np.zeros((keys.size, 4), dtype=np.int64)
                for (stream, write), skeys in zip(_STREAMS, stream_keys):
                    _, _, incl_a, excl_a = folded[
                        stream, combo, cell.interval]
                    if skeys.size == 0:
                        continue
                    idx = np.searchsorted(keys, skeys)
                    col = 2 if write else 0
                    if not excl_only:
                        mat[idx, col] = incl_a
                    if not zero_excl:
                        mat[idx, col + 1] = excl_a
                if rate is not None:
                    # Horvitz-Thompson: one 1/rate rescale at the very
                    # end keeps every cell consistent with the same
                    # sampled row set
                    mat = np.rint(mat / rate).astype(np.int64)
                reports[cell] = TQuadReport(
                    ledger=ColumnarLedger(cell.interval, names, n_fine,
                                          keys, mat),
                    options=cell.options(),
                    total_instructions=total, images=dict(images),
                    complete=True)
    telemetry.count("sweep/runs")
    telemetry.gauge("sweep/cells", len(cells))
    stats = grid_stats(grid, manifest, pages_walked, reader.stats)
    if budget is not None:
        budget.publish(telemetry)
        stats.update(peak_resident_bytes=budget.peak,
                     spilled_bytes=budget.spilled_bytes,
                     spill_runs=budget.spill_runs)
    if rate is not None:
        s = samp["sum"]
        rel = (1.96 * math.sqrt(samp["sumsq"] * (1.0 - rate)) / s
               if s > 0 else 0.0)
        stats.update(sample_rate=rate, sample_seed=sample_seed,
                     rows_walked=samp["rows_walked"],
                     sampled_rows=samp["sampled_rows"],
                     rel_err_95=round(rel, 6))
    return SweepResult(grid=grid, reports=reports,
                       total_instructions=total, grain=fine, stats=stats)
