"""The batched sweep engine: decode each capture page once, fill a grid.

A sweep answers "what does this run look like under *every* analysis
config" without paying the per-config replay cost.  Where N calls to
:func:`repro.capture.replay.replay_tquad` decode and un-delta every page
N times, :func:`sweep_tquad` walks each tQUAD stream exactly once
(through a :class:`~repro.capture.reader.PageCursor`) and serves the
whole interval × stack-policy × library-mode grid from that single pass:

* **decode** — each page is decoded once; the library markers
  (``kernel_id <= -2``) and dropped-row sentinels (``-1``) become column
  masks, and every row is bucketed at the *gcd grain* of the requested
  intervals.  Only the distinct row-filter combinations the grid actually
  needs (library rows kept/dropped × exclusive-only) are accumulated.
* **bucket** — the per-page partial sums merge into one sparse
  ``(kernel, fine-slice) -> (incl, excl)`` table per stream and combo.
* **fold** — each coarser interval ``m * grain`` is an exact segment-sum
  of the fine table (``slice // m``); no re-read, no re-decode.
* **report** — every cell materialises as a normal
  :class:`~repro.core.report.TQuadReport`, byte-identical (at the
  ``tquad_to_json`` level) to the standalone replay with the same
  options — the property suite in ``tests/property/test_prop_sweep.py``
  asserts this cell by cell.

Each phase runs under an :mod:`repro.obs` span (``cat="sweep"``) so
traces show where sweep time goes.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from functools import reduce
from typing import Iterator

import numpy as np

from ..capture.format import (STREAM_TQUAD_READ, STREAM_TQUAD_WRITE,
                              require_tool)
from ..capture.reader import CaptureReader, PageCursor
from ..capture.replay import _resolve_tquad_options
from ..core.ledger import BandwidthLedger
from ..core.options import StackPolicy
from ..core.report import TQuadReport
from ..obs import TELEMETRY
from .grid import SweepCell, SweepGrid

_STREAMS = ((STREAM_TQUAD_READ, False), (STREAM_TQUAD_WRITE, True))

_EMPTY = np.empty(0, dtype=np.int64)


@dataclass
class SweepResult:
    """The filled grid: one :class:`TQuadReport` per cell."""

    grid: SweepGrid
    reports: dict[SweepCell, TQuadReport]
    total_instructions: int
    grain: int
    stats: dict[str, int] = field(default_factory=dict)

    def report(self, interval: int,
               stack: StackPolicy = StackPolicy.BOTH,
               exclude_libraries: bool = False) -> TQuadReport:
        cell = SweepCell(interval=interval, stack=StackPolicy(stack),
                         exclude_libraries=bool(exclude_libraries),
                         kernels=self.grid.kernels)
        try:
            return self.reports[cell]
        except KeyError:
            raise KeyError(
                f"cell (interval={interval}, stack={StackPolicy(stack).value}, "
                f"exclude_libraries={exclude_libraries}) is not in this "
                f"sweep's grid") from None

    def by_interval(self, *, stack: StackPolicy = StackPolicy.BOTH,
                    exclude_libraries: bool = False
                    ) -> dict[int, TQuadReport]:
        """One row of the grid, keyed by interval (the multipass shape)."""
        return {iv: self.report(iv, stack, exclude_libraries)
                for iv in self.grid.intervals}

    def __iter__(self) -> Iterator[tuple[SweepCell, TQuadReport]]:
        for cell in sorted(self.reports, key=lambda c: c.key):
            yield cell, self.reports[cell]

    def __len__(self) -> int:
        return len(self.reports)


def _cell_combo(cell: SweepCell, captured: StackPolicy,
                captured_excl_libs: bool) -> tuple[bool, bool]:
    """The row-filter combination a cell reads from: (drop library rows,
    keep only rows with exclusive bytes)."""
    drop_lib = cell.exclude_libraries and not captured_excl_libs
    excl_only = (captured is StackPolicy.BOTH
                 and cell.stack is StackPolicy.EXCLUDE)
    return (drop_lib, excl_only)


def sweep_tquad(reader: CaptureReader, grid: SweepGrid,
                telemetry=TELEMETRY) -> SweepResult:
    """Fill ``grid`` from one decode pass over ``reader``'s tQUAD streams.

    Raises :class:`~repro.capture.format.CaptureMismatchError` if any
    grid cell is not derivable from the capture (non-multiple interval,
    underivable stack policy or library mode) — validation runs for the
    whole grid before any page is read.
    """
    manifest = reader.manifest
    require_tool(manifest, "tquad")
    mo = manifest["options"]
    captured = StackPolicy(mo["stack"])
    captured_excl_libs = bool(mo["exclude_libraries"])
    cells = grid.cells()
    for cell in cells:
        _resolve_tquad_options(manifest, cell.options())

    fine = reduce(math.gcd, grid.intervals)
    total = int(manifest["total_instructions"])
    n_fine = (max(total, 1) - 1) // fine + 1
    names = manifest["kernels"]
    images = dict(manifest["images"])
    combos = {_cell_combo(c, captured, captured_excl_libs) for c in cells}

    reports: dict[SweepCell, TQuadReport] = {}
    pages_walked = 0
    with telemetry.span("sweep", cat="sweep", tool="tquad",
                        cells=len(cells), grain=fine,
                        intervals=",".join(map(str, grid.intervals))):
        # ------------------------------------------------ decode (one pass)
        # per (stream, combo): lists of per-page (keys, incl, excl) partials
        parts: dict[tuple[str, tuple[bool, bool]], list] = {
            (stream, combo): [] for stream, _ in _STREAMS
            for combo in combos}
        with telemetry.span("sweep.decode", cat="sweep"):
            for stream, _ in _STREAMS:
                for page in PageCursor(reader, stream):
                    pages_walked += 1
                    kid_raw = page[:, 3]
                    lib = kid_raw < -1
                    valid = kid_raw != -1
                    kid = np.where(lib, -2 - kid_raw, kid_raw)
                    sl = (page[:, 0] - 1) // fine
                    key = kid * n_fine + sl
                    incl, excl = page[:, 1], page[:, 2]
                    # one sort per page serves every combo: the per-combo
                    # row filters become weight masks over the shared
                    # group inverse (absent groups filtered by presence);
                    # combos whose filters coincide on this page (no library
                    # rows, no exclusive-free rows) share one summation
                    uniq, inv = np.unique(key, return_inverse=True)
                    nb = uniq.size
                    has_lib = bool(lib.any())
                    excl_pos = None
                    done: dict[tuple[bool, bool], tuple] = {}
                    for combo in combos:
                        drop_lib, excl_only = combo
                        if excl_only and excl_pos is None:
                            excl_pos = excl > 0
                            excl_all = bool(excl_pos.all())
                        eff = (drop_lib and has_lib,
                               excl_only and not excl_all)
                        chunk = done.get(eff)
                        if chunk is not None:
                            if chunk:
                                parts[stream, combo].append(chunk)
                            continue
                        mask = valid
                        if eff[0]:
                            mask = mask & ~lib
                        if eff[1]:
                            mask = mask & excl_pos
                        if mask.all():
                            chunk = (
                                uniq,
                                np.bincount(inv, weights=incl,
                                            minlength=nb)
                                .astype(np.int64),
                                np.bincount(inv, weights=excl,
                                            minlength=nb)
                                .astype(np.int64))
                        else:
                            minv = inv[mask]
                            if minv.size == 0:
                                done[eff] = ()
                                continue
                            present = np.bincount(minv, minlength=nb) > 0
                            chunk = (
                                uniq[present],
                                np.bincount(minv, weights=incl[mask],
                                            minlength=nb)[present]
                                .astype(np.int64),
                                np.bincount(minv, weights=excl[mask],
                                            minlength=nb)[present]
                                .astype(np.int64))
                        done[eff] = chunk
                        parts[stream, combo].append(chunk)
        # ------------------------------- bucket (merge partials, fine grain)
        fine_tables: dict[tuple[str, tuple[bool, bool]],
                          tuple[np.ndarray, np.ndarray, np.ndarray]] = {}
        with telemetry.span("sweep.bucket", cat="sweep"):
            for loc, chunks in parts.items():
                if not chunks:
                    fine_tables[loc] = (_EMPTY, _EMPTY, _EMPTY)
                    continue
                keys = np.concatenate([c[0] for c in chunks])
                uniq, inv = np.unique(keys, return_inverse=True)
                incl_s = np.bincount(
                    inv, weights=np.concatenate([c[1] for c in chunks]),
                    minlength=uniq.size).astype(np.int64)
                excl_s = np.bincount(
                    inv, weights=np.concatenate([c[2] for c in chunks]),
                    minlength=uniq.size).astype(np.int64)
                fine_tables[loc] = (uniq, incl_s, excl_s)
        # -------------------------------- fold (exact coarse segment sums)
        folded: dict[tuple[str, tuple[bool, bool], int],
                     tuple[np.ndarray, ...]] = {}
        with telemetry.span("sweep.fold", cat="sweep"):
            for cell in cells:
                combo = _cell_combo(cell, captured, captured_excl_libs)
                m = cell.interval // fine
                for stream, _ in _STREAMS:
                    loc = (stream, combo, cell.interval)
                    if loc in folded:
                        continue
                    keys, incl_s, excl_s = fine_tables[stream, combo]
                    if keys.size == 0:
                        folded[loc] = (_EMPTY, _EMPTY, _EMPTY, _EMPTY)
                        continue
                    kid = keys // n_fine
                    csl = (keys % n_fine) // m
                    if m == 1:
                        folded[loc] = (kid, csl, incl_s, excl_s)
                        continue
                    # fine keys are sorted kid-major, so the coarse keys
                    # are nondecreasing: segment-sum with reduceat instead
                    # of a sort-based regroup
                    ckey = kid * n_fine + csl
                    starts = np.flatnonzero(
                        np.concatenate(([True], ckey[1:] != ckey[:-1])))
                    uniq = ckey[starts]
                    folded[loc] = (
                        uniq // n_fine, uniq % n_fine,
                        np.add.reduceat(incl_s, starts),
                        np.add.reduceat(excl_s, starts))
        # ----------------------------------- report (one ledger per cell)
        with telemetry.span("sweep.report", cat="sweep"):
            for cell in cells:
                combo = _cell_combo(cell, captured, captured_excl_libs)
                excl_only = combo[1]
                zero_excl = (captured is StackPolicy.BOTH
                             and cell.stack is StackPolicy.INCLUDE)
                # merge the read/write tables into one (group × 4-counter)
                # matrix, then materialise the ledger dict in a single
                # tolist pass — no per-group accumulate calls
                stream_keys = []
                for stream, _ in _STREAMS:
                    kid_a, sl_a, _, _ = folded[stream, combo, cell.interval]
                    stream_keys.append(kid_a * n_fine + sl_a)
                keys = np.unique(np.concatenate(stream_keys))
                mat = np.zeros((keys.size, 4), dtype=np.int64)
                for (stream, write), skeys in zip(_STREAMS, stream_keys):
                    _, _, incl_a, excl_a = folded[
                        stream, combo, cell.interval]
                    if skeys.size == 0:
                        continue
                    idx = np.searchsorted(keys, skeys)
                    col = 2 if write else 0
                    if not excl_only:
                        mat[idx, col] = incl_a
                    if not zero_excl:
                        mat[idx, col + 1] = excl_a
                ledger = BandwidthLedger(cell.interval)
                history: dict[str, dict[int, tuple]] = {}
                kid_l = (keys // n_fine).tolist()
                sl_l = (keys % n_fine).tolist()
                for k_id, s, row in zip(kid_l, sl_l, mat.tolist()):
                    history.setdefault(names[k_id], {})[s] = tuple(row)
                ledger.history = history
                ledger.flushed = True
                reports[cell] = TQuadReport(
                    ledger=ledger, options=cell.options(),
                    total_instructions=total, images=dict(images),
                    complete=True)
    telemetry.count("sweep/runs")
    telemetry.gauge("sweep/cells", len(cells))
    stats = {"cells": len(cells), "pages_walked": pages_walked,
             "grain": fine, "combos": len(combos), **reader.stats}
    return SweepResult(grid=grid, reports=reports,
                       total_instructions=total, grain=fine, stats=stats)
